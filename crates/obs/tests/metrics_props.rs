//! Hand-rolled property tests for the metrics registry and the drift
//! monitor (the workspace is std-only, so no proptest: a seeded
//! SplitMix64 drives randomized trials that replay deterministically).
//!
//! Three properties the telemetry layer's correctness rests on:
//!
//! 1. **Quantile bounds hold.** For adversarial sample streams — log
//!    uniform across 75 binades, point masses, sub-bucket dust,
//!    overflow spikes — every `quantile_bounds(q)` interval contains
//!    the exact sample quantile computed by sorting.
//! 2. **Shard merging is associative and commutative.** Per-rank
//!    shards fold into the registry in whatever order ranks drain;
//!    every grouping and ordering must produce the identical snapshot.
//! 3. **The drift monitor is a deterministic fold.** Replaying a fixed
//!    residual stream reproduces the same estimates and the same
//!    verdict at the same position, every time.

use intercom_cost::{CollectiveOp, CostContext, MachineParams, Strategy, StrategyKind};
use intercom_obs::metrics::Histogram;
use intercom_obs::{
    analyze, DriftMonitor, EventKind, RankRecord, ResidualReport, Shard, TraceEvent,
    LEVEL_TAG_STRIDE,
};

/// SplitMix64 (Steele et al.): the standard tiny seedable generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The exact `q`-quantile of `sorted` under the histogram's rank
/// convention: the sample at rank `clamp(ceil(q·count), 1, count)`.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One adversarial sample stream: a mixture chosen by the trial index.
fn adversarial_stream(rng: &mut Rng, trial: usize) -> Vec<f64> {
    let len = 1 + rng.below(400) as usize;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let v = match trial % 5 {
            // Log-uniform over 75 binades: denormal dust through
            // far-overflow, the histogram's full dynamic range and out
            // both ends.
            0 => (rng.f64() * 75.0 - 45.0).exp2(),
            // A point mass sitting exactly on a bucket edge.
            1 => (-(3 + rng.below(4) as i32) as f64).exp2(),
            // Zeros and near-zeros (everything below bucket 0's edge).
            2 => rng.f64() * 1e-13,
            // Overflow spikes far beyond the last edge.
            3 => 1e8 + rng.f64() * 1e10,
            // The realistic case: microseconds-to-seconds latencies.
            _ => 1e-6 * 10f64.powf(rng.f64() * 6.0),
        };
        out.push(v);
    }
    out
}

#[test]
fn quantile_bounds_contain_the_exact_quantile() {
    let mut rng = Rng(0x5eed_0001);
    for trial in 0..60 {
        let samples = adversarial_stream(&mut rng, trial);
        let mut h = Histogram::new();
        for &v in &samples {
            h.observe(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(h.count(), samples.len() as u64);
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
            let truth = exact_quantile(&sorted, q);
            assert!(
                lo <= truth && truth <= hi,
                "trial {trial} q={q}: true quantile {truth:e} outside [{lo:e}, {hi:e}] \
                 ({} samples)",
                samples.len()
            );
            assert!(lo <= hi, "trial {trial} q={q}: inverted bounds");
        }
        // The extremes are exact: min and max are tracked directly.
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert_eq!(hi, *sorted.last().unwrap());
        assert!(lo <= hi);
    }
}

/// Fills a shard with a random batch of metric updates. Histogram and
/// counter keys are shared across shards (they accumulate); gauges get
/// a per-shard `rank` label, as per-rank gauges do in production —
/// gauge merge is last-write, so colliding gauge keys are the one
/// update order may legitimately reorder.
fn random_shard(rng: &mut Rng, rank: usize) -> Shard {
    let mut s = Shard::new();
    let rank_label = rank.to_string();
    for _ in 0..(1 + rng.below(50)) {
        match rng.below(3) {
            0 => {
                let name =
                    ["intercom_msgs_sent_total", "intercom_bytes_out_total"][rng.below(2) as usize];
                let backend = ["threads", "sim"][rng.below(2) as usize];
                s.counter_add(name, &[("backend", backend)], rng.below(1 << 20));
            }
            1 => {
                // Dyadic values (k/64): f64 sums of these are exact, so
                // histogram sums compare bit-equal across orderings.
                let v = rng.below(1 << 16) as f64 / 64.0;
                let op = ["broadcast", "allreduce"][rng.below(2) as usize];
                s.observe("intercom_plan_exec_seconds", &[("op", op)], v);
            }
            _ => {
                s.gauge_set(
                    "intercom_pool_hit_rate",
                    &[("rank", &rank_label)],
                    rng.below(1000) as f64 / 1000.0,
                );
            }
        }
    }
    s
}

#[test]
fn shard_merge_is_associative_and_commutative() {
    let mut rng = Rng(0x5eed_0002);
    for _ in 0..40 {
        let shards: Vec<Shard> = (0..4).map(|r| random_shard(&mut rng, r)).collect();

        // ((a ⊕ b) ⊕ c) ⊕ d
        let mut left = Shard::new();
        for s in &shards {
            left.merge(s);
        }
        // a ⊕ ((b ⊕ c) ⊕ d)
        let mut tail = Shard::new();
        for s in &shards[1..] {
            tail.merge(s);
        }
        let mut right = shards[0].clone();
        right.merge(&tail);
        // Reversed order.
        let mut rev = Shard::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }

        let a = left.snapshot();
        assert_eq!(a, right.snapshot(), "merge grouping changed the snapshot");
        assert_eq!(a, rev.snapshot(), "merge order changed the snapshot");
    }
}

/// A residual report whose α̂/β̂ fit is exactly `(alpha, beta)`,
/// synthesized by pricing each stage of a hybrid broadcast under the
/// "true" machine (the construction `drift`'s unit tests pin down).
fn synthetic_report(alpha: f64, beta: f64) -> ResidualReport {
    let machine = MachineParams::PARAGON_MODEL;
    let truth = MachineParams {
        alpha,
        beta,
        ..machine
    };
    let strategy = Strategy::new(vec![2, 2, 3], StrategyKind::Mst);
    let p = strategy.nodes();
    let n = 4096usize;
    let preds = intercom_cost::stage_predictions(
        CollectiveOp::Broadcast,
        &strategy,
        CostContext::linear_with(&machine),
    );
    let mut events: Vec<Vec<TraceEvent>> = vec![Vec::new(); p];
    let mut t = 0.0f64;
    for pred in &preds {
        let dur = pred.cost.eval(n, &truth);
        events[0].push(TraceEvent {
            kind: EventKind::Send,
            rank: 0,
            src: 0,
            dst: 1,
            tag: pred.level as u64 * LEVEL_TAG_STRIDE + pred.sub,
            bytes: n,
            start: t,
            end: t + dur,
            hops: 0,
            plan: 0,
            step: 0,
        });
        t += dur;
    }
    let run = intercom_obs::RunRecord::from_ranks(
        events
            .into_iter()
            .enumerate()
            .map(|(rank, ev)| RankRecord {
                rank,
                events: ev,
                counters: Default::default(),
                dropped: 0,
            })
            .collect(),
    );
    analyze(
        &run,
        CollectiveOp::Broadcast,
        &strategy,
        CostContext::linear_with(&machine),
        &machine,
        n,
    )
}

#[test]
fn drift_monitor_is_a_deterministic_fold() {
    let machine = MachineParams::PARAGON_MODEL;
    // A fixed mixed stream: stable, then drifting, with magnitudes from
    // a seeded generator so the stream is irregular but reproducible.
    let mut rng = Rng(0x5eed_0003);
    let stream: Vec<ResidualReport> = (0..12)
        .map(|i| {
            let wobble = 1.0 + (rng.f64() - 0.5) * 0.02;
            let scale = if i < 4 { 1.0 } else { 2.0 };
            synthetic_report(machine.alpha * wobble, machine.beta * scale * wobble)
        })
        .collect();

    let replay = || {
        let mut mon = DriftMonitor::new(machine);
        let mut verdict_at = None;
        let mut estimates = Vec::new();
        for (i, r) in stream.iter().enumerate() {
            if mon.observe(r).is_some() && verdict_at.is_none() {
                verdict_at = Some(i);
            }
            estimates.push(mon.estimate());
        }
        (verdict_at, estimates, mon.samples())
    };

    let (first_verdict, first_estimates, first_samples) = replay();
    assert!(
        first_verdict.is_some(),
        "the 2x beta segment must trip the monitor"
    );
    for _ in 0..3 {
        let (v, e, s) = replay();
        assert_eq!(v, first_verdict, "verdict position must be reproducible");
        assert_eq!(s, first_samples);
        // Bitwise equality: the fold runs the same f64 operations in
        // the same order, so the estimates are identical, not just
        // close.
        assert_eq!(
            e, first_estimates,
            "estimate trajectory must be bitwise stable"
        );
    }
}
