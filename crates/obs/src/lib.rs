//! # intercom-obs
//!
//! The unified tracing & metrics layer shared by the threaded runtime
//! (`intercom-runtime`) and the mesh simulator (`intercom-meshsim`).
//!
//! The paper's argument rests on closed-form `α + nβ [+ nγ]` cost
//! predictions per collective (§3–§6); this crate provides the
//! measurement side of that argument:
//!
//! - one [`TraceEvent`] schema for both backends (wall-clock or virtual
//!   timestamps, per-rank timelines, tags that encode the recursion
//!   stage);
//! - per-rank fixed-capacity [`RingBuffer`]s behind a [`Recorder`]
//!   handle — no locks, no allocation on the hot path, one writer per
//!   rank, drained after the collective; a disabled recorder costs one
//!   branch (the CI gate holds instrumentation overhead under 3%);
//! - per-rank [`Counters`] (bytes in/out, message counts, pool
//!   hit/miss, eager vs rendezvous, wait vs transfer time);
//! - two exporters: Chrome-trace/Perfetto JSON ([`chrome_trace`]) for
//!   timeline inspection, and the [`residual`] analyzer, which folds a
//!   recorded run against `intercom-cost`'s per-stage predictions to
//!   report measured-vs-predicted α/β residuals, per-stage skew and
//!   the slowest-rank critical path;
//! - the [`Trace`] timeline view (step diagrams, Gantt charts, hot-pair
//!   summaries) that previously lived inside the simulator;
//! - the always-on production telemetry layer: the [`metrics`]
//!   registry (counters / gauges / log-bucketed histograms, Prometheus
//!   and JSON exposition), the [`flight`] recorder (black box of the
//!   last K plan executions, dumped on failure), and the [`drift`]
//!   monitor (online α̂/β̂ estimate over streaming residual reports,
//!   raising a [`DriftVerdict`] when reality departs from the
//!   configured `MachineParams` — the sensing half of the closed
//!   autotuning loop).
//!
//! See `docs/OBSERVABILITY.md` for the schema reference and a guided
//! tour of the residual report.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod drift;
pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod record;
pub mod residual;
pub mod timeline;

pub use chrome::{chrome_trace, escape_json};
pub use drift::{DriftConfig, DriftMonitor, DriftParam, DriftVerdict};
pub use event::{stage_of, EventKind, Stage, TraceEvent, CALL_TAG_STRIDE, LEVEL_TAG_STRIDE};
pub use flight::{FlightEntry, FlightOutcome, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use metrics::{Histogram, MetricKey, MetricValue, Registry, Shard, Snapshot};
pub use record::{
    disabled_recorders, recorders, Counters, RankRecord, Recorder, RingBuffer, RunRecord,
    DEFAULT_RING_CAPACITY,
};
pub use residual::{analyze, RankPath, ResidualReport, StageOverlap, StageResidual};
pub use timeline::Trace;
