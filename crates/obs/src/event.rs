//! The unified trace-event schema shared by the threaded runtime and
//! the mesh simulator.
//!
//! One [`TraceEvent`] describes one timed occurrence on one rank's
//! timeline: an eager or rendezvous message (send / recv / combined
//! sendrecv) or a reduction step. The simulator emits one `Send` event
//! per completed *transfer* (on the source rank's timeline, with the
//! physical hop count filled in); the threaded runtime emits one event
//! per *endpoint operation* (a message appears once on the sender's and
//! once on the receiver's timeline).
//!
//! Timestamps are fractional seconds relative to the run's epoch —
//! monotonic wall clock for the runtime, virtual time for the simulator
//! — so both backends export to the same timeline formats and fold
//! against the same cost model.

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An outgoing message (or a completed simulator transfer).
    Send,
    /// An incoming message.
    Recv,
    /// One half of a simultaneous send-receive (§2: "a processor can
    /// both send and receive at the same time"). The send half has
    /// `src == rank`, the receive half `dst == rank`.
    SendRecv,
    /// A local reduction step (the γ term): `bytes` folded element-wise.
    Reduce,
    /// A scripted fault fired on this rank (fault-injection runs only).
    FaultInjected,
    /// The fault layer retransmitted a message (attempt count rides in
    /// `bytes`).
    Retry,
    /// A checksum verdict rejected an incoming frame (receiver-side
    /// NAK; `src` names the sender being refused).
    Nak,
    /// A bounded wait expired; `src` names the silent peer.
    Timeout,
    /// The coordinated abort reached this rank.
    Abort,
}

impl EventKind {
    /// Short lowercase name, e.g. `"send"`.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::SendRecv => "sendrecv",
            EventKind::Reduce => "reduce",
            EventKind::FaultInjected => "fault",
            EventKind::Retry => "retry",
            EventKind::Nak => "nak",
            EventKind::Timeout => "timeout",
            EventKind::Abort => "abort",
        }
    }

    /// Whether the event moves bytes across the network (fault and
    /// reduction markers do not; the residual analyzer folds only
    /// communication events against the cost model).
    pub fn is_comm(&self) -> bool {
        matches!(
            self,
            EventKind::Send | EventKind::Recv | EventKind::SendRecv
        )
    }
}

/// One timed event on one rank's timeline (see the module docs for the
/// backend-specific conventions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: EventKind,
    /// World rank whose timeline the event belongs to.
    pub rank: usize,
    /// Sending world rank (`== rank` for sends; the peer for receives).
    pub src: usize,
    /// Receiving world rank (`== rank` for receives; the peer for sends).
    pub dst: usize,
    /// Message tag (encodes the recursion level and stage, see
    /// [`stage_of`]). 0 for reduction steps.
    pub tag: u64,
    /// Payload size in bytes (bytes folded, for reduction steps).
    pub bytes: usize,
    /// Start time in seconds since the run's epoch.
    pub start: f64,
    /// End time in seconds since the run's epoch.
    pub end: f64,
    /// Physical route length in links (simulator only; 0 on the
    /// threaded runtime, which has no physical topology).
    pub hops: usize,
    /// The compiled plan (`intercom::ir` plan id) whose interpreter
    /// issued this event, or 0 for ad-hoc (uncompiled) calls.
    pub plan: u64,
    /// Zero-based step index within the issuing plan's per-rank step
    /// list. Meaningful only when `plan != 0`.
    pub step: u64,
}

impl TraceEvent {
    /// A completed simulator transfer: a `Send` on `src`'s timeline.
    pub fn transfer(
        src: usize,
        dst: usize,
        tag: u64,
        bytes: usize,
        start: f64,
        end: f64,
        hops: usize,
    ) -> Self {
        TraceEvent {
            kind: EventKind::Send,
            rank: src,
            src,
            dst,
            tag,
            bytes,
            start,
            end,
            hops,
            plan: 0,
            step: 0,
        }
    }

    /// Attributes the event to a compiled plan's step (builder style, for
    /// backends that learn the attribution after construction).
    pub fn with_plan(mut self, plan: u64, step: u64) -> Self {
        self.plan = plan;
        self.step = step;
        self
    }

    /// Event duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// The pipeline stage this event belongs to, derived from its tag.
    pub fn stage(&self) -> Stage {
        stage_of(self.tag)
    }
}

/// Tag distance between successive recursion levels of one collective
/// call. Mirrors `intercom::algorithms::LEVEL_TAG_STRIDE` (the two
/// constants are cross-checked by an integration test; `intercom-obs`
/// sits below `intercom` in the dependency graph and cannot import it).
pub const LEVEL_TAG_STRIDE: u64 = 8;

/// Tag distance between successive collective calls on one
/// communicator. Mirrors the communicator's call-tag stride.
pub const CALL_TAG_STRIDE: u64 = 1 << 20;

/// A pipeline stage of one collective call: the recursion `level`
/// (logical dimension index, fastest first) and the `sub`-stage slot
/// within it (0 = scatter / reduce-scatter / innermost primary,
/// 1 = collect / gather / innermost secondary).
///
/// Matches `intercom-cost`'s `StagePrediction { level, sub, .. }`
/// coordinates, so measured stages fold directly onto predicted ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stage {
    /// Recursion level (logical dimension index).
    pub level: u64,
    /// Stage slot within the level.
    pub sub: u64,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}.{}", self.level, self.sub)
    }
}

/// Derives the pipeline stage from a message tag. Works for bare tags
/// (base 0, as the verifier extracts), communicator call tags (any
/// multiple of [`CALL_TAG_STRIDE`] as base) and plan tags (bit 62 set):
/// the in-call offset is `tag % CALL_TAG_STRIDE` because every base is a
/// multiple of the stride.
pub fn stage_of(tag: u64) -> Stage {
    let offset = tag % CALL_TAG_STRIDE;
    Stage {
        level: offset / LEVEL_TAG_STRIDE,
        sub: offset % LEVEL_TAG_STRIDE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_of_strips_call_and_plan_bases() {
        assert_eq!(stage_of(0), Stage { level: 0, sub: 0 });
        assert_eq!(stage_of(17), Stage { level: 2, sub: 1 });
        let call_base = 5 * CALL_TAG_STRIDE;
        assert_eq!(stage_of(call_base + 9), Stage { level: 1, sub: 1 });
        let plan_base = (1u64 << 62) | (3 * CALL_TAG_STRIDE);
        assert_eq!(stage_of(plan_base + 8), Stage { level: 1, sub: 0 });
    }

    #[test]
    fn transfer_constructor_is_a_send_on_src() {
        let e = TraceEvent::transfer(2, 5, 9, 128, 1.0, 2.5, 3);
        assert_eq!(e.kind, EventKind::Send);
        assert_eq!(e.rank, 2);
        assert_eq!((e.src, e.dst, e.hops), (2, 5, 3));
        assert!((e.duration() - 1.5).abs() < 1e-12);
        assert_eq!(e.stage(), Stage { level: 1, sub: 1 });
    }
}
