//! The residual analyzer: folds a recorded run against the cost model's
//! per-stage predictions.
//!
//! For every pipeline stage of the executed hybrid (as enumerated by
//! `intercom_cost::stage_predictions`) the analyzer computes the
//! measured wall interval from the recorded timestamps, the predicted
//! time from the `α + nβ [+ nγ] [+ δ]` closed form, the residual and
//! their ratio; fits effective `α̂`/`β̂` across stages by least squares
//! (the Barchet-Estefanel & Mounié feedback loop that makes measured
//! strategy selection possible); detects *cross-stage pipeline skew* —
//! two stages of one collective overlapping in time because blocking
//! ranks drift apart, the effect PR 2's verifier could only bound
//! statically — and reports the slowest rank's critical path.

use crate::event::{Stage, TraceEvent};
use crate::record::RunRecord;
use intercom_cost::{
    stage_predictions, CollectiveOp, CostContext, MachineParams, StageKind, Strategy,
};
use std::fmt;

/// Measured-vs-predicted numbers for one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageResidual {
    /// Stage coordinates (recursion level, sub-stage slot).
    pub stage: Stage,
    /// The §4 building block the model predicts for this stage.
    pub kind: StageKind,
    /// Group size the stage runs over.
    pub dim: usize,
    /// Recorded events attributed to the stage (all ranks).
    pub events: usize,
    /// Bytes moved in the stage (each message counted once).
    pub bytes: usize,
    /// Earliest recorded start across ranks (seconds since epoch).
    pub start: f64,
    /// Latest recorded end across ranks.
    pub end: f64,
    /// Measured wall time: `end - start` (0 when nothing was recorded).
    pub measured_secs: f64,
    /// Model prediction for the stage.
    pub predicted_secs: f64,
    /// Spread of per-rank stage entry times.
    pub start_skew_secs: f64,
    /// Spread of per-rank stage exit times.
    pub end_skew_secs: f64,
}

impl StageResidual {
    /// `measured - predicted` in seconds.
    pub fn residual_secs(&self) -> f64 {
        self.measured_secs - self.predicted_secs
    }

    /// `measured / predicted` (`NaN` when the prediction is 0).
    pub fn ratio(&self) -> f64 {
        self.measured_secs / self.predicted_secs
    }
}

/// Two stages of one collective overlapping in time: cross-stage
/// pipeline skew (e.g. a scatter tail running under a collect head).
#[derive(Debug, Clone, Copy)]
pub struct StageOverlap {
    /// The earlier stage (pipeline order).
    pub a: Stage,
    /// The later stage.
    pub b: Stage,
    /// Length of the overlapping interval in seconds.
    pub secs: f64,
}

/// One rank's aggregate timing.
#[derive(Debug, Clone, Copy)]
pub struct RankPath {
    /// World rank.
    pub rank: usize,
    /// First event start.
    pub start: f64,
    /// Last event end — the rank's contribution to the critical path.
    pub end: f64,
    /// Sum of event durations (time inside communication calls).
    pub busy_secs: f64,
}

/// The folded measured-vs-predicted report for one recorded collective.
#[derive(Debug, Clone)]
pub struct ResidualReport {
    /// The analyzed collective.
    pub op: CollectiveOp,
    /// The hybrid strategy the run executed.
    pub strategy: Strategy,
    /// World size.
    pub p: usize,
    /// Total vector length in bytes (the model's `n`).
    pub n: usize,
    /// The machine whose parameters priced the predictions.
    pub machine: MachineParams,
    /// Per-stage residuals, in pipeline order.
    pub stages: Vec<StageResidual>,
    /// Cross-stage overlaps (empty for a perfectly phased run).
    pub overlaps: Vec<StageOverlap>,
    /// Least-squares effective `α̂` over the stages (needs ≥ 2
    /// independent stages).
    pub fitted_alpha: Option<f64>,
    /// Least-squares effective `β̂` over the stages.
    pub fitted_beta: Option<f64>,
    /// Per-rank critical-path summary, indexed by rank.
    pub ranks: Vec<RankPath>,
    /// The rank whose last event ends latest.
    pub slowest_rank: usize,
    /// Whole-run measured wall time (first start to last end).
    pub measured_total_secs: f64,
    /// Whole-run predicted time (sum of stage predictions).
    pub predicted_total_secs: f64,
    /// Events whose tag matched no predicted stage.
    pub unattributed_events: usize,
}

impl ResidualReport {
    /// True when any two stages overlap in time — the measured
    /// counterpart of the verifier's "not conflict-free" pipeline-skew
    /// verdict.
    pub fn has_cross_stage_skew(&self) -> bool {
        !self.overlaps.is_empty()
    }
}

/// Communication events only (stage folding ignores local reductions
/// and fault-layer markers: reduction time shows up inside the
/// enclosing stage interval, and fault events carry no wire traffic).
fn is_comm(ev: &TraceEvent) -> bool {
    ev.kind.is_comm()
}

/// Folds a recorded run against the cost model.
///
/// `n` is the collective's *total* vector length in bytes — the unit
/// `hybrid_cost` prices (for collect / distributed combine that is
/// `p · block`). Timestamps may be wall-clock (threaded runtime) or
/// virtual (simulator); only differences are used.
pub fn analyze(
    run: &RunRecord,
    op: CollectiveOp,
    strategy: &Strategy,
    ctx: CostContext,
    machine: &MachineParams,
    n: usize,
) -> ResidualReport {
    let p = run.p();
    let predictions = stage_predictions(op, strategy, ctx);

    // --- Per-stage measurement ----------------------------------------
    let mut stages = Vec::with_capacity(predictions.len());
    let mut matched_stages: Vec<Stage> = Vec::new();
    for pred in &predictions {
        let stage = Stage {
            level: pred.level as u64,
            sub: pred.sub,
        };
        matched_stages.push(stage);
        let mut events = 0usize;
        let mut bytes = 0usize;
        let mut start = f64::INFINITY;
        let mut end = f64::NEG_INFINITY;
        let mut rank_starts = Vec::new();
        let mut rank_ends = Vec::new();
        for rank_events in &run.events {
            let mut r_start = f64::INFINITY;
            let mut r_end = f64::NEG_INFINITY;
            for ev in rank_events.iter().filter(|e| is_comm(e)) {
                if ev.stage() != stage {
                    continue;
                }
                events += 1;
                if ev.src == ev.rank {
                    bytes += ev.bytes;
                }
                r_start = r_start.min(ev.start);
                r_end = r_end.max(ev.end);
            }
            if r_start.is_finite() {
                rank_starts.push(r_start);
                rank_ends.push(r_end);
                start = start.min(r_start);
                end = end.max(r_end);
            }
        }
        let spread = |v: &[f64]| -> f64 {
            match (
                v.iter().copied().reduce(f64::min),
                v.iter().copied().reduce(f64::max),
            ) {
                (Some(lo), Some(hi)) => hi - lo,
                _ => 0.0,
            }
        };
        let measured = if start.is_finite() { end - start } else { 0.0 };
        stages.push(StageResidual {
            stage,
            kind: pred.kind,
            dim: pred.dim,
            events,
            bytes,
            start: if start.is_finite() { start } else { 0.0 },
            end: if end.is_finite() { end } else { 0.0 },
            measured_secs: measured,
            predicted_secs: pred.cost.eval(n, machine),
            start_skew_secs: spread(&rank_starts),
            end_skew_secs: spread(&rank_ends),
        });
    }

    let unattributed_events = run
        .all_events()
        .filter(|e| is_comm(e) && !matched_stages.contains(&e.stage()))
        .count();

    // --- Cross-stage overlap ------------------------------------------
    // Ordered pairs in pipeline order; an overlap needs both stages to
    // have recorded events. A tolerance of zero would flag shared
    // endpoints, so require a strictly positive overlap.
    let mut overlaps = Vec::new();
    for i in 0..stages.len() {
        for j in (i + 1)..stages.len() {
            let (a, b) = (&stages[i], &stages[j]);
            if a.events == 0 || b.events == 0 {
                continue;
            }
            let secs = a.end.min(b.end) - a.start.max(b.start);
            if secs > 1e-12 {
                overlaps.push(StageOverlap {
                    a: a.stage,
                    b: b.stage,
                    secs,
                });
            }
        }
    }

    // --- Effective α̂/β̂ least-squares fit ------------------------------
    // measured_i − γ/δ terms ≈ α̂·alpha_c_i + β̂·(beta_c_i·n): solve the
    // 2×2 normal equations over stages that recorded events.
    let (mut s11, mut s12, mut s22, mut sy1, mut sy2) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let mut fit_points = 0usize;
    for (st, pred) in stages.iter().zip(&predictions) {
        if st.events == 0 {
            continue;
        }
        let x1 = pred.cost.alpha_c;
        let x2 = pred.cost.beta_c * n as f64;
        let y = st.measured_secs
            - pred.cost.gamma_c * n as f64 * machine.gamma
            - pred.cost.delta_c * machine.delta;
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        sy1 += x1 * y;
        sy2 += x2 * y;
        fit_points += 1;
    }
    let det = s11 * s22 - s12 * s12;
    let (fitted_alpha, fitted_beta) = if fit_points >= 2 && det.abs() > 1e-30 {
        (
            Some((sy1 * s22 - sy2 * s12) / det),
            Some((s11 * sy2 - s12 * sy1) / det),
        )
    } else {
        (None, None)
    };

    // --- Per-rank critical path ---------------------------------------
    let mut ranks = Vec::with_capacity(p);
    for (rank, rank_events) in run.events.iter().enumerate() {
        let mut path = RankPath {
            rank,
            start: f64::INFINITY,
            end: f64::NEG_INFINITY,
            busy_secs: 0.0,
        };
        for ev in rank_events.iter().filter(|e| is_comm(e)) {
            path.start = path.start.min(ev.start);
            path.end = path.end.max(ev.end);
            path.busy_secs += ev.duration().max(0.0);
        }
        if !path.start.is_finite() {
            path.start = 0.0;
            path.end = 0.0;
        }
        ranks.push(path);
    }
    let slowest_rank = ranks
        .iter()
        .max_by(|a, b| a.end.total_cmp(&b.end))
        .map(|r| r.rank)
        .unwrap_or(0);
    let run_start = ranks.iter().map(|r| r.start).fold(f64::INFINITY, f64::min);
    let run_end = ranks.iter().map(|r| r.end).fold(0.0f64, f64::max);
    let measured_total_secs = if run_start.is_finite() && run_end > run_start {
        run_end - run_start
    } else {
        0.0
    };
    let predicted_total_secs = stages.iter().map(|s| s.predicted_secs).sum();

    ResidualReport {
        op,
        strategy: strategy.clone(),
        p,
        n,
        machine: *machine,
        stages,
        overlaps,
        fitted_alpha,
        fitted_beta,
        ranks,
        slowest_rank,
        measured_total_secs,
        predicted_total_secs,
        unattributed_events,
    }
}

fn secs(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1.0 {
        format!("{x:.3} s")
    } else if x.abs() >= 1e-3 {
        format!("{:.3} ms", x * 1e3)
    } else {
        format!("{:.3} µs", x * 1e6)
    }
}

impl fmt::Display for ResidualReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "residual report: {} with strategy {} on p={}, n={} B",
            self.op.name(),
            self.strategy,
            self.p,
            self.n
        )?;
        writeln!(
            f,
            "  total: measured {} vs predicted {} (ratio {:.3})",
            secs(self.measured_total_secs),
            secs(self.predicted_total_secs),
            self.measured_total_secs / self.predicted_total_secs
        )?;
        writeln!(
            f,
            "  {:<8} {:<20} {:>5} {:>7} {:>10} {:>12} {:>12} {:>9} {:>12}",
            "stage", "kind", "dim", "events", "bytes", "measured", "predicted", "ratio", "end-skew"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<8} {:<20} {:>5} {:>7} {:>10} {:>12} {:>12} {:>9.3} {:>12}",
                s.stage.to_string(),
                s.kind.name(),
                s.dim,
                s.events,
                s.bytes,
                secs(s.measured_secs),
                secs(s.predicted_secs),
                s.ratio(),
                secs(s.end_skew_secs),
            )?;
        }
        match (self.fitted_alpha, self.fitted_beta) {
            (Some(a), Some(b)) => {
                writeln!(
                    f,
                    "  fitted α̂ = {} (model α = {}, residual {:+.1}%)",
                    secs(a),
                    secs(self.machine.alpha),
                    (a / self.machine.alpha - 1.0) * 100.0
                )?;
                writeln!(
                    f,
                    "  fitted β̂ = {:.3e} s/B (model β = {:.3e}, residual {:+.1}%)",
                    b,
                    self.machine.beta,
                    (b / self.machine.beta - 1.0) * 100.0
                )?;
            }
            _ => writeln!(f, "  fitted α̂/β̂: not identifiable (fewer than 2 stages)")?,
        }
        if self.overlaps.is_empty() {
            writeln!(f, "  cross-stage skew: none (stages are fully phased)")?;
        } else {
            for o in &self.overlaps {
                writeln!(
                    f,
                    "  CROSS-STAGE SKEW: {} overlaps {} for {} — blocking ranks drifted across stage boundaries",
                    o.a,
                    o.b,
                    secs(o.secs)
                )?;
            }
        }
        let slow = &self.ranks[self.slowest_rank];
        writeln!(
            f,
            "  critical path: rank {} finishes last at t={} (busy {} of span {})",
            slow.rank,
            secs(slow.end),
            secs(slow.busy_secs),
            secs(slow.end - slow.start),
        )?;
        if self.unattributed_events > 0 {
            writeln!(
                f,
                "  note: {} events matched no predicted stage",
                self.unattributed_events
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom_cost::StrategyKind;

    /// Synthesizes a run whose stages execute exactly as predicted.
    fn phased_run() -> (RunRecord, Strategy) {
        // (4, SC) broadcast: L0.0 mst-scatter then L0.1 ring-collect.
        let st = Strategy::pure_long(4);
        let transfers = vec![
            // scatter stage: tags at offset 0
            TraceEvent::transfer(0, 1, 0, 100, 0.0, 1.0, 1),
            TraceEvent::transfer(0, 2, 0, 100, 1.0, 2.0, 1),
            // collect stage: tags at offset 1
            TraceEvent::transfer(1, 2, 1, 100, 2.5, 3.0, 1),
            TraceEvent::transfer(2, 3, 1, 100, 3.0, 3.5, 1),
        ];
        (RunRecord::from_transfers(&transfers, 4), st)
    }

    #[test]
    fn stages_fold_onto_predictions() {
        let (run, st) = phased_run();
        let rep = analyze(
            &run,
            CollectiveOp::Broadcast,
            &st,
            CostContext::LINEAR,
            &MachineParams::UNIT,
            400,
        );
        assert_eq!(rep.stages.len(), 2);
        assert_eq!(rep.stages[0].events, 2);
        assert_eq!(rep.stages[0].bytes, 200);
        assert!((rep.stages[0].measured_secs - 2.0).abs() < 1e-12);
        assert_eq!(rep.stages[1].events, 2);
        assert!((rep.stages[1].measured_secs - 1.0).abs() < 1e-12);
        assert!(rep.overlaps.is_empty(), "phased run has no skew");
        assert!(!rep.has_cross_stage_skew());
        assert_eq!(rep.slowest_rank, 2);
        assert_eq!(rep.unattributed_events, 0);
        assert!((rep.measured_total_secs - 3.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_stages_are_flagged() {
        let st = Strategy::pure_long(4);
        let transfers = vec![
            TraceEvent::transfer(0, 1, 0, 100, 0.0, 2.0, 1),
            // collect starts while the scatter is still in flight
            TraceEvent::transfer(1, 2, 1, 100, 1.0, 3.0, 1),
        ];
        let run = RunRecord::from_transfers(&transfers, 4);
        let rep = analyze(
            &run,
            CollectiveOp::Broadcast,
            &st,
            CostContext::LINEAR,
            &MachineParams::UNIT,
            400,
        );
        assert!(rep.has_cross_stage_skew());
        assert_eq!(rep.overlaps.len(), 1);
        assert!((rep.overlaps[0].secs - 1.0).abs() < 1e-12);
        let text = rep.to_string();
        assert!(text.contains("CROSS-STAGE SKEW"), "{text}");
    }

    #[test]
    fn alpha_beta_fit_recovers_exact_model() {
        // Build measured times exactly from the model on a 3-level
        // hybrid, then check the fit returns the machine parameters.
        let st = Strategy::new(vec![2, 2, 3], StrategyKind::Mst);
        let machine = MachineParams::UNIT;
        let n = 1200usize;
        let preds = stage_predictions(CollectiveOp::Broadcast, &st, CostContext::LINEAR);
        let mut transfers = Vec::new();
        let mut t = 0.0;
        for p in &preds {
            let dur = p.cost.eval(n, &machine);
            let tag = p.level as u64 * crate::event::LEVEL_TAG_STRIDE + p.sub;
            transfers.push(TraceEvent::transfer(0, 1, tag, n, t, t + dur, 1));
            t += dur;
        }
        let run = RunRecord::from_transfers(&transfers, 12);
        let rep = analyze(
            &run,
            CollectiveOp::Broadcast,
            &st,
            CostContext::LINEAR,
            &machine,
            n,
        );
        let a = rep.fitted_alpha.expect("identifiable");
        let b = rep.fitted_beta.expect("identifiable");
        assert!((a - machine.alpha).abs() < 1e-9, "α̂ = {a}");
        assert!((b - machine.beta).abs() < 1e-12, "β̂ = {b}");
    }

    #[test]
    fn unattributed_events_are_counted() {
        let st = Strategy::pure_mst(4);
        let transfers = vec![TraceEvent::transfer(0, 1, 7, 10, 0.0, 1.0, 1)];
        let run = RunRecord::from_transfers(&transfers, 4);
        let rep = analyze(
            &run,
            CollectiveOp::Broadcast,
            &st,
            CostContext::LINEAR,
            &MachineParams::UNIT,
            10,
        );
        assert_eq!(rep.unattributed_events, 1);
        assert_eq!(rep.stages[0].events, 0);
    }
}
