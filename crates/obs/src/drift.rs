//! The drift monitor: folds streaming [`ResidualReport`]s into an
//! online α̂/β̂ estimate and raises a [`DriftVerdict`] when the
//! estimate departs from the configured [`MachineParams`].
//!
//! This is the sensing half of the ROADMAP's closed autotuning loop
//! ("Fast Tuning of Intra-Cluster Collective Communications" rebuilt on
//! our verified schedules): the residual analyzer already fits α̂/β̂
//! per recorded run; the monitor EWMA-smooths those one-shot fits,
//! gates on a minimum sample count so a single noisy run cannot
//! retune the machine, and compares the smoothed estimate against the
//! active parameters. Crossing the relative-error threshold on either
//! parameter yields a verdict carrying a refit `MachineParams`
//! (γ/δ/link-excess are kept — the residual fit only identifies the
//! wire terms); acting on the verdict — bumping the params version and
//! invalidating the plan cache — is the `intercom::autotune` layer's
//! job, keeping this module a pure, deterministic fold over f64
//! streams (same stream ⇒ same refit, on any backend).

use crate::residual::ResidualReport;
use intercom_cost::MachineParams;

/// Tuning knobs for a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest fit.
    /// 1.0 = trust only the latest run.
    pub ewma: f64,
    /// Relative error `|est − configured| / configured` on α or β that
    /// triggers a verdict.
    pub rel_threshold: f64,
    /// Fits to absorb before verdicts may fire (confidence gating).
    pub min_samples: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            ewma: 0.3,
            rel_threshold: 0.25,
            min_samples: 3,
        }
    }
}

/// Which parameter(s) crossed the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftParam {
    /// Startup cost α drifted.
    Alpha,
    /// Per-byte cost β drifted.
    Beta,
    /// Both drifted.
    Both,
}

impl DriftParam {
    /// Short lowercase name (metric label value).
    pub fn name(&self) -> &'static str {
        match self {
            DriftParam::Alpha => "alpha",
            DriftParam::Beta => "beta",
            DriftParam::Both => "both",
        }
    }
}

/// The monitor's finding: reality has drifted from the configured
/// machine, and here is the refit.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftVerdict {
    /// Which parameter(s) crossed the threshold.
    pub param: DriftParam,
    /// The parameters the system was pricing with.
    pub configured: MachineParams,
    /// The refit: smoothed α̂/β̂ with the configured γ/δ/link-excess
    /// carried over.
    pub refit: MachineParams,
    /// `|α̂ − α| / α` at verdict time.
    pub alpha_rel_err: f64,
    /// `|β̂ − β| / β` at verdict time.
    pub beta_rel_err: f64,
    /// Fits absorbed when the verdict fired.
    pub samples: u32,
}

/// Online α̂/β̂ estimator with confidence gating. Feed it every
/// [`ResidualReport`] via [`observe`](DriftMonitor::observe); it
/// returns a [`DriftVerdict`] at most once per threshold crossing
/// (re-arming only after [`rebase`](DriftMonitor::rebase)).
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    configured: MachineParams,
    alpha_est: Option<f64>,
    beta_est: Option<f64>,
    samples: u32,
    tripped: bool,
}

impl DriftMonitor {
    /// A monitor comparing against `configured` with default knobs.
    pub fn new(configured: MachineParams) -> Self {
        Self::with_config(configured, DriftConfig::default())
    }

    /// A monitor with explicit knobs.
    pub fn with_config(configured: MachineParams, cfg: DriftConfig) -> Self {
        DriftMonitor {
            cfg,
            configured,
            alpha_est: None,
            beta_est: None,
            samples: 0,
            tripped: false,
        }
    }

    /// The parameters the monitor is comparing against.
    pub fn configured(&self) -> &MachineParams {
        &self.configured
    }

    /// Smoothed `(α̂, β̂)`, once at least one usable fit has arrived.
    pub fn estimate(&self) -> Option<(f64, f64)> {
        Some((self.alpha_est?, self.beta_est?))
    }

    /// Usable fits absorbed so far.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    fn fold(est: &mut Option<f64>, sample: f64, ewma: f64) {
        *est = Some(match *est {
            None => sample,
            Some(prev) => prev + ewma * (sample - prev),
        });
    }

    /// Absorbs one residual report. Reports without a finite, positive
    /// α̂ *and* β̂ fit are skipped (under-determined runs: fewer than
    /// two distinct stages). Returns a verdict when the smoothed
    /// estimate first crosses the threshold after the confidence gate.
    pub fn observe(&mut self, report: &ResidualReport) -> Option<DriftVerdict> {
        let (a, b) = (report.fitted_alpha?, report.fitted_beta?);
        if !(a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0) {
            return None;
        }
        Self::fold(&mut self.alpha_est, a, self.cfg.ewma);
        Self::fold(&mut self.beta_est, b, self.cfg.ewma);
        self.samples += 1;
        if self.tripped || self.samples < self.cfg.min_samples {
            return None;
        }
        let (a_est, b_est) = (self.alpha_est?, self.beta_est?);
        let rel = |est: f64, conf: f64| {
            if conf > 0.0 {
                (est - conf).abs() / conf
            } else {
                f64::INFINITY
            }
        };
        let a_err = rel(a_est, self.configured.alpha);
        let b_err = rel(b_est, self.configured.beta);
        let param = match (
            a_err > self.cfg.rel_threshold,
            b_err > self.cfg.rel_threshold,
        ) {
            (true, true) => DriftParam::Both,
            (true, false) => DriftParam::Alpha,
            (false, true) => DriftParam::Beta,
            (false, false) => return None,
        };
        self.tripped = true;
        Some(DriftVerdict {
            param,
            configured: self.configured,
            refit: self.configured.refit(a_est, b_est),
            alpha_rel_err: a_err,
            beta_rel_err: b_err,
            samples: self.samples,
        })
    }

    /// Re-arms the monitor against freshly adopted parameters (called
    /// after a verdict's refit is installed). The smoothed estimate is
    /// kept — it is the best current knowledge — but the trip latch
    /// resets, so a *further* drift away from the new baseline can
    /// fire again.
    pub fn rebase(&mut self, configured: MachineParams) {
        self.configured = configured;
        self.tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent, LEVEL_TAG_STRIDE};
    use crate::record::RunRecord;
    use crate::residual::analyze;
    use intercom_cost::{CollectiveOp, CostContext, Strategy, StrategyKind};

    /// A report whose α̂/β̂ fit exactly `(alpha, beta)` by synthesizing
    /// event durations from the model (the pattern of
    /// `residual::tests::alpha_beta_fit_recovers_exact_model`).
    fn synthetic_report(alpha: f64, beta: f64) -> ResidualReport {
        let machine = MachineParams::PARAGON_MODEL;
        let truth = MachineParams {
            alpha,
            beta,
            ..machine
        };
        let strategy = Strategy::new(vec![2, 2, 3], StrategyKind::Mst);
        let p = strategy.nodes();
        let n = 4096usize;
        let preds = intercom_cost::stage_predictions(
            CollectiveOp::Broadcast,
            &strategy,
            CostContext::linear_with(&machine),
        );
        let mut events: Vec<Vec<TraceEvent>> = vec![Vec::new(); p];
        let mut t = 0.0f64;
        for pred in &preds {
            let dur = pred.cost.eval(n, &truth);
            events[0].push(TraceEvent {
                kind: EventKind::Send,
                rank: 0,
                src: 0,
                dst: 1,
                tag: pred.level as u64 * LEVEL_TAG_STRIDE + pred.sub,
                bytes: n,
                start: t,
                end: t + dur,
                hops: 0,
                plan: 0,
                step: 0,
            });
            t += dur;
        }
        let run = RunRecord::from_ranks(
            events
                .into_iter()
                .enumerate()
                .map(|(rank, ev)| crate::record::RankRecord {
                    rank,
                    events: ev,
                    counters: Default::default(),
                    dropped: 0,
                })
                .collect(),
        );
        analyze(
            &run,
            CollectiveOp::Broadcast,
            &strategy,
            CostContext::linear_with(&machine),
            &machine,
            n,
        )
    }

    #[test]
    fn stable_machine_never_trips() {
        let machine = MachineParams::PARAGON_MODEL;
        let mut mon = DriftMonitor::new(machine);
        for _ in 0..10 {
            let r = synthetic_report(machine.alpha, machine.beta);
            assert!(mon.observe(&r).is_none());
        }
        let (a, b) = mon.estimate().unwrap();
        assert!((a - machine.alpha).abs() / machine.alpha < 1e-6);
        assert!((b - machine.beta).abs() / machine.beta < 1e-6);
    }

    #[test]
    fn doubled_beta_trips_after_confidence_gate() {
        let machine = MachineParams::PARAGON_MODEL;
        let mut mon = DriftMonitor::new(machine);
        let mut verdict = None;
        let mut fired_at = 0;
        for i in 1..=10 {
            let r = synthetic_report(machine.alpha, machine.beta * 2.0);
            if let Some(v) = mon.observe(&r) {
                verdict = Some(v);
                fired_at = i;
                break;
            }
        }
        let v = verdict.expect("2x beta must trip the monitor");
        assert!(fired_at >= 3, "confidence gate holds until min_samples");
        assert!(matches!(v.param, DriftParam::Beta | DriftParam::Both));
        let true_beta = machine.beta * 2.0;
        assert!(
            (v.refit.beta - true_beta).abs() / true_beta < 0.10,
            "refit β {} within 10% of true {}",
            v.refit.beta,
            true_beta
        );
        assert_eq!(v.refit.gamma, machine.gamma, "γ carried over");
        assert_eq!(v.refit.delta, machine.delta, "δ carried over");
        // Latched until rebase.
        let r = synthetic_report(machine.alpha, machine.beta * 2.0);
        assert!(mon.observe(&r).is_none(), "no duplicate verdicts");
        mon.rebase(v.refit);
        let r = synthetic_report(machine.alpha, machine.beta * 2.0);
        assert!(
            mon.observe(&r).is_none(),
            "estimate matches the rebased params"
        );
    }

    #[test]
    fn monitor_is_deterministic_over_a_fixed_stream() {
        let machine = MachineParams::PARAGON_MODEL;
        let stream: Vec<ResidualReport> = (0..8)
            .map(|i| synthetic_report(machine.alpha * (1.0 + 0.1 * i as f64), machine.beta * 1.8))
            .collect();
        let run = |stream: &[ResidualReport]| {
            let mut mon = DriftMonitor::new(machine);
            let mut verdicts = Vec::new();
            for r in stream {
                if let Some(v) = mon.observe(r) {
                    verdicts.push(v);
                }
            }
            (mon.estimate(), verdicts)
        };
        let (est1, v1) = run(&stream);
        let (est2, v2) = run(&stream);
        assert_eq!(est1, est2, "same stream, same estimate (bitwise)");
        assert_eq!(v1, v2, "same stream, same verdicts");
        assert!(!v1.is_empty());
    }

    #[test]
    fn underdetermined_reports_are_skipped() {
        let machine = MachineParams::PARAGON_MODEL;
        let mut mon = DriftMonitor::new(machine);
        let mut r = synthetic_report(machine.alpha, machine.beta);
        r.fitted_alpha = None;
        assert!(mon.observe(&r).is_none());
        assert_eq!(mon.samples(), 0, "skipped fits do not count");
        let mut r2 = synthetic_report(machine.alpha, machine.beta);
        r2.fitted_beta = Some(f64::NAN);
        assert!(mon.observe(&r2).is_none());
        assert_eq!(mon.samples(), 0);
    }
}
