//! The flight recorder: a bounded ring of the last K plan executions.
//!
//! Unlike the [`crate::record`] tracer — which is attached explicitly,
//! per run, and drained by the caller — the flight recorder is a
//! process-wide black box. Every compiled-plan execution [`begin`]s an
//! entry, [`mark_step`]s its progress (first/last step indices, not one
//! mark per step, so a million-step plan costs the same as a ten-step
//! one), and either [`finish`]es or [`fail`]s it. The ring keeps the
//! last [`DEFAULT_FLIGHT_CAPACITY`] entries in a fixed-capacity
//! [`VecDeque`]; on failure the whole ring is rendered to text — the
//! timeline of what the process was doing *leading up to* the error —
//! stored for [`last_dump`], and, when `INTERCOM_FLIGHT_DUMP` names a
//! path, appended to that file. The watchdog's abort path calls
//! [`dump_now`] for the same effect without an error entry.
//!
//! Concurrent ranks of one collective share a plan id; the recorder
//! refcounts [`begin`]s per plan id so a p-rank execution makes one
//! entry, not p.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many completed plan executions the ring retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the flight recorder records anything (one relaxed load on
/// the disabled path, same discipline as `metrics::enabled`).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// How one recorded execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightOutcome {
    /// Still executing (only the newest entries can be in flight).
    InFlight,
    /// Completed cleanly.
    Ok,
    /// Failed; the stringified error rides along.
    Err(String),
}

/// One plan execution in the ring.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// The compiled plan id (`CollectiveProgram::plan_id`).
    pub plan: u64,
    /// Operation name (`PlanOp::name()`).
    pub op: String,
    /// World size.
    pub p: usize,
    /// Element count.
    pub n: usize,
    /// Strategy string, when the op takes one.
    pub strategy: Option<String>,
    /// Seconds since the recorder's epoch at `begin`.
    pub started: f64,
    /// Seconds since the epoch at `finish`/`fail` (0 while in flight).
    pub ended: f64,
    /// Highest step index any rank reported.
    pub last_step: u64,
    /// How many ranks are still inside this execution.
    pub active_ranks: usize,
    /// Fault-layer notes attached while the entry was in flight
    /// (bounded; see [`note_fault`]).
    pub faults: Vec<String>,
    /// How the execution ended.
    pub outcome: FlightOutcome,
}

/// Per-entry bound on attached fault notes: enough for a realistic
/// retry storm, small enough that a pathological one cannot grow the
/// black box.
const MAX_FAULT_NOTES: usize = 64;

#[derive(Debug)]
struct Inner {
    entries: VecDeque<FlightEntry>,
    capacity: usize,
    last_dump: Option<String>,
    dumps: u64,
}

/// The process-wide flight recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    fn new(capacity: usize) -> Self {
        FlightRecorder {
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                entries: VecDeque::with_capacity(capacity),
                capacity,
                last_dump: None,
                dumps: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Opens (or joins) the entry for `plan`. Ranks of one collective
    /// call this concurrently; the first opens the entry, the rest
    /// bump its refcount.
    pub fn begin(&self, plan: u64, op: &str, p: usize, n: usize, strategy: Option<&str>) {
        let now = self.now();
        let mut inner = self.lock();
        if let Some(e) = inner
            .entries
            .iter_mut()
            .rev()
            .find(|e| e.plan == plan && e.outcome == FlightOutcome::InFlight)
        {
            e.active_ranks += 1;
            return;
        }
        if inner.entries.len() == inner.capacity {
            inner.entries.pop_front();
        }
        inner.entries.push_back(FlightEntry {
            plan,
            op: op.to_string(),
            p,
            n,
            strategy: strategy.map(str::to_string),
            started: now,
            ended: 0.0,
            last_step: 0,
            active_ranks: 1,
            faults: Vec::new(),
            outcome: FlightOutcome::InFlight,
        });
    }

    /// Advances the in-flight entry's progress watermark.
    pub fn mark_step(&self, plan: u64, step: u64) {
        let mut inner = self.lock();
        if let Some(e) = inner
            .entries
            .iter_mut()
            .rev()
            .find(|e| e.plan == plan && e.outcome == FlightOutcome::InFlight)
        {
            e.last_step = e.last_step.max(step);
        }
    }

    /// Attaches a fault note (retry, NAK, timeout…) to the in-flight
    /// entry for `plan`, bounded per entry.
    pub fn note_fault(&self, plan: u64, note: &str) {
        let mut inner = self.lock();
        if let Some(e) = inner
            .entries
            .iter_mut()
            .rev()
            .find(|e| e.plan == plan && e.outcome == FlightOutcome::InFlight)
        {
            if e.faults.len() < MAX_FAULT_NOTES {
                e.faults.push(note.to_string());
            }
        }
    }

    /// One rank finished cleanly; the entry closes when the last rank
    /// leaves.
    pub fn finish(&self, plan: u64) {
        let now = self.now();
        let mut inner = self.lock();
        if let Some(e) = inner
            .entries
            .iter_mut()
            .rev()
            .find(|e| e.plan == plan && e.outcome == FlightOutcome::InFlight)
        {
            e.active_ranks = e.active_ranks.saturating_sub(1);
            e.ended = now;
            if e.active_ranks == 0 {
                e.outcome = FlightOutcome::Ok;
            }
        }
    }

    /// One rank failed: closes the entry with the error and dumps the
    /// whole ring (an `Err` from any rank fails the collective, so the
    /// first failing rank writes the black box).
    pub fn fail(&self, plan: u64, error: &str) {
        let now = self.now();
        let mut inner = self.lock();
        if let Some(e) = inner.entries.iter_mut().rev().find(|e| e.plan == plan) {
            if e.outcome == FlightOutcome::InFlight || e.outcome == FlightOutcome::Ok {
                e.ended = now;
                e.active_ranks = 0;
                e.outcome = FlightOutcome::Err(error.to_string());
            }
        }
        Self::dump_locked(&mut inner, &format!("plan {plan} failed: {error}"));
    }

    /// Renders and stores a dump without an error entry (watchdog
    /// trigger, operator request).
    pub fn dump_now(&self, reason: &str) -> String {
        let mut inner = self.lock();
        Self::dump_locked(&mut inner, reason);
        inner.last_dump.clone().unwrap_or_default()
    }

    fn dump_locked(inner: &mut Inner, reason: &str) {
        let mut out = format!(
            "=== intercom flight recorder dump ({reason}; {} of last {} executions) ===\n",
            inner.entries.len(),
            inner.capacity
        );
        for e in &inner.entries {
            let outcome = match &e.outcome {
                FlightOutcome::InFlight => "IN-FLIGHT".to_string(),
                FlightOutcome::Ok => "ok".to_string(),
                FlightOutcome::Err(err) => format!("ERROR: {err}"),
            };
            out.push_str(&format!(
                "plan={} op={} p={} n={} strategy={} t=[{:.6}, {:.6}] last_step={} {}\n",
                e.plan,
                e.op,
                e.p,
                e.n,
                e.strategy.as_deref().unwrap_or("-"),
                e.started,
                e.ended,
                e.last_step,
                outcome
            ));
            for f in &e.faults {
                out.push_str(&format!("  fault: {f}\n"));
            }
        }
        if let Ok(path) = std::env::var("INTERCOM_FLIGHT_DUMP") {
            if !path.is_empty() {
                use std::io::Write as _;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = f.write_all(out.as_bytes());
                }
            }
        }
        inner.last_dump = Some(out);
        inner.dumps += 1;
    }

    /// The most recent dump, if any execution has failed (or
    /// [`dump_now`] ran).
    pub fn last_dump(&self) -> Option<String> {
        self.lock().last_dump.clone()
    }

    /// How many dumps have been written.
    pub fn dump_count(&self) -> u64 {
        self.lock().dumps
    }

    /// A copy of the current ring, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.lock().entries.iter().cloned().collect()
    }

    /// Clears the ring and the stored dump (tests).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.last_dump = None;
    }
}

/// The process-wide flight recorder behind the module-level helpers.
pub fn global() -> &'static FlightRecorder {
    static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
    FLIGHT.get_or_init(|| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))
}

/// [`FlightRecorder::begin`] on the global recorder when [`enabled`].
#[inline]
pub fn begin(plan: u64, op: &str, p: usize, n: usize, strategy: Option<&str>) {
    if enabled() {
        global().begin(plan, op, p, n, strategy);
    }
}

/// [`FlightRecorder::mark_step`] on the global recorder when [`enabled`].
#[inline]
pub fn mark_step(plan: u64, step: u64) {
    if enabled() {
        global().mark_step(plan, step);
    }
}

/// [`FlightRecorder::note_fault`] on the global recorder when [`enabled`].
#[inline]
pub fn note_fault(plan: u64, note: &str) {
    if enabled() {
        global().note_fault(plan, note);
    }
}

/// [`FlightRecorder::finish`] on the global recorder when [`enabled`].
#[inline]
pub fn finish(plan: u64) {
    if enabled() {
        global().finish(plan);
    }
}

/// [`FlightRecorder::fail`] on the global recorder when [`enabled`].
#[inline]
pub fn fail(plan: u64, error: &str) {
    if enabled() {
        global().fail(plan, error);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_refcounted() {
        let fr = FlightRecorder::new(3);
        for plan in 1..=5u64 {
            // 4 ranks join the same execution.
            for _ in 0..4 {
                fr.begin(plan, "broadcast", 4, 1024, Some("[4:mst]"));
            }
            fr.mark_step(plan, 7);
            for _ in 0..4 {
                fr.finish(plan);
            }
        }
        let entries = fr.entries();
        assert_eq!(entries.len(), 3, "capacity bounds the ring");
        assert_eq!(entries[0].plan, 3, "oldest survivors");
        assert!(entries.iter().all(|e| e.outcome == FlightOutcome::Ok));
        assert!(entries.iter().all(|e| e.last_step == 7));
    }

    #[test]
    fn fail_dumps_the_ring() {
        let fr = FlightRecorder::new(8);
        fr.begin(10, "allreduce", 8, 4096, None);
        fr.note_fault(10, "retry attempt=1 peer=3");
        fr.fail(10, "Aborted(DropBudget)");
        let dump = fr.last_dump().expect("dump stored");
        assert!(dump.contains("plan=10"));
        assert!(dump.contains("ERROR: Aborted(DropBudget)"));
        assert!(dump.contains("retry attempt=1 peer=3"));
        assert_eq!(fr.dump_count(), 1);
    }

    #[test]
    fn fault_notes_are_bounded() {
        let fr = FlightRecorder::new(2);
        fr.begin(1, "reduce", 2, 16, None);
        for i in 0..1000 {
            fr.note_fault(1, &format!("retry {i}"));
        }
        assert_eq!(fr.entries()[0].faults.len(), MAX_FAULT_NOTES);
    }

    #[test]
    fn disabled_helpers_are_noops() {
        assert!(!enabled());
        begin(999_999, "broadcast", 2, 2, None);
        assert!(
            !global().entries().iter().any(|e| e.plan == 999_999),
            "disabled begin records nothing"
        );
    }
}
