//! The always-on metrics registry: monotonic counters, gauges and
//! log-bucketed histograms, keyed by name + label set.
//!
//! Production telemetry, as opposed to the per-run [`crate::record`]
//! tracing layer: metrics accumulate across collective calls for the
//! lifetime of the process and are exported on demand as Prometheus
//! text format or strict JSON. The layer is **off by default** — every
//! hook starts with one relaxed atomic load ([`enabled`]), which is
//! what keeps the disabled path inside the CI overhead gate — and
//! flipped on process-wide with [`set_enabled`].
//!
//! Three writer paths exist:
//!
//! - direct global updates ([`counter_add`], [`gauge_set`],
//!   [`gauge_add`], [`observe`]) for call-site instrumentation at plan
//!   granularity (one registry lock per collective, not per message);
//! - per-rank [`Shard`]s, written lock-free by one rank and
//!   [absorbed](Registry::absorb) into the registry after the
//!   collective — the same drain discipline as the trace recorders;
//! - bulk ingest of already-aggregated structures
//!   ([`ingest_counters`], [`ingest_run`]).
//!
//! Histogram buckets are powers of two over `(2⁻⁴⁰, 2²³]` — fine enough
//! to separate a 100 µs broadcast from a 130 µs one, wide enough to
//! cover nanoseconds to days — and every bucket edge prints exactly in
//! shortest-f64 form, which is what makes the Prometheus export →
//! [`parse_prometheus`] → export round trip byte-idempotent (the
//! `intercom-metrics --check` CI gate).

use crate::record::{Counters, RunRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

// --------------------------------------------------------------------
// Enable switch
// --------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the metrics layer records anything. One relaxed load — the
/// entire cost of the disabled path at every hook site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the metrics layer on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// --------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------

/// Smallest bucket exponent: bucket 0 covers `[0, 2^MIN_EXP]`.
const MIN_EXP: i32 = -40;
/// Number of finite buckets; bucket `i` has upper edge `2^(MIN_EXP+i)`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Upper edge of finite bucket `i`.
fn bucket_edge(i: usize) -> f64 {
    f64::from(MIN_EXP + i as i32).exp2()
}

/// A log₂-bucketed histogram of non-negative samples.
///
/// Each sample lands in the unique bucket whose range contains it
/// (`(edge[i-1], edge[i]]`, with bucket 0 closed at zero and an
/// overflow bucket above the last edge), so any quantile estimate read
/// off the bucket edges *bounds* the true sample quantile — the
/// property `obs/tests/metrics_props.rs` checks on adversarial
/// streams. Merging two histograms adds counts elementwise, which is
/// associative and commutative, so per-rank shards fold in any order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; HISTOGRAM_BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index for `v` (clamped non-negative; NaN is dropped
    /// by [`observe`](Histogram::observe) before reaching here).
    fn bucket_of(v: f64) -> usize {
        if v <= bucket_edge(0) {
            return 0;
        }
        let mut idx =
            (v.log2().ceil() as i32 - MIN_EXP).clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize;
        // log2 rounding can miss by one ulp in either direction; fix up
        // so the invariant edge[idx-1] < v <= edge[idx] really holds.
        while idx + 1 < HISTOGRAM_BUCKETS && v > bucket_edge(idx) {
            idx += 1;
        }
        while idx > 0 && v <= bucket_edge(idx - 1) {
            idx -= 1;
        }
        idx
    }

    /// Records one sample. Negative values clamp to 0; NaN is ignored.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let v = v.max(0.0);
        if v > bucket_edge(HISTOGRAM_BUCKETS - 1) {
            self.overflow += 1;
        } else {
            self.counts[Self::bucket_of(v)] += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// `[lower, upper]` bounds on the `q`-quantile (`0 < q <= 1`) of
    /// the recorded samples, or `None` when empty. The true quantile is
    /// guaranteed to lie within the returned interval: the bounds are
    /// the edges of the bucket holding the quantile's rank, tightened
    /// by the exact running min/max.
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = if i == 0 { 0.0 } else { bucket_edge(i - 1) };
                return Some((lo.max(self.min), bucket_edge(i).min(self.max)));
            }
        }
        // The rank lands in the overflow bucket.
        Some((bucket_edge(HISTOGRAM_BUCKETS - 1).max(self.min), self.max))
    }

    /// Conservative point estimate of the `q`-quantile: the upper bound
    /// of [`quantile_bounds`](Histogram::quantile_bounds).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_bounds(q).map(|(_, hi)| hi)
    }

    /// Adds `other`'s samples into `self` (elementwise bucket sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(upper_edge, cumulative_count)` pairs for every non-empty
    /// bucket, plus the overflow count — the Prometheus exposition
    /// shape.
    fn cumulative(&self) -> (Vec<(f64, u64)>, u64) {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_edge(i), cum));
            }
        }
        (out, cum + self.overflow)
    }
}

// --------------------------------------------------------------------
// Keys, values, shards, registry
// --------------------------------------------------------------------

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus conventions: `snake_case`, unit suffix).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    fn label_block(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", crate::chrome::escape_json(v));
        }
        out.push('}');
        out
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A point-in-time (or accumulated-float) value.
    Gauge(f64),
    /// A log-bucketed sample distribution.
    Histogram(Histogram),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Merges `other` into `self`: counters add, gauges take the newer
    /// value, histograms fold buckets. Mismatched kinds keep `self`.
    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            _ => {}
        }
    }
}

/// A lock-free per-rank metrics shard: the same map as the registry,
/// written by one rank, merged in after the collective. Shard merge is
/// associative (counters and histogram buckets add), so any fold order
/// over ranks yields the same registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Shard {
    metrics: BTreeMap<MetricKey, MetricValue>,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Self {
        Shard::default()
    }

    /// Adds `v` to the counter `name{labels}`.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        if let MetricValue::Counter(c) = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Counter(0))
        {
            *c += v;
        }
    }

    /// Sets the gauge `name{labels}`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.metrics
            .insert(MetricKey::new(name, labels), MetricValue::Gauge(v));
    }

    /// Records a histogram sample into `name{labels}`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let MetricValue::Histogram(h) = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            h.observe(v);
        }
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Shard) {
        for (k, v) in &other.metrics {
            match self.metrics.get_mut(k) {
                Some(mine) => mine.merge(v),
                None => {
                    self.metrics.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// The shard's contents as a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            metrics: self.metrics.clone(),
        }
    }
}

/// The process-wide metrics store: a locked name→value map. All hot
/// paths check [`enabled`] before touching it, so a disabled registry
/// costs one branch per hook.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Shard>,
}

impl Registry {
    /// An empty registry (tests; production uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Shard> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Adds `v` to a counter.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.lock().counter_add(name, labels, v);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lock().gauge_set(name, labels, v);
    }

    /// Adds `v` to a gauge (accumulated-float totals, e.g. seconds).
    pub fn gauge_add(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let mut shard = self.lock();
        let key = MetricKey::new(name, labels);
        match shard.metrics.get_mut(&key) {
            Some(MetricValue::Gauge(g)) => *g += v,
            Some(_) => {}
            None => {
                shard.metrics.insert(key, MetricValue::Gauge(v));
            }
        }
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lock().observe(name, labels, v);
    }

    /// Merges a drained per-rank shard into the registry.
    pub fn absorb(&self, shard: &Shard) {
        self.lock().merge(shard);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.lock().snapshot()
    }

    /// Drops every metric (tests and the `--watch` reset).
    pub fn clear(&self) {
        self.lock().metrics.clear();
    }
}

/// The process-wide registry behind the module-level helpers.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Adds to a global counter when the layer is [`enabled`].
#[inline]
pub fn counter_add(name: &str, labels: &[(&str, &str)], v: u64) {
    if enabled() {
        global().counter_add(name, labels, v);
    }
}

/// Sets a global gauge when the layer is [`enabled`].
#[inline]
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: f64) {
    if enabled() {
        global().gauge_set(name, labels, v);
    }
}

/// Adds to a global gauge when the layer is [`enabled`].
#[inline]
pub fn gauge_add(name: &str, labels: &[(&str, &str)], v: f64) {
    if enabled() {
        global().gauge_add(name, labels, v);
    }
}

/// Records a global histogram sample when the layer is [`enabled`].
#[inline]
pub fn observe(name: &str, labels: &[(&str, &str)], v: f64) {
    if enabled() {
        global().observe(name, labels, v);
    }
}

// --------------------------------------------------------------------
// Bulk ingest from the tracing layer
// --------------------------------------------------------------------

/// Folds one rank's drained [`Counters`] into the global registry
/// (no-op when disabled). Called by the backends at world teardown.
pub fn ingest_counters(backend: &str, c: &Counters) {
    if !enabled() {
        return;
    }
    let reg = global();
    let l = &[("backend", backend)][..];
    reg.counter_add("intercom_msgs_sent_total", l, c.msgs_sent);
    reg.counter_add("intercom_msgs_recvd_total", l, c.msgs_recvd);
    reg.counter_add("intercom_bytes_out_total", l, c.bytes_out);
    reg.counter_add("intercom_bytes_in_total", l, c.bytes_in);
    reg.counter_add("intercom_eager_msgs_total", l, c.eager_msgs);
    reg.counter_add("intercom_rendezvous_msgs_total", l, c.rendezvous_msgs);
    reg.counter_add("intercom_reduce_steps_total", l, c.reduce_steps);
    reg.counter_add("intercom_pool_hits_total", l, c.pool_hits);
    reg.counter_add("intercom_pool_misses_total", l, c.pool_misses);
    // Fault-path events (intercom_fault_*_total) are deliberately NOT
    // re-exported here: the fault layer counts them firsthand as they
    // happen, and folding the trace-derived copies in again would
    // double-count recovered runs.
    reg.gauge_add("intercom_wait_seconds_total", l, c.wait_secs);
    reg.gauge_add("intercom_transfer_seconds_total", l, c.transfer_secs);
}

/// Folds a whole recorded run's counter totals and ring losses into
/// the global registry (no-op when disabled).
pub fn ingest_run(backend: &str, run: &RunRecord) {
    if !enabled() {
        return;
    }
    ingest_counters(backend, &run.totals());
    let lost: u64 = run.dropped.iter().sum();
    if lost > 0 {
        global().counter_add(
            "intercom_trace_dropped_events_total",
            &[("backend", backend)],
            lost,
        );
    }
}

// --------------------------------------------------------------------
// Snapshot, exposition and parsing
// --------------------------------------------------------------------

/// A point-in-time copy of a registry, the unit the exporters and the
/// `--watch` differ operate on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every metric, keyed by name + labels.
    pub metrics: BTreeMap<MetricKey, MetricValue>,
}

/// Shortest-round-trip decimal form of a float (Rust's `{}` for `f64`
/// re-parses to the identical bits, which the idempotence gate needs).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v > 0.0 {
        "+Inf".into()
    } else if v < 0.0 {
        "-Inf".into()
    } else {
        "NaN".into()
    }
}

impl Snapshot {
    /// Counter value, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter series named `name`, over all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// The counter-wise difference `self − prev` (merge-consistent with
    /// the pool/cache `delta` helpers): counters subtract saturating,
    /// gauges and histograms keep `self`'s value. The `--watch` view
    /// prints rates from this.
    pub fn delta(&self, prev: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (k, v) in &mut out.metrics {
            if let (MetricValue::Counter(c), Some(MetricValue::Counter(p))) =
                (&mut *v, prev.metrics.get(k))
            {
                *c = c.saturating_sub(*p);
            }
        }
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    /// Deterministic: metrics sort by name then labels, `# TYPE`
    /// comments announce each metric family once.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (key, value) in &self.metrics {
            if key.name != last_family {
                let _ = writeln!(out, "# TYPE {} {}", key.name, value.type_name());
            }
            last_family = &key.name;
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{}{} {c}", key.name, key.label_block());
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", key.name, key.label_block(), fmt_f64(*g));
                }
                MetricValue::Histogram(h) => {
                    let (buckets, total) = h.cumulative();
                    for (le, cum) in &buckets {
                        let mut labels: Vec<(&str, &str)> = key
                            .labels
                            .iter()
                            .map(|(k, v)| (k.as_str(), v.as_str()))
                            .collect();
                        let le = fmt_f64(*le);
                        labels.push(("le", &le));
                        let bkey = MetricKey::new(&format!("{}_bucket", key.name), &labels);
                        let _ = writeln!(out, "{}{} {cum}", bkey.name, bkey.label_block());
                    }
                    let inf = MetricKey::new(
                        &format!("{}_bucket", key.name),
                        &key.labels
                            .iter()
                            .map(|(k, v)| (k.as_str(), v.as_str()))
                            .chain([("le", "+Inf")])
                            .collect::<Vec<_>>(),
                    );
                    let _ = writeln!(out, "{}{} {total}", inf.name, inf.label_block());
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        key.label_block(),
                        fmt_f64(h.sum())
                    );
                    let _ = writeln!(out, "{}_count{} {total}", key.name, key.label_block());
                }
            }
        }
        out
    }

    /// Renders the snapshot as a strict JSON document (round-trips
    /// through [`crate::json::parse`]).
    pub fn to_json(&self) -> String {
        use crate::chrome::escape_json;
        let mut out = String::from("{\n  \"metrics\": [\n");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "    {{\"name\":\"{}\",\"type\":\"{}\",\"labels\":{{",
                escape_json(&key.name),
                value.type_name()
            );
            for (j, (k, v)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            out.push_str("},");
            match value {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "\"value\":{c}}}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(
                        out,
                        "\"value\":{}}}",
                        if g.is_finite() {
                            fmt_f64(*g)
                        } else {
                            "null".into()
                        }
                    );
                }
                MetricValue::Histogram(h) => {
                    let (buckets, total) = h.cumulative();
                    let _ = write!(out, "\"count\":{total},\"sum\":{},\"buckets\":[", h.sum());
                    for (j, (le, cum)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{{\"le\":{},\"cum\":{cum}}}", fmt_f64(*le));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Parses a Prometheus text document produced by
/// [`Snapshot::prometheus`] back into a [`Snapshot`]. Supports the
/// subset this module emits (counter / gauge / histogram families with
/// `# TYPE` comments); re-exporting the parsed snapshot reproduces the
/// input byte for byte, which `intercom-metrics --check` gates.
pub fn parse_prometheus(text: &str) -> Result<Snapshot, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut snap = Snapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let fail = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| fail("missing name"))?;
            let kind = it.next().ok_or_else(|| fail("missing type"))?;
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| fail("missing sample value"))?;
        let (name, labels) = parse_series(series).map_err(|e| fail(&e))?;
        // Resolve the family: histogram samples carry suffixes.
        let (family, role) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|fam| types.get(*fam).map(String::as_str) == Some("histogram"))
                    .map(|fam| (fam.to_string(), *suf))
            })
            .unwrap_or((name.clone(), ""));
        match types.get(&family).map(String::as_str) {
            Some("counter") => {
                let v: u64 = value.parse().map_err(|_| fail("bad counter value"))?;
                snap.metrics.insert(
                    MetricKey {
                        name: family,
                        labels,
                    },
                    MetricValue::Counter(v),
                );
            }
            Some("gauge") => {
                let v: f64 = value.parse().map_err(|_| fail("bad gauge value"))?;
                snap.metrics.insert(
                    MetricKey {
                        name: family,
                        labels,
                    },
                    MetricValue::Gauge(v),
                );
            }
            Some("histogram") => {
                let mut labels = labels;
                let le = match role {
                    "_bucket" => {
                        let pos = labels
                            .iter()
                            .position(|(k, _)| k == "le")
                            .ok_or_else(|| fail("bucket without le label"))?;
                        Some(labels.remove(pos).1)
                    }
                    _ => None,
                };
                let key = MetricKey {
                    name: family,
                    labels,
                };
                let entry = match snap
                    .metrics
                    .entry(key)
                    .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
                {
                    MetricValue::Histogram(h) => h,
                    _ => return Err(fail("histogram sample collides with a scalar")),
                };
                match role {
                    "_bucket" => {
                        let le = le.unwrap();
                        if le == "+Inf" {
                            // Redundant with _count; overflow is set there.
                            continue;
                        }
                        let edge: f64 = le.parse().map_err(|_| fail("bad le"))?;
                        let cum: u64 = value.parse().map_err(|_| fail("bad bucket count"))?;
                        let idx = Histogram::bucket_of(edge);
                        let below: u64 = entry.counts[..idx].iter().sum();
                        entry.counts[idx] = cum.saturating_sub(below);
                    }
                    "_sum" => {
                        entry.sum = value.parse().map_err(|_| fail("bad sum"))?;
                        // min/max are not part of the exposition; widen
                        // them so re-derived quantile bounds stay valid.
                        entry.min = 0.0;
                        entry.max = f64::INFINITY;
                    }
                    "_count" => {
                        let total: u64 = value.parse().map_err(|_| fail("bad count"))?;
                        let in_buckets: u64 = entry.counts.iter().sum();
                        entry.count = total;
                        entry.overflow = total.saturating_sub(in_buckets);
                    }
                    _ => unreachable!("role is one of the three suffixes"),
                }
            }
            _ => return Err(fail("sample before its # TYPE declaration")),
        }
    }
    Ok(snap)
}

/// Splits `name{l1="v1",l2="v2"}` into name and sorted label pairs.
fn parse_series(series: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(open) = series.find('{') else {
        return Ok((series.trim().to_string(), Vec::new()));
    };
    if !series.ends_with('}') {
        return Err("unterminated label block".into());
    }
    let name = series[..open].trim().to_string();
    let body = &series[open + 1..series.len() - 1];
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or("label without =\"")?;
        let key = rest[..eq].trim_start_matches(',').trim().to_string();
        let mut val = String::new();
        let bytes = &rest.as_bytes()[eq + 2..];
        let mut i = 0;
        let mut escaped = false;
        loop {
            if i >= bytes.len() {
                return Err("unterminated label value".into());
            }
            let c = bytes[i] as char;
            if escaped {
                val.push(match c {
                    'n' => '\n',
                    't' => '\t',
                    c => c,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                break;
            } else {
                val.push(c);
            }
            i += 1;
        }
        labels.push((key, val));
        rest = &rest[eq + 2 + i + 1..];
    }
    labels.sort();
    Ok((name, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_bound_samples() {
        let mut h = Histogram::new();
        for v in [0.0, 1e-12, 3.5e-5, 0.25, 1.0, 7.0, 1e9] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        // Every recorded sample lies within its quantile bounds.
        let (lo, hi) = h.quantile_bounds(0.5).unwrap();
        assert!(lo <= 0.25 && 0.25 <= hi, "median bounds [{lo}, {hi}]");
        let (_, hi) = h.quantile_bounds(1.0).unwrap();
        assert_eq!(hi, 1e9, "max tightens the overflow bucket");
    }

    #[test]
    fn histogram_bucket_of_respects_edges() {
        for i in 0..HISTOGRAM_BUCKETS {
            let edge = bucket_edge(i);
            assert_eq!(Histogram::bucket_of(edge), i, "edge {edge} is inclusive");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(
                    Histogram::bucket_of(edge * 1.0000000001),
                    i + 1,
                    "just above {edge}"
                );
            }
        }
    }

    #[test]
    fn shard_merge_is_associative() {
        let mk = |seed: u64| {
            let mut s = Shard::new();
            s.counter_add("c", &[("r", &seed.to_string())], seed);
            s.counter_add("c", &[], seed * 3);
            s.observe("h", &[], seed as f64 * 0.5);
            s
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn registry_roundtrip_prometheus_idempotent() {
        let reg = Registry::new();
        reg.counter_add("intercom_test_total", &[("op", "broadcast"), ("p", "8")], 5);
        reg.gauge_set("intercom_test_ratio", &[], 0.325);
        reg.observe("intercom_test_seconds", &[("op", "reduce")], 1.25e-4);
        reg.observe("intercom_test_seconds", &[("op", "reduce")], 3.0);
        let snap = reg.snapshot();
        let text = snap.prometheus();
        let parsed = parse_prometheus(&text).expect("parses");
        assert_eq!(parsed.prometheus(), text, "export is idempotent");
        assert_eq!(
            parsed.counter("intercom_test_total", &[("op", "broadcast"), ("p", "8")]),
            Some(5)
        );
        let h = parsed
            .histogram("intercom_test_seconds", &[("op", "reduce")])
            .unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let reg = Registry::new();
        reg.counter_add("c", &[], 10);
        let prev = reg.snapshot();
        reg.counter_add("c", &[], 7);
        let d = reg.snapshot().delta(&prev);
        assert_eq!(d.counter("c", &[]), Some(7));
    }

    #[test]
    fn disabled_global_helpers_are_noops() {
        assert!(!enabled());
        counter_add("intercom_never_total", &[], 1);
        assert_eq!(
            global().snapshot().counter("intercom_never_total", &[]),
            None
        );
    }

    #[test]
    fn json_export_is_strict_json() {
        let reg = Registry::new();
        reg.counter_add("a_total", &[("k", "v\"q")], 1);
        reg.observe("b_seconds", &[], 0.5);
        let doc = reg.snapshot().to_json();
        let v = crate::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("metrics")
                .and_then(crate::json::Value::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }
}
