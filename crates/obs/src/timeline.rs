//! Timeline views over a recorded event log.
//!
//! [`Trace`] offers summaries and a step-diagram renderer used to
//! reproduce the paper's Fig. 1 (the 12-node hybrid broadcast walk-
//! through). It consumes the unified [`TraceEvent`] schema, so the same
//! renderers serve the simulator's transfer log and the threaded
//! runtime's endpoint log.

use crate::event::TraceEvent;
use std::fmt::Write as _;

/// A completed run's event log, ordered by start time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceEvent>,
}

impl Trace {
    /// Builds a trace, sorting events by `(start, src, dst)`.
    pub fn new(mut records: Vec<TraceEvent>) -> Self {
        records.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
        });
        Trace { records }
    }

    /// All records, ordered by start time.
    pub fn records(&self) -> &[TraceEvent] {
        &self.records
    }

    /// Total number of point-to-point messages.
    pub fn message_count(&self) -> usize {
        self.records.len()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Total byte·hops (a proxy for network load).
    pub fn byte_hops(&self) -> usize {
        self.records.iter().map(|r| r.bytes * r.hops).sum()
    }

    /// Groups records into synchronous "steps": transfers whose start
    /// times coincide (within `tol`) form one step, ordered by time.
    /// Matches the paper's step-by-step figures for lock-step
    /// algorithms.
    pub fn steps(&self, tol: f64) -> Vec<Vec<&TraceEvent>> {
        let mut steps: Vec<(f64, Vec<&TraceEvent>)> = Vec::new();
        for r in &self.records {
            match steps.last_mut() {
                Some((t, v)) if (r.start - *t).abs() <= tol => v.push(r),
                _ => steps.push((r.start, vec![r])),
            }
        }
        steps.into_iter().map(|(_, v)| v).collect()
    }

    /// Renders a Fig.-1-style step diagram: one line per step listing the
    /// simultaneous transfers.
    pub fn render_steps(&self, tol: f64) -> String {
        let mut out = String::new();
        for (i, step) in self.steps(tol).iter().enumerate() {
            let _ = write!(out, "step {:>2} @ t={:<12.6}", i + 1, step[0].start);
            let moves: Vec<String> = step
                .iter()
                .map(|r| format!("{}→{} ({} B)", r.src, r.dst, r.bytes))
                .collect();
            let _ = writeln!(out, " {}", moves.join("  "));
        }
        out
    }

    /// Renders an ASCII Gantt chart: one row per node, time bucketed into
    /// `width` columns; a cell shows `▒` when the node is sending,
    /// `░` when receiving, `█` when doing both. Rows are limited to the
    /// first `max_nodes` nodes.
    pub fn render_gantt(&self, width: usize, max_nodes: usize) -> String {
        assert!(width > 0, "gantt width must be positive");
        let t_end = self.records.iter().map(|r| r.end).fold(0.0f64, f64::max);
        if t_end <= 0.0 {
            return String::from("(no transfers)\n");
        }
        let nodes = self
            .records
            .iter()
            .map(|r| r.src.max(r.dst) + 1)
            .max()
            .unwrap_or(0)
            .min(max_nodes);
        let bucket = t_end / width as f64;
        // 0 = idle, 1 = send, 2 = recv, 3 = both.
        let mut grid = vec![vec![0u8; width]; nodes];
        for r in &self.records {
            let b0 = ((r.start / bucket) as usize).min(width - 1);
            let b1 = ((r.end / bucket).ceil() as usize).clamp(b0 + 1, width);
            if r.src < nodes {
                for cell in &mut grid[r.src][b0..b1] {
                    *cell |= 1;
                }
            }
            if r.dst < nodes {
                for cell in &mut grid[r.dst][b0..b1] {
                    *cell |= 2;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "time 0 .. {t_end:.6} s ({width} buckets)");
        for (node, row) in grid.iter().enumerate() {
            let _ = write!(out, "node {node:>4} |");
            for &cell in row {
                out.push(match cell {
                    0 => ' ',
                    1 => '▒',
                    2 => '░',
                    _ => '█',
                });
            }
            out.push_str("|\n");
        }
        out
    }

    /// Per-directed-pair message counts, descending — a quick hot-spot
    /// summary for contention analysis.
    pub fn busiest_pairs(&self, top: usize) -> Vec<((usize, usize), usize)> {
        let mut counts: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for r in &self.records {
            *counts.entry((r.src, r.dst)).or_default() += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: usize, dst: usize, start: f64, bytes: usize) -> TraceEvent {
        TraceEvent::transfer(src, dst, 0, bytes, start, start + 1.0, 1)
    }

    #[test]
    fn records_sorted_by_start() {
        let t = Trace::new(vec![rec(0, 1, 2.0, 4), rec(1, 2, 1.0, 4)]);
        assert_eq!(t.records()[0].start, 1.0);
    }

    #[test]
    fn steps_group_simultaneous_transfers() {
        let t = Trace::new(vec![
            rec(0, 1, 0.0, 8),
            rec(2, 3, 0.0, 8),
            rec(0, 2, 5.0, 8),
        ]);
        let steps = t.steps(1e-9);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].len(), 2);
        assert_eq!(steps[1].len(), 1);
    }

    #[test]
    fn aggregates() {
        let t = Trace::new(vec![rec(0, 1, 0.0, 10), rec(1, 2, 1.0, 20)]);
        assert_eq!(t.message_count(), 2);
        assert_eq!(t.total_bytes(), 30);
        assert_eq!(t.byte_hops(), 30);
    }

    #[test]
    fn render_contains_moves() {
        let t = Trace::new(vec![rec(3, 5, 0.0, 16)]);
        let s = t.render_steps(1e-9);
        assert!(s.contains("3→5 (16 B)"), "{s}");
    }

    #[test]
    fn gantt_marks_send_and_recv() {
        let t = Trace::new(vec![rec(0, 1, 0.0, 8)]);
        let g = t.render_gantt(10, 8);
        assert!(g.contains("node    0 |▒"), "{g}");
        assert!(g.contains("node    1 |░"), "{g}");
    }

    #[test]
    fn gantt_empty_trace() {
        let t = Trace::new(vec![]);
        assert_eq!(t.render_gantt(10, 4), "(no transfers)\n");
    }

    #[test]
    fn gantt_both_directions_merge() {
        // Node 1 sends and receives in the same window: █.
        let t = Trace::new(vec![rec(0, 1, 0.0, 8), rec(1, 2, 0.0, 8)]);
        let g = t.render_gantt(4, 8);
        assert!(
            g.lines()
                .any(|l| l.starts_with("node    1") && l.contains('█')),
            "{g}"
        );
    }

    #[test]
    fn busiest_pairs_ordering() {
        let t = Trace::new(vec![
            rec(0, 1, 0.0, 8),
            rec(0, 1, 1.0, 8),
            rec(2, 3, 0.0, 8),
        ]);
        let b = t.busiest_pairs(2);
        assert_eq!(b[0], ((0, 1), 2));
        assert_eq!(b[1], ((2, 3), 1));
    }
}
