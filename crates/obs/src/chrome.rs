//! Chrome-trace / Perfetto JSON export.
//!
//! Emits the Trace Event Format's JSON-object form: complete (`"X"`)
//! events with microsecond timestamps, one track (`tid`) per rank, plus
//! thread-name metadata. The output loads directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`, and round-trips
//! through [`crate::json::parse`] — the CI smoke gate relies on that.

use crate::event::TraceEvent;
use crate::record::RunRecord;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_event(out: &mut String, ev: &TraceEvent) {
    let name = match ev.src == ev.rank {
        true => format!("{} {}→{}", ev.kind.name(), ev.src, ev.dst),
        false => format!("{} {}←{}", ev.kind.name(), ev.dst, ev.src),
    };
    let stage = ev.stage();
    let _ = write!(
        out,
        "    {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"src\":{},\"dst\":{},\"tag\":{},\"bytes\":{},\"stage\":\"{}\",\"level\":{},\"sub\":{},\"hops\":{},\"plan\":{},\"step\":{}}}}}",
        escape_json(&name),
        ev.kind.name(),
        ev.rank,
        ev.start * 1e6,
        ev.duration().max(0.0) * 1e6,
        ev.src,
        ev.dst,
        ev.tag,
        ev.bytes,
        stage,
        stage.level,
        stage.sub,
        ev.hops,
        ev.plan,
        ev.step,
    );
}

/// Renders a recorded run as a Chrome-trace JSON document.
pub fn chrome_trace(run: &RunRecord) -> String {
    let totals = run.totals();
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    for rank in 0..run.p() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "    {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\"args\":{{\"name\":\"rank {rank}\"}}}}"
        );
        for ev in &run.events[rank] {
            out.push_str(",\n");
            push_event(&mut out, ev);
        }
    }
    out.push_str("\n  ],\n");
    let per_rank_dropped = run
        .dropped
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(
        out,
        "  \"otherData\": {{\"ranks\": {}, \"events\": {}, \"msgs_sent\": {}, \"bytes_out\": {}, \"bytes_in\": {}, \"dropped\": {}, \"dropped_per_rank\": [{per_rank_dropped}]}}\n}}\n",
        run.p(),
        run.all_events().count(),
        totals.msgs_sent,
        totals.bytes_out,
        totals.bytes_in,
        run.dropped.iter().sum::<u64>(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_round_trips_through_parser() {
        let transfers = vec![
            TraceEvent::transfer(0, 1, 8, 64, 0.0, 1.5e-3, 1).with_plan(7, 3),
            TraceEvent::transfer(1, 2, 9, 32, 2e-3, 3e-3, 2),
        ];
        let run = RunRecord::from_transfers(&transfers, 3);
        let doc = chrome_trace(&run);
        let v = json::parse(&doc).expect("export must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        // 3 thread-name metadata records + 2 transfers.
        assert_eq!(events.len(), 5);
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        let bytes = xs[0]
            .get("args")
            .and_then(|a| a.get("bytes"))
            .and_then(json::Value::as_f64)
            .unwrap();
        assert_eq!(bytes, 64.0);
        let plan = |i: usize, key: &str| {
            xs[i]
                .get("args")
                .and_then(|a| a.get(key))
                .and_then(json::Value::as_f64)
                .unwrap()
        };
        assert_eq!((plan(0, "plan"), plan(0, "step")), (7.0, 3.0));
        assert_eq!((plan(1, "plan"), plan(1, "step")), (0.0, 0.0));
        assert_eq!(
            v.get("otherData")
                .and_then(|o| o.get("msgs_sent"))
                .and_then(json::Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
