//! Per-rank recording: fixed-capacity ring buffers, counters and the
//! drained run record.
//!
//! The hot-path contract: one [`Recorder`] per rank, written only by
//! that rank's thread — no locks, no atomics, and no allocation after
//! construction (the ring is pre-allocated and overwrites its oldest
//! entry when full, counting what it dropped). A disabled recorder
//! reduces every hook to a single branch, which is what keeps the
//! instrumentation overhead within the CI-enforced 3% budget.

use crate::event::TraceEvent;
use std::cell::RefCell;
use std::time::Instant;

/// Default per-rank event capacity: enough for every collective the
/// test and bench matrices run, small enough to stay cache-friendly.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// A fixed-capacity event ring. When full, the oldest event is
/// overwritten and [`RingBuffer::dropped`] incremented — recent history
/// wins, which is what post-collective draining wants.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` events (min 1), fully
    /// pre-allocated.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning events in recording order.
    pub fn into_events(mut self) -> Vec<TraceEvent> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

/// Per-rank counters, maintained firsthand by the threaded runtime and
/// derivable from a transfer log for the simulator
/// ([`RunRecord::from_transfers`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Messages sent (sendrecv counts one).
    pub msgs_sent: u64,
    /// Messages received (sendrecv counts one).
    pub msgs_recvd: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Messages sent on the eager (pooled-copy) path.
    pub eager_msgs: u64,
    /// Messages sent on the zero-copy rendezvous path.
    pub rendezvous_msgs: u64,
    /// Local reduction steps performed.
    pub reduce_steps: u64,
    /// Bytes folded by local reductions.
    pub reduce_bytes: u64,
    /// Payload-pool acquire hits (filled at drain from the pool).
    pub pool_hits: u64,
    /// Payload-pool acquire misses (filled at drain from the pool).
    pub pool_misses: u64,
    /// Scripted faults that fired on this rank (fault-injection runs).
    pub faults_injected: u64,
    /// Fault-layer retransmissions (NAK- or drop-triggered resends).
    pub retries: u64,
    /// Checksum NAK verdicts this rank issued on receive.
    pub naks: u64,
    /// Bounded waits that expired (each precedes an abort or a retry).
    pub timeout_waits: u64,
    /// Coordinated-abort poison deliveries observed on this rank.
    pub aborts: u64,
    /// Seconds spent blocked waiting for a peer (recv with no matching
    /// message yet, rendezvous completion waits).
    pub wait_secs: f64,
    /// Seconds spent actually moving bytes (payload copies in and out).
    pub transfer_secs: f64,
}

impl Counters {
    /// Folds one event into the fault counters. Communication and
    /// reduction events are untouched — they are counted firsthand by
    /// the backends; the fault regime only exists as trace events
    /// (`verify::chaos::fault_trace_events` merges the fault layer's
    /// log onto rank timelines), so recovered-vs-clean runs would
    /// otherwise be indistinguishable in aggregate stats.
    pub fn note_event(&mut self, kind: crate::event::EventKind) {
        use crate::event::EventKind;
        match kind {
            EventKind::FaultInjected => self.faults_injected += 1,
            EventKind::Retry => self.retries += 1,
            EventKind::Nak => self.naks += 1,
            EventKind::Timeout => self.timeout_waits += 1,
            EventKind::Abort => self.aborts += 1,
            EventKind::Send | EventKind::Recv | EventKind::SendRecv | EventKind::Reduce => {}
        }
    }

    /// Accumulates `other` into `self` (for whole-run aggregates).
    pub fn merge(&mut self, other: &Counters) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recvd += other.msgs_recvd;
        self.bytes_out += other.bytes_out;
        self.bytes_in += other.bytes_in;
        self.eager_msgs += other.eager_msgs;
        self.rendezvous_msgs += other.rendezvous_msgs;
        self.reduce_steps += other.reduce_steps;
        self.reduce_bytes += other.reduce_bytes;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.naks += other.naks;
        self.timeout_waits += other.timeout_waits;
        self.aborts += other.aborts;
        self.wait_secs += other.wait_secs;
        self.transfer_secs += other.transfer_secs;
    }
}

/// One rank's per-thread recording handle.
///
/// Interior mutability (a `RefCell`, never contended — one writer per
/// rank) lets the backend call it through `&self` from the `Comm`
/// methods. All recorders of one world share an epoch `Instant` so
/// their timelines align.
#[derive(Debug)]
pub struct Recorder {
    rank: usize,
    enabled: bool,
    epoch: Instant,
    inner: RefCell<Inner>,
}

#[derive(Debug)]
struct Inner {
    ring: RingBuffer,
    counters: Counters,
}

impl Recorder {
    /// An enabled recorder for `rank` with its own epoch (use
    /// [`recorders`] to build a world-aligned set).
    pub fn new(rank: usize, capacity: usize) -> Self {
        Self::with_epoch(rank, capacity, Instant::now(), true)
    }

    /// A disabled recorder: every hook is a single branch, nothing is
    /// recorded. Used by the A/B overhead gate.
    pub fn disabled(rank: usize) -> Self {
        Self::with_epoch(rank, 0, Instant::now(), false)
    }

    /// Full-control constructor; `capacity` is clamped to at least 1.
    pub fn with_epoch(rank: usize, capacity: usize, epoch: Instant, enabled: bool) -> Self {
        Recorder {
            rank,
            enabled,
            epoch,
            inner: RefCell::new(Inner {
                ring: RingBuffer::new(capacity),
                counters: Counters::default(),
            }),
        }
    }

    /// The rank this recorder belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Whether hooks should bother timestamping at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds since the world epoch (monotonic).
    #[inline]
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        if self.enabled {
            self.inner.borrow_mut().ring.push(ev);
        }
    }

    /// Updates the counters in place (no-op when disabled).
    #[inline]
    pub fn with_counters(&self, f: impl FnOnce(&mut Counters)) {
        if self.enabled {
            f(&mut self.inner.borrow_mut().counters);
        }
    }

    /// Drains the recorder into its per-rank record.
    pub fn finish(self) -> RankRecord {
        let inner = self.inner.into_inner();
        RankRecord {
            rank: self.rank,
            dropped: inner.ring.dropped(),
            events: inner.ring.into_events(),
            counters: inner.counters,
        }
    }
}

/// A world-aligned set of enabled recorders (shared epoch).
pub fn recorders(p: usize, capacity: usize) -> Vec<Recorder> {
    let epoch = Instant::now();
    (0..p)
        .map(|r| Recorder::with_epoch(r, capacity, epoch, true))
        .collect()
}

/// A world of disabled recorders, for overhead A/B runs.
pub fn disabled_recorders(p: usize) -> Vec<Recorder> {
    let epoch = Instant::now();
    (0..p)
        .map(|r| Recorder::with_epoch(r, 0, epoch, false))
        .collect()
}

/// One rank's drained observations.
#[derive(Debug, Clone)]
pub struct RankRecord {
    /// World rank.
    pub rank: usize,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
    /// The rank's counters.
    pub counters: Counters,
    /// Events lost to ring overflow (0 in a well-sized run).
    pub dropped: u64,
}

/// A whole recorded run: per-rank events and counters, rank-indexed.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    /// Per-rank events, indexed by rank.
    pub events: Vec<Vec<TraceEvent>>,
    /// Per-rank counters, indexed by rank.
    pub counters: Vec<Counters>,
    /// Per-rank ring-overflow counts, indexed by rank.
    pub dropped: Vec<u64>,
}

impl RunRecord {
    /// Assembles a run from drained per-rank records (any order).
    /// Fault-kind events on each timeline are folded into that rank's
    /// fault counters here, at drain time — zero hot-path cost.
    pub fn from_ranks(mut ranks: Vec<RankRecord>) -> Self {
        ranks.sort_by_key(|r| r.rank);
        let mut run = RunRecord::default();
        for mut r in ranks {
            debug_assert_eq!(r.rank, run.events.len(), "rank records must be dense");
            for ev in &r.events {
                r.counters.note_event(ev.kind);
            }
            run.events.push(r.events);
            run.counters.push(r.counters);
            run.dropped.push(r.dropped);
        }
        run
    }

    /// Builds a run record from a simulator transfer log: each transfer
    /// lands on its source rank's timeline, and the counters credit the
    /// source with the send and the destination with the receive.
    pub fn from_transfers(transfers: &[TraceEvent], p: usize) -> Self {
        let mut run = RunRecord {
            events: vec![Vec::new(); p],
            counters: vec![Counters::default(); p],
            dropped: vec![0; p],
        };
        for t in transfers {
            run.counters[t.src].msgs_sent += 1;
            run.counters[t.src].bytes_out += t.bytes as u64;
            run.counters[t.dst].msgs_recvd += 1;
            run.counters[t.dst].bytes_in += t.bytes as u64;
            run.events[t.src].push(*t);
        }
        run
    }

    /// World size.
    pub fn p(&self) -> usize {
        self.events.len()
    }

    /// All events of all ranks.
    pub fn all_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().flatten()
    }

    /// Whole-run counter totals.
    pub fn totals(&self) -> Counters {
        let mut total = Counters::default();
        for c in &self.counters {
            total.merge(c);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(rank: usize, start: f64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Send,
            rank,
            src: rank,
            dst: rank + 1,
            tag: 0,
            bytes: 4,
            start,
            end: start + 1.0,
            hops: 0,
            plan: 0,
            step: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_when_full() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5 {
            ring.push(ev(0, i as f64));
        }
        assert_eq!(ring.dropped(), 2);
        let starts: Vec<f64> = ring.into_events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn ring_does_not_reallocate() {
        let mut ring = RingBuffer::new(4);
        let cap = ring.buf.capacity();
        for i in 0..100 {
            ring.push(ev(0, i as f64));
        }
        assert_eq!(ring.buf.capacity(), cap);
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled(3);
        r.record(ev(3, 0.0));
        r.with_counters(|c| c.msgs_sent += 1);
        let rec = r.finish();
        assert!(rec.events.is_empty());
        assert_eq!(rec.counters, Counters::default());
    }

    #[test]
    fn recorder_drains_in_order() {
        let r = Recorder::new(1, 16);
        r.record(ev(1, 0.0));
        r.record(ev(1, 1.0));
        r.with_counters(|c| {
            c.msgs_sent += 2;
            c.bytes_out += 8;
        });
        let rec = r.finish();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.counters.msgs_sent, 2);
        assert_eq!(rec.counters.bytes_out, 8);
        assert_eq!(rec.dropped, 0);
    }

    #[test]
    fn run_from_transfers_credits_both_ends() {
        let transfers = vec![
            TraceEvent::transfer(0, 1, 0, 10, 0.0, 1.0, 1),
            TraceEvent::transfer(1, 2, 0, 20, 1.0, 2.0, 1),
        ];
        let run = RunRecord::from_transfers(&transfers, 3);
        assert_eq!(run.counters[0].bytes_out, 10);
        assert_eq!(run.counters[1].bytes_in, 10);
        assert_eq!(run.counters[1].bytes_out, 20);
        assert_eq!(run.counters[2].bytes_in, 20);
        assert_eq!(run.events[1].len(), 1);
        assert_eq!(run.totals().msgs_sent, 2);
    }

    #[test]
    fn world_recorders_share_epoch() {
        let rs = recorders(4, 8);
        assert_eq!(rs.len(), 4);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(r.rank(), i);
            assert!(r.enabled());
        }
        assert!(!disabled_recorders(2)[0].enabled());
    }
}
