//! A minimal JSON parser (std-only) for round-trip checks.
//!
//! The workspace ships no third-party crates, so the CI gate that
//! proves exported traces are well-formed JSON needs its own reader.
//! This is a strict recursive-descent parser over the JSON grammar —
//! no extensions, no streaming — sized for trace documents, bench
//! reports and audit outputs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (exactly one value plus whitespace).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.fail(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.fail("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired up — trace output
                            // never emits them; reject for strictness.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.fail("non-scalar \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.fail("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let s = &self.bytes[self.pos..];
                    let len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&s[..len]).expect("input was valid UTF-8"));
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.fail("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_unicode_escape_and_utf8() {
        let v = parse("[\"\\u00e9\", \"→\"]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_str(), Some("é"));
        assert_eq!(a[1].as_str(), Some("→"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }
}
