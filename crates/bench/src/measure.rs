//! Simulated time measurement of whole collectives — the harness behind
//! Table 3 and Fig. 4.
//!
//! Each function runs the *actual* library (or the NX baseline) over the
//! wormhole-mesh simulator and returns the elapsed virtual time in
//! seconds under the given machine parameters.

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Mesh2D;

/// Which implementation/algorithm family to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// InterCom with cost-model-driven automatic selection (the library
    /// default — what the paper's "Intercom" columns report).
    IccAuto,
    /// InterCom pinned to the §5.1 short-vector composed algorithm.
    IccShort,
    /// InterCom pinned to the §5.2 long-vector composed algorithm.
    IccLong,
    /// The NX-style baseline (paper's "NX" columns).
    Nx,
}

impl Series {
    /// Display label used in generated tables.
    pub fn label(&self) -> &'static str {
        match self {
            Series::IccAuto => "iCC",
            Series::IccShort => "iCC-short",
            Series::IccLong => "iCC-long",
            Series::Nx => "NX",
        }
    }

    fn algo(&self) -> Option<Algo> {
        match self {
            Series::IccAuto => Some(Algo::Auto),
            Series::IccShort => Some(Algo::Short),
            Series::IccLong => Some(Algo::Long),
            Series::Nx => None,
        }
    }
}

fn icc_world<'a, C: Comm>(
    comm: &'a C,
    machine: MachineParams,
    mesh: Mesh2D,
) -> Communicator<'a, C> {
    Communicator::world_on_mesh(comm, machine, mesh).expect("mesh matches world")
}

/// Elapsed simulated seconds for a broadcast of `n` bytes from node 0
/// over `mesh`.
pub fn bcast_time(mesh: Mesh2D, machine: MachineParams, n: usize, series: Series) -> f64 {
    let cfg = SimConfig::new(mesh, machine);
    match series.algo() {
        Some(algo) => {
            simulate(&cfg, move |c| {
                let cc = icc_world(c, machine, mesh);
                let mut buf = vec![0u8; n];
                cc.bcast_with(0, &mut buf, &algo).unwrap();
            })
            .elapsed
        }
        None => {
            simulate(&cfg, move |c| {
                let mut buf = vec![0u8; n];
                intercom_nx::nx_bcast(c, 0, &mut buf).unwrap();
            })
            .elapsed
        }
    }
}

/// Elapsed simulated seconds for a collect whose *result* is `n` bytes
/// (per-node blocks of `max(1, n/p)` bytes — the paper's `nᵢ ≈ n/p`).
pub fn collect_time(mesh: Mesh2D, machine: MachineParams, n: usize, series: Series) -> f64 {
    let p = mesh.nodes();
    let b = (n / p).max(1);
    let cfg = SimConfig::new(mesh, machine);
    match series.algo() {
        Some(algo) => {
            simulate(&cfg, move |c| {
                let cc = icc_world(c, machine, mesh);
                let mine = vec![c.rank() as u8; b];
                let mut all = vec![0u8; p * b];
                cc.allgather_with(&mine, &mut all, &algo).unwrap();
            })
            .elapsed
        }
        None => {
            simulate(&cfg, move |c| {
                let mine = vec![c.rank() as u8; b];
                let mut all = vec![0u8; p * b];
                intercom_nx::nx_gcolx(c, &mine, &mut all).unwrap();
            })
            .elapsed
        }
    }
}

/// Elapsed simulated seconds for a global sum of an `n`-byte vector of
/// doubles (`n/8` elements, minimum 1), result on every node.
pub fn gsum_time(mesh: Mesh2D, machine: MachineParams, n: usize, series: Series) -> f64 {
    let elems = (n / 8).max(1);
    let cfg = SimConfig::new(mesh, machine);
    match series.algo() {
        Some(algo) => {
            simulate(&cfg, move |c| {
                let cc = icc_world(c, machine, mesh);
                let mut buf = vec![1.0f64; elems];
                cc.allreduce_with(&mut buf, ReduceOp::Sum, &algo).unwrap();
            })
            .elapsed
        }
        None => {
            simulate(&cfg, move |c| {
                let mut buf = vec![1.0f64; elems];
                intercom_nx::nx_gdsum(c, &mut buf).unwrap();
            })
            .elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Mesh2D, MachineParams) {
        (Mesh2D::new(2, 4), MachineParams::PARAGON)
    }

    #[test]
    fn all_series_produce_positive_times() {
        let (mesh, m) = small();
        for s in [
            Series::IccAuto,
            Series::IccShort,
            Series::IccLong,
            Series::Nx,
        ] {
            assert!(bcast_time(mesh, m, 256, s) > 0.0, "{s:?}");
            assert!(collect_time(mesh, m, 256, s) > 0.0, "{s:?}");
            assert!(gsum_time(mesh, m, 256, s) > 0.0, "{s:?}");
        }
    }

    #[test]
    fn auto_never_loses_to_both_pinned_variants() {
        // Auto picks by cost model, so it should be within a whisker of
        // min(short, long) at any length (modulo model-vs-fluid gaps).
        let (mesh, m) = small();
        for n in [8usize, 4096, 1 << 17] {
            let auto = bcast_time(mesh, m, n, Series::IccAuto);
            let s = bcast_time(mesh, m, n, Series::IccShort);
            let l = bcast_time(mesh, m, n, Series::IccLong);
            assert!(
                auto <= s.min(l) * 1.25 + 1e-9,
                "n={n}: auto {auto} vs short {s} / long {l}"
            );
        }
    }

    #[test]
    fn icc_beats_nx_for_long_vectors() {
        let (mesh, m) = small();
        let n = 1 << 18;
        assert!(bcast_time(mesh, m, n, Series::IccAuto) < bcast_time(mesh, m, n, Series::Nx));
        assert!(gsum_time(mesh, m, n, Series::IccAuto) < gsum_time(mesh, m, n, Series::Nx));
        assert!(collect_time(mesh, m, n, Series::IccAuto) < collect_time(mesh, m, n, Series::Nx));
    }

    #[test]
    fn nx_competitive_for_8_bytes() {
        // Table 3: NX slightly wins at 8 B thanks to iCC's δ overhead.
        let (mesh, m) = small();
        let icc = bcast_time(mesh, m, 8, Series::IccAuto);
        let nx = bcast_time(mesh, m, 8, Series::Nx);
        assert!(nx <= icc, "nx {nx} vs icc {icc}");
    }
}
