//! Message-length sweeps used by the figure binaries.

/// Powers of two from `lo` to `hi` inclusive (both rounded to powers of
/// two), optionally thinned to every `step`-th power.
pub fn pow2_sweep(lo: usize, hi: usize, step: u32) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && step >= 1);
    let lo_exp = usize::BITS - lo.next_power_of_two().leading_zeros() - 1;
    let hi_exp = usize::BITS - hi.next_power_of_two().leading_zeros() - 1;
    (lo_exp..=hi_exp)
        .step_by(step as usize)
        .map(|e| 1usize << e)
        .collect()
}

/// The paper's Table 3 vector lengths: 8 B, 64 KB, 1 MB.
pub const TABLE3_LENGTHS: [usize; 3] = [8, 64 * 1024, 1024 * 1024];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_endpoints() {
        let s = pow2_sweep(8, 1 << 20, 1);
        assert_eq!(*s.first().unwrap(), 8);
        assert_eq!(*s.last().unwrap(), 1 << 20);
    }

    #[test]
    fn sweep_thinning() {
        let s = pow2_sweep(8, 1 << 20, 3);
        assert_eq!(s, vec![8, 64, 512, 4096, 32768, 262144]);
    }

    #[test]
    fn degenerate_sweep() {
        assert_eq!(pow2_sweep(16, 16, 1), vec![16]);
    }
}
