//! # intercom-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure of the SC'94 paper:
//!
//! | target | reproduces | run with |
//! |---|---|---|
//! | `table2` | Table 2: hybrid broadcast costs, 30-node linear array | `cargo run -p intercom-bench --bin table2` |
//! | `fig2`   | Fig. 2: predicted hybrid curves vs message length     | `cargo run -p intercom-bench --bin fig2` |
//! | `table3` | Table 3: NX vs iCC on the simulated 16×32 Paragon     | `cargo run -p intercom-bench --release --bin table3` |
//! | `fig4`   | Fig. 4: collect on 16×32, broadcast on 15×30          | `cargo run -p intercom-bench --release --bin fig4` |
//!
//! Criterion benches (`cargo bench -p intercom-bench`) measure the real
//! threaded backend and the simulator itself, plus the ablations called
//! out in DESIGN.md §5.

pub mod measure;
pub mod report;
pub mod sizes;

pub use measure::{bcast_time, collect_time, gsum_time, Series};
