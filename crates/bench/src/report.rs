//! Plain-text table and CSV emission for the regeneration binaries.

/// Formats seconds the way the paper's Table 3 does (4 significant-ish
/// digits, seconds).
pub fn fmt_secs(t: f64) -> String {
    if t == 0.0 {
        "0".into()
    } else if t >= 0.01 {
        format!("{t:.2}")
    } else if t >= 0.0001 {
        format!("{t:.4}")
    } else {
        format!("{t:.6}")
    }
}

/// Formats a byte count with the paper's units (8, 64 K, 1 M).
pub fn fmt_bytes(n: usize) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{} M", n >> 20)
    } else if n >= 1 << 10 && n.is_multiple_of(1 << 10) {
        format!("{} K", n >> 10)
    } else {
        n.to_string()
    }
}

/// A minimal markdown-ish table printer with aligned columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                let pad = widths[c] - cell.chars().count();
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            s
        };
        let mut out = line(&self.header);
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Emits a CSV block (header + rows of f64 series keyed by a size
/// column) — the format the figure binaries print for plotting.
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for r in rows {
        out.push_str(&r.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_units() {
        assert_eq!(fmt_bytes(8), "8");
        assert_eq!(fmt_bytes(65536), "64 K");
        assert_eq!(fmt_bytes(1 << 20), "1 M");
        assert_eq!(fmt_bytes(1000), "1000");
    }

    #[test]
    fn secs_formats() {
        assert_eq!(fmt_secs(0.51), "0.51");
        assert_eq!(fmt_secs(0.0035), "0.0035");
        assert_eq!(fmt_secs(0.0), "0");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxx", "y"]);
        let s = t.render();
        assert!(s.contains("| a   | bb |"), "{s}");
        assert!(s.contains("| xxx | y  |"), "{s}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x", "y"]);
    }

    #[test]
    fn csv_joins() {
        let s = csv(&["n", "t"], &[vec!["1".into(), "2.5".into()]]);
        assert_eq!(s, "n,t\n1,2.5\n");
    }
}
