//! §9 group communication experiment: the same collect over 64-node
//! groups of different physical shape on the simulated 16×32 Paragon.
//!
//! "Performance for group operations is maintained by extracting
//! information about the physical layout of a user-specified group. In
//! cases where a group comprises a physical rectangular submesh, the
//! same row- and column-based techniques are used as in the whole-mesh
//! operations. When a group is unstructured or its structure cannot be
//! ascertained, it is treated as though it were a linear array."
//!
//! Run: `cargo run -p intercom-bench --release --bin groups`

use intercom::{Comm, Communicator};
use intercom_bench::report::{fmt_bytes, Table};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::{Coord, Mesh2D};

fn group_collect_time(mesh: Mesh2D, machine: MachineParams, members: Vec<usize>, n: usize) -> f64 {
    let b = (n / members.len()).max(1);
    let cfg = SimConfig::new(mesh, machine);
    let members2 = members.clone();
    simulate(&cfg, move |c| {
        let Ok(cc) = Communicator::from_group(c, machine, members2.clone(), Some(&mesh)) else {
            return; // not a member: idle
        };
        let mine = vec![c.rank() as u8; b];
        let mut all = vec![0u8; b * cc.size()];
        cc.allgather(&mine, &mut all).unwrap();
    })
    .elapsed
}

fn main() {
    let mesh = Mesh2D::new(16, 32);
    let machine = MachineParams::PARAGON;
    println!("§9 — collect within 64-node groups of a 16x32 mesh\n");

    // (a) An 8×8 rectangular submesh: row/column staging applies.
    let mut submesh = Vec::new();
    for r in 4..12 {
        for c in 8..16 {
            submesh.push(mesh.id(Coord::new(r, c)));
        }
    }
    // (b) Two physical rows (contiguous ids, detected as unstructured
    //     rectangle 2×32 → submesh with long rows).
    let mut rows2: Vec<usize> = mesh.row_nodes(0);
    rows2.extend(mesh.row_nodes(1));
    // (c) A scattered group: a deterministically shuffled sample — ring
    //     neighbours land far apart, so bucket traffic crisscrosses the
    //     mesh with heavy link sharing (the true §9 fallback case).
    let mut scattered: Vec<usize> = (0..mesh.nodes()).step_by(8).collect();
    let mut state = 0xDEADBEEFu64;
    for i in (1..scattered.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        scattered.swap(i, j);
    }

    let mut t = Table::new(vec!["group", "structure", "bytes", "collect time (s)"]);
    for (name, members) in [
        ("8x8 submesh", submesh),
        ("2 full rows", rows2),
        ("scattered (stride 8)", scattered),
    ] {
        let g = intercom_topology::ProcGroup::new(members.clone()).unwrap();
        let structure = format!("{}", g.structure(&mesh));
        for n in [512usize, 65536, 1 << 20] {
            let time = group_collect_time(mesh, machine, members.clone(), n);
            t.row(vec![
                name.to_string(),
                structure.clone(),
                fmt_bytes(n),
                format!("{time:.6}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "expected shape: the structured groups benefit from dedicated\n\
         row/column links; the scattered group pays linear-array conflict\n\
         factors (§9's fallback) — several × slower at 1 MB."
    );
}
