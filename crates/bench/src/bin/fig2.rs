//! Regenerates the paper's **Fig. 2**: predicted performance of the
//! Table 2 broadcast hybrids on a linear array of 30 nodes, using
//! machine parameters similar to those of the Paragon, for message
//! lengths 8 B – 1 MB (log–log in the paper).
//!
//! Emits a CSV block (one column per hybrid) plus the per-length winner.
//!
//! Run: `cargo run -p intercom-bench --bin fig2`

use intercom_bench::report::{csv, Table};
use intercom_bench::sizes::pow2_sweep;
use intercom_cost::collective::hybrid_cost;
use intercom_cost::{
    best_strategy, CollectiveOp, CostContext, MachineParams, Strategy, StrategyKind,
};

fn main() {
    let machine = MachineParams::PARAGON_MODEL;
    let curves: Vec<Strategy> = vec![
        Strategy::new(vec![30], StrategyKind::Mst),
        Strategy::new(vec![2, 15], StrategyKind::Mst),
        Strategy::new(vec![2, 3, 5], StrategyKind::Mst),
        Strategy::new(vec![5, 6], StrategyKind::ScatterCollect),
        Strategy::new(vec![2, 15], StrategyKind::ScatterCollect),
        Strategy::new(vec![30], StrategyKind::ScatterCollect),
    ];

    println!("Fig. 2 — predicted broadcast time on a 30-node linear array");
    println!(
        "machine: alpha={:.0}us beta={:.1}ns/B (Paragon-like), model of §6\n",
        machine.alpha * 1e6,
        machine.beta * 1e9
    );

    let mut header: Vec<String> = vec!["bytes".into()];
    header.extend(curves.iter().map(|s| s.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for n in pow2_sweep(8, 1 << 20, 1) {
        let mut row = vec![n.to_string()];
        for s in &curves {
            let t = hybrid_cost(CollectiveOp::Broadcast, s, CostContext::LINEAR).eval(n, &machine);
            row.push(format!("{t:.6e}"));
        }
        rows.push(row);
    }
    println!("{}", csv(&header_refs, &rows));

    // The winner at each length over the FULL strategy space — the
    // "lower envelope" the library's selector follows.
    println!("selector's choice (full enumeration) per message length:");
    let mut t = Table::new(vec!["bytes", "strategy", "predicted time (s)"]);
    for n in pow2_sweep(8, 1 << 20, 2) {
        let s = best_strategy(
            CollectiveOp::Broadcast,
            30,
            n,
            &machine,
            CostContext::LINEAR,
        );
        let time = hybrid_cost(CollectiveOp::Broadcast, &s, CostContext::LINEAR).eval(n, &machine);
        t.row(vec![n.to_string(), s.to_string(), format!("{time:.6e}")]);
    }
    println!("{}", t.render());
}
