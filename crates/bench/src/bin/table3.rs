//! Regenerates the paper's **Table 3**: times for representative
//! collective communications on a 16 × 32 mesh of nodes — NX baseline vs
//! the InterCom library at 8 B, 64 KB and 1 MB — on the simulated
//! Paragon.
//!
//! Run: `cargo run -p intercom-bench --release --bin table3`
//! (add `-- --quick` for an 8×16 mesh smoke run)

use intercom_bench::measure::{bcast_time, collect_time, gsum_time, Series};
use intercom_bench::report::{fmt_bytes, fmt_secs, Table};
use intercom_bench::sizes::TABLE3_LENGTHS;
use intercom_cost::MachineParams;
use intercom_topology::Mesh2D;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mesh = if quick {
        Mesh2D::new(8, 16)
    } else {
        Mesh2D::new(16, 32)
    };
    let machine = MachineParams::PARAGON;

    println!(
        "Table 3 — time (in sec.) for the representative collective\n\
         communications; all results for a {} of nodes (simulated\n\
         Paragon, alpha={:.0}us beta={:.1}ns/B gamma={:.0}ns/B delta={:.0}us).\n",
        mesh,
        machine.alpha * 1e6,
        machine.beta * 1e9,
        machine.gamma * 1e9,
        machine.delta * 1e6
    );

    // Paper's measured values for the 16x32 mesh, for side-by-side
    // comparison (NX, iCC) per (operation, length).
    let paper: &[(&str, [(f64, f64); 3])] = &[
        (
            "Broadcast",
            [(0.0012, 0.0013), (0.031, 0.012), (0.94, 0.075)],
        ),
        ("Collect", [(0.27, 0.0035), (0.32, 0.013), (0.51, 0.10)]),
        (
            "Global Sum",
            [(0.0036, 0.0041), (0.17, 0.024), (2.72, 0.17)],
        ),
    ];

    let mut t = Table::new(vec![
        "Operation",
        "length",
        "NX",
        "Intercom",
        "ratio",
        "paper NX",
        "paper iCC",
        "paper ratio",
    ]);

    for (op_idx, op) in ["Broadcast", "Collect", "Global Sum"].iter().enumerate() {
        for (len_idx, &n) in TABLE3_LENGTHS.iter().enumerate() {
            let run = |series: Series| -> f64 {
                let t0 = std::time::Instant::now();
                let sim = match op_idx {
                    0 => bcast_time(mesh, machine, n, series),
                    1 => collect_time(mesh, machine, n, series),
                    _ => gsum_time(mesh, machine, n, series),
                };
                eprintln!(
                    "[progress] {op} n={n} {}: sim={sim:.6}s (host {:.1?})",
                    series.label(),
                    t0.elapsed()
                );
                sim
            };
            let nx = run(Series::Nx);
            let icc = run(Series::IccAuto);
            let (pnx, picc) = paper[op_idx].1[len_idx];
            t.row(vec![
                op.to_string(),
                fmt_bytes(n),
                fmt_secs(nx),
                fmt_secs(icc),
                format!("{:.2}", nx / icc),
                fmt_secs(pnx),
                fmt_secs(picc),
                format!("{:.2}", pnx / picc),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "shape checks: NX competitive at 8 B (ratio < ~1.5); order-of-\n\
         magnitude iCC wins for 64 K/1 M collect & global sum; collect's\n\
         NX column nearly flat in n (sequential spanning trees)."
    );
}
