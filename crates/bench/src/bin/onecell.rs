//! Internal diagnostic: run a single Table-3 cell given op/series/bytes.
use intercom_bench::measure::{bcast_time, collect_time, gsum_time, Series};
use intercom_cost::MachineParams;
use intercom_topology::Mesh2D;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let op = args.first().map(String::as_str).unwrap_or("gsum");
    let series = match args.get(1).map(String::as_str) {
        Some("nx") => Series::Nx,
        _ => Series::IccAuto,
    };
    let n: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1 << 20);
    let rows: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(16);
    let cols: usize = args.get(4).and_then(|a| a.parse().ok()).unwrap_or(32);
    let mesh = Mesh2D::new(rows, cols);
    let m = MachineParams::PARAGON;
    let t0 = std::time::Instant::now();
    let sim = match op {
        "bcast" => bcast_time(mesh, m, n, series),
        "collect" => collect_time(mesh, m, n, series),
        _ => gsum_time(mesh, m, n, series),
    };
    println!(
        "{op} {series:?} n={n} {rows}x{cols}: sim={sim:.6}s host={:?}",
        t0.elapsed()
    );
}
