//! Prints the §5 composed-algorithm cost catalog — the paper's inline
//! cost formulas for all seven collectives, regenerated from the model.
//!
//! Run: `cargo run -p intercom-bench --bin section5 -- [p]`

use intercom_cost::composed::render_catalog;

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    println!("§5 composed algorithms on a {p}-node linear array\n");
    println!("{}", render_catalog(p));
    println!("(α coefficients: ⌈log p⌉ = startup-optimal; 2⌈log p⌉ = within the");
    println!(" paper's factor-2 claim; p−1-class terms are the bucket algorithms)");
}
