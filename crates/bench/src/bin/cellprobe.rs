//! Internal profiling probe: times each Table-3 cell on the host so slow
//! simulation paths can be identified. Not part of the reproduction.
use intercom_bench::measure::{bcast_time, collect_time, gsum_time, Series};
use intercom_cost::MachineParams;
use intercom_topology::Mesh2D;
use std::time::Instant;

fn main() {
    let mesh = Mesh2D::new(8, 16);
    let m = MachineParams::PARAGON;
    for (name, f) in [
        (
            "bcast",
            bcast_time as fn(Mesh2D, MachineParams, usize, Series) -> f64,
        ),
        ("collect", collect_time),
        ("gsum", gsum_time),
    ] {
        for n in [8usize, 65536, 1 << 20] {
            for s in [Series::Nx, Series::IccAuto] {
                let t0 = Instant::now();
                let sim = f(mesh, m, n, s);
                println!(
                    "{name:>8} n={n:>8} {:>8}: sim={sim:.6}s host={:?}",
                    s.label(),
                    t0.elapsed()
                );
            }
        }
    }
}
