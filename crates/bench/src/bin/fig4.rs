//! Regenerates the paper's **Fig. 4**: performance of representative
//! hybrid collective communication operations on the (simulated)
//! Paragon. Left: collect on a 16 × 32 physical mesh. Right: broadcast
//! on a 15 × 30 physical mesh (deviating significantly from a
//! power-of-two mesh).
//!
//! Emits one CSV block per panel with iCC (auto), iCC-short, iCC-long
//! and NX series over message lengths 8 B – 1 MB.
//!
//! Run: `cargo run -p intercom-bench --release --bin fig4`
//! (add `-- --quick` for smaller meshes / sparser sweep)

use intercom_bench::measure::{bcast_time, collect_time, Series};
use intercom_bench::report::csv;
use intercom_bench::sizes::pow2_sweep;
use intercom_cost::MachineParams;
use intercom_topology::Mesh2D;

const SERIES: [Series; 4] = [
    Series::IccAuto,
    Series::IccShort,
    Series::IccLong,
    Series::Nx,
];

fn panel(
    title: &str,
    mesh: Mesh2D,
    machine: MachineParams,
    sweep: &[usize],
    f: impl Fn(Mesh2D, MachineParams, usize, Series) -> f64,
) {
    println!("## {title} ({mesh})");
    let mut header: Vec<&str> = vec!["bytes"];
    header.extend(SERIES.iter().map(|s| s.label()));
    let mut rows = Vec::new();
    for &n in sweep {
        let mut row = vec![n.to_string()];
        for s in SERIES {
            row.push(format!("{:.6e}", f(mesh, machine, n, s)));
        }
        rows.push(row);
    }
    println!("{}", csv(&header, &rows));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let machine = MachineParams::PARAGON;
    let (collect_mesh, bcast_mesh, step) = if quick {
        (Mesh2D::new(8, 16), Mesh2D::new(5, 10), 3)
    } else {
        (Mesh2D::new(16, 32), Mesh2D::new(15, 30), 2)
    };
    let sweep = pow2_sweep(8, 1 << 20, step);

    println!("Fig. 4 — simulated Paragon, machine = PARAGON preset\n");
    panel("Collect", collect_mesh, machine, &sweep, collect_time);
    panel("Broadcast", bcast_mesh, machine, &sweep, bcast_time);
    println!(
        "shape checks: iCC tracks min(short, long) with the crossover\n\
         visible mid-range; NX parallels iCC-short for broadcast but is\n\
         offset ~flat for collect; the 15x30 panel shows non-power-of-two\n\
         grids cost no cliff (the paper's headline claim)."
    );
}
