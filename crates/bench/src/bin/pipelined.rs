//! The §8 experiment the paper *describes but does not plot*: pipelined
//! long-vector broadcasts are theoretically superior (β → 1·nβ vs the
//! scatter/collect broadcast's 2·nβ) yet "more succeptible to timing
//! irregulaties resulting from the more complex operating systems of
//! current generation machines … often outperformed by simpler
//! algorithms when implemented on real systems."
//!
//! We measure both claims on the simulator: on an ideal ring the
//! pipelined broadcast wins for long vectors; with per-message timing
//! jitter (deterministic, seeded) its lock-step segment chain degrades
//! much faster than the scatter/collect broadcast, and the simpler
//! algorithm wins again — the reason InterCom shipped without it.
//!
//! Run: `cargo run -p intercom-bench --release --bin pipelined`

use intercom::comm::GroupComm;
use intercom::primitives::{optimal_segments, pipelined_ring_bcast};
use intercom::{Algo, Communicator};
use intercom_bench::report::{fmt_bytes, Table};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Mesh2D;

const P: usize = 64;

fn run_pipelined(machine: MachineParams, n: usize, jitter: f64, seed: u64) -> f64 {
    let cfg = SimConfig::new(Mesh2D::new(1, P), machine).with_jitter(jitter, seed);
    let m = optimal_segments(P, n, &machine);
    simulate(&cfg, move |c| {
        let gc = GroupComm::world(c);
        let mut buf = vec![0u8; n];
        pipelined_ring_bcast(&gc, 0, &mut buf, m, 0).unwrap();
    })
    .elapsed
}

fn run_scatter_collect(machine: MachineParams, n: usize, jitter: f64, seed: u64) -> f64 {
    let cfg = SimConfig::new(Mesh2D::new(1, P), machine).with_jitter(jitter, seed);
    simulate(&cfg, move |c| {
        let cc = Communicator::world(c, machine);
        let mut buf = vec![0u8; n];
        cc.bcast_with(0, &mut buf, &Algo::Long).unwrap();
    })
    .elapsed
}

fn main() {
    let machine = MachineParams::PARAGON;
    println!("§8 — pipelined vs scatter/collect broadcast, {P}-node ring\n");

    for jitter in [0.0f64, 1.0] {
        println!("== per-message jitter: {}% ==", (jitter * 100.0) as u32);
        let mut t = Table::new(vec![
            "bytes",
            "segments m*",
            "pipelined (s)",
            "scatter/collect (s)",
            "pipe/sc",
        ]);
        for n in [4096usize, 65536, 1 << 20] {
            // Average over a few seeds when jittered.
            let seeds: &[u64] = if jitter == 0.0 { &[0] } else { &[1, 2, 3, 4] };
            let pipe: f64 = seeds
                .iter()
                .map(|&s| run_pipelined(machine, n, jitter, s))
                .sum::<f64>()
                / seeds.len() as f64;
            let sc: f64 = seeds
                .iter()
                .map(|&s| run_scatter_collect(machine, n, jitter, s))
                .sum::<f64>()
                / seeds.len() as f64;
            t.row(vec![
                fmt_bytes(n),
                optimal_segments(P, n, &machine).to_string(),
                format!("{pipe:.6}"),
                format!("{sc:.6}"),
                format!("{:.2}", pipe / sc),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "expected shape: pipelined < scatter/collect at 1 MB without jitter;\n\
         the ratio degrades (or flips) under jitter — the paper's reason for\n\
         shipping the simpler algorithm."
    );
}
