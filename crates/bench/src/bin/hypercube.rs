//! The §11 iPSC/860 port: run the library on a simulated hypercube with
//! Gray-code ring embedding and hypercube-tuned machine constants, and
//! reproduce the §8 observation on that machine class too — the
//! theoretically superior pipelined broadcast beats scatter/collect on an
//! ideal cube but degrades under timing irregularities.
//!
//! Run: `cargo run -p intercom-bench --release --bin hypercube`

use intercom::comm::GroupComm;
use intercom::primitives::{optimal_segments, pipelined_ring_bcast};
use intercom::{Algo, Communicator, ReduceOp};
use intercom_bench::report::{fmt_bytes, Table};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Hypercube;

const D: u32 = 6; // 64-node cube, an iPSC/860-era size

fn bcast(cube: Hypercube, m: MachineParams, n: usize, algo: Algo, jitter: f64) -> f64 {
    let cfg = SimConfig::hypercube(cube, m).with_jitter(jitter, 7);
    simulate(&cfg, move |c| {
        let cc = Communicator::world_on_hypercube(c, m, cube).unwrap();
        let mut buf = vec![0u8; n];
        cc.bcast_with(0, &mut buf, &algo).unwrap();
    })
    .elapsed
}

fn bcast_pipelined(cube: Hypercube, m: MachineParams, n: usize, jitter: f64) -> f64 {
    let cfg = SimConfig::hypercube(cube, m).with_jitter(jitter, 7);
    let p = cube.nodes();
    let segs = optimal_segments(p, n, &m);
    simulate(&cfg, move |c| {
        // Pipeline along the Gray-code Hamiltonian ring.
        let gc = GroupComm::new(c, cube.gray_ring()).unwrap();
        let mut buf = vec![0u8; n];
        pipelined_ring_bcast(&gc, 0, &mut buf, segs, 0).unwrap();
    })
    .elapsed
}

fn gsum(cube: Hypercube, m: MachineParams, n: usize) -> f64 {
    let cfg = SimConfig::hypercube(cube, m);
    simulate(&cfg, move |c| {
        let cc = Communicator::world_on_hypercube(c, m, cube).unwrap();
        let mut buf = vec![1.0f64; (n / 8).max(1)];
        cc.allreduce(&mut buf, ReduceOp::Sum).unwrap();
    })
    .elapsed
}

fn main() {
    let cube = Hypercube::new(D);
    let machine = MachineParams::IPSC860;
    println!("iPSC/860 port: {cube}, Gray-code ring embedding\n");

    println!("broadcast, simulated seconds:");
    let mut t = Table::new(vec![
        "bytes",
        "short (MST)",
        "long (SC)",
        "auto",
        "pipelined",
    ]);
    for n in [8usize, 4096, 65536, 1 << 20] {
        t.row(vec![
            fmt_bytes(n),
            format!("{:.6}", bcast(cube, machine, n, Algo::Short, 0.0)),
            format!("{:.6}", bcast(cube, machine, n, Algo::Long, 0.0)),
            format!("{:.6}", bcast(cube, machine, n, Algo::Auto, 0.0)),
            format!("{:.6}", bcast_pipelined(cube, machine, n, 0.0)),
        ]);
    }
    println!("{}", t.render());

    println!("§8 on the cube — 1 MB broadcast under timing jitter:");
    let mut t = Table::new(vec!["jitter", "scatter/collect", "pipelined", "pipe/sc"]);
    for jitter in [0.0f64, 0.5, 1.0] {
        let sc = bcast(cube, machine, 1 << 20, Algo::Long, jitter);
        let pipe = bcast_pipelined(cube, machine, 1 << 20, jitter);
        t.row(vec![
            format!("{}%", (jitter * 100.0) as u32),
            format!("{sc:.6}"),
            format!("{pipe:.6}"),
            format!("{:.2}", pipe / sc),
        ]);
    }
    println!("{}", t.render());

    println!("global sum, simulated seconds:");
    let mut t = Table::new(vec!["bytes", "iCC auto"]);
    for n in [8usize, 65536, 1 << 20] {
        t.row(vec![fmt_bytes(n), format!("{:.6}", gsum(cube, machine, n))]);
    }
    println!("{}", t.render());
}
