//! `hier` — flat-vs-hierarchical A/B on simulated clusters.
//!
//! For PARAGON- and DELTA-backbone two-level machines (inter-node β
//! 15× / 10× the intra-node β), executes each collective twice on the
//! *same* simulated cluster fabric — the selected hierarchical hybrid
//! and the best flat strategy under the level-blind model — and
//! compares virtual completion times. This turns the two-level cost
//! model's claim into an executed measurement, not a self-grade.
//!
//! The CI gate (`--smoke` only trims the size sweep; the gate always
//! applies): on the **delta backbone** — inter β exactly 10× intra β
//! over pure §2-style links — the hybrid must **strictly** beat the
//! best flat strategy for broadcast and combine-to-all at ≥ 2 cluster
//! shapes at the long-vector point. The paragon backbone is reported
//! for contrast but not gated: its inter network inherits §7.1's
//! `link_excess = 2`, which halves inter-link contention, and combined
//! with the intra-node locality node-major placement hands every flat
//! ring (most hops of a world-rank ring stay inside a node), the
//! level-blind strategies keep up there — an honest limit of the
//! two-level model, visible only because this is an executed A/B and
//! not the model grading itself. The run also persists the per-machine
//! cluster selection tables (`target/seltab-*-cluster.txt`) and
//! demands a same-version reload serve from disk.
//!
//! Run: `cargo run --release -p intercom-bench --bin hier`
//! Emits `BENCH_hier.json` in the current directory.

use intercom::comm::GroupComm;
use intercom::{algorithms, hier_allreduce, hier_broadcast, hier_collect, ReduceOp};
use intercom_cost::seltab::load_or_build_cluster;
use intercom_cost::{
    best_strategy, select_hier, ClusterShape, CollectiveOp, CostContext, HierMachine, TunedHier,
};
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::{Cluster, Mesh2D};
use std::process::ExitCode;

/// Cluster shapes under test (fat nodes, a 2x2 inter mesh, thin nodes).
fn shapes() -> [ClusterShape; 3] {
    [
        ClusterShape {
            inter_rows: 1,
            inter_cols: 4,
            ranks_per_node: 4,
        },
        ClusterShape {
            inter_rows: 2,
            inter_cols: 2,
            ranks_per_node: 4,
        },
        ClusterShape {
            inter_rows: 1,
            inter_cols: 8,
            ranks_per_node: 2,
        },
    ]
}

/// Simulated virtual times `(t_hier, t_flat)` plus the two strategy
/// strings, for one op × shape × machine × size.
fn ab(
    op: CollectiveOp,
    shape: ClusterShape,
    machine: &HierMachine,
    n: usize,
) -> (f64, f64, String, String) {
    let cluster = Cluster::new(
        Mesh2D::new(shape.inter_rows, shape.inter_cols),
        shape.ranks_per_node,
    );
    let p = shape.ranks();
    let hs = select_hier(op, shape, n, machine).expect("op has a two-level template");
    let inter = machine.inter();
    let flat = best_strategy(op, p, n, inter, CostContext::linear_with(inter));
    let run = |hier: bool| {
        let hs = hs.clone();
        let flat = flat.clone();
        let cfg = SimConfig::cluster(cluster, machine);
        simulate(&cfg, move |c| {
            let gc = GroupComm::world(c);
            match op {
                CollectiveOp::Broadcast => {
                    let mut buf = vec![1u8; n];
                    if hier {
                        hier_broadcast(&gc, &hs, 0, &mut buf, 0).unwrap();
                    } else {
                        algorithms::broadcast(&gc, &flat, 0, &mut buf, 0).unwrap();
                    }
                }
                CollectiveOp::CombineToAll => {
                    let mut buf = vec![1u8; n];
                    if hier {
                        hier_allreduce(&gc, &hs, &mut buf, ReduceOp::Max, 0).unwrap();
                    } else {
                        algorithms::allreduce(&gc, &flat, &mut buf, ReduceOp::Max, 0).unwrap();
                    }
                }
                CollectiveOp::Collect => {
                    let b = (n / p).max(1);
                    let mine = vec![1u8; b];
                    let mut all = vec![0u8; p * b];
                    if hier {
                        hier_collect(&gc, &hs, &mine, &mut all, 0).unwrap();
                    } else {
                        algorithms::collect(&gc, &flat, &mine, &mut all, 0).unwrap();
                    }
                }
                _ => unreachable!("op not in the A/B sweep"),
            }
        })
        .elapsed
    };
    (run(true), run(false), hs.to_string(), flat.to_string())
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9e}")
    } else {
        "null".into()
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The long-vector point the win gate is evaluated at.
    const N_GATE: usize = 1 << 18;
    let sizes: &[usize] = if smoke { &[N_GATE] } else { &[1 << 13, N_GATE] };
    // (label, machine, whether the win gate applies): the delta
    // backbone is the gate; paragon is the reported contrast case (see
    // the module docs).
    let machines = [
        ("paragon", HierMachine::paragon_cluster(), false),
        ("delta", HierMachine::delta_cluster(), true),
    ];
    let ops = [
        ("broadcast", CollectiveOp::Broadcast),
        ("allreduce", CollectiveOp::CombineToAll),
        ("collect", CollectiveOp::Collect),
    ];

    let mut lines = Vec::new();
    let mut gate_lines = Vec::new();
    let mut pass = true;
    for (label, machine, gate_machine) in &machines {
        for (op_name, op) in &ops {
            let mut wins_at_gate = 0usize;
            for shape in shapes() {
                for &n in sizes {
                    let (t_hier, t_flat, hs, flat) = ab(*op, shape, machine, n);
                    if n == N_GATE && t_hier < t_flat {
                        wins_at_gate += 1;
                    }
                    println!(
                        "{label} {op_name} @{shape} n={n}: flat {flat} {:.3e}s, hier {hs} {:.3e}s ({:.2}x)",
                        t_flat,
                        t_hier,
                        t_flat / t_hier,
                    );
                    lines.push(format!(
                        "    {{\"machine\":\"{label}\",\"op\":\"{op_name}\",\"shape\":\"{shape}\",\
                         \"n\":{n},\"flat\":\"{flat}\",\"hier\":\"{hs}\",\
                         \"t_flat_secs\":{},\"t_hier_secs\":{},\"speedup\":{}}}",
                        json_num(t_flat),
                        json_num(t_hier),
                        json_num(t_flat / t_hier),
                    ));
                }
            }
            // The acceptance gate: broadcast and allreduce hybrids must
            // strictly win at >= 2 shapes; collect is reported only.
            let gated =
                *gate_machine && matches!(op, CollectiveOp::Broadcast | CollectiveOp::CombineToAll);
            if gated && wins_at_gate < 2 {
                eprintln!(
                    "hier gate FAILED: {label} {op_name} hybrid wins only {wins_at_gate}/3 shapes"
                );
                pass = false;
            }
            gate_lines.push(format!(
                "    {{\"machine\":\"{label}\",\"op\":\"{op_name}\",\
                 \"wins_at_gate\":{wins_at_gate},\"gated\":{gated}}}"
            ));
        }
    }

    // Persist the per-machine cluster selection tables and prove a
    // same-version reload is served from disk, not rebuilt.
    std::fs::create_dir_all("target").expect("target dir");
    let mut seltab_ok = true;
    let mut seltab_lines = Vec::new();
    for (label, machine, _) in &machines {
        let tuned = TunedHier::new(machine.clone());
        let shape = ClusterShape::linear(4, 4);
        let path_buf = std::path::PathBuf::from(format!("target/seltab-{label}-cluster.txt"));
        let (first, _) =
            load_or_build_cluster(&path_buf, label, &tuned, shape).expect("write seltab");
        let (again, rebuilt) =
            load_or_build_cluster(&path_buf, label, &tuned, shape).expect("reload seltab");
        let served_from_disk = !rebuilt && again == first;
        if !served_from_disk {
            eprintln!("hier gate FAILED: {label} seltab reload was not served from disk");
            seltab_ok = false;
        }
        println!(
            "seltab {label} v{} at {}: reload served_from_disk={served_from_disk}",
            first.version,
            path_buf.display(),
        );
        seltab_lines.push(format!(
            "    {{\"machine\":\"{label}\",\"version\":{},\"served_from_disk\":{served_from_disk}}}",
            first.version
        ));
    }
    pass = pass && seltab_ok;

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"n_gate\": {N_GATE},\n  \"cases\": [\n{}\n  ],\n  \
         \"gates\": [\n{}\n  ],\n  \"seltab\": [\n{}\n  ],\n  \"pass\": {pass}\n}}\n",
        lines.join(",\n"),
        gate_lines.join(",\n"),
        seltab_lines.join(",\n"),
    );
    std::fs::write("BENCH_hier.json", &json).expect("write BENCH_hier.json");
    println!("wrote BENCH_hier.json");

    if !pass {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
