//! `autotune` — closed-loop drift/refit selection-quality benchmark.
//!
//! Simulates a machine whose true β is 2× the configured Paragon model
//! (a link running at half its nominal bandwidth), streams residual
//! reports from simulated collectives into the [`AutoTuner`], and
//! measures selection quality before and after the refit: for every
//! tracked call shape, the strategy chosen under the *stale* parameters
//! and the one chosen under the *refit* parameters are both priced
//! under the **true** machine. The ratio is the real speedup the closed
//! loop buys.
//!
//! The run is also the CI drift-loop smoke gate (`--smoke` only trims
//! the report sweep; the gate always applies): the binary exits nonzero
//! unless
//!
//! * a [`DriftVerdict`] fires,
//! * the refit β̂ lands within 10% of the true β,
//! * at least one shape re-selects, invalidating cached plans, and
//! * every re-selection is no worse — and at least one strictly
//!   cheaper — under the true machine.
//!
//! Run: `cargo run --release -p intercom-bench --bin autotune`
//! Emits `BENCH_autotune.json` in the current directory.

use intercom::comm::GroupComm;
use intercom::ir::{OptLevel, PlanCache, PlanKey, PlanOp};
use intercom::selector::{choose_strategy, GroupShape};
use intercom::{algorithms, AutoTuner, RetuneReport, TrackedShape};
use intercom_cost::seltab::{load_or_build, Geometry, SelectionTable};
use intercom_cost::{hybrid_cost, CollectiveOp, CostContext, MachineParams, Strategy, TunedParams};
use intercom_meshsim::{simulate, SimConfig};
use intercom_obs::{analyze, ResidualReport, RunRecord};
use intercom_topology::Mesh2D;
use std::process::ExitCode;

/// Refit accuracy the gate demands: |β̂ − β_true| / β_true ≤ 10%.
const REFIT_TOLERANCE: f64 = 0.10;

/// Records one broadcast on the simulated *true* machine and folds it
/// against the *configured* parameters — the production feedback
/// artifact the drift monitor consumes. Scatter-collect strategies give
/// the fit two independent stages, so α̂/β̂ are identifiable.
fn residual_on_true_machine(
    strategy: &Strategy,
    p: usize,
    n: usize,
    true_machine: MachineParams,
    configured: &MachineParams,
) -> ResidualReport {
    let cfg = SimConfig::new(Mesh2D::new(1, p), true_machine).with_trace();
    let rep = simulate(&cfg, |c| {
        use intercom::Comm as _;
        let gc = GroupComm::world(c);
        let mut buf = vec![0u8; n];
        if c.rank() == 0 {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (i % 251) as u8;
            }
        }
        algorithms::broadcast(&gc, strategy, 0, &mut buf, 0).expect("simulated broadcast");
    });
    let trace = rep.trace.expect("tracing enabled");
    let run = RunRecord::from_transfers(trace.records(), p);
    analyze(
        &run,
        CollectiveOp::Broadcast,
        strategy,
        CostContext::linear_with(configured),
        configured,
        n,
    )
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".into()
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reports = if smoke { 4 } else { 12 };

    let configured = MachineParams::PARAGON_MODEL;
    let mut true_machine = configured;
    true_machine.beta *= 2.0;

    // Call shapes near the MST / scatter-collect crossover, where the
    // β shift genuinely changes the best answer (found by sweeping the
    // selector under both parameter sets).
    let shapes = [
        (
            PlanOp::Broadcast { root: 0 },
            CollectiveOp::Broadcast,
            8usize,
            16384usize,
        ),
        (
            PlanOp::AllReduce,
            CollectiveOp::CombineToAll,
            12usize,
            8192usize,
        ),
    ];

    let mut tuner = AutoTuner::new(configured);
    let cache = PlanCache::new();
    for (plan_op, cost_op, p, n) in shapes {
        tuner.track(TrackedShape {
            plan_op,
            cost_op,
            shape: GroupShape::Linear(p),
            n_elems: n,
            elem_size: 1,
            n_cost_bytes: n,
        });
        // Warm the cache with the stale choice, exactly as a production
        // process that planned before the link degraded would have.
        let stale = choose_strategy(cost_op, GroupShape::Linear(p), n, &configured);
        cache
            .warm_up([PlanKey {
                op: plan_op,
                p,
                n,
                elem_size: 1,
                strategy: Some(stale),
                hier: None,
                opt: OptLevel::Full,
            }])
            .expect("warm-up compiles");
    }
    let warmed_before = cache.stats().entries;

    // Stream residual reports from the degraded machine until the
    // monitor's confidence gate opens and the verdict fires.
    let fit_strategy = Strategy::pure_long(8);
    let mut retune: Option<RetuneReport> = None;
    let mut fed = 0usize;
    for _ in 0..reports {
        let report = residual_on_true_machine(&fit_strategy, 8, 16384, true_machine, &configured);
        fed += 1;
        if let Some(r) = tuner.observe_with_cache(&report, &cache) {
            retune = Some(r);
            break;
        }
    }

    let Some(retune) = retune else {
        eprintln!("autotune gate FAILED: no drift verdict after {fed} residual reports");
        return ExitCode::FAILURE;
    };

    let refit_beta = retune.new_params.beta;
    let beta_rel_err = (refit_beta - true_machine.beta).abs() / true_machine.beta;

    // Persisted selection table for the calibrated host: write the
    // as-configured (v1) table, then demand the refit's version bump
    // invalidates it and the rebuilt table re-prices at least one range.
    std::fs::create_dir_all("target").expect("target dir");
    let seltab_path = std::path::Path::new("target/seltab-host.txt");
    let stale_tab =
        SelectionTable::build("host", &TunedParams::new(configured), Geometry::Linear(8));
    stale_tab.save(seltab_path).expect("write seltab");
    let refit_tuned = TunedParams {
        current: retune.new_params,
        version: retune.version,
    };
    let (refit_tab, seltab_rebuilt) =
        load_or_build(seltab_path, "host", &refit_tuned, Geometry::Linear(8))
            .expect("reload seltab");
    let seltab_repriced = refit_tab.tables != stale_tab.tables;
    println!(
        "seltab: v{} -> v{} at {}, rebuilt={seltab_rebuilt}, repriced={seltab_repriced}",
        stale_tab.version,
        refit_tab.version,
        seltab_path.display(),
    );

    // Score every re-selection under the TRUE machine: this is the
    // speedup the loop actually delivers, not the model's self-grade.
    let mut lines = Vec::new();
    let mut any_strictly_better = false;
    let mut all_no_worse = true;
    for r in &retune.reselections {
        let ctx = match r.shape.shape {
            GroupShape::Linear(_) | GroupShape::Cluster { .. } => {
                CostContext::linear_with(&true_machine)
            }
            GroupShape::Mesh { .. } => CostContext::mesh_with(&true_machine),
        };
        let price = |s: &Strategy| {
            hybrid_cost(r.shape.cost_op, s, ctx).eval(r.shape.n_cost_bytes, &true_machine)
        };
        let (old_true, new_true) = (price(&r.old), price(&r.new));
        if new_true < old_true {
            any_strictly_better = true;
        }
        if new_true > old_true {
            all_no_worse = false;
        }
        println!(
            "reselect {:?} p={} n={}: {} -> {}  true-machine {:.3e}s -> {:.3e}s ({:.2}x), {} plans invalidated",
            r.shape.cost_op,
            r.shape.shape.nodes(),
            r.shape.n_cost_bytes,
            r.old,
            r.new,
            old_true,
            new_true,
            old_true / new_true,
            r.invalidated,
        );
        lines.push(format!(
            "    {{\"op\":\"{:?}\",\"p\":{},\"n\":{},\"old\":\"{}\",\"new\":\"{}\",\
             \"old_true_secs\":{},\"new_true_secs\":{},\"invalidated\":{}}}",
            r.shape.cost_op,
            r.shape.shape.nodes(),
            r.shape.n_cost_bytes,
            r.old,
            r.new,
            json_num(old_true),
            json_num(new_true),
            r.invalidated,
        ));
    }

    let pass = beta_rel_err <= REFIT_TOLERANCE
        && !retune.reselections.is_empty()
        && retune.invalidated > 0
        && retune.warmed > 0
        && any_strictly_better
        && all_no_worse
        && seltab_rebuilt
        && seltab_repriced;

    println!(
        "drift verdict after {fed} reports: β {:.3e} -> {:.3e} (true {:.3e}, err {:.1}%), \
         params v{}, {} invalidated, {} re-warmed",
        configured.beta,
        refit_beta,
        true_machine.beta,
        beta_rel_err * 100.0,
        retune.version,
        retune.invalidated,
        retune.warmed,
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"reports_fed\": {fed},\n  \
         \"configured_beta\": {},\n  \"true_beta\": {},\n  \"refit_beta\": {},\n  \
         \"refit_beta_rel_err\": {},\n  \"refit_tolerance\": {REFIT_TOLERANCE},\n  \
         \"params_version\": {},\n  \"warmed_before\": {warmed_before},\n  \
         \"invalidated\": {},\n  \"rewarmed\": {},\n  \
         \"seltab_rebuilt\": {seltab_rebuilt},\n  \"seltab_repriced\": {seltab_repriced},\n  \
         \"seltab_version\": {},\n  \"reselections\": [\n{}\n  ],\n  \
         \"pass\": {pass}\n}}\n",
        json_num(configured.beta),
        json_num(true_machine.beta),
        json_num(refit_beta),
        json_num(beta_rel_err),
        retune.version,
        retune.invalidated,
        retune.warmed,
        refit_tab.version,
        lines.join(",\n"),
    );
    std::fs::write("BENCH_autotune.json", &json).expect("write BENCH_autotune.json");
    println!("wrote BENCH_autotune.json");

    if !pass {
        eprintln!(
            "autotune gate FAILED: β err {:.1}% (limit {:.0}%), {} reselections, \
             {} invalidated, strictly-better={any_strictly_better}, no-worse={all_no_worse}",
            beta_rel_err * 100.0,
            REFIT_TOLERANCE * 100.0,
            retune.reselections.len(),
            retune.invalidated,
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
