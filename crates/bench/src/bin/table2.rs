//! Regenerates the paper's **Table 2**: "Some choices of hybrids and
//! their expense when broadcasting on a linear array with 30 nodes",
//! listed in increasing order of the β term.
//!
//! Run: `cargo run -p intercom-bench --bin table2`

use intercom_bench::report::Table;
use intercom_cost::collective::hybrid_cost;
use intercom_cost::{enumerate_strategies, CollectiveOp, CostContext, Strategy, StrategyKind};

fn main() {
    println!("Table 2 — broadcast hybrids on a linear array of 30 nodes");
    println!("(paper page 110; cost model of §6 with conflict factors)\n");

    // The strategies the paper lists, in its own grouping.
    let paper_rows: Vec<Strategy> = vec![
        Strategy::new(vec![30], StrategyKind::Mst),
        Strategy::new(vec![2, 15], StrategyKind::Mst),
        Strategy::new(vec![3, 10], StrategyKind::Mst),
        Strategy::new(vec![2, 3, 5], StrategyKind::Mst),
        Strategy::new(vec![2, 15], StrategyKind::ScatterCollect),
        Strategy::new(vec![3, 10], StrategyKind::ScatterCollect),
        Strategy::new(vec![10, 3], StrategyKind::ScatterCollect),
        Strategy::new(vec![5, 6], StrategyKind::ScatterCollect),
        Strategy::new(vec![6, 5], StrategyKind::ScatterCollect),
        Strategy::new(vec![30], StrategyKind::ScatterCollect),
    ];

    let mut rows: Vec<(Strategy, f64)> = paper_rows
        .into_iter()
        .map(|s| {
            let c = hybrid_cost(CollectiveOp::Broadcast, &s, CostContext::LINEAR);
            (s, c.beta_c)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut t = Table::new(vec!["logical mesh", "hybrid", "time"]);
    for (s, _) in &rows {
        // The paper's table shows the α and β terms; drop the library's
        // δ bookkeeping for fidelity (it is reported by `fig2`/`table3`).
        let mut c = hybrid_cost(CollectiveOp::Broadcast, s, CostContext::LINEAR);
        c.delta_c = 0.0;
        t.row(vec![s.mesh_name(), s.letters(), c.display_over(30)]);
    }
    println!("{}", t.render());

    println!(
        "note: the MST broadcast costs 5α + 5nβ; hybrids above it in the\n\
         table are included to illustrate the mechanism (paper footnote 1).\n"
    );

    // Beyond the paper: the full enumeration and the frontier.
    let all = enumerate_strategies(30, 0);
    println!("full §6 design space for p = 30: {} strategies", all.len());
    let mut best_alpha = f64::INFINITY;
    let mut frontier = Vec::new();
    let mut by_beta: Vec<_> = all
        .iter()
        .map(|s| {
            let c = hybrid_cost(CollectiveOp::Broadcast, s, CostContext::LINEAR);
            (s, c)
        })
        .collect();
    by_beta.sort_by(|a, b| {
        a.1.beta_c
            .total_cmp(&b.1.beta_c)
            .then(a.1.alpha_c.total_cmp(&b.1.alpha_c))
    });
    for (s, c) in by_beta {
        if c.alpha_c < best_alpha {
            best_alpha = c.alpha_c;
            frontier.push((s, c));
        }
    }
    frontier.reverse();
    println!("Pareto frontier (α vs β), latency-optimal first:");
    let mut ft = Table::new(vec!["logical mesh", "hybrid", "time"]);
    for (s, c) in frontier {
        let shown = intercom_cost::CostExpr { delta_c: 0.0, ..c };
        ft.row(vec![s.mesh_name(), s.letters(), shown.display_over(30)]);
    }
    println!("{}", ft.render());
}
