//! Transport hot-path throughput: the zero-allocation PR's headline
//! numbers.
//!
//! Measures, on the threaded backend, wall-clock bytes/sec for
//! broadcast / collect / allreduce at 8 B – 1 MB driven through
//! persistent plans (the steady-state path: frozen strategy, plan-held
//! scratch, pooled transport payloads, zero-copy rendezvous
//! `sendrecv`); an A/B at 64 KB and 1 MB against the pre-PR hot path
//! (ad-hoc per-call strategy selection and scratch on an
//! allocate-per-hop, copy-twice transport); the
//! transport pool's steady-state hit rate; and the simulator's event
//! throughput (completed transfers per wall second on a 4×4 mesh).
//!
//! Run: `cargo run --release -p intercom-bench --bin hotpath`
//! (append `-- --smoke` for the 1-iteration CI smoke mode).
//! Emits `BENCH_transport.json` in the current directory.

use intercom::plan::{AllreducePlan, BcastPlan, CollectPlan};
use intercom::{Algo, BufferPool, Comm, Communicator, PoolStats, ReduceOp};
use intercom_bench::report::{fmt_bytes, Table};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_runtime::{run_world_tuned, ThreadComm, DEFAULT_RENDEZVOUS_THRESHOLD};
use intercom_topology::Mesh2D;
use std::time::Instant;

const RANKS: usize = 8;

#[derive(Clone, Copy)]
enum Collective {
    Broadcast,
    Collect,
    Allreduce,
}

impl Collective {
    fn label(self) -> &'static str {
        match self {
            Collective::Broadcast => "broadcast",
            Collective::Collect => "collect",
            Collective::Allreduce => "allreduce",
        }
    }
}

/// Runs `iters` timed repetitions of `what` at `n` payload bytes inside
/// one world (one warm-up repetition first), returning the elapsed
/// seconds and the pool counters aggregated over *all* ranks (a single
/// rank's pool understates misses on asymmetric schedules). `steady`
/// selects this PR's path:
/// persistent plans, pooled payloads, zero-copy rendezvous `sendrecv`.
/// Otherwise every repetition goes through ad-hoc per-call strategy
/// selection and scratch allocation on an allocate-per-hop, copy-twice
/// transport — the pre-PR hot path.
fn timed_loop(what: Collective, n: usize, iters: usize, steady: bool) -> (f64, PoolStats) {
    let planned = steady;
    let body = move |c: &ThreadComm| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let p = c.size();
        let timed = |mut run_once: Box<dyn FnMut() + '_>| {
            run_once(); // warm-up: populate pools, size scratch and stashes
            let t0 = Instant::now();
            for _ in 0..iters {
                run_once();
            }
            t0.elapsed().as_secs_f64()
        };
        let secs = match what {
            Collective::Broadcast => {
                let mut buf = vec![1u8; n];
                if planned {
                    let plan = BcastPlan::<u8>::new(&cc, 0, n);
                    timed(Box::new(move || plan.execute(&cc, &mut buf).unwrap()))
                } else {
                    timed(Box::new(move || cc.bcast(0, &mut buf).unwrap()))
                }
            }
            Collective::Collect => {
                let b = (n / p).max(1);
                let mine = vec![c.rank() as u8; b];
                let mut all = vec![0u8; b * p];
                if planned {
                    let plan = CollectPlan::<u8>::new(&cc, b);
                    timed(Box::new(move || {
                        plan.execute(&cc, &mine, &mut all).unwrap()
                    }))
                } else {
                    timed(Box::new(move || cc.allgather(&mine, &mut all).unwrap()))
                }
            }
            Collective::Allreduce => {
                let mut buf = vec![1.0f64; (n / 8).max(1)];
                if planned {
                    let plan = AllreducePlan::<f64>::new(&cc, buf.len(), ReduceOp::Sum);
                    timed(Box::new(move || plan.execute(&cc, &mut buf).unwrap()))
                } else {
                    timed(Box::new(move || {
                        cc.allreduce(&mut buf, ReduceOp::Sum).unwrap()
                    }))
                }
            }
        };
        (secs, c.pool_stats())
    };
    let (make_pool, rendezvous): (fn() -> BufferPool, usize) = if steady {
        (BufferPool::new, DEFAULT_RENDEZVOUS_THRESHOLD)
    } else {
        (BufferPool::disabled, usize::MAX)
    };
    let out = run_world_tuned(RANKS, make_pool, rendezvous, body);
    // Slowest rank bounds the collective's wall time.
    let secs = out.iter().map(|(s, _)| *s).fold(0.0f64, f64::max);
    let mut stats = PoolStats::default();
    for (_, st) in &out {
        stats.merge(st);
    }
    (secs, stats)
}

/// Best-of-`repeats` [`timed_loop`]: scheduling noise only ever slows a
/// run down, so the minimum is the stable estimate.
fn best_of(
    repeats: usize,
    what: Collective,
    n: usize,
    iters: usize,
    steady: bool,
) -> (f64, PoolStats) {
    let mut best = f64::INFINITY;
    let mut stats = PoolStats::default();
    for _ in 0..repeats {
        let (secs, st) = timed_loop(what, n, iters, steady);
        if secs < best {
            best = secs;
            stats = st;
        }
    }
    (best, stats)
}

fn iters_for(n: usize, smoke: bool) -> usize {
    if smoke {
        1
    } else {
        ((64 << 20) / n.max(1)).clamp(40, 4000)
    }
}

/// Simulator throughput: completed transfers per wall second for an
/// auto-strategy allreduce on a 4×4 PARAGON mesh.
fn sim_events_per_sec(smoke: bool) -> (u64, f64) {
    let mesh = Mesh2D::new(4, 4);
    let machine = MachineParams::PARAGON;
    let runs = if smoke { 1 } else { 8 };
    let elems = if smoke { 256 } else { 8192 };
    let mut events = 0u64;
    let t0 = Instant::now();
    for _ in 0..runs {
        let cfg = SimConfig::new(mesh, machine).with_trace();
        let rep = simulate(&cfg, move |c| {
            let cc = Communicator::world_on_mesh(c, machine, mesh).unwrap();
            let mut buf = vec![1.0f64; elems];
            cc.allreduce_with(&mut buf, ReduceOp::Sum, &Algo::Auto)
                .unwrap();
        });
        events += rep.trace.expect("trace enabled").message_count() as u64;
    }
    (events, t0.elapsed().as_secs_f64())
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[8, 1024, 1 << 20]
    } else {
        &[8, 1024, 65536, 1 << 20]
    };

    let mut table = Table::new(vec![
        "collective",
        "bytes",
        "iters",
        "MB/s",
        "pool hit rate",
    ]);
    let mut entries = Vec::new();
    for &what in &[
        Collective::Broadcast,
        Collective::Collect,
        Collective::Allreduce,
    ] {
        for &n in sizes {
            let iters = iters_for(n, smoke);
            let repeats = if smoke { 1 } else { 3 };
            let (secs, stats) = best_of(repeats, what, n, iters, true);
            let bps = (n as f64 * iters as f64) / secs;
            table.row(vec![
                what.label().to_string(),
                fmt_bytes(n),
                iters.to_string(),
                format!("{:.1}", bps / (1 << 20) as f64),
                stats
                    .hit_rate()
                    .map_or_else(|| "n/a".into(), |r| format!("{r:.3}")),
            ]);
            entries.push(format!(
                "{{\"backend\":\"threaded\",\"collective\":\"{}\",\"bytes\":{n},\
                 \"iters\":{iters},\"secs\":{},\"bytes_per_sec\":{},\
                 \"pool_hit_rate\":{}}}",
                what.label(),
                json_num(secs),
                json_num(bps),
                // null = the pool was never asked (rendezvous bypass),
                // not a perfect or zero rate.
                stats
                    .hit_rate()
                    .map_or_else(|| "null".into(), |r| format!("{r:.6}")),
            ));
        }
    }
    println!("threaded backend, {RANKS} ranks, planned steady state:");
    print!("{}", table.render());

    // A/B: planned + pooled + rendezvous vs the pre-PR hot path
    // (ad-hoc calls, allocate-per-hop copy-twice transport).
    let mut ab = Table::new(vec![
        "collective",
        "bytes",
        "steady MB/s",
        "pre-PR MB/s",
        "speedup",
    ]);
    let mut baselines = Vec::new();
    for &what in &[Collective::Broadcast, Collective::Allreduce] {
        for &n in &[65536usize, 1 << 20] {
            let iters = if smoke { 2 } else { iters_for(n, false) };
            let repeats = if smoke { 1 } else { 5 };
            let (pooled, _) = best_of(repeats, what, n, iters, true);
            let (unpooled, _) = best_of(repeats, what, n, iters, false);
            let speedup = unpooled / pooled;
            let mbs = |s: f64| (n as f64 * iters as f64) / s / (1 << 20) as f64;
            ab.row(vec![
                what.label().to_string(),
                fmt_bytes(n),
                format!("{:.1}", mbs(pooled)),
                format!("{:.1}", mbs(unpooled)),
                format!("{speedup:.2}x"),
            ]);
            baselines.push(format!(
                "{{\"collective\":\"{}\",\"bytes\":{n},\"iters\":{iters},\
                 \"steady_secs\":{},\"prepr_secs\":{},\"speedup\":{}}}",
                what.label(),
                json_num(pooled),
                json_num(unpooled),
                json_num(speedup),
            ));
        }
    }
    println!("\nsteady state vs pre-PR hot path:");
    print!("{}", ab.render());

    let (events, sim_secs) = sim_events_per_sec(smoke);
    let eps = events as f64 / sim_secs;
    println!("\nsimulator: {events} transfers in {sim_secs:.3}s = {eps:.0} events/s");

    let json = format!(
        "{{\n  \"ranks\": {RANKS},\n  \"smoke\": {smoke},\n  \"throughput\": [\n    {}\n  ],\n  \
         \"baseline_1mb\": [\n    {}\n  ],\n  \"simulator\": {{\"transfers\": {events}, \
         \"secs\": {}, \"events_per_sec\": {}}}\n}}\n",
        entries.join(",\n    "),
        baselines.join(",\n    "),
        json_num(sim_secs),
        json_num(eps),
    );
    std::fs::write("BENCH_transport.json", &json).expect("write BENCH_transport.json");
    println!("\nwrote BENCH_transport.json");
}
