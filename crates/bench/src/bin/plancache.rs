//! Plan-cache payoff: compile once and replay vs planning on every call.
//!
//! Two measurements:
//!
//! 1. **Planning cost** (single-threaded): nanoseconds per
//!    [`lower`] call — a full per-rank symbolic replay — against
//!    nanoseconds per [`PlanCache`] hit for the same key, over several
//!    call shapes.
//! 2. **End-to-end** (threaded backend, 8 ranks, 1 KiB allreduce):
//!    steady-state execution through a cached persistent plan against
//!    re-lowering the program on every call before interpreting it.
//!
//! Run: `cargo run --release -p intercom-bench --bin plancache`
//! (append `-- --smoke` for the 1-iteration CI smoke mode).
//! Emits `BENCH_plancache.json` in the current directory.

use intercom::comm::GroupComm;
use intercom::ir::{execute, global_cache, lower, ArgBuf, OptLevel, PlanCache, PlanKey, PlanOp};
use intercom::plan::AllreducePlan;
use intercom::{Communicator, ReduceOp};
use intercom_bench::report::Table;
use intercom_cost::{MachineParams, Strategy};
use intercom_runtime::run_world;
use std::time::Instant;

const RANKS: usize = 8;
/// End-to-end payload: 128 doubles = 1 KiB.
const ELEMS: usize = 128;

struct Shape {
    label: &'static str,
    key: PlanKey,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            label: "allreduce p=8 n=128 f64",
            key: PlanKey {
                op: PlanOp::AllReduce,
                p: 8,
                n: 128,
                elem_size: 8,
                strategy: Some(Strategy::pure_long(8)),
                hier: None,
                opt: OptLevel::Full,
            },
        },
        Shape {
            label: "broadcast p=16 n=4096 u8",
            key: PlanKey {
                op: PlanOp::Broadcast { root: 0 },
                p: 16,
                n: 4096,
                elem_size: 1,
                strategy: Some(Strategy::pure_mst(16)),
                hier: None,
                opt: OptLevel::Full,
            },
        },
        Shape {
            label: "collect p=12 n=512 u8",
            key: PlanKey {
                op: PlanOp::Collect,
                p: 12,
                n: 512,
                elem_size: 1,
                strategy: Some(Strategy::pure_long(12)),
                hier: None,
                opt: OptLevel::Full,
            },
        },
    ]
}

/// Best-of-`repeats` nanoseconds per call of `f` over `iters` calls.
fn ns_per_call(repeats: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best * 1e9
}

/// One end-to-end timing world: 8 ranks run `iters` 1 KiB allreduces
/// (one warm-up first), either through one cached persistent plan or by
/// re-lowering the program before every call. Returns the slowest
/// rank's elapsed seconds.
fn end_to_end(iters: usize, cached: bool) -> f64 {
    let out = run_world(RANKS, move |c| {
        let mut buf = vec![1.0f64; ELEMS];
        let timed = |mut run_once: Box<dyn FnMut() + '_>| {
            run_once(); // warm-up: pools, scratch, cache
            let t0 = Instant::now();
            for _ in 0..iters {
                run_once();
            }
            t0.elapsed().as_secs_f64()
        };
        if cached {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let plan = AllreducePlan::<f64>::new(&cc, ELEMS, ReduceOp::Sum);
            timed(Box::new(move || plan.execute(&cc, &mut buf).unwrap()))
        } else {
            let gc = GroupComm::world(c);
            let strategy = Strategy::pure_long(RANKS);
            let mut scratch = Vec::new();
            timed(Box::new(move || {
                let prog = lower(PlanOp::AllReduce, Some(&strategy), RANKS, ELEMS, 8).unwrap();
                let mut args = [ArgBuf::Out(&mut buf[..])];
                execute(&prog, &gc, ReduceOp::Sum, &mut args, &mut scratch, 0).unwrap();
            }))
        }
    });
    out.into_iter().fold(0.0f64, f64::max)
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let repeats = if smoke { 1 } else { 5 };
    let iters = if smoke { 8 } else { 256 };

    // Planning cost: full lowering vs a cache hit, interleaved A/B.
    let mut table = Table::new(vec!["shape", "lower ns", "cache-hit ns", "speedup"]);
    let mut planning = Vec::new();
    for shape in shapes() {
        let key = &shape.key;
        let lower_ns = ns_per_call(repeats, iters, || {
            let prog = lower(key.op, key.strategy.as_ref(), key.p, key.n, key.elem_size)
                .expect("shape lowers");
            std::hint::black_box(&prog);
        });
        let cache = PlanCache::new();
        cache.get_or_compile(key).expect("shape lowers");
        let hit_ns = ns_per_call(repeats, iters, || {
            let prog = cache.get_or_compile(key).unwrap();
            std::hint::black_box(&prog);
        });
        let speedup = lower_ns / hit_ns;
        table.row(vec![
            shape.label.to_string(),
            format!("{lower_ns:.0}"),
            format!("{hit_ns:.0}"),
            format!("{speedup:.0}x"),
        ]);
        planning.push(format!(
            "{{\"shape\":\"{}\",\"lower_ns\":{},\"cache_hit_ns\":{},\"speedup\":{}}}",
            shape.label,
            json_num(lower_ns),
            json_num(hit_ns),
            json_num(speedup),
        ));
    }
    println!("plan construction (per call):");
    print!("{}", table.render());

    // End-to-end A/B, interleaved best-of: cached persistent plan vs
    // lower-on-every-call, 8 ranks, 1 KiB allreduce.
    let e2e_iters = if smoke { 2 } else { 64 };
    let mut cached_secs = f64::INFINITY;
    let mut percall_secs = f64::INFINITY;
    for _ in 0..repeats {
        cached_secs = cached_secs.min(end_to_end(e2e_iters, true));
        percall_secs = percall_secs.min(end_to_end(e2e_iters, false));
    }
    let e2e_speedup = percall_secs / cached_secs;
    println!(
        "\nend-to-end allreduce ({RANKS} ranks, {} B, {e2e_iters} iters): \
         cached {:.3e} s, per-call planning {:.3e} s, speedup {:.2}x",
        ELEMS * 8,
        cached_secs,
        percall_secs,
        e2e_speedup,
    );

    let stats = global_cache().stats();
    println!(
        "global plan cache: {} hits, {} misses, {} entries",
        stats.hits, stats.misses, stats.entries
    );

    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"planning\": [\n    {}\n  ],\n  \
         \"end_to_end\": {{\"ranks\": {RANKS}, \"bytes\": {}, \"iters\": {e2e_iters}, \
         \"cached_secs\": {}, \"percall_secs\": {}, \"speedup\": {}}},\n  \
         \"global_cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}}}\n}}\n",
        planning.join(",\n    "),
        ELEMS * 8,
        json_num(cached_secs),
        json_num(percall_secs),
        json_num(e2e_speedup),
        stats.hits,
        stats.misses,
        stats.entries,
    );
    std::fs::write("BENCH_plancache.json", &json).expect("write BENCH_plancache.json");
    println!("\nwrote BENCH_plancache.json");
}
