//! Schedule-optimizer payoff: optimized vs unoptimized programs, A/B.
//!
//! For a battery of collective shapes, compiles the schedule IR twice —
//! plain [`lower`] and lower + [`optimize`] — and compares:
//!
//! * **messages**: send halves entering the network (each transfer
//!   counts once; a full-duplex exchange counts its send half);
//! * **wire bytes**: payload bytes over all messages;
//! * **predicted cost**: the flat α/β price `msgs·α + bytes·β` under
//!   the Paragon parameters (aggregate, not critical-path — it prices
//!   exactly what elision and coalescing remove);
//! * **measured time**: virtual seconds to execute each program on the
//!   mesh simulator (fluid α + nβ link model, 1×p array) *and* wall
//!   nanoseconds on the threaded runtime (best-of-N, slowest rank).
//!
//! The small-vector rows are where the optimizer earns its keep: a
//! scatter-collect broadcast of 4 bytes across 9 ranks carries mostly
//! *empty* partition blocks, and every elided empty message saves a
//! full α. Bandwidth-bound rows (4 KiB) pin that optimization never
//! costs time where there is nothing to win.
//!
//! Run: `cargo run --release -p intercom-bench --bin iropt`
//! (append `-- --smoke` for the CI smoke mode; the sweep is identical —
//! the simulator is deterministic — the flag only marks the JSON).
//! Emits `BENCH_iropt.json` in the current directory.

use intercom::comm::GroupComm;
use intercom::ir::{
    execute, execute_scalar, lower, optimize, ArgBuf, CollectiveProgram, OptStats, PlanOp, StepKind,
};
use intercom::{Comm, ReduceOp};
use intercom_bench::report::Table;
use intercom_cost::{MachineParams, Strategy};
use intercom_meshsim::{simulate, SimConfig};
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;
use std::time::Instant;

struct Row {
    label: &'static str,
    op: PlanOp,
    strategy: Option<Strategy>,
    p: usize,
    n: usize,
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            label: "broadcast sc p=9 n=4",
            op: PlanOp::Broadcast { root: 0 },
            strategy: Some(Strategy::pure_long(9)),
            p: 9,
            n: 4,
        },
        Row {
            label: "broadcast sc p=9 n=4096",
            op: PlanOp::Broadcast { root: 0 },
            strategy: Some(Strategy::pure_long(9)),
            p: 9,
            n: 4096,
        },
        Row {
            label: "broadcast mst p=8 n=1024",
            op: PlanOp::Broadcast { root: 0 },
            strategy: Some(Strategy::pure_mst(8)),
            p: 8,
            n: 1024,
        },
        Row {
            label: "allreduce sc p=9 n=4",
            op: PlanOp::AllReduce,
            strategy: Some(Strategy::pure_long(9)),
            p: 9,
            n: 4,
        },
        Row {
            label: "allreduce sc p=9 n=4096",
            op: PlanOp::AllReduce,
            strategy: Some(Strategy::pure_long(9)),
            p: 9,
            n: 4096,
        },
        Row {
            label: "allreduce mst p=8 n=1024",
            op: PlanOp::AllReduce,
            strategy: Some(Strategy::pure_mst(8)),
            p: 8,
            n: 1024,
        },
        Row {
            label: "reduce-scatter sc p=9 n=1",
            op: PlanOp::ReduceScatter,
            strategy: Some(Strategy::pure_long(9)),
            p: 9,
            n: 1,
        },
        Row {
            label: "collect sc p=9 n=1",
            op: PlanOp::Collect,
            strategy: Some(Strategy::pure_long(9)),
            p: 9,
            n: 1,
        },
        Row {
            label: "alltoall p=8 n=13",
            op: PlanOp::Alltoall,
            strategy: None,
            p: 8,
            n: 13,
        },
    ]
}

/// Send halves entering the network and their payload bytes.
fn wire(prog: &CollectiveProgram) -> (usize, usize) {
    let mut msgs = 0;
    let mut bytes = 0;
    for rp in &prog.ranks {
        for step in &rp.steps {
            match step.kind {
                StepKind::Send { src, .. } | StepKind::SendRecv { src, .. } => {
                    msgs += 1;
                    bytes += src.len;
                }
                _ => {}
            }
        }
    }
    (msgs, bytes)
}

/// Executes `prog` on the 1×p simulated array and returns the virtual
/// elapsed seconds.
fn sim_time(prog: &CollectiveProgram, machine: MachineParams) -> f64 {
    let mesh = Mesh2D::new(1, prog.p);
    let n = prog.n;
    let prog = prog.clone();
    simulate(&SimConfig::new(mesh, machine), move |c| {
        run_prog(c, &prog, n)
    })
    .elapsed
}

/// Executes `prog` `iters` times per round on the threaded runtime
/// (one warm-up first) and returns the slowest rank's best-of-`repeats`
/// seconds per iteration.
fn threads_time(prog: &CollectiveProgram, repeats: usize, iters: usize) -> f64 {
    let n = prog.n;
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let prog = prog.clone();
        let out = run_world(prog.p, move |c| {
            run_prog(c, &prog, n); // warm-up: pools, scratch
            let t0 = Instant::now();
            for _ in 0..iters {
                run_prog(c, &prog, n);
            }
            t0.elapsed().as_secs_f64() / iters as f64
        });
        best = best.min(out.into_iter().fold(0.0f64, f64::max));
    }
    best
}

/// Interprets one program with deterministic payloads (buffer layout
/// per [`PlanOp::args`]).
fn run_prog<C: Comm + ?Sized>(comm: &C, prog: &CollectiveProgram, n: usize) {
    let gc = GroupComm::world(comm);
    let p = comm.size();
    let rank = comm.rank();
    let mut scratch = Vec::new();
    let mut run = |args: &mut [ArgBuf<'_, u8>]| {
        if prog.op.combines() {
            execute(prog, &gc, ReduceOp::Max, args, &mut scratch, 0).unwrap();
        } else {
            execute_scalar(prog, &gc, args, &mut scratch, 0).unwrap();
        }
    };
    let fill = |buf: &mut [u8]| {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((i * 7 + rank * 31 + 3) % 251) as u8;
        }
    };
    match prog.op {
        PlanOp::Broadcast { root } | PlanOp::PipelinedBcast { root, .. } => {
            let mut buf = vec![0u8; n];
            if rank == root {
                fill(&mut buf);
            }
            run(&mut [ArgBuf::Out(&mut buf)]);
        }
        PlanOp::Reduce { .. } | PlanOp::AllReduce => {
            let mut buf = vec![0u8; n];
            fill(&mut buf);
            run(&mut [ArgBuf::Out(&mut buf)]);
        }
        PlanOp::ReduceScatter => {
            let mut contrib = vec![0u8; p * n];
            fill(&mut contrib);
            let mut mine = vec![0u8; n];
            run(&mut [ArgBuf::In(&contrib), ArgBuf::Out(&mut mine)]);
        }
        PlanOp::Collect => {
            let mut mine = vec![0u8; n];
            fill(&mut mine);
            let mut all = vec![0u8; p * n];
            run(&mut [ArgBuf::In(&mine), ArgBuf::Out(&mut all)]);
        }
        PlanOp::Scatter { root } => {
            let mut full = vec![0u8; p * n];
            fill(&mut full);
            let mut mine = vec![0u8; n];
            if rank == root {
                run(&mut [ArgBuf::In(&full), ArgBuf::Out(&mut mine)]);
            } else {
                run(&mut [ArgBuf::Absent, ArgBuf::Out(&mut mine)]);
            }
        }
        PlanOp::Gather { root } => {
            let mut mine = vec![0u8; n];
            fill(&mut mine);
            let mut full = vec![0u8; p * n];
            if rank == root {
                run(&mut [ArgBuf::In(&mine), ArgBuf::Out(&mut full)]);
            } else {
                run(&mut [ArgBuf::In(&mine), ArgBuf::Absent]);
            }
        }
        PlanOp::Alltoall => {
            let mut send = vec![0u8; p * n];
            fill(&mut send);
            let mut recv = vec![0u8; p * n];
            run(&mut [ArgBuf::In(&send), ArgBuf::Out(&mut recv)]);
        }
    }
}

fn stats_json(s: &OptStats) -> String {
    format!(
        "{{\"elided\":{},\"fused\":{},\"overlapped\":{},\"coalesced\":{},\"dead_copies\":{}}}",
        s.elided, s.fused, s.overlapped, s.coalesced, s.dead_copies
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke mode trims the wall-clock measurement, not the sweep: the
    // simulator columns are deterministic either way.
    let (repeats, iters) = if smoke { (1, 4) } else { (3, 64) };
    let machine = MachineParams::PARAGON;
    let mut table = Table::new(vec![
        "shape",
        "msgs",
        "opt msgs",
        "pred us",
        "opt pred us",
        "sim us",
        "opt sim us",
        "thr us",
        "opt thr us",
    ]);
    let mut json_rows = Vec::new();
    let mut sim_wins = Vec::new();
    let mut thr_wins = Vec::new();
    for row in rows() {
        let plain = lower(row.op, row.strategy.as_ref(), row.p, row.n, 1).expect("shape lowers");
        let (opt, stats) = optimize(&plain);
        assert!(!stats.reverted, "optimizer reverted {}", row.label);
        let (msgs_a, bytes_a) = wire(&plain);
        let (msgs_b, bytes_b) = wire(&opt);
        let pred =
            |msgs: usize, bytes: usize| msgs as f64 * machine.alpha + bytes as f64 * machine.beta;
        let (pred_a, pred_b) = (pred(msgs_a, bytes_a), pred(msgs_b, bytes_b));
        let sim_a = sim_time(&plain, machine);
        let sim_b = sim_time(&opt, machine);
        // Interleave A/B rounds so ambient machine noise hits both arms.
        let (mut thr_a, mut thr_b) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..repeats {
            thr_a = thr_a.min(threads_time(&plain, 1, iters));
            thr_b = thr_b.min(threads_time(&opt, 1, iters));
        }
        if msgs_b < msgs_a && sim_b < sim_a {
            sim_wins.push(row.label);
        }
        if msgs_b < msgs_a && thr_b < thr_a {
            thr_wins.push(row.label);
        }
        table.row(vec![
            row.label.to_string(),
            msgs_a.to_string(),
            msgs_b.to_string(),
            format!("{:.1}", pred_a * 1e6),
            format!("{:.1}", pred_b * 1e6),
            format!("{:.1}", sim_a * 1e6),
            format!("{:.1}", sim_b * 1e6),
            format!("{:.1}", thr_a * 1e6),
            format!("{:.1}", thr_b * 1e6),
        ]);
        json_rows.push(format!(
            "{{\"shape\":\"{}\",\"msgs\":{msgs_a},\"opt_msgs\":{msgs_b},\
             \"wire_bytes\":{bytes_a},\"opt_wire_bytes\":{bytes_b},\
             \"predicted_secs\":{pred_a:.9},\"opt_predicted_secs\":{pred_b:.9},\
             \"sim_secs\":{sim_a:.9},\"opt_sim_secs\":{sim_b:.9},\
             \"threads_secs\":{thr_a:.9},\"opt_threads_secs\":{thr_b:.9},\
             \"rewrites\":{}}}",
            row.label,
            stats_json(&stats),
        ));
    }
    println!("schedule optimizer A/B (Paragon params, 1xp simulated array + threaded runtime):");
    print!("{}", table.render());
    let render = |wins: &[&str]| {
        if wins.is_empty() {
            "none".to_string()
        } else {
            wins.join(", ")
        }
    };
    println!(
        "\nfewer messages AND lower simulated time: {}",
        render(&sim_wins)
    );
    println!(
        "fewer messages AND lower threaded wall time: {}",
        render(&thr_wins)
    );

    let quote = |wins: &[&str]| {
        wins.iter()
            .map(|w| format!("\"{w}\""))
            .collect::<Vec<_>>()
            .join(",")
    };
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"machine\": \"paragon\",\n  \"rows\": [\n    {}\n  ],\n  \
         \"sim_wins\": [{}],\n  \"threads_wins\": [{}]\n}}\n",
        json_rows.join(",\n    "),
        quote(&sim_wins),
        quote(&thr_wins),
    );
    std::fs::write("BENCH_iropt.json", &json).expect("write BENCH_iropt.json");
    println!("wrote BENCH_iropt.json");
}
