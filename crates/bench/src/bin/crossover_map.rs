//! The selector's phase diagram: which algorithm family wins at each
//! `(p, n)` point — the two-dimensional generalization of Fig. 2's lower
//! envelope, rendered as an ASCII map.
//!
//! Legend: `M` pure MST, `S` pure scatter/collect, `h` a 2-dim hybrid,
//! `H` a ≥3-dim hybrid.
//!
//! Run: `cargo run -p intercom-bench --bin crossover_map`

use intercom_cost::{best_strategy, CollectiveOp, CostContext, MachineParams, StrategyKind};

fn class(p: usize, n: usize, machine: &MachineParams) -> char {
    let s = best_strategy(CollectiveOp::Broadcast, p, n, machine, CostContext::LINEAR);
    match (s.ndims(), s.kind) {
        (1, StrategyKind::Mst) => 'M',
        (1, StrategyKind::ScatterCollect) => 'S',
        (2, _) => 'h',
        _ => 'H',
    }
}

fn main() {
    let machine = MachineParams::PARAGON_MODEL;
    println!("best broadcast algorithm by (p, n) — Paragon model, linear array");
    println!("legend: M = MST, S = scatter/collect, h = 2-dim hybrid, H = deeper hybrid\n");

    let ps: Vec<usize> = (2..=128).filter(|p| p % 2 == 0 || *p < 16).collect();
    print!("{:>5} |", "p\\n");
    let n_exps: Vec<u32> = (3..=20).collect();
    for e in &n_exps {
        print!(
            "{}",
            if e % 2 == 0 {
                ((e / 10) as u8 + b'0') as char
            } else {
                ' '
            }
        );
    }
    println!();
    print!("{:>5} |", "");
    for e in &n_exps {
        print!("{}", ((e % 10) as u8 + b'0') as char);
    }
    println!("   (n = 2^e bytes)");
    println!("{}", "-".repeat(7 + n_exps.len()));
    for &p in &ps {
        if p > 16 && p % 8 != 0 {
            continue;
        }
        print!("{p:>5} |");
        for &e in &n_exps {
            print!("{}", class(p, 1usize << e, &machine));
        }
        println!();
    }

    println!("\ncrossover reading: below the M→hybrid boundary startups dominate;");
    println!("prime p rows show the §6 caveat (no factorization → no hybrids:");
    println!("the selector jumps straight from M to S).");
    for p in [13usize, 31, 127] {
        let line: String = n_exps
            .iter()
            .map(|&e| class(p, 1usize << e, &machine))
            .collect();
        println!("{p:>5} |{line}   (prime)");
    }
}
