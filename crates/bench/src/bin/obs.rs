//! Observability overhead A/B: the cost of the `intercom-obs` layer on
//! the transport hot path, measured and gated.
//!
//! Five configurations of the 64 KiB planned broadcast hot loop on the
//! threaded backend:
//!
//! * **baseline** — `run_world`: no recorder attached, metrics switch
//!   off. This is the all-disabled production path (the per-execute
//!   metrics/flight hooks are always compiled in, guarded by one
//!   relaxed atomic load each).
//! * **disabled** — `run_world_observed` with `disabled_recorders`: a
//!   recorder is attached but off. This is the cost every user pays for
//!   the instrumentation hooks, and the first CI gate: the binary exits
//!   nonzero unless it stays within 3% of baseline;
//! * **metrics-off** — baseline with the metrics/flight switches
//!   asserted off. Second CI gate (the ISSUE's "disabled ≤3%"): the
//!   all-disabled path must stay within 3% of baseline. Today it runs
//!   the identical code, so the gate bounds harness noise and pins the
//!   contract that disabling telemetry costs nothing beyond the
//!   always-present atomic check;
//! * **metrics-on** — metrics registry + flight recorder globally
//!   enabled (no event recorder): per-execute latency histogram,
//!   per-step flight marks. Reported for information (not gated);
//! * **enabled** — `run_world_recorded`: full event + counter
//!   recording, reported for information (not gated).
//!
//! Run: `cargo run --release -p intercom-bench --bin obs`
//! (append `-- --smoke` for the shorter CI gate mode).
//! Emits `BENCH_obs.json` in the current directory.

use intercom::plan::BcastPlan;
use intercom::{Comm, Communicator};
use intercom_cost::MachineParams;
use intercom_obs::{disabled_recorders, flight, metrics, DEFAULT_RING_CAPACITY};
use intercom_runtime::{run_world, run_world_observed, run_world_recorded, ThreadComm};
use std::process::ExitCode;
use std::time::Instant;

const RANKS: usize = 8;
const BYTES: usize = 64 * 1024;

/// Hard ceiling on disabled-recorder and disabled-metrics overhead,
/// enforced in smoke mode.
const GATE_MAX_RATIO: f64 = 1.03;

/// One world: warm-up, then `iters` timed planned broadcasts. Returns
/// this rank's timed seconds; the slowest rank bounds the collective.
fn bcast_loop(c: &ThreadComm, iters: usize) -> f64 {
    let cc = Communicator::world(c, MachineParams::PARAGON);
    let plan = BcastPlan::<u8>::new(&cc, 0, BYTES);
    let mut buf = vec![c.rank() as u8; BYTES];
    plan.execute(&cc, &mut buf).unwrap(); // warm-up: pools, stashes
    let t0 = Instant::now();
    for _ in 0..iters {
        plan.execute(&cc, &mut buf).unwrap();
    }
    t0.elapsed().as_secs_f64()
}

#[derive(Clone, Copy)]
enum Mode {
    Baseline,
    Disabled,
    MetricsOff,
    MetricsOn,
    Enabled,
}

const MODES: [Mode; 5] = [
    Mode::Baseline,
    Mode::Disabled,
    Mode::MetricsOff,
    Mode::MetricsOn,
    Mode::Enabled,
];

fn run_once(mode: Mode, iters: usize) -> f64 {
    let secs = match mode {
        Mode::Baseline => run_world(RANKS, move |c| bcast_loop(c, iters)),
        Mode::Disabled => {
            run_world_observed(RANKS, disabled_recorders(RANKS), move |c| {
                bcast_loop(c, iters)
            })
            .0
        }
        Mode::MetricsOff => {
            assert!(
                !metrics::enabled() && !flight::enabled(),
                "metrics-off mode requires the telemetry switches off"
            );
            run_world(RANKS, move |c| bcast_loop(c, iters))
        }
        Mode::MetricsOn => {
            metrics::set_enabled(true);
            flight::set_enabled(true);
            let secs = run_world(RANKS, move |c| bcast_loop(c, iters));
            metrics::set_enabled(false);
            flight::set_enabled(false);
            secs
        }
        Mode::Enabled => {
            run_world_recorded(RANKS, DEFAULT_RING_CAPACITY, move |c| bcast_loop(c, iters)).0
        }
    };
    secs.into_iter().fold(0.0f64, f64::max)
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (repeats, iters) = if smoke { (5, 400) } else { (9, 1500) };

    // Interleave the modes across repeats instead of running each
    // mode's block back to back: a thermal or scheduler drift then
    // biases all five equally instead of penalizing whichever ran
    // last.
    let mut best = [f64::INFINITY; MODES.len()];
    for _ in 0..repeats {
        for (slot, mode) in MODES.into_iter().enumerate() {
            best[slot] = best[slot].min(run_once(mode, iters));
        }
    }
    let [baseline, disabled, metrics_off, metrics_on, enabled] = best;

    let disabled_ratio = disabled / baseline;
    let metrics_off_ratio = metrics_off / baseline;
    let metrics_on_ratio = metrics_on / baseline;
    let enabled_ratio = enabled / baseline;
    let pass = disabled_ratio <= GATE_MAX_RATIO && metrics_off_ratio <= GATE_MAX_RATIO;

    let mbs = |s: f64| (BYTES as f64 * iters as f64) / s / (1 << 20) as f64;
    let pct = |r: f64| (r - 1.0) * 100.0;
    println!("observability overhead, {RANKS} ranks, 64 KiB planned broadcast, best of {repeats}x{iters}:");
    println!("  baseline (all off):       {:>8.1} MB/s", mbs(baseline));
    println!(
        "  disabled recorder:        {:>8.1} MB/s  ({:+.2}% vs baseline, gate <= +{:.0}%)",
        mbs(disabled),
        pct(disabled_ratio),
        pct(GATE_MAX_RATIO)
    );
    println!(
        "  metrics switch off:       {:>8.1} MB/s  ({:+.2}% vs baseline, gate <= +{:.0}%)",
        mbs(metrics_off),
        pct(metrics_off_ratio),
        pct(GATE_MAX_RATIO)
    );
    println!(
        "  metrics + flight on:      {:>8.1} MB/s  ({:+.2}% vs baseline, informational)",
        mbs(metrics_on),
        pct(metrics_on_ratio)
    );
    println!(
        "  enabled recorder:         {:>8.1} MB/s  ({:+.2}% vs baseline, informational)",
        mbs(enabled),
        pct(enabled_ratio)
    );

    let json = format!(
        "{{\n  \"ranks\": {RANKS},\n  \"bytes\": {BYTES},\n  \"iters\": {iters},\n  \
         \"repeats\": {repeats},\n  \"smoke\": {smoke},\n  \
         \"baseline_secs\": {},\n  \"disabled_recorder_secs\": {},\n  \
         \"metrics_off_secs\": {},\n  \"metrics_on_secs\": {},\n  \
         \"enabled_recorder_secs\": {},\n  \"disabled_overhead_ratio\": {},\n  \
         \"metrics_off_overhead_ratio\": {},\n  \"metrics_on_overhead_ratio\": {},\n  \
         \"enabled_overhead_ratio\": {},\n  \"gate_max_ratio\": {GATE_MAX_RATIO},\n  \
         \"pass\": {pass}\n}}\n",
        json_num(baseline),
        json_num(disabled),
        json_num(metrics_off),
        json_num(metrics_on),
        json_num(enabled),
        json_num(disabled_ratio),
        json_num(metrics_off_ratio),
        json_num(metrics_on_ratio),
        json_num(enabled_ratio),
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    if !pass {
        eprintln!(
            "obs gate FAILED: disabled-recorder {:+.2}% / metrics-off {:+.2}% (limit +{:.0}%)",
            pct(disabled_ratio),
            pct(metrics_off_ratio),
            pct(GATE_MAX_RATIO)
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
