//! Cross-backend equivalence: the threaded backend and the mesh
//! simulator must produce byte-identical results for all seven
//! collectives, across world sizes covering the degenerate (p = 1),
//! odd/prime (p = 5), and composite (p = 12, where hybrid strategies
//! pick multi-dimensional logical meshes) cases, at both a short-vector
//! and a long-vector payload size.
//!
//! Byte-identical is a strong claim for floating point: it holds
//! because both backends run the *same* algorithm code under the same
//! cost-model strategy choice, so every reduction applies its folds in
//! the same order. A divergence means a backend changed semantics —
//! exactly what this test is standing guard against (e.g. the
//! zero-copy rendezvous path reordering or corrupting ring traffic).

use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;

/// Deterministic, rank- and index-dependent test data with enough
/// structure that block permutation bugs can't cancel out.
fn elem(rank: usize, i: usize) -> f64 {
    (rank * 1_000 + i) as f64 * 0.5 + 1.0
}

/// Everything one rank observes after running all seven collectives.
#[derive(Clone, PartialEq, Debug)]
struct Outcome {
    bcast: Vec<f64>,
    reduce: Vec<f64>,
    allreduce: Vec<f64>,
    collect: Vec<f64>,
    reduce_scatter: Vec<f64>,
    scatter: Vec<f64>,
    gather: Vec<f64>,
}

/// Runs the seven collectives back-to-back on one backend's endpoint.
/// `n` is the per-rank block length; root-sized buffers scale by `p`.
fn run_suite<C: Comm + ?Sized>(c: &C, n: usize) -> Outcome {
    let cc = Communicator::world(c, MachineParams::PARAGON);
    let p = c.size();
    let me = c.rank();
    let root = p / 2;

    let mut bcast = (0..n).map(|i| elem(root, i)).collect::<Vec<_>>();
    if me != root {
        bcast.iter_mut().for_each(|x| *x = 0.0);
    }
    cc.bcast(root, &mut bcast).unwrap();

    let mut reduce = (0..n).map(|i| elem(me, i)).collect::<Vec<_>>();
    cc.reduce(root, &mut reduce, ReduceOp::Sum).unwrap();

    let mut allreduce = (0..n).map(|i| elem(me, i)).collect::<Vec<_>>();
    cc.allreduce(&mut allreduce, ReduceOp::Max).unwrap();

    let mine = (0..n).map(|i| elem(me, i)).collect::<Vec<_>>();
    let mut collect = vec![0.0; n * p];
    cc.allgather(&mine, &mut collect).unwrap();

    let contrib = (0..n * p).map(|i| elem(me, i)).collect::<Vec<_>>();
    let mut reduce_scatter = vec![0.0; n];
    cc.reduce_scatter(&contrib, &mut reduce_scatter, ReduceOp::Sum)
        .unwrap();

    let mut scatter = vec![0.0; n];
    let full = (me == root).then(|| (0..n * p).map(|i| elem(root, i)).collect::<Vec<_>>());
    cc.scatter(root, full.as_deref(), &mut scatter).unwrap();

    let mut gather = vec![0.0; if me == root { n * p } else { 0 }];
    let gather_in = (0..n).map(|i| elem(me, i)).collect::<Vec<_>>();
    cc.gather(root, &gather_in, (me == root).then_some(&mut gather[..]))
        .unwrap();

    Outcome {
        bcast,
        reduce,
        allreduce,
        collect,
        reduce_scatter,
        scatter,
        gather,
    }
}

fn threaded(p: usize, n: usize) -> Vec<Outcome> {
    run_world(p, |c| run_suite(c, n))
}

fn simulated(p: usize, n: usize) -> Vec<Outcome> {
    let cfg = SimConfig::new(Mesh2D::new(1, p), MachineParams::PARAGON);
    simulate(&cfg, move |c| run_suite(c, n)).results
}

#[test]
fn backends_agree_byte_for_byte() {
    for p in [1usize, 5, 12] {
        // 8 elements (64 B): short-vector / MST regime. 4096 elements
        // (32 KiB per block): long-vector / ring regime; on the
        // threaded backend the ring sendrecv blocks cross the
        // rendezvous (zero-copy) threshold for the larger size.
        for n in [8usize, 4096] {
            let t = threaded(p, n);
            let s = simulated(p, n);
            assert_eq!(t.len(), s.len());
            for (rank, (a, b)) in t.iter().zip(&s).enumerate() {
                assert_eq!(a, b, "backend divergence at p={p} n={n} rank={rank}");
            }
        }
    }
}
