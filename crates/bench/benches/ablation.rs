//! Ablation benches for the design choices DESIGN.md §5 calls out, all
//! measured in *simulated seconds* on the virtual Paragon. The
//! `ablation_report` helper prints the ablation numbers once up front;
//! criterion then times a representative configuration so `cargo bench`
//! records a stable entry.

use criterion::{criterion_group, criterion_main, Criterion};
use intercom::{Algo, Communicator};
use intercom_cost::{MachineParams, Strategy, StrategyKind};
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Mesh2D;

fn sim_bcast(mesh: Mesh2D, machine: MachineParams, n: usize, algo: Algo) -> f64 {
    let cfg = SimConfig::new(mesh, machine);
    simulate(&cfg, move |c| {
        let cc = Communicator::world_on_mesh(c, machine, mesh).unwrap();
        let mut buf = vec![0u8; n];
        cc.bcast_with(0, &mut buf, &algo).unwrap();
    })
    .elapsed
}

fn sim_bcast_linear(p: usize, machine: MachineParams, n: usize, algo: Algo) -> f64 {
    let cfg = SimConfig::new(Mesh2D::new(1, p), machine);
    simulate(&cfg, move |c| {
        let cc = Communicator::world(c, machine);
        let mut buf = vec![0u8; n];
        cc.bcast_with(0, &mut buf, &algo).unwrap();
    })
    .elapsed
}

/// Prints the ablation numbers once (simulated seconds).
fn ablation_report() {
    let machine = MachineParams::PARAGON;
    let mesh = Mesh2D::new(8, 16);
    let n = 1 << 18;

    println!("\n=== ablation report (simulated seconds) ===");

    // 1. Hybrid vs pure-MST vs pure-long across lengths (crossover).
    println!("-- hybrid vs pure algorithms, 8x16 mesh, broadcast --");
    for nn in [64usize, 4096, 1 << 18] {
        let s = sim_bcast(mesh, machine, nn, Algo::Short);
        let l = sim_bcast(mesh, machine, nn, Algo::Long);
        let a = sim_bcast(mesh, machine, nn, Algo::Auto);
        println!("n={nn:>7}: short={s:.6} long={l:.6} auto={a:.6}");
    }

    // 2. Stage ordering: localized-groups-early (paper's choice, §6 last
    //    paragraph) vs the big dimension first.
    println!("-- stage ordering on a 128-node linear array, n=256K --");
    let good = Strategy::new(vec![2, 64], StrategyKind::Mst);
    let bad = Strategy::new(vec![64, 2], StrategyKind::Mst);
    let tg = sim_bcast_linear(128, machine, n, Algo::Hybrid(good.clone()));
    let tb = sim_bcast_linear(128, machine, n, Algo::Hybrid(bad.clone()));
    println!("{good} = {tg:.6}   {bad} = {tb:.6}");

    // 3. Row/column physical staging (§7.1) vs treating the mesh as one
    //    linear array.
    println!("-- mesh-aware vs linear-array treatment, 8x16, n=256K --");
    let mesh_aware = sim_bcast(mesh, machine, n, Algo::Auto);
    let linear_cfg = SimConfig::new(mesh, machine);
    let linear = simulate(&linear_cfg, move |c| {
        let cc = Communicator::world(c, machine); // linear-array selector
        let mut buf = vec![0u8; n];
        cc.bcast(0, &mut buf).unwrap();
    })
    .elapsed;
    println!("mesh-aware={mesh_aware:.6}  linear-array={linear:.6}");

    // 4. Link excess factor: unsegmented MST contention melts away as
    //    links gain headroom (why NX loses less on lightly-loaded nets).
    println!("-- link excess vs MST broadcast contention, 8x16, n=256K --");
    for k in [1.0f64, 2.0, 4.0] {
        let m = MachineParams {
            link_excess: k,
            ..machine
        };
        let t = sim_bcast(mesh, m, n, Algo::Short);
        println!("link_excess={k}: short bcast = {t:.6}");
    }

    println!("=== end ablation report ===\n");
}

fn bench_ablation(c: &mut Criterion) {
    ablation_report();
    let machine = MachineParams::PARAGON;
    let mesh = Mesh2D::new(4, 8);
    let mut g = c.benchmark_group("ablation_representative");
    g.sample_size(10);
    g.bench_function("auto_bcast_32_nodes_64k", |b| {
        b.iter(|| sim_bcast(mesh, machine, 1 << 16, Algo::Auto))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
