//! Criterion bench of strategy enumeration + selection: the run-time
//! cost of the library's cost-model-driven dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intercom_cost::select::best_mesh_strategy;
use intercom_cost::{best_strategy, CollectiveOp, CostContext, MachineParams};

fn bench_select(c: &mut Criterion) {
    let m = MachineParams::PARAGON;
    let mut g = c.benchmark_group("selector");
    for p in [30usize, 512, 1024] {
        g.bench_with_input(BenchmarkId::new("linear", p), &p, |b, &p| {
            b.iter(|| best_strategy(CollectiveOp::Broadcast, p, 65536, &m, CostContext::LINEAR))
        });
    }
    g.bench_function("mesh_16x32", |b| {
        b.iter(|| best_mesh_strategy(CollectiveOp::Collect, 16, 32, 65536, &m))
    });
    g.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
