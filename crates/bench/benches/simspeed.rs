//! Criterion benches of the simulator itself: how fast virtual Paragons
//! simulate on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intercom::{Algo, Communicator};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Mesh2D;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_bcast");
    g.sample_size(10);
    for (r, cl) in [(4usize, 8usize), (8, 16)] {
        let mesh = Mesh2D::new(r, cl);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{r}x{cl}")),
            &mesh,
            |b, &mesh| {
                b.iter(|| {
                    let cfg = SimConfig::new(mesh, MachineParams::PARAGON);
                    simulate(&cfg, |comm| {
                        let cc = Communicator::world_on_mesh(comm, MachineParams::PARAGON, mesh)
                            .unwrap();
                        let mut buf = vec![0u8; 4096];
                        cc.bcast_with(0, &mut buf, &Algo::Auto).unwrap();
                    })
                    .elapsed
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
