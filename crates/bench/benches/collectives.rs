//! Criterion benches of the real threaded backend: the seven collectives
//! under short / long / auto algorithms at representative sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use intercom::{Algo, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;

const P: usize = 8;

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("bcast_threaded");
    g.sample_size(10);
    for n in [256usize, 64 * 1024] {
        g.throughput(Throughput::Bytes(n as u64));
        for (name, algo) in [
            ("short", Algo::Short),
            ("long", Algo::Long),
            ("auto", Algo::Auto),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| {
                    run_world(P, |comm| {
                        let cc = Communicator::world(comm, MachineParams::PARAGON);
                        let mut buf = vec![1u8; n];
                        cc.bcast_with(0, &mut buf, &algo).unwrap();
                        buf[n / 2]
                    })
                })
            });
        }
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_threaded");
    g.sample_size(10);
    for n in [256usize, 16 * 1024] {
        g.throughput(Throughput::Bytes((n * 8) as u64));
        for (name, algo) in [
            ("short", Algo::Short),
            ("long", Algo::Long),
            ("auto", Algo::Auto),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| {
                    run_world(P, |comm| {
                        let cc = Communicator::world(comm, MachineParams::PARAGON);
                        let mut buf = vec![1.0f64; n];
                        cc.allreduce_with(&mut buf, ReduceOp::Sum, &algo).unwrap();
                        buf[0]
                    })
                })
            });
        }
    }
    g.finish();
}

fn bench_allgather(c: &mut Criterion) {
    let mut g = c.benchmark_group("allgather_threaded");
    g.sample_size(10);
    for b_items in [64usize, 8 * 1024] {
        g.throughput(Throughput::Bytes((b_items * P) as u64));
        for (name, algo) in [
            ("short", Algo::Short),
            ("long", Algo::Long),
            ("auto", Algo::Auto),
        ] {
            g.bench_with_input(BenchmarkId::new(name, b_items), &b_items, |bch, &bi| {
                bch.iter(|| {
                    run_world(P, |comm| {
                        let cc = Communicator::world(comm, MachineParams::PARAGON);
                        let mine = vec![1u8; bi];
                        let mut all = vec![0u8; bi * P];
                        cc.allgather_with(&mine, &mut all, &algo).unwrap();
                        all[0]
                    })
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_bcast, bench_allreduce, bench_allgather);
criterion_main!(benches);
