//! World construction: one thread per rank, fully-connected channels.

use crate::chan::channel;
use crate::endpoint::{Msg, ThreadComm, DEFAULT_RENDEZVOUS_THRESHOLD};
use intercom::BufferPool;
use intercom_obs::{RankRecord, Recorder, RunRecord};
use std::sync::Arc;
use std::time::Duration;

/// The default bound on every blocking wait inside the threaded
/// runtime, generous enough that no healthy collective ever trips it.
/// Override with the `INTERCOM_WAIT_TIMEOUT_MS` environment variable
/// (chaos tests shrink it to diagnose scripted stalls in milliseconds).
pub fn default_wait_timeout() -> Duration {
    std::env::var("INTERCOM_WAIT_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(30))
}

/// Runs `f` on `p` ranks, each on its own OS thread with a connected
/// [`ThreadComm`] endpoint, and returns the per-rank results in rank
/// order. Panics (propagating the first rank panic) if any rank panics.
///
/// The closure is shared by reference across threads, so it must be
/// `Sync`; per-rank state belongs inside the closure body.
pub fn run_world<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    run_world_pooled(p, BufferPool::new, f)
}

/// [`run_world`] with explicit payload-pool construction per rank.
pub fn run_world_pooled<T, F>(p: usize, make_pool: impl Fn() -> BufferPool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    run_world_tuned(p, make_pool, DEFAULT_RENDEZVOUS_THRESHOLD, f)
}

/// [`run_world`] with every transport knob exposed: per-rank pool
/// construction and the `sendrecv` rendezvous (zero-copy) threshold.
/// The `hotpath` bench's pre-PR baseline uses
/// [`BufferPool::disabled`] plus `usize::MAX` (never rendezvous) to
/// measure the allocate-per-hop, copy-twice transport this PR replaced.
pub fn run_world_tuned<T, F>(
    p: usize,
    make_pool: impl Fn() -> BufferPool,
    rendezvous_threshold: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    run_world_inner(
        p,
        make_pool,
        rendezvous_threshold,
        default_wait_timeout(),
        None,
        f,
    )
    .0
}

/// [`run_world`] with an explicit bound on every blocking wait: a
/// receive or rendezvous completion that exceeds `deadline` fails with
/// [`intercom::CommError::Timeout`] naming the silent peer, instead of
/// hanging. The fault-injection harness runs its stall scenarios under
/// a tight deadline here.
pub fn run_world_deadline<T, F>(p: usize, deadline: Duration, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    run_world_inner(
        p,
        BufferPool::new,
        DEFAULT_RENDEZVOUS_THRESHOLD,
        deadline,
        None,
        f,
    )
    .0
}

/// [`run_world`] with per-rank observability: every `send`/`recv`/
/// `sendrecv`/`compute` is timestamped into the matching [`Recorder`]
/// and the drained [`RunRecord`] is returned alongside the results.
/// Ring capacity is per rank; see
/// [`intercom_obs::DEFAULT_RING_CAPACITY`].
pub fn run_world_recorded<T, F>(p: usize, capacity: usize, f: F) -> (Vec<T>, RunRecord)
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    run_world_observed(p, intercom_obs::recorders(p, capacity), f)
}

/// [`run_world_recorded`] with caller-built recorders — the A/B
/// overhead gate passes [`intercom_obs::disabled_recorders`] here to
/// price the hooks alone. `recorders[i]` must belong to rank `i`.
pub fn run_world_observed<T, F>(p: usize, recorders: Vec<Recorder>, f: F) -> (Vec<T>, RunRecord)
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    let (out, run) = run_world_inner(
        p,
        BufferPool::new,
        DEFAULT_RENDEZVOUS_THRESHOLD,
        default_wait_timeout(),
        Some(recorders),
        f,
    );
    (
        out,
        run.expect("run_world_inner returns a record when recorders are provided"),
    )
}

fn run_world_inner<T, F>(
    p: usize,
    make_pool: impl Fn() -> BufferPool,
    rendezvous_threshold: usize,
    wait_timeout: Duration,
    recorders: Option<Vec<Recorder>>,
    f: F,
) -> (Vec<T>, Option<RunRecord>)
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    assert!(p > 0, "world must have at least one rank");
    let recording = recorders.is_some();
    let mut recs: Vec<Option<Recorder>> = match recorders {
        Some(v) => {
            assert_eq!(v.len(), p, "one recorder per rank");
            v.into_iter().map(Some).collect()
        }
        None => (0..p).map(|_| None).collect(),
    };
    let mut senders = Vec::with_capacity(p);
    let mut inboxes = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = channel::<Msg>();
        senders.push(s);
        inboxes.push(r);
    }
    let pools: Arc<Vec<BufferPool>> = Arc::new((0..p).map(|_| make_pool()).collect());
    let f = &f;
    let senders = &senders;
    let pools = &pools;
    let joined: Vec<(T, Option<RankRecord>)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, inbox) in inboxes.into_iter().enumerate() {
            let recorder = recs[rank].take();
            let builder = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(2 * 1024 * 1024);
            let handle = builder
                .spawn_scoped(scope, move || {
                    let mut comm = ThreadComm::new(
                        rank,
                        senders.clone(),
                        inbox,
                        pools.clone(),
                        rendezvous_threshold,
                        wait_timeout,
                    );
                    if let Some(r) = recorder {
                        comm.attach_recorder(r);
                    }
                    let out = f(&comm);
                    let record = comm.take_recorder().map(|r| {
                        // Pool traffic is counted by the pool itself;
                        // fold it into the drained counters.
                        let stats = comm.pool_stats();
                        r.with_counters(|c| {
                            c.pool_hits = stats.hits;
                            c.pool_misses = stats.misses;
                        });
                        r.finish()
                    });
                    (out, record)
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(v) => v,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("rank {rank} panicked: {msg}");
                }
            })
            .collect()
    });
    let mut out = Vec::with_capacity(p);
    let mut ranks = Vec::with_capacity(if recording { p } else { 0 });
    for (v, record) in joined {
        out.push(v);
        if let Some(r) = record {
            ranks.push(r);
        }
    }
    let run = recording.then(|| RunRecord::from_ranks(ranks));
    if let Some(run) = &run {
        // Production telemetry: fold the drained counter totals into
        // the global metrics registry (one branch when disabled).
        intercom_obs::metrics::ingest_run("threads", run);
    }
    (out, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom::Comm;

    #[test]
    fn ranks_are_distinct_and_sized() {
        let out = run_world(5, |c| (c.rank(), c.size()));
        for (i, &(r, s)) in out.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn ring_pass() {
        // Each rank forwards a token around the ring; rank 0 injects.
        let out = run_world(6, |c| {
            let p = c.size();
            let me = c.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let mut token = [0u8];
            if me == 0 {
                c.send(right, 1, &[42]).unwrap();
                c.recv(left, 1, &mut token).unwrap();
            } else {
                c.recv(left, 1, &mut token).unwrap();
                c.send(right, 1, &token).unwrap();
            }
            token[0]
        });
        assert!(out.iter().all(|&t| t == 42));
    }

    #[test]
    fn simultaneous_exchange_via_sendrecv() {
        let out = run_world(4, |c| {
            let p = c.size();
            let me = c.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let mut got = [0u8];
            c.sendrecv(right, &[me as u8], left, &mut got, 9).unwrap();
            got[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_propagates() {
        run_world(3, |c| {
            if c.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_rejected() {
        run_world(0, |_| ());
    }

    #[test]
    fn world_of_one() {
        let out = run_world(1, |c| c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn recorded_ring_pass_counts_and_times_every_hop() {
        let (out, run) = run_world_recorded(4, 64, |c| {
            let p = c.size();
            let me = c.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let mut got = [0u8; 8];
            c.sendrecv(right, &[me as u8; 8], left, &mut got, 3)
                .unwrap();
            got[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
        assert_eq!(run.p(), 4);
        for rank in 0..4 {
            let c = &run.counters[rank];
            assert_eq!(c.msgs_sent, 1);
            assert_eq!(c.msgs_recvd, 1);
            assert_eq!(c.bytes_out, 8);
            assert_eq!(c.bytes_in, 8);
            assert_eq!(c.eager_msgs, 1, "8 B rides the eager path");
            assert_eq!(c.rendezvous_msgs, 0);
            // One Send + one Recv event, consistently stamped.
            assert_eq!(run.events[rank].len(), 2);
            for ev in &run.events[rank] {
                assert_eq!(ev.rank, rank);
                assert!(ev.end >= ev.start);
            }
            assert_eq!(run.dropped[rank], 0);
        }
    }

    #[test]
    fn recorded_rendezvous_exchange_marks_zero_copy() {
        let n = DEFAULT_RENDEZVOUS_THRESHOLD;
        let (_, run) = run_world_recorded(2, 64, |c| {
            let peer = 1 - c.rank();
            let mine = vec![1u8; n];
            let mut got = vec![0u8; n];
            c.sendrecv(peer, &mine, peer, &mut got, 5).unwrap();
        });
        for c in &run.counters {
            assert_eq!(c.rendezvous_msgs, 1);
            assert_eq!(c.eager_msgs, 0);
            assert_eq!(c.pool_hits + c.pool_misses, 0, "zero-copy skips the pool");
        }
        // Each rank logs the SendRecv offer and the matching Recv.
        use intercom_obs::EventKind;
        for evs in &run.events {
            assert!(evs.iter().any(|e| e.kind == EventKind::SendRecv));
            assert!(evs.iter().any(|e| e.kind == EventKind::Recv));
        }
    }

    #[test]
    fn observed_with_disabled_recorders_records_nothing() {
        let (out, run) = run_world_observed(3, intercom_obs::disabled_recorders(3), |c| {
            c.send(c.rank(), 1, &[1, 2]).unwrap();
            let mut buf = [0u8; 2];
            c.recv(c.rank(), 1, &mut buf).unwrap();
            buf[1]
        });
        assert_eq!(out, vec![2, 2, 2]);
        assert_eq!(run.p(), 3);
        assert!(run.all_events().count() == 0);
        assert_eq!(run.totals().msgs_sent, 0);
    }
}
