//! World construction: one thread per rank, fully-connected channels.

use crate::chan::channel;
use crate::endpoint::{Msg, ThreadComm, DEFAULT_RENDEZVOUS_THRESHOLD};
use intercom::BufferPool;
use std::sync::Arc;

/// Runs `f` on `p` ranks, each on its own OS thread with a connected
/// [`ThreadComm`] endpoint, and returns the per-rank results in rank
/// order. Panics (propagating the first rank panic) if any rank panics.
///
/// The closure is shared by reference across threads, so it must be
/// `Sync`; per-rank state belongs inside the closure body.
pub fn run_world<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    run_world_pooled(p, BufferPool::new, f)
}

/// [`run_world`] with explicit payload-pool construction per rank.
pub fn run_world_pooled<T, F>(p: usize, make_pool: impl Fn() -> BufferPool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    run_world_tuned(p, make_pool, DEFAULT_RENDEZVOUS_THRESHOLD, f)
}

/// [`run_world`] with every transport knob exposed: per-rank pool
/// construction and the `sendrecv` rendezvous (zero-copy) threshold.
/// The `hotpath` bench's pre-PR baseline uses
/// [`BufferPool::disabled`] plus `usize::MAX` (never rendezvous) to
/// measure the allocate-per-hop, copy-twice transport this PR replaced.
pub fn run_world_tuned<T, F>(
    p: usize,
    make_pool: impl Fn() -> BufferPool,
    rendezvous_threshold: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadComm) -> T + Send + Sync,
{
    assert!(p > 0, "world must have at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut inboxes = Vec::with_capacity(p);
    for _ in 0..p {
        let (s, r) = channel::<Msg>();
        senders.push(s);
        inboxes.push(r);
    }
    let pools: Arc<Vec<BufferPool>> = Arc::new((0..p).map(|_| make_pool()).collect());
    let f = &f;
    let senders = &senders;
    let pools = &pools;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, inbox) in inboxes.into_iter().enumerate() {
            let builder = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(2 * 1024 * 1024);
            let handle = builder
                .spawn_scoped(scope, move || {
                    let comm = ThreadComm::new(
                        rank,
                        senders.clone(),
                        inbox,
                        pools.clone(),
                        rendezvous_threshold,
                    );
                    f(&comm)
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(v) => v,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("rank {rank} panicked: {msg}");
                }
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom::Comm;

    #[test]
    fn ranks_are_distinct_and_sized() {
        let out = run_world(5, |c| (c.rank(), c.size()));
        for (i, &(r, s)) in out.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn ring_pass() {
        // Each rank forwards a token around the ring; rank 0 injects.
        let out = run_world(6, |c| {
            let p = c.size();
            let me = c.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let mut token = [0u8];
            if me == 0 {
                c.send(right, 1, &[42]).unwrap();
                c.recv(left, 1, &mut token).unwrap();
            } else {
                c.recv(left, 1, &mut token).unwrap();
                c.send(right, 1, &token).unwrap();
            }
            token[0]
        });
        assert!(out.iter().all(|&t| t == 42));
    }

    #[test]
    fn simultaneous_exchange_via_sendrecv() {
        let out = run_world(4, |c| {
            let p = c.size();
            let me = c.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let mut got = [0u8];
            c.sendrecv(right, &[me as u8], left, &mut got, 9).unwrap();
            got[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_propagates() {
        run_world(3, |c| {
            if c.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_world_rejected() {
        run_world(0, |_| ());
    }

    #[test]
    fn world_of_one() {
        let out = run_world(1, |c| c.size());
        assert_eq!(out, vec![1]);
    }
}
