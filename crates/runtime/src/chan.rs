//! A std-only unbounded MPSC channel (`Mutex<VecDeque>` + `Condvar`).
//!
//! The threaded backend needs exactly three properties from its
//! mailboxes: FIFO order per producer, blocking receive, and disconnect
//! detection (receive fails once every sender is gone; send fails once
//! the receiver is gone). `std::sync::mpsc` provides these too, but its
//! receiver-side buffer management is opaque; this implementation keeps
//! the queue in a plain `VecDeque` whose capacity amortizes to
//! steady-state zero-allocation operation, which the transport's
//! allocation-free guarantee relies on and the counting-allocator test
//! asserts.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    /// Live [`Sender`] handles; 0 means no message can ever arrive again.
    producers: usize,
    /// Cleared when the [`Receiver`] drops; sends then fail fast.
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half; cloning registers another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries
/// the rejected value back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the queue is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`]: either the deadline
/// expired with the queue still empty, or every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed without a message arriving.
    Timeout,
    /// The queue is drained and no sender remains.
    Disconnected,
}

/// Creates a connected unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            producers: 1,
            receiver_alive: true,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails (returning the value) if the receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        if !st.receiver_alive {
            return Err(SendError(value));
        }
        let was_empty = st.queue.is_empty();
        st.queue.push_back(value);
        drop(st);
        // The single consumer only blocks after observing an empty queue
        // under this same mutex, so a push onto a non-empty queue cannot
        // race with a sleeping receiver — skip the wakeup syscall.
        if was_empty {
            self.shared.ready.notify_one();
        }
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().producers += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.shared.state.lock().unwrap();
            st.producers -= 1;
            st.producers
        };
        if remaining == 0 {
            // Wake a receiver blocked on an empty queue so it observes
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; fails once the queue is drained
    /// and no sender remains.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.producers == 0 {
                return Err(RecvError);
            }
            st = self.shared.ready.wait(st).unwrap();
        }
    }

    /// Blocks until a message arrives or `timeout` elapses. The wait is
    /// deadline-based: spurious condvar wakeups re-wait only for the
    /// remaining time.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.producers == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, result) = self.shared.ready.wait_timeout(st, remaining).unwrap();
            st = guard;
            if result.timed_out() && st.queue.is_empty() && st.producers > 0 {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive: `None` when the queue is currently empty
    /// (regardless of sender liveness).
    pub fn try_recv(&self) -> Option<T> {
        self.shared.state.lock().unwrap().queue.pop_front()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_fifo() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::<u8>();
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = channel();
        drop(rx);
        let err = tx.send(42).unwrap_err();
        assert_eq!(err.0, 42);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(7u32).unwrap();
        assert_eq!(h.join().unwrap(), Ok(7));
    }

    #[test]
    fn blocking_recv_wakes_on_disconnect() {
        let (tx, rx) = channel::<u8>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_recv(), None);
        tx.send(3i64).unwrap();
        assert_eq!(rx.try_recv(), Some(3));
    }

    #[test]
    fn recv_timeout_returns_message_or_reason() {
        use std::time::Duration;
        let (tx, rx) = channel();
        tx.send(5u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(5));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        use std::time::Duration;
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        tx.send(9u32).unwrap();
        assert_eq!(h.join().unwrap(), Ok(9));
    }

    #[test]
    fn many_producers_all_delivered() {
        let (tx, rx) = channel();
        std::thread::scope(|s| {
            for t in 0..8 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 800);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 800);
    }
}
