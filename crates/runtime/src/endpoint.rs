//! The per-rank endpoint: channels out to every peer, one inbox, and a
//! stash for out-of-order arrivals.

use crossbeam_channel::{Receiver, Sender};
use intercom::{Comm, CommError, Result, Tag};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};

/// One message in flight.
pub(crate) struct Msg {
    pub src: usize,
    pub tag: Tag,
    pub data: Vec<u8>,
}

/// Reserved tag announcing a rank's departure (sent on endpoint drop —
/// normal completion or panic unwind). Receivers waiting on a departed
/// rank observe [`CommError::Disconnected`] instead of hanging; because
/// channels are FIFO, all real traffic a rank sent before dying is still
/// delivered first.
const FAREWELL_TAG: Tag = Tag::MAX;

/// A rank's communication endpoint in a threaded world.
///
/// Matching semantics: receives match the oldest buffered or incoming
/// message with the requested `(source, tag)`; messages for other
/// `(source, tag)` pairs are stashed in arrival order, preserving the
/// per-`(source, tag)` FIFO ordering the [`Comm`] contract requires.
///
/// Sends are eager (buffered, non-blocking): the data is copied into the
/// channel immediately, so a `sendrecv` can be implemented as
/// send-then-receive without deadlock — the §2 machine's "send and
/// receive at the same time".
pub struct ThreadComm {
    rank: usize,
    senders: Vec<Sender<Msg>>,
    inbox: Receiver<Msg>,
    stash: RefCell<HashMap<(usize, Tag), VecDeque<Vec<u8>>>>,
    departed: RefCell<std::collections::HashSet<usize>>,
}

impl ThreadComm {
    pub(crate) fn new(rank: usize, senders: Vec<Sender<Msg>>, inbox: Receiver<Msg>) -> Self {
        ThreadComm {
            rank,
            senders,
            inbox,
            stash: RefCell::new(HashMap::new()),
            departed: RefCell::new(std::collections::HashSet::new()),
        }
    }

    fn check_peer(&self, peer: usize) -> Result<()> {
        if peer < self.senders.len() {
            Ok(())
        } else {
            Err(CommError::InvalidRank { rank: peer, size: self.senders.len() })
        }
    }

    /// Pulls the next message matching `(from, tag)`, consulting the
    /// stash first and stashing any interleaved traffic. Observing the
    /// peer's farewell (its endpoint dropped with no matching message
    /// queued) yields [`CommError::Disconnected`] instead of blocking
    /// forever.
    fn take_matching(&self, from: usize, tag: Tag) -> Result<Vec<u8>> {
        if let Some(q) = self.stash.borrow_mut().get_mut(&(from, tag)) {
            if let Some(data) = q.pop_front() {
                return Ok(data);
            }
        }
        if self.departed.borrow().contains(&from) {
            return Err(CommError::Disconnected);
        }
        loop {
            let msg = self.inbox.recv().map_err(|_| CommError::Disconnected)?;
            if msg.tag == FAREWELL_TAG {
                self.departed.borrow_mut().insert(msg.src);
                if msg.src == from {
                    return Err(CommError::Disconnected);
                }
                continue;
            }
            if msg.src == from && msg.tag == tag {
                return Ok(msg.data);
            }
            self.stash
                .borrow_mut()
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back(msg.data);
        }
    }

    fn fill(buf: &mut [u8], data: Vec<u8>) -> Result<()> {
        if data.len() != buf.len() {
            return Err(CommError::LengthMismatch { expected: buf.len(), actual: data.len() });
        }
        buf.copy_from_slice(&data);
        Ok(())
    }
}

impl Drop for ThreadComm {
    fn drop(&mut self) {
        // Announce departure so peers blocked on this rank fail fast
        // (normal completion after all traffic, or a panic unwind).
        for (peer, s) in self.senders.iter().enumerate() {
            if peer != self.rank {
                let _ = s.send(Msg { src: self.rank, tag: FAREWELL_TAG, data: Vec::new() });
            }
        }
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        debug_assert_ne!(tag, FAREWELL_TAG, "Tag::MAX is reserved");
        self.check_peer(to)?;
        self.senders[to]
            .send(Msg { src: self.rank, tag, data: data.to_vec() })
            .map_err(|_| CommError::Disconnected)
    }

    fn recv(&self, from: usize, tag: Tag, buf: &mut [u8]) -> Result<()> {
        self.check_peer(from)?;
        let data = self.take_matching(from, tag)?;
        Self::fill(buf, data)
    }

    fn sendrecv(
        &self,
        to: usize,
        data: &[u8],
        from: usize,
        buf: &mut [u8],
        tag: Tag,
    ) -> Result<()> {
        self.send(to, tag, data)?;
        self.recv(from, tag, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    fn pair() -> (ThreadComm, ThreadComm) {
        let (s0, r0) = unbounded();
        let (s1, r1) = unbounded();
        let a = ThreadComm::new(0, vec![s0.clone(), s1.clone()], r0);
        let b = ThreadComm::new(1, vec![s0, s1], r1);
        (a, b)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (a, b) = pair();
        a.send(1, 7, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        b.recv(0, 7, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let (a, b) = pair();
        a.send(1, 1, &[10]).unwrap();
        a.send(1, 2, &[20]).unwrap();
        let mut buf = [0u8; 1];
        b.recv(0, 2, &mut buf).unwrap();
        assert_eq!(buf, [20]);
        b.recv(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [10]);
    }

    #[test]
    fn fifo_within_same_tag() {
        let (a, b) = pair();
        a.send(1, 5, &[1]).unwrap();
        a.send(1, 5, &[2]).unwrap();
        let mut buf = [0u8; 1];
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf, [1]);
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf, [2]);
    }

    #[test]
    fn length_mismatch_is_error() {
        let (a, b) = pair();
        a.send(1, 0, &[1, 2]).unwrap();
        let mut buf = [0u8; 3];
        assert!(matches!(
            b.recv(0, 0, &mut buf),
            Err(CommError::LengthMismatch { expected: 3, actual: 2 })
        ));
    }

    #[test]
    fn self_send_works() {
        let (a, _b) = pair();
        a.send(0, 3, &[9]).unwrap();
        let mut buf = [0u8; 1];
        a.recv(0, 3, &mut buf).unwrap();
        assert_eq!(buf, [9]);
    }

    #[test]
    fn invalid_peer_rejected() {
        let (a, _b) = pair();
        assert!(matches!(
            a.send(5, 0, &[]),
            Err(CommError::InvalidRank { rank: 5, size: 2 })
        ));
    }

    #[test]
    fn disconnected_world_detected() {
        // Build an endpoint whose inbox has no remaining senders: any
        // receive must report Disconnected rather than hang.
        let (_s, r) = unbounded::<Msg>();
        let (s_other, _r_other) = unbounded::<Msg>();
        let lonely = ThreadComm::new(0, vec![s_other], r);
        drop(_s);
        let mut buf = [0u8; 1];
        assert_eq!(lonely.recv(0, 0, &mut buf), Err(CommError::Disconnected));
    }

    #[test]
    fn sendrecv_exchanges_both_ways() {
        let (a, b) = pair();
        // Pre-load b's message so a's sendrecv completes immediately.
        b.send(0, 4, &[7, 7]).unwrap();
        let mut abuf = [0u8; 2];
        a.sendrecv(1, &[1, 2], 1, &mut abuf, 4).unwrap();
        assert_eq!(abuf, [7, 7]);
        let mut bbuf = [0u8; 2];
        b.recv(0, 4, &mut bbuf).unwrap();
        assert_eq!(bbuf, [1, 2]);
    }
}
