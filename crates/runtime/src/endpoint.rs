//! The per-rank endpoint: channels out to every peer, one inbox, a
//! stash for out-of-order arrivals, and pooled payload buffers.
//!
//! Payload life-cycle (the zero-allocation hot path): `send` acquires a
//! buffer from the *sender's* [`BufferPool`], copies the caller's bytes
//! in, and ships it through the mailbox. `recv` copies the bytes out
//! into the caller's buffer and returns the payload to the pool of the
//! rank that sent it (every endpoint holds a shared handle to all
//! pools). After one warm-up round of a repeated collective, every hop
//! is served from a free list and the steady state allocates nothing —
//! asserted by the `alloc_free` integration test.
//!
//! Large pairwise exchanges (`sendrecv` at ≥
//! [`DEFAULT_RENDEZVOUS_THRESHOLD`])
//! go one step further and skip buffering entirely: the mailbox carries
//! a borrowed window onto the sender's buffer, the receiver copies
//! straight from it, and the sender blocks until that copy is signalled
//! — one memcpy per hop instead of two, which is what bounds the
//! bandwidth-heavy ring primitives.

use crate::chan::{Receiver, RecvTimeoutError, Sender};
use intercom::faults::POISON_TAG;
use intercom::{AbortCause, AbortInfo, BufferPool, Comm, CommError, PoolStats, Result, Tag};
use intercom_obs::{EventKind, Recorder, TraceEvent};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default size at or above which `sendrecv` payloads skip the pooled
/// copy entirely: the receiver copies straight out of the sender's
/// buffer (rendezvous), halving the per-hop memcpy volume for the
/// bandwidth-bound regime. Below it, the eager pooled copy wins — the
/// sender never waits on its peer. `usize::MAX` disables the path (the
/// bench's pre-PR baseline).
pub const DEFAULT_RENDEZVOUS_THRESHOLD: usize = 32 * 1024;

/// Completion flag of a borrowed (zero-copy) payload.
struct Completion {
    state: Mutex<CopyState>,
    done: Condvar,
}

#[derive(Clone, Copy, PartialEq)]
enum CopyState {
    Pending,
    Copied,
    /// Dropped unconsumed (receiver died or errored before copying).
    Abandoned,
}

impl Completion {
    fn new() -> Self {
        Completion {
            state: Mutex::new(CopyState::Pending),
            done: Condvar::new(),
        }
    }

    /// Blocks until the receiver is finished with the borrowed bytes,
    /// or `timeout` elapses. On timeout the window is *withdrawn*
    /// (marked `Abandoned` under the same lock the receiver copies
    /// under), so a late receiver can never dereference the borrow
    /// after this frame returns; `peer`/`tag` label the resulting
    /// [`CommError::Timeout`].
    fn wait(&self, timeout: Duration, peer: usize, tag: Tag) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while *st == CopyState::Pending {
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                *st = CopyState::Abandoned;
                return Err(CommError::Timeout {
                    from: peer,
                    tag,
                    waited_ms: timeout.as_millis() as u64,
                });
            };
            let (guard, _) = self
                .done
                .wait_timeout(st, remaining)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
        match *st {
            CopyState::Copied => Ok(()),
            _ => Err(CommError::Disconnected),
        }
    }
}

/// A window onto the sending rank's own buffer, valid until `done` is
/// marked — the sender blocks inside `sendrecv` until then, so the
/// pointed-at bytes cannot move or be dropped while `Pending`.
struct BorrowedBytes {
    ptr: *const u8,
    len: usize,
    done: Arc<Completion>,
}

// SAFETY: the raw pointer crosses threads, but the bytes it names are
// immutably borrowed by the blocked sender for as long as the receiver
// can dereference it (the sender's `sendrecv` frame outlives every
// access, released only by `mark`).
unsafe impl Send for BorrowedBytes {}

impl BorrowedBytes {
    fn as_slice(&self) -> &[u8] {
        // SAFETY: see the `Send` impl — the sender keeps the borrow
        // alive until `done` is marked, which happens only after the
        // last use of this slice.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for BorrowedBytes {
    fn drop(&mut self) {
        // Dropping without an explicit `Copied` mark (receiver errored,
        // panicked, or its mailbox was torn down) must still release the
        // blocked sender.
        let mut st = self.done.state.lock().unwrap_or_else(|p| p.into_inner());
        if *st == CopyState::Pending {
            *st = CopyState::Abandoned;
            drop(st);
            self.done.done.notify_all();
        }
    }
}

/// A message payload: pooled bytes (eager sends) or a zero-copy window
/// onto the sender's buffer (large rendezvous `sendrecv`).
enum Payload {
    Pooled(Vec<u8>),
    Borrowed(BorrowedBytes),
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::Pooled(v) => v.len(),
            Payload::Borrowed(b) => b.len,
        }
    }

    /// Copies the payload into `buf` and retires it: pooled bytes go
    /// back to the pool of the rank that acquired them (`src`), borrowed
    /// bytes signal the blocked sender. A length mismatch still retires
    /// the payload (drop marks a borrowed one `Abandoned`).
    fn consume_into(self, buf: &mut [u8], src: usize, pools: &[BufferPool]) -> Result<()> {
        if self.len() != buf.len() {
            return Err(CommError::LengthMismatch {
                expected: buf.len(),
                actual: self.len(),
            });
        }
        match self {
            Payload::Pooled(v) => {
                buf.copy_from_slice(&v);
                pools[src].release(v);
            }
            Payload::Borrowed(b) => {
                // Copy *under the completion lock*: a sender whose
                // bounded wait expired withdraws the window (state
                // flips to `Abandoned` under this same lock), so the
                // borrow is dereferenced only while provably alive.
                let mut st = b.done.state.lock().unwrap_or_else(|p| p.into_inner());
                if *st != CopyState::Pending {
                    return Err(CommError::Disconnected);
                }
                buf.copy_from_slice(b.as_slice());
                *st = CopyState::Copied;
                drop(st);
                b.done.done.notify_all();
            }
        }
        Ok(())
    }
}

/// One message in flight.
pub(crate) struct Msg {
    pub src: usize,
    pub tag: Tag,
    data: Payload,
}

/// Reserved tag announcing a rank's departure (sent on endpoint drop —
/// normal completion or panic unwind). Receivers waiting on a departed
/// rank observe [`CommError::Disconnected`] instead of hanging; because
/// channels are FIFO, all real traffic a rank sent before dying is still
/// delivered first.
const FAREWELL_TAG: Tag = Tag::MAX;

/// Out-of-order arrivals from one peer: a flat `(tag, queue)` list
/// scanned linearly. A collective keeps only a handful of tags in
/// flight per peer, so the scan beats hashing, and emptied queues are
/// parked on a spare list instead of dropped — steady-state stashing
/// recycles both the payload buffers *and* the queue allocations.
#[derive(Default)]
struct PeerStash {
    entries: Vec<(Tag, VecDeque<Payload>)>,
    spares: Vec<VecDeque<Payload>>,
}

impl PeerStash {
    fn push(&mut self, tag: Tag, data: Payload) {
        if let Some((_, q)) = self.entries.iter_mut().find(|(t, _)| *t == tag) {
            q.push_back(data);
            return;
        }
        let mut q = self.spares.pop().unwrap_or_default();
        q.push_back(data);
        self.entries.push((tag, q));
    }

    fn pop(&mut self, tag: Tag) -> Option<Payload> {
        let i = self.entries.iter().position(|(t, _)| *t == tag)?;
        let data = self.entries[i].1.pop_front();
        if self.entries[i].1.is_empty() {
            let (_, q) = self.entries.swap_remove(i);
            self.spares.push(q);
        }
        data
    }
}

/// A rank's communication endpoint in a threaded world.
///
/// Matching semantics: receives match the oldest buffered or incoming
/// message with the requested `(source, tag)`; messages for other
/// `(source, tag)` pairs are stashed in arrival order, preserving the
/// per-`(source, tag)` FIFO ordering the [`Comm`] contract requires.
///
/// Sends are eager (buffered, non-blocking): the data is copied into a
/// pooled buffer immediately, so a `sendrecv` can be implemented as
/// send-then-receive without deadlock — the §2 machine's "send and
/// receive at the same time". `sendrecv` payloads at or above the
/// rendezvous threshold (default
/// [`DEFAULT_RENDEZVOUS_THRESHOLD`]) skip the copy-in: the receiver
/// copies directly out of this rank's buffer and the call blocks until
/// it has (one memcpy per hop instead of two).
pub struct ThreadComm {
    rank: usize,
    senders: Vec<Sender<Msg>>,
    inbox: Receiver<Msg>,
    /// `pools[r]` is rank `r`'s payload pool; consumed payloads go back
    /// to the pool of the rank that acquired them.
    pools: Arc<Vec<BufferPool>>,
    rendezvous_threshold: usize,
    stash: RefCell<Vec<PeerStash>>,
    departed: RefCell<Vec<bool>>,
    /// Retired rendezvous completion flags, reused so steady-state
    /// zero-copy exchanges allocate nothing either.
    completions: RefCell<Vec<Arc<Completion>>>,
    /// Optional observability handle (`None` on the untraced hot path;
    /// a disabled [`Recorder`] reduces every hook to a branch — the CI
    /// gate holds the difference under 3%).
    recorder: Option<Recorder>,
    /// `(plan_id, step)` of the compiled-plan step currently executing
    /// on this rank, set by the IR interpreter via [`Comm::plan_step`];
    /// `(0, 0)` outside plan execution. Stamped onto every recorded
    /// [`TraceEvent`] so timelines attribute work to schedule steps.
    plan_step: Cell<(u64, u64)>,
    /// Bound on every blocking wait (inbox matching and rendezvous
    /// completion). A regression that would deadlock instead surfaces
    /// as [`CommError::Timeout`] naming the silent peer.
    wait_timeout: Duration,
    /// Set once a coordinated-abort poison record is observed; every
    /// later receive fails fast with the same diagnosis.
    aborted: RefCell<Option<AbortInfo>>,
}

impl ThreadComm {
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Sender<Msg>>,
        inbox: Receiver<Msg>,
        pools: Arc<Vec<BufferPool>>,
        rendezvous_threshold: usize,
        wait_timeout: Duration,
    ) -> Self {
        debug_assert_eq!(senders.len(), pools.len());
        let p = senders.len();
        ThreadComm {
            rank,
            senders,
            inbox,
            pools,
            rendezvous_threshold,
            stash: RefCell::new((0..p).map(|_| PeerStash::default()).collect()),
            departed: RefCell::new(vec![false; p]),
            completions: RefCell::new(Vec::new()),
            recorder: None,
            plan_step: Cell::new((0, 0)),
            wait_timeout,
            aborted: RefCell::new(None),
        }
    }

    /// Attaches a per-rank observability recorder; every subsequent
    /// `send`/`recv`/`sendrecv`/`compute` is timestamped into it.
    pub(crate) fn attach_recorder(&mut self, recorder: Recorder) {
        debug_assert_eq!(recorder.rank(), self.rank);
        self.recorder = Some(recorder);
    }

    /// Detaches the recorder (if any) for draining after the rank's
    /// closure returns.
    pub(crate) fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    /// The active recorder, or `None` when absent *or* disabled — the
    /// single test every hook pays on the untraced hot path.
    #[inline]
    fn obs(&self) -> Option<&Recorder> {
        match &self.recorder {
            Some(r) if r.enabled() => Some(r),
            _ => None,
        }
    }

    /// A fresh (`Pending`) completion flag, reusing a retired one when
    /// the receiver has fully released it. Observing a strong count of
    /// 1 proves the peer's [`BorrowedBytes`] clone is gone, so nothing
    /// can race the reset: only this rank holds the flag. The scan
    /// matters: the most recently retired flag is often still briefly
    /// held by the peer (it marks before dropping), while older ones
    /// are long free — with two or more flags in rotation the steady
    /// state never allocates.
    fn take_completion(&self) -> Arc<Completion> {
        let mut cache = self.completions.borrow_mut();
        if let Some(i) = cache.iter().position(|c| Arc::strong_count(c) == 1) {
            let c = cache.swap_remove(i);
            *c.state.lock().unwrap_or_else(|p| p.into_inner()) = CopyState::Pending;
            return c;
        }
        Arc::new(Completion::new())
    }

    fn retire_completion(&self, c: Arc<Completion>) {
        let mut cache = self.completions.borrow_mut();
        if cache.len() < 8 {
            cache.push(c);
        }
    }

    fn check_peer(&self, peer: usize) -> Result<()> {
        if peer < self.senders.len() {
            Ok(())
        } else {
            Err(CommError::InvalidRank {
                rank: peer,
                size: self.senders.len(),
            })
        }
    }

    /// Pulls the next message matching `(from, tag)`, consulting the
    /// stash first and stashing any interleaved traffic. Observing the
    /// peer's farewell (its endpoint dropped with no matching message
    /// queued) yields [`CommError::Disconnected`] instead of blocking
    /// forever; a poison record ([`POISON_TAG`]) latches the
    /// coordinated abort and fails this and every later receive; and
    /// the whole wait is bounded by the endpoint's deadline, so a
    /// schedule regression that would hang instead reports
    /// [`CommError::Timeout`] naming the silent peer.
    fn take_matching(&self, from: usize, tag: Tag) -> Result<Payload> {
        if let Some(info) = *self.aborted.borrow() {
            return Err(CommError::Aborted(info));
        }
        if let Some(data) = self.stash.borrow_mut()[from].pop(tag) {
            return Ok(data);
        }
        if self.departed.borrow()[from] {
            return Err(CommError::Disconnected);
        }
        let deadline = Instant::now() + self.wait_timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO);
            let msg = match self.inbox.recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Disconnected),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout {
                        from,
                        tag,
                        waited_ms: self.wait_timeout.as_millis() as u64,
                    })
                }
            };
            if msg.tag == FAREWELL_TAG {
                self.departed.borrow_mut()[msg.src] = true;
                if msg.src == from {
                    return Err(CommError::Disconnected);
                }
                continue;
            }
            if msg.tag == POISON_TAG {
                return Err(CommError::Aborted(self.absorb_poison(msg)));
            }
            if msg.src == from && msg.tag == tag {
                return Ok(msg.data);
            }
            self.stash.borrow_mut()[msg.src].push(msg.tag, msg.data);
        }
    }

    /// Latches an inbound poison record: decodes the abort diagnosis
    /// (falling back to an [`AbortCause::External`] record naming the
    /// sender when malformed), retires the payload, and arms the
    /// fail-fast path for every later receive.
    fn absorb_poison(&self, msg: Msg) -> AbortInfo {
        let decoded = match &msg.data {
            Payload::Pooled(v) => AbortInfo::decode(v),
            Payload::Borrowed(b) => AbortInfo::decode(b.as_slice()),
        };
        let info = decoded.unwrap_or(AbortInfo {
            origin: msg.src,
            culprit: msg.src,
            plan: 0,
            step: 0,
            cause: AbortCause::External,
        });
        match msg.data {
            Payload::Pooled(v) => self.pools[msg.src].release(v),
            // Dropping a borrowed window marks it Abandoned, releasing
            // the (never-expected) blocked sender.
            Payload::Borrowed(_) => {}
        }
        *self.aborted.borrow_mut() = Some(info);
        info
    }

    /// Counters of this rank's payload pool (hits/misses/recycled).
    pub fn pool_stats(&self) -> PoolStats {
        self.pools[self.rank].stats()
    }
}

impl Drop for ThreadComm {
    fn drop(&mut self) {
        // Announce departure so peers blocked on this rank fail fast
        // (normal completion after all traffic, or a panic unwind).
        for (peer, s) in self.senders.iter().enumerate() {
            if peer != self.rank {
                let _ = s.send(Msg {
                    src: self.rank,
                    tag: FAREWELL_TAG,
                    data: Payload::Pooled(Vec::new()),
                });
            }
        }
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        debug_assert_ne!(tag, FAREWELL_TAG, "Tag::MAX is reserved");
        self.check_peer(to)?;
        let obs = self.obs();
        let start = obs.map_or(0.0, Recorder::now);
        let mut payload = self.pools[self.rank].acquire(data.len());
        payload.extend_from_slice(data);
        self.senders[to]
            .send(Msg {
                src: self.rank,
                tag,
                data: Payload::Pooled(payload),
            })
            .map_err(|_| CommError::Disconnected)?;
        if let Some(r) = obs {
            let end = r.now();
            let (plan, step) = self.plan_step.get();
            r.record(TraceEvent {
                kind: EventKind::Send,
                rank: self.rank,
                src: self.rank,
                dst: to,
                tag,
                bytes: data.len(),
                start,
                end,
                hops: 0,
                plan,
                step,
            });
            r.with_counters(|c| {
                c.msgs_sent += 1;
                c.bytes_out += data.len() as u64;
                c.eager_msgs += 1;
                c.transfer_secs += end - start;
            });
        }
        Ok(())
    }

    fn recv(&self, from: usize, tag: Tag, buf: &mut [u8]) -> Result<()> {
        self.check_peer(from)?;
        let obs = self.obs();
        let start = obs.map_or(0.0, Recorder::now);
        let data = self.take_matching(from, tag)?;
        // Matching payload in hand: blocking (wait) ends, the copy-out
        // (transfer) begins.
        let matched = obs.map_or(0.0, Recorder::now);
        data.consume_into(buf, from, &self.pools)?;
        if let Some(r) = obs {
            let end = r.now();
            let (plan, step) = self.plan_step.get();
            r.record(TraceEvent {
                kind: EventKind::Recv,
                rank: self.rank,
                src: from,
                dst: self.rank,
                tag,
                bytes: buf.len(),
                start,
                end,
                hops: 0,
                plan,
                step,
            });
            r.with_counters(|c| {
                c.msgs_recvd += 1;
                c.bytes_in += buf.len() as u64;
                c.wait_secs += matched - start;
                c.transfer_secs += end - matched;
            });
        }
        Ok(())
    }

    fn sendrecv(
        &self,
        to: usize,
        data: &[u8],
        from: usize,
        buf: &mut [u8],
        tag: Tag,
    ) -> Result<()> {
        self.exchange(to, data, tag, from, buf, tag)
    }

    fn sendrecv_tagged(
        &self,
        to: usize,
        data: &[u8],
        stag: Tag,
        from: usize,
        buf: &mut [u8],
        rtag: Tag,
    ) -> Result<()> {
        self.exchange(to, data, stag, from, buf, rtag)
    }

    fn compute(&self, bytes: usize) {
        // Real arithmetic happens in caller code (γ accounting); the
        // recorder logs the step so reduce work shows on the timeline.
        if let Some(r) = self.obs() {
            let now = r.now();
            let (plan, step) = self.plan_step.get();
            r.record(TraceEvent {
                kind: EventKind::Reduce,
                rank: self.rank,
                src: self.rank,
                dst: self.rank,
                tag: 0,
                bytes,
                start: now,
                end: now,
                hops: 0,
                plan,
                step,
            });
            r.with_counters(|c| {
                c.reduce_steps += 1;
                c.reduce_bytes += bytes as u64;
            });
        }
    }

    fn plan_step(&self, plan: u64, step: u64) {
        self.plan_step.set((plan, step));
    }
}

impl ThreadComm {
    /// The exchange engine behind both `sendrecv` flavours: the send
    /// half travels under `stag`, the receive half matches `rtag`.
    fn exchange(
        &self,
        to: usize,
        data: &[u8],
        stag: Tag,
        from: usize,
        buf: &mut [u8],
        rtag: Tag,
    ) -> Result<()> {
        // Large pairwise exchanges go zero-copy: ship a borrowed window
        // onto `data` instead of a pooled copy, then block until the
        // peer has copied out of it. Safe against deadlock because both
        // sides of an exchange post their (non-blocking) offers before
        // either waits, and each side's wait is satisfied by the peer's
        // recv of the matching tag. Excluded when `to` is this rank:
        // the offer would land in our own mailbox and could only be
        // consumed by a *later* local recv, after the wait — for the
        // self case the eager buffered copy is required.
        if data.len() >= self.rendezvous_threshold && to != self.rank {
            debug_assert_ne!(stag, FAREWELL_TAG, "Tag::MAX is reserved");
            self.check_peer(to)?;
            let obs = self.obs();
            let start = obs.map_or(0.0, Recorder::now);
            let done = self.take_completion();
            let window = BorrowedBytes {
                ptr: data.as_ptr(),
                len: data.len(),
                done: done.clone(),
            };
            self.senders[to]
                .send(Msg {
                    src: self.rank,
                    tag: stag,
                    data: Payload::Borrowed(window),
                })
                .map_err(|_| CommError::Disconnected)?;
            let recv_result = self.recv(from, rtag, buf);
            // Wait for the peer to finish with our bytes even if our own
            // receive failed — `data` must not be touched after return.
            // The bounded wait *withdraws* the window on expiry, so the
            // borrow stays sound even then.
            let wait_begun = obs.map_or(0.0, Recorder::now);
            let wait_result = done.wait(self.wait_timeout, to, stag);
            self.retire_completion(done);
            if let Some(r) = obs {
                // The send half of the exchange (the inner `recv` above
                // recorded the receive half): offered at `start`,
                // released when the peer signalled its copy-out.
                let end = r.now();
                let (plan, step) = self.plan_step.get();
                r.record(TraceEvent {
                    kind: EventKind::SendRecv,
                    rank: self.rank,
                    src: self.rank,
                    dst: to,
                    tag: stag,
                    bytes: data.len(),
                    start,
                    end,
                    hops: 0,
                    plan,
                    step,
                });
                r.with_counters(|c| {
                    c.msgs_sent += 1;
                    c.bytes_out += data.len() as u64;
                    c.rendezvous_msgs += 1;
                    c.wait_secs += end - wait_begun;
                });
            }
            recv_result?;
            return wait_result;
        }
        // Eager path: the buffered send never blocks, so send-then-recv
        // is deadlock-free in either half order.
        self.send(to, stag, data)?;
        self.recv(from, rtag, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::channel;

    fn make_pools(p: usize) -> Arc<Vec<BufferPool>> {
        Arc::new((0..p).map(|_| BufferPool::new()).collect())
    }

    fn pair() -> (ThreadComm, ThreadComm) {
        let (s0, r0) = channel();
        let (s1, r1) = channel();
        let pools = make_pools(2);
        let a = ThreadComm::new(
            0,
            vec![s0.clone(), s1.clone()],
            r0,
            pools.clone(),
            DEFAULT_RENDEZVOUS_THRESHOLD,
            Duration::from_secs(30),
        );
        let b = ThreadComm::new(
            1,
            vec![s0, s1],
            r1,
            pools,
            DEFAULT_RENDEZVOUS_THRESHOLD,
            Duration::from_secs(30),
        );
        (a, b)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (a, b) = pair();
        a.send(1, 7, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        b.recv(0, 7, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let (a, b) = pair();
        a.send(1, 1, &[10]).unwrap();
        a.send(1, 2, &[20]).unwrap();
        let mut buf = [0u8; 1];
        b.recv(0, 2, &mut buf).unwrap();
        assert_eq!(buf, [20]);
        b.recv(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [10]);
    }

    #[test]
    fn fifo_within_same_tag() {
        let (a, b) = pair();
        a.send(1, 5, &[1]).unwrap();
        a.send(1, 5, &[2]).unwrap();
        let mut buf = [0u8; 1];
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf, [1]);
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf, [2]);
    }

    #[test]
    fn length_mismatch_is_error() {
        let (a, b) = pair();
        a.send(1, 0, &[1, 2]).unwrap();
        let mut buf = [0u8; 3];
        assert!(matches!(
            b.recv(0, 0, &mut buf),
            Err(CommError::LengthMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn self_send_works() {
        let (a, _b) = pair();
        a.send(0, 3, &[9]).unwrap();
        let mut buf = [0u8; 1];
        a.recv(0, 3, &mut buf).unwrap();
        assert_eq!(buf, [9]);
    }

    #[test]
    fn invalid_peer_rejected() {
        let (a, _b) = pair();
        assert!(matches!(
            a.send(5, 0, &[]),
            Err(CommError::InvalidRank { rank: 5, size: 2 })
        ));
    }

    #[test]
    fn disconnected_world_detected() {
        // Build an endpoint whose inbox has no remaining senders: any
        // receive must report Disconnected rather than hang.
        let (_s, r) = channel::<Msg>();
        let (s_other, _r_other) = channel::<Msg>();
        let lonely = ThreadComm::new(
            0,
            vec![s_other],
            r,
            make_pools(1),
            DEFAULT_RENDEZVOUS_THRESHOLD,
            Duration::from_secs(30),
        );
        drop(_s);
        let mut buf = [0u8; 1];
        assert_eq!(lonely.recv(0, 0, &mut buf), Err(CommError::Disconnected));
    }

    #[test]
    fn sendrecv_exchanges_both_ways() {
        let (a, b) = pair();
        // Pre-load b's message so a's sendrecv completes immediately.
        b.send(0, 4, &[7, 7]).unwrap();
        let mut abuf = [0u8; 2];
        a.sendrecv(1, &[1, 2], 1, &mut abuf, 4).unwrap();
        assert_eq!(abuf, [7, 7]);
        let mut bbuf = [0u8; 2];
        b.recv(0, 4, &mut bbuf).unwrap();
        assert_eq!(bbuf, [1, 2]);
    }

    #[test]
    fn rendezvous_exchange_is_byte_exact() {
        // Above RENDEZVOUS_THRESHOLD the sendrecv path ships borrowed
        // windows; run a real two-thread exchange and check both sides.
        let n = DEFAULT_RENDEZVOUS_THRESHOLD * 2;
        let out = crate::run_world(2, |c| {
            let me = c.rank();
            let peer = 1 - me;
            let mine = vec![me as u8 + 1; n];
            let mut got = vec![0u8; n];
            c.sendrecv(peer, &mine, peer, &mut got, 3).unwrap();
            got
        });
        assert!(out[0].iter().all(|&b| b == 2));
        assert!(out[1].iter().all(|&b| b == 1));
    }

    #[test]
    fn rendezvous_self_exchange_falls_back_to_eager() {
        let n = DEFAULT_RENDEZVOUS_THRESHOLD * 2;
        let out = crate::run_world(1, |c| {
            let mine = vec![7u8; n];
            let mut got = vec![0u8; n];
            c.sendrecv(0, &mine, 0, &mut got, 3).unwrap();
            got
        });
        assert!(out[0].iter().all(|&b| b == 7));
    }

    #[test]
    fn rendezvous_skips_payload_pool() {
        let n = DEFAULT_RENDEZVOUS_THRESHOLD;
        let stats = crate::run_world(2, |c| {
            let peer = 1 - c.rank();
            let mine = vec![1u8; n];
            let mut got = vec![0u8; n];
            for _ in 0..4 {
                c.sendrecv(peer, &mine, peer, &mut got, 5).unwrap();
            }
            c.pool_stats()
        });
        // Zero-copy exchanges never touch the pool.
        assert_eq!(stats[0].hits + stats[0].misses, 0, "{:?}", stats[0]);
    }

    #[test]
    fn rendezvous_length_mismatch_releases_both_sides() {
        // The receiver rejects the borrowed payload without copying;
        // dropping it must still unblock the sender (Abandoned).
        let n = DEFAULT_RENDEZVOUS_THRESHOLD;
        let out = crate::run_world(2, |c| {
            if c.rank() == 0 {
                let mine = vec![1u8; n];
                let mut got = vec![0u8; n];
                c.sendrecv(1, &mine, 1, &mut got, 2).err()
            } else {
                let mine = vec![2u8; n];
                let mut short = vec![0u8; n - 1];
                c.sendrecv(0, &mine, 0, &mut short, 2).err()
            }
        });
        // Rank 1's recv fails on length; rank 0's wait observes the
        // abandoned window (or its own recv succeeds and wait errors).
        assert!(out[1].is_some());
        assert!(out[0].is_some());
    }

    #[test]
    fn consumed_payloads_return_to_senders_pool() {
        let (a, b) = pair();
        let mut buf = [0u8; 64];
        for round in 0..4 {
            a.send(1, round, &[round as u8; 64]).unwrap();
            b.recv(0, round, &mut buf).unwrap();
        }
        let s = a.pool_stats();
        // Round 1 allocates; every later round reuses the returned
        // buffer (receiver releases into the *sender's* pool).
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.recycled, 4);
        assert_eq!(b.pool_stats().misses, 0, "receiver's pool untouched");
    }

    #[test]
    fn stashed_payloads_also_recycle() {
        let (a, b) = pair();
        let mut buf = [0u8; 16];
        for round in 0..3 {
            // Two tags arrive "backwards" each round: tag 2 is consumed
            // first, forcing tag 1 through the stash.
            a.send(1, 1, &[1; 16]).unwrap();
            a.send(1, 2, &[2; 16]).unwrap();
            b.recv(0, 2, &mut buf).unwrap();
            b.recv(0, 1, &mut buf).unwrap();
            let _ = round;
        }
        let s = a.pool_stats();
        assert_eq!(s.hits + s.misses, 6);
        assert!(s.misses <= 2, "stash path must recycle payloads too: {s:?}");
        assert_eq!(s.recycled, 6);
    }
}
