//! # intercom-runtime — threaded message-passing backend
//!
//! A real (non-simulated) backend for the InterCom library: every rank is
//! an OS thread, point-to-point messages travel over lock-free channels,
//! and matching is FIFO per `(source, tag)` exactly as the [`Comm`]
//! contract requires. This is the backend a downstream user runs
//! collectives on within one shared-memory node; the sibling
//! `intercom-meshsim` crate provides the Paragon-timing simulation
//! backend.
//!
//! ```
//! use intercom_runtime::run_world;
//! use intercom::{Comm, Communicator, ReduceOp};
//! use intercom_cost::MachineParams;
//!
//! let sums = run_world(4, |comm| {
//!     let cc = Communicator::world(comm, MachineParams::PARAGON);
//!     let mut v = vec![(comm.rank() + 1) as f64; 8];
//!     cc.allreduce(&mut v, ReduceOp::Sum).unwrap();
//!     v[0]
//! });
//! assert!(sums.iter().all(|&s| s == 10.0));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod calibrate;
pub mod chan;
pub mod endpoint;
pub mod world;

pub use calibrate::{calibrate, Calibration};
pub use endpoint::{ThreadComm, DEFAULT_RENDEZVOUS_THRESHOLD};
pub use world::{
    default_wait_timeout, run_world, run_world_deadline, run_world_observed, run_world_pooled,
    run_world_recorded, run_world_tuned,
};

// Re-exported so downstream tests can name the trait without an extra
// dependency edge.
pub use intercom::Comm;
