//! Backend self-calibration — automating the paper's §11 porting recipe.
//!
//! "To port the library between platforms or tune it for new operating
//! system releases, it suffices to enter a few parameters that describe
//! the latency, bandwidth and computation characteristics of the
//! system." This module *measures* those parameters on the threaded
//! backend with classic ping-pong and streaming kernels, producing a
//! [`MachineParams`] that makes the cost-model selector reflect the host
//! it actually runs on rather than a 1994 Paragon.

use crate::endpoint::ThreadComm;
use crate::world::run_world;
use intercom::Comm;
use intercom_cost::MachineParams;
use std::time::Instant;

/// Measured point-to-point characteristics of the threaded backend.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Measured per-message latency (α), seconds.
    pub alpha: f64,
    /// Measured per-byte time (β), seconds/byte.
    pub beta: f64,
    /// Measured per-byte combine time (γ) for `f64` summation.
    pub gamma: f64,
}

impl Calibration {
    /// Converts to [`MachineParams`] (δ negligible on a native backend;
    /// channels have no shared physical links, so `link_excess` is left
    /// high enough to disable conflict modeling).
    pub fn machine(&self) -> MachineParams {
        MachineParams {
            alpha: self.alpha,
            beta: self.beta,
            gamma: self.gamma,
            delta: 0.0,
            link_excess: 1e9,
        }
    }
}

fn pingpong(a: &ThreadComm, peer: usize, bytes: usize, iters: usize) -> f64 {
    let payload = vec![0u8; bytes];
    let mut buf = vec![0u8; bytes];
    let start = Instant::now();
    for i in 0..iters {
        let tag = i as u64;
        if a.rank() == 0 {
            a.send(peer, tag, &payload).unwrap();
            a.recv(peer, tag, &mut buf).unwrap();
        } else {
            a.recv(0, tag, &mut buf).unwrap();
            a.send(0, tag, &payload).unwrap();
        }
    }
    // One-way time per message.
    start.elapsed().as_secs_f64() / (2.0 * iters as f64)
}

/// Measures α (small-message ping-pong), β (large-message slope) and γ
/// (local `f64` summation throughput) on this host. Takes a fraction of
/// a second; results are indicative, not statistically rigorous —
/// exactly the "few parameters" the paper's port needs.
pub fn calibrate() -> Calibration {
    const SMALL: usize = 8;
    const BIG: usize = 1 << 20;
    const ITERS: usize = 64;
    let times = run_world(2, |c| {
        let t_small = pingpong(c, 1 - c.rank(), SMALL, ITERS);
        let t_big = pingpong(c, 1 - c.rank(), BIG, 8);
        (t_small, t_big)
    });
    let (t_small, t_big) = times[0];
    let alpha = t_small.max(1e-9);
    let beta = ((t_big - t_small) / (BIG - SMALL) as f64).max(1e-12);

    // γ: stream-sum two large f64 buffers.
    let n = 1 << 20;
    let a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let start = Instant::now();
    for (x, &y) in b.iter_mut().zip(&a) {
        *x += y;
    }
    std::hint::black_box(&b);
    let gamma = (start.elapsed().as_secs_f64() / (n * 8) as f64).max(1e-13);

    Calibration { alpha, beta, gamma }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_plausible_parameters() {
        let c = calibrate();
        // Latency: sub-second, super-nanosecond (channel + wakeup).
        assert!(c.alpha > 1e-9 && c.alpha < 0.1, "alpha {}", c.alpha);
        // Bandwidth: between 1 MB/s and 1 TB/s.
        let bw = 1.0 / c.beta;
        assert!(bw > 1e6 && bw < 1e12, "bw {bw}");
        // Combine: faster than 1 s/MB.
        assert!(c.gamma < 1e-6, "gamma {}", c.gamma);
        let m = c.machine();
        assert_eq!(m.delta, 0.0);
    }

    #[test]
    fn calibrated_machine_drives_selection() {
        // The calibrated parameters must be usable by the selector
        // end-to-end.
        let m = calibrate().machine();
        let s = intercom_cost::best_strategy(
            intercom_cost::CollectiveOp::Broadcast,
            8,
            1 << 16,
            &m,
            intercom_cost::CostContext::LINEAR,
        );
        assert_eq!(s.nodes(), 8);
    }
}
