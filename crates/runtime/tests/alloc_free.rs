//! Proves the transport's zero-allocation claim with a counting global
//! allocator.
//!
//! Three levels of guarantee, strongest first:
//!
//! 1. Raw eager hops (`send`/`recv`/small `sendrecv`): after one
//!    warm-up exchange populates the pools and channel queues, repeated
//!    hops perform **exactly zero** heap allocations.
//! 2. Rendezvous hops (large `sendrecv`): the zero-copy path reuses
//!    retired completion flags, so steady-state exchanges allocate
//!    nothing except a rare benign race (the peer's flag handle not yet
//!    dropped when the flag is reacquired) — a handful of tiny,
//!    payload-size-independent allocations at most.
//! 3. Whole planned collectives: the payload-scale buffers (transport
//!    hops, plan scratch, permutation scratch) are all reused; what
//!    remains is the algorithm layer's small per-stage setup (block
//!    range lists, subgroup member lists), bounded and independent of
//!    payload size.
//!
//! The counter is process-global, so measured windows are bracketed by
//! barriers (warmed planned allreduce) keeping other ranks quiescent —
//! and the tests themselves are serialized through [`WINDOW`], since
//! the harness otherwise runs them on concurrent threads whose
//! allocations would land in each other's windows.

#![deny(unsafe_op_in_unsafe_fn)]

use intercom::plan::{AllreducePlan, BcastPlan, CollectPlan};
use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::{run_world, DEFAULT_RENDEZVOUS_THRESHOLD};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` plus a relaxed counter bump;
// every `GlobalAlloc` contract obligation is discharged by `System`
// itself, and the counter has no effect on layout or pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, who
        // guarantees it is non-zero-sized as `GlobalAlloc` requires.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `System.alloc`/`realloc` via our
        // own `alloc`/`realloc` with this same `layout`, per the caller's
        // `dealloc` contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` describe a live block from this
        // allocator and `new_size` is non-zero, forwarded unchanged from
        // the caller's `realloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the measured windows across the three tests; a poisoned
/// lock (an earlier test failed) must not mask this one's result.
static WINDOW: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn window_guard() -> std::sync::MutexGuard<'static, ()> {
    WINDOW.lock().unwrap_or_else(|e| e.into_inner())
}

/// Counts process-wide allocations during `iters` symmetric `sendrecv`
/// ping-pong exchanges of `n` bytes between two ranks (after `warmup`
/// identical exchanges).
fn allocations_during_exchanges(n: usize, warmup: usize, iters: usize) -> u64 {
    let _window = window_guard();
    let out = run_world(2, |c| {
        let peer = 1 - c.rank();
        let mine = vec![c.rank() as u8; n];
        let mut got = vec![0u8; n];
        for _ in 0..warmup {
            c.sendrecv(peer, &mine, peer, &mut got, 1).unwrap();
        }
        // Lockstep ping-pong keeps mailbox depth at 1, but a receiver
        // descheduled under load lets the peer's next send queue behind
        // an unconsumed one (depth 2) — growing the mailbox and pulling
        // a second payload buffer from the pool. Both are legitimate
        // one-time warm-up costs, so provision them here rather than
        // letting a loaded machine pay them inside the window.
        c.send(peer, 1, &mine).unwrap();
        c.send(peer, 1, &mine).unwrap();
        c.recv(peer, 1, &mut got).unwrap();
        c.recv(peer, 1, &mut got).unwrap();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..iters {
            c.sendrecv(peer, &mine, peer, &mut got, 1).unwrap();
        }
        // Symmetric exchanges double as barriers: when rank 0's last
        // sendrecv returns, rank 1 has completed its side of every
        // iteration, so both ranks' hops fall inside the window.
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        after - before
    });
    out[0]
}

#[test]
fn eager_hops_are_strictly_allocation_free() {
    let n = allocations_during_exchanges(1024, 4, 200);
    assert_eq!(
        n, 0,
        "steady-state eager hops performed {n} heap allocations"
    );
}

#[test]
fn rendezvous_hops_allocate_at_most_stray_flags() {
    let iters = 100;
    let n = allocations_during_exchanges(DEFAULT_RENDEZVOUS_THRESHOLD * 2, 4, iters);
    // The only permitted allocation is a fresh completion flag when the
    // retired one is reacquired before the peer drops its handle; no
    // payload buffer is ever allocated.
    assert!(
        n <= 8,
        "expected near-zero rendezvous allocations, got {n} over {iters} hops"
    );
}

/// Runs `rounds` steady-state repetitions of every planned collective on
/// a world of `p` ranks and returns the number of heap allocations the
/// whole process performed during those repetitions (warm-up excluded).
fn allocations_during_steady_rounds(p: usize, elems: usize, rounds: usize) -> u64 {
    let _window = window_guard();
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let bcast = BcastPlan::<f64>::new(&cc, 0, elems);
        let collect = CollectPlan::<f64>::new(&cc, elems);
        let allreduce = AllreducePlan::<f64>::new(&cc, elems, ReduceOp::Sum);
        let barrier = AllreducePlan::<f64>::new(&cc, 1, ReduceOp::Sum);
        let mut buf = vec![1.0f64; elems];
        let mine = vec![c.rank() as f64; elems];
        let mut all = vec![0.0f64; elems * c.size()];
        let mut one_round = || {
            bcast.execute(&cc, &mut buf).unwrap();
            collect.execute(&cc, &mine, &mut all).unwrap();
            allreduce.execute(&cc, &mut buf).unwrap();
        };
        // Warm-up: sizes every pool free list, stash slot, queue, and
        // plan scratch buffer. Two rounds, in case the first round's
        // out-of-order arrivals differ from the steady pattern.
        one_round();
        one_round();
        // Barrier (itself planned + warmed, so it is allocation-free)
        // so no rank is still allocating warm-up structures when the
        // measured window opens.
        let mut token = [0.0f64];
        barrier.execute(&cc, &mut token).unwrap();
        barrier.execute(&cc, &mut token).unwrap();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..rounds {
            one_round();
        }
        // Close the window with a barrier *before* reading, so every
        // rank's rounds are inside [before, after] on rank 0.
        barrier.execute(&cc, &mut token).unwrap();
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        after - before
    });
    out[0]
}

#[test]
fn planned_collective_rounds_allocate_only_bounded_setup() {
    // Per round across 4 ranks and 3 collectives the algorithm layer
    // builds a few block-range and subgroup-member lists; everything
    // payload-sized is reused. The bound is deliberately tight enough
    // that a single payload buffer regression per round would trip it.
    let small = allocations_during_steady_rounds(4, 64, 10);
    assert!(
        small <= 600,
        "setup allocations ballooned: {small} over 10 rounds"
    );

    // Size-independence: 128× larger payloads must not change the
    // allocation picture materially (same strategies modulo the cost
    // model's choice, zero payload-scale allocations).
    let large = allocations_during_steady_rounds(4, 8192, 10);
    assert!(
        large <= 600,
        "large-payload rounds allocate: {large} over 10 rounds"
    );
}
