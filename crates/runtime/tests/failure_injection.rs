//! Failure injection: ranks that die mid-collective must surface
//! [`CommError::Disconnected`] to their peers, never hang them.

use intercom::faults::POISON_TAG;
use intercom::{AbortCause, AbortInfo, Comm, CommError};
use intercom_runtime::{run_world, run_world_deadline};
use std::panic::AssertUnwindSafe;
use std::time::Duration;

/// Runs a world where rank `victim` exits immediately; surviving ranks
/// attempt `f` and report the error they saw.
fn world_with_early_exit<F>(p: usize, victim: usize, f: F) -> Vec<Option<CommError>>
where
    F: Fn(&intercom_runtime::ThreadComm) -> Result<(), CommError> + Send + Sync,
{
    run_world(p, |c| {
        if c.rank() == victim {
            // Dies without participating; its channel endpoints drop.
            return None;
        }
        Some(f(c).unwrap_err())
    })
    .into_iter()
    .collect()
}

#[test]
fn recv_from_dead_rank_disconnects() {
    let out = world_with_early_exit(3, 0, |c| {
        let mut buf = [0u8; 4];
        c.recv(0, 7, &mut buf)
    });
    assert_eq!(out[0], None);
    for r in [1, 2] {
        assert_eq!(out[r], Some(CommError::Disconnected), "rank {r}");
    }
}

#[test]
fn sendrecv_with_dead_partner_disconnects() {
    let out = world_with_early_exit(2, 1, |c| {
        let mut buf = [0u8; 1];
        // The send into the dead rank's dropped inbox fails (or the recv
        // does); either way the caller sees Disconnected rather than a
        // hang.
        c.sendrecv(1, &[9], 1, &mut buf, 0)
    });
    assert_eq!(out[1], None);
    assert_eq!(out[0], Some(CommError::Disconnected));
}

#[test]
fn collective_with_dead_member_errors_not_hangs() {
    // A broadcast that includes a dead rank must propagate an error to
    // at least the ranks that depend on it. We assert no rank panics and
    // the world terminates (the run_world call returning at all is the
    // real assertion; a hang would time the suite out).
    let out = run_world(4, |c| {
        if c.rank() == 2 {
            return Err(CommError::Disconnected); // simulated early death
        }
        let cc = intercom::Communicator::world(c, intercom_cost::MachineParams::PARAGON);
        let mut buf = vec![0u8; 64];
        // Rank 2 never participates: its tree children/parents see
        // Disconnected once the channels drop.
        cc.bcast(0, &mut buf)
    });
    // Rank 0 (root, sends to someone) may succeed or disconnect depending
    // on tree shape; ranks below 2 in the tree must error. At minimum:
    // nobody panicked (we got here), and at least one rank observed the
    // failure.
    assert!(out
        .iter()
        .any(|r| matches!(r, Err(CommError::Disconnected))));
    let _ = AssertUnwindSafe(());
}

#[test]
fn recv_from_silent_peer_times_out_not_hangs() {
    // Rank 1 is alive but silent past the deadline: the bounded wait
    // must expire with a Timeout naming the silent peer and the tag the
    // waiter was matching against, instead of blocking forever (or
    // reporting Disconnected — rank 1's endpoint is still up).
    let out = run_world_deadline(2, Duration::from_millis(100), |c| {
        if c.rank() == 1 {
            // Outlive rank 0's deadline without ever sending.
            std::thread::sleep(Duration::from_millis(400));
            return None;
        }
        let mut buf = [0u8; 4];
        Some(c.recv(1, 99, &mut buf).unwrap_err())
    });
    assert_eq!(out[1], None);
    match out[0] {
        Some(CommError::Timeout {
            from,
            tag,
            waited_ms,
        }) => {
            assert_eq!(from, 1);
            assert_eq!(tag, 99);
            assert!(waited_ms >= 100, "waited only {waited_ms}ms");
        }
        ref other => panic!("expected a bounded-wait timeout, got {other:?}"),
    }
}

#[test]
fn poison_record_wakes_a_blocked_receiver() {
    // A rank blocked on an unrelated tag must be woken the moment a
    // coordinated-abort poison record arrives, and must surface the
    // decoded diagnosis rather than its own timeout.
    let info = AbortInfo {
        origin: 1,
        culprit: 1,
        plan: 7,
        step: 3,
        cause: AbortCause::Stall,
    };
    let out = run_world_deadline(2, Duration::from_secs(5), |c| {
        if c.rank() == 1 {
            std::thread::sleep(Duration::from_millis(50));
            c.send(0, POISON_TAG, &info.encode()).unwrap();
            return None;
        }
        // Blocked waiting for a data message that will never come.
        let mut buf = [0u8; 4];
        Some(c.recv(1, 12, &mut buf).unwrap_err())
    });
    assert_eq!(out[0], Some(CommError::Aborted(info)));
}

#[test]
fn zero_length_messages_are_legal() {
    let out = run_world(2, |c| {
        let mut buf = [0u8; 0];
        if c.rank() == 0 {
            c.send(1, 3, &[])?;
        } else {
            c.recv(0, 3, &mut buf)?;
        }
        Ok::<_, CommError>(())
    });
    assert!(out.iter().all(|r| r.is_ok()));
}

#[test]
fn many_small_messages_preserve_order() {
    // Stress the (src, tag) FIFO under load: 500 messages per pair.
    let out = run_world(3, |c| {
        let me = c.rank();
        let next = (me + 1) % 3;
        let prev = (me + 2) % 3;
        for i in 0..500u32 {
            c.send(next, 42, &i.to_le_bytes()).unwrap();
        }
        let mut got = Vec::new();
        let mut buf = [0u8; 4];
        for _ in 0..500 {
            c.recv(prev, 42, &mut buf).unwrap();
            got.push(u32::from_le_bytes(buf));
        }
        got
    });
    for (r, seq) in out.iter().enumerate() {
        assert_eq!(seq, &(0..500).collect::<Vec<u32>>(), "rank {r}");
    }
}
