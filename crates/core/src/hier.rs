//! Hierarchical collectives: leader-based compositions over a cluster.
//!
//! A cluster of `m` nodes with `r` ranks each is numbered *node-major*:
//! global rank = `node·r + local`. Under that numbering the two level
//! subgroups fall straight out of [`GroupComm`]'s mesh splitters:
//! [`GroupComm::line`]`(r)` is the **intra-node** group (line rank =
//! local slot) and [`GroupComm::plane`]`(r)` is the **leader plane** —
//! the ranks sharing one local slot across all nodes (plane rank = node
//! id). A hierarchical collective is then an ordinary sequential
//! composition of the unmodified flat algorithms over those subgroups,
//! one stage per entry of the op's
//! [`hier_template`](intercom_cost::hier_template), each stage running
//! the flat [`Strategy`](intercom_cost::Strategy) its [`HierStrategy`]
//! carries. Stages whose role is strategy-free in this library (gather,
//! scatter) carry a strategy for *pricing* only; execution uses the
//! fixed algorithm.
//!
//! ## Tag discipline
//!
//! Stage `k` runs at base tag `tag + k ·` [`HIER_STAGE_STRIDE`]. A flat
//! algorithm recursing through a logical mesh consumes tags only a few
//! multiples of [`LEVEL_TAG_STRIDE`](crate::algorithms::LEVEL_TAG_STRIDE)
//! past its base, far below the stride, so stages can never collide —
//! and every step of stage `k` lands in a disjoint
//! [`StageId`](crate::ir::StageId) band, which is what lets the
//! verifier gate link-conflict predictions per stage.

use crate::algorithms;
use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::op::{Elem, ReduceOp};
use intercom_cost::{hier_template, CollectiveOp, HierStrategy};

/// Tag distance between consecutive hierarchical stages. Each stage's
/// flat algorithm uses a handful of
/// [`LEVEL_TAG_STRIDE`](crate::algorithms::LEVEL_TAG_STRIDE)-spaced
/// tags internally, so 1024 keeps stages disjoint with room to spare
/// while staying far below
/// [`CALL_TAG_STRIDE`](crate::communicator::CALL_TAG_STRIDE).
pub const HIER_STAGE_STRIDE: u64 = 1 << 10;

/// Checks `hs` against the template for `op` on this group: the ranks
/// match the cluster shape, the stage sequence matches the template's
/// levels and roles, and each stage strategy covers its subgroup.
fn validate<C: Comm + ?Sized>(
    op: CollectiveOp,
    hs: &HierStrategy,
    gc: &GroupComm<'_, C>,
) -> Result<()> {
    if hs.shape.ranks() != gc.len() {
        return Err(CommError::StrategyMismatch {
            strategy_nodes: hs.shape.ranks(),
            group_len: gc.len(),
        });
    }
    let specs = hier_template(op, hs.shape).ok_or(CommError::PlanMismatch {
        what: "op has no hierarchical template",
    })?;
    if specs.len() != hs.stages.len() {
        return Err(CommError::PlanMismatch {
            what: "hierarchical stage count differs from the op's template",
        });
    }
    for (spec, stage) in specs.iter().zip(&hs.stages) {
        if spec.level != stage.level || spec.role != stage.role {
            return Err(CommError::PlanMismatch {
                what: "hierarchical stage level/role differs from the op's template",
            });
        }
        if stage.strategy.nodes() != spec.group {
            return Err(CommError::StrategyMismatch {
                strategy_nodes: stage.strategy.nodes(),
                group_len: spec.group,
            });
        }
    }
    Ok(())
}

/// Hierarchical broadcast: inter-node broadcast among the leaders at
/// the root's local slot, then intra-node fan-out.
pub fn hier_broadcast<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    hs: &HierStrategy,
    root: usize,
    buf: &mut [T],
    tag: Tag,
) -> Result<()> {
    validate(CollectiveOp::Broadcast, hs, gc)?;
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    let r = hs.shape.ranks_per_node;
    let slot = root % r;
    if gc.me() % r == slot {
        let plane = gc.plane(r);
        algorithms::broadcast(&plane, &hs.stages[0].strategy, root / r, buf, tag)?;
    }
    let line = gc.line(r);
    algorithms::broadcast(
        &line,
        &hs.stages[1].strategy,
        slot,
        buf,
        tag + HIER_STAGE_STRIDE,
    )
}

/// Hierarchical combine-to-one: intra-node reduce to the leader at the
/// root's local slot, then inter-node reduce among leaders to the root.
/// Only the root's `buf` holds the result afterwards; other ranks' may
/// be clobbered, as with the flat algorithm.
pub fn hier_reduce<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    hs: &HierStrategy,
    root: usize,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    validate(CollectiveOp::CombineToOne, hs, gc)?;
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    let r = hs.shape.ranks_per_node;
    let slot = root % r;
    let line = gc.line(r);
    algorithms::reduce(&line, &hs.stages[0].strategy, slot, buf, op, tag)?;
    if gc.me() % r == slot {
        let plane = gc.plane(r);
        algorithms::reduce(
            &plane,
            &hs.stages[1].strategy,
            root / r,
            buf,
            op,
            tag + HIER_STAGE_STRIDE,
        )?;
    }
    Ok(())
}

/// Hierarchical combine-to-all: intra-node reduce to the node leader,
/// inter-node allreduce among leaders, intra-node broadcast back.
pub fn hier_allreduce<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    hs: &HierStrategy,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    validate(CollectiveOp::CombineToAll, hs, gc)?;
    let r = hs.shape.ranks_per_node;
    let line = gc.line(r);
    algorithms::reduce(&line, &hs.stages[0].strategy, 0, buf, op, tag)?;
    if gc.me().is_multiple_of(r) {
        let plane = gc.plane(r);
        algorithms::allreduce(
            &plane,
            &hs.stages[1].strategy,
            buf,
            op,
            tag + HIER_STAGE_STRIDE,
        )?;
    }
    algorithms::broadcast(
        &line,
        &hs.stages[2].strategy,
        0,
        buf,
        tag + 2 * HIER_STAGE_STRIDE,
    )
}

/// Hierarchical collect (allgather): gather each node's blocks to its
/// leader, collect node blocks across the leader plane, broadcast the
/// full vector within each node. Node-major rank numbering makes each
/// node's gathered block a contiguous run of `all`, in plane order.
pub fn hier_collect<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    hs: &HierStrategy,
    mine: &[T],
    all: &mut [T],
    tag: Tag,
) -> Result<()> {
    validate(CollectiveOp::Collect, hs, gc)?;
    let b = mine.len();
    if all.len() != gc.len() * b {
        return Err(CommError::BadBufferSize {
            expected: gc.len() * b,
            actual: all.len(),
        });
    }
    let r = hs.shape.ranks_per_node;
    let leader = gc.me().is_multiple_of(r);
    let line = gc.line(r);
    let mut node_block = vec![T::default(); if leader { r * b } else { 0 }];
    algorithms::gather(&line, 0, mine, leader.then_some(&mut node_block[..]), tag)?;
    if leader {
        let plane = gc.plane(r);
        algorithms::collect(
            &plane,
            &hs.stages[1].strategy,
            &node_block,
            all,
            tag + HIER_STAGE_STRIDE,
        )?;
    }
    algorithms::broadcast(
        &line,
        &hs.stages[2].strategy,
        0,
        all,
        tag + 2 * HIER_STAGE_STRIDE,
    )
}

/// Hierarchical distributed combine (reduce-scatter): reduce full
/// vectors to each node leader, reduce-scatter node blocks across the
/// leader plane, scatter each node's block to its ranks. Node-major
/// numbering means plane rank `j`'s reduced block is exactly the
/// concatenation of blocks for global ranks `j·r .. (j+1)·r`.
pub fn hier_reduce_scatter<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    hs: &HierStrategy,
    contrib: &[T],
    mine: &mut [T],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    validate(CollectiveOp::DistributedCombine, hs, gc)?;
    let b = mine.len();
    let p = gc.len();
    if contrib.len() != p * b {
        return Err(CommError::BadBufferSize {
            expected: p * b,
            actual: contrib.len(),
        });
    }
    let r = hs.shape.ranks_per_node;
    let leader = gc.me().is_multiple_of(r);
    let line = gc.line(r);
    // The intra reduce folds in place, so work on a copy of the
    // caller's contribution.
    let mut work = vec![T::default(); p * b];
    gc.copy(contrib, &mut work);
    algorithms::reduce(&line, &hs.stages[0].strategy, 0, &mut work, op, tag)?;
    let mut node_block = vec![T::default(); if leader { r * b } else { 0 }];
    if leader {
        let plane = gc.plane(r);
        algorithms::reduce_scatter(
            &plane,
            &hs.stages[1].strategy,
            &work,
            &mut node_block,
            op,
            tag + HIER_STAGE_STRIDE,
        )?;
    }
    algorithms::scatter(
        &line,
        0,
        leader.then_some(&node_block[..]),
        mine,
        tag + 2 * HIER_STAGE_STRIDE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpRecord, RecordingComm};
    use intercom_cost::{select_hier, ClusterShape, HierMachine};

    fn strategy_for(op: CollectiveOp, shape: ClusterShape) -> HierStrategy {
        select_hier(op, shape, 4096, &HierMachine::paragon_cluster()).unwrap()
    }

    /// Replays `f` on every rank of `shape`, returning each rank's
    /// recorded operation stream.
    fn replay<F>(shape: ClusterShape, f: F) -> Vec<Vec<OpRecord>>
    where
        F: Fn(&GroupComm<'_, RecordingComm>) -> Result<()>,
    {
        let p = shape.ranks();
        (0..p)
            .map(|rank| {
                let rec = RecordingComm::new(rank, p);
                {
                    let gc = GroupComm::world(&rec);
                    f(&gc).unwrap();
                }
                rec.into_ops()
            })
            .collect()
    }

    /// Every tag observed in `ops`, for stage-band assertions.
    fn tags(ops: &[OpRecord]) -> Vec<Tag> {
        ops.iter()
            .filter_map(|op| match op {
                OpRecord::Send { tag, .. } | OpRecord::Recv { tag, .. } => Some(*tag),
                OpRecord::SendRecv { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn broadcast_stages_occupy_disjoint_tag_bands() {
        let shape = ClusterShape::linear(3, 4);
        let hs = strategy_for(CollectiveOp::Broadcast, shape);
        let recs = replay(shape, |gc| {
            let mut buf = vec![0u64; 8];
            hier_broadcast(gc, &hs, 0, &mut buf, 0)
        });
        let mut seen_inter = false;
        let mut seen_intra = false;
        for ops in &recs {
            for t in tags(ops) {
                match t / HIER_STAGE_STRIDE {
                    0 => seen_inter = true,
                    1 => seen_intra = true,
                    other => panic!("tag {t} in unexpected stage band {other}"),
                }
            }
        }
        assert!(seen_inter && seen_intra);
    }

    #[test]
    fn allreduce_uses_three_stage_bands() {
        let shape = ClusterShape::linear(2, 3);
        let hs = strategy_for(CollectiveOp::CombineToAll, shape);
        let recs = replay(shape, |gc| {
            let mut buf = vec![0u32; 6];
            hier_allreduce(gc, &hs, &mut buf, ReduceOp::Sum, 0)
        });
        let mut bands = std::collections::BTreeSet::new();
        for ops in &recs {
            bands.extend(tags(ops).into_iter().map(|t| t / HIER_STAGE_STRIDE));
        }
        assert_eq!(bands.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn only_leaders_speak_across_nodes() {
        // In the allreduce middle stage, every cross-node message has a
        // leader (local slot 0) on both ends.
        let shape = ClusterShape::linear(3, 2);
        let r = shape.ranks_per_node;
        let hs = strategy_for(CollectiveOp::CombineToAll, shape);
        let recs = replay(shape, |gc| {
            let mut buf = vec![0u64; 4];
            hier_allreduce(gc, &hs, &mut buf, ReduceOp::Sum, 0)
        });
        for (rank, ops) in recs.iter().enumerate() {
            for op in ops {
                let peer = match op {
                    OpRecord::Send { to, .. } => Some(*to),
                    OpRecord::Recv { from, .. } => Some(*from),
                    OpRecord::SendRecv { to, .. } => Some(*to),
                    _ => None,
                };
                if let Some(peer) = peer {
                    if rank / r != peer / r {
                        assert_eq!(rank % r, 0, "rank {rank} spoke across nodes");
                        assert_eq!(peer % r, 0, "rank {rank} spoke to non-leader {peer}");
                    }
                }
            }
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let shape = ClusterShape::linear(2, 2);
        let hs = strategy_for(CollectiveOp::Broadcast, shape);
        let rec = RecordingComm::new(0, 6); // 6 ranks ≠ shape's 4
        let gc = GroupComm::world(&rec);
        let mut buf = vec![0u8; 4];
        assert!(matches!(
            hier_broadcast(&gc, &hs, 0, &mut buf, 0),
            Err(CommError::StrategyMismatch { .. })
        ));
    }

    #[test]
    fn wrong_stage_sequence_is_rejected() {
        let shape = ClusterShape::linear(2, 2);
        // A broadcast strategy replayed as an allreduce: stage count and
        // roles both disagree with the template.
        let hs = strategy_for(CollectiveOp::Broadcast, shape);
        let rec = RecordingComm::new(0, shape.ranks());
        let gc = GroupComm::world(&rec);
        let mut buf = vec![0u64; 4];
        assert!(matches!(
            hier_allreduce(&gc, &hs, &mut buf, ReduceOp::Sum, 0),
            Err(CommError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn bad_output_length_is_rejected() {
        let shape = ClusterShape::linear(2, 2);
        let hs = strategy_for(CollectiveOp::Collect, shape);
        let rec = RecordingComm::new(0, shape.ranks());
        let gc = GroupComm::world(&rec);
        let mine = vec![0u32; 4];
        let mut all = vec![0u32; 7]; // not p·b
        assert!(matches!(
            hier_collect(&gc, &hs, &mine, &mut all, 0),
            Err(CommError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn single_rank_nodes_degenerate_to_inter_only() {
        // rpn = 1: the intra stages are singleton no-ops, every message
        // lives in the stage-0 band for broadcast.
        let shape = ClusterShape::linear(4, 1);
        let hs = strategy_for(CollectiveOp::Broadcast, shape);
        let recs = replay(shape, |gc| {
            let mut buf = vec![0u16; 8];
            hier_broadcast(gc, &hs, 0, &mut buf, 0)
        });
        let mut any = false;
        for ops in &recs {
            for t in tags(ops) {
                assert_eq!(t / HIER_STAGE_STRIDE, 0);
                any = true;
            }
        }
        assert!(any, "4 nodes still exchange messages");
    }
}
