//! Schedule extraction: a recording [`Comm`] backend that captures a
//! rank's symbolic communication program without moving a byte.
//!
//! The library's collectives branch only on `(rank, size, n, strategy)` —
//! never on received *values* — so running one rank's algorithm against a
//! [`RecordingComm`] (whose `recv` zero-fills and returns immediately)
//! yields exactly the sequence of point-to-point operations that rank
//! would issue on a real backend. Re-running the same call for every
//! rank produces the full symbolic schedule, which the `intercom-verify`
//! crate matches into synchronous steps and checks statically for
//! deadlock-freedom, single-port compliance, link-conflict-freedom and
//! buffer-region safety — turning the paper's "conflict-free" claim into
//! a machine-checked property over the whole strategy space.
//!
//! Buffer identity is captured as raw address spans ([`MemSpan`]): the
//! borrows passed to `send`/`recv`/`sendrecv` are live simultaneously
//! within one call, so span overlap within one operation is meaningful
//! (and is exactly what the buffer-safety invariant checks). Callers may
//! [`RecordingComm::register`] named regions (the user-visible buffers)
//! so reports can translate spans back to logical byte offsets.

use crate::comm::{Comm, Tag};
use crate::error::{CommError, Result};
use std::cell::RefCell;

/// A raw memory span observed during recording: the address and byte
/// length of a slice passed to a point-to-point call. Never dereferenced
/// after recording — used only for identity, overlap and offset queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSpan {
    /// Starting address of the slice, as an integer.
    pub addr: usize,
    /// Length in bytes.
    pub len: usize,
}

impl MemSpan {
    fn of(bytes: &[u8]) -> Self {
        MemSpan {
            addr: bytes.as_ptr() as usize,
            len: bytes.len(),
        }
    }

    /// Whether two spans overlap in at least one byte (empty spans never
    /// overlap anything).
    pub fn overlaps(&self, other: &MemSpan) -> bool {
        self.len > 0
            && other.len > 0
            && self.addr < other.addr + other.len
            && other.addr < self.addr + self.len
    }
}

/// A caller-registered named buffer region (e.g. the collective's user
/// buffer), used to resolve recorded spans to logical offsets.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Human-readable buffer name (e.g. `"buf"`, `"all"`).
    pub name: &'static str,
    /// Starting address.
    pub addr: usize,
    /// Length in bytes.
    pub len: usize,
}

/// One recorded point-to-point (or accounting) operation of a single
/// rank's program, in issue order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpRecord {
    /// Blocking send of `src.len` bytes to `to`.
    Send {
        /// Destination world rank.
        to: usize,
        /// Message tag.
        tag: Tag,
        /// Bytes read.
        src: MemSpan,
    },
    /// Blocking receive of `dst.len` bytes from `from`.
    Recv {
        /// Source world rank.
        from: usize,
        /// Message tag.
        tag: Tag,
        /// Bytes written.
        dst: MemSpan,
    },
    /// Concurrent send-to / receive-from (possibly different peers).
    SendRecv {
        /// Destination world rank of the send half.
        to: usize,
        /// Bytes read by the send half.
        src: MemSpan,
        /// Source world rank of the receive half.
        from: usize,
        /// Bytes written by the receive half.
        dst: MemSpan,
        /// Tag of the send half.
        tag: Tag,
        /// Tag of the receive half (equal to `tag` except in fused
        /// cross-stage exchanges emitted by the schedule optimizer).
        rtag: Tag,
    },
    /// Local combine work over `bytes` bytes (the γ term).
    Compute {
        /// Combined byte count.
        bytes: usize,
    },
    /// One level of short-vector recursion overhead (the δ term).
    CallOverhead,
    /// Local copy: `src` bytes were copied into `dst` without touching
    /// the network (block permutes, root staging, own-block moves).
    Copy {
        /// Bytes read.
        src: MemSpan,
        /// Bytes written.
        dst: MemSpan,
    },
    /// Local reduction: `other` was folded element-wise into `acc`.
    Reduce {
        /// Accumulator bytes (read and written).
        acc: MemSpan,
        /// Contribution bytes (read).
        other: MemSpan,
    },
}

/// A non-communicating [`Comm`] backend that records one rank's symbolic
/// program. `recv` zero-fills its buffer and returns immediately; `send`
/// records and returns. Peer ranks are validated exactly like a real
/// backend would.
#[derive(Debug)]
pub struct RecordingComm {
    rank: usize,
    size: usize,
    ops: RefCell<Vec<OpRecord>>,
    regions: RefCell<Vec<Region>>,
}

impl RecordingComm {
    /// A recorder for world rank `rank` of `size`.
    pub fn new(rank: usize, size: usize) -> Self {
        assert!(rank < size, "rank {rank} out of range for size {size}");
        RecordingComm {
            rank,
            size,
            ops: RefCell::new(Vec::new()),
            regions: RefCell::new(Vec::new()),
        }
    }

    /// Registers a named user buffer so recorded spans can be resolved
    /// to logical byte offsets within it.
    pub fn register<T: crate::cast::Scalar>(&self, name: &'static str, buf: &[T]) {
        let bytes = T::as_bytes(buf);
        self.regions.borrow_mut().push(Region {
            name,
            addr: bytes.as_ptr() as usize,
            len: bytes.len(),
        });
    }

    /// The registered regions, in registration order.
    pub fn regions(&self) -> Vec<Region> {
        self.regions.borrow().clone()
    }

    /// Resolves a span to `(region name, byte offset)` if it lies wholly
    /// within a registered region.
    pub fn locate(&self, span: &MemSpan) -> Option<(&'static str, usize)> {
        self.regions
            .borrow()
            .iter()
            .find(|r| span.addr >= r.addr && span.addr + span.len <= r.addr + r.len)
            .map(|r| (r.name, span.addr - r.addr))
    }

    /// Consumes the recorder, returning the rank's program in issue order.
    pub fn into_ops(self) -> Vec<OpRecord> {
        self.ops.into_inner()
    }

    fn check_peer(&self, peer: usize) -> Result<()> {
        if peer < self.size {
            Ok(())
        } else {
            Err(CommError::InvalidRank {
                rank: peer,
                size: self.size,
            })
        }
    }
}

impl Comm for RecordingComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.check_peer(to)?;
        self.ops.borrow_mut().push(OpRecord::Send {
            to,
            tag,
            src: MemSpan::of(data),
        });
        Ok(())
    }

    fn recv(&self, from: usize, tag: Tag, buf: &mut [u8]) -> Result<()> {
        self.check_peer(from)?;
        // Deterministic fill: downstream combine folds see zeros, so the
        // recorded program is reproducible and overflow-free.
        buf.fill(0);
        self.ops.borrow_mut().push(OpRecord::Recv {
            from,
            tag,
            dst: MemSpan::of(buf),
        });
        Ok(())
    }

    fn sendrecv(
        &self,
        to: usize,
        data: &[u8],
        from: usize,
        buf: &mut [u8],
        tag: Tag,
    ) -> Result<()> {
        self.check_peer(to)?;
        self.check_peer(from)?;
        buf.fill(0);
        let src = MemSpan::of(data);
        let dst = MemSpan::of(buf);
        self.ops.borrow_mut().push(OpRecord::SendRecv {
            to,
            src,
            from,
            dst,
            tag,
            rtag: tag,
        });
        Ok(())
    }

    fn sendrecv_tagged(
        &self,
        to: usize,
        data: &[u8],
        stag: Tag,
        from: usize,
        buf: &mut [u8],
        rtag: Tag,
    ) -> Result<()> {
        self.check_peer(to)?;
        self.check_peer(from)?;
        buf.fill(0);
        let src = MemSpan::of(data);
        let dst = MemSpan::of(buf);
        self.ops.borrow_mut().push(OpRecord::SendRecv {
            to,
            src,
            from,
            dst,
            tag: stag,
            rtag,
        });
        Ok(())
    }

    fn compute(&self, bytes: usize) {
        self.ops.borrow_mut().push(OpRecord::Compute { bytes });
    }

    fn call_overhead(&self) {
        self.ops.borrow_mut().push(OpRecord::CallOverhead);
    }

    fn local_copy(&self, src: &[u8], dst: &[u8]) {
        self.ops.borrow_mut().push(OpRecord::Copy {
            src: MemSpan::of(src),
            dst: MemSpan::of(dst),
        });
    }

    fn local_reduce(&self, acc: &[u8], other: &[u8]) {
        self.ops.borrow_mut().push(OpRecord::Reduce {
            acc: MemSpan::of(acc),
            other: MemSpan::of(other),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::GroupComm;

    #[test]
    fn records_in_issue_order() {
        let rec = RecordingComm::new(1, 3);
        let gc = GroupComm::world(&rec);
        let data = [1u8, 2];
        let mut buf = [0u8; 2];
        gc.send(0, 7, &data).unwrap();
        gc.recv(2, 9, &mut buf).unwrap();
        let ops = rec.into_ops();
        assert!(matches!(ops[0], OpRecord::Send { to: 0, tag: 7, .. }));
        assert!(matches!(
            ops[1],
            OpRecord::Recv {
                from: 2,
                tag: 9,
                ..
            }
        ));
    }

    #[test]
    fn recv_zero_fills() {
        let rec = RecordingComm::new(0, 2);
        let mut buf = [0xffu8; 4];
        rec.recv(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn invalid_peer_rejected() {
        let rec = RecordingComm::new(0, 2);
        assert!(matches!(
            rec.send(2, 0, &[0u8]),
            Err(CommError::InvalidRank { rank: 2, size: 2 })
        ));
    }

    #[test]
    fn region_resolution() {
        let rec = RecordingComm::new(0, 1);
        let buf = [0u32; 8];
        rec.register("buf", &buf);
        let bytes = <u32 as crate::cast::Scalar>::as_bytes(&buf);
        let span = MemSpan {
            addr: bytes.as_ptr() as usize + 4,
            len: 8,
        };
        assert_eq!(rec.locate(&span), Some(("buf", 4)));
        let outside = MemSpan {
            addr: bytes.as_ptr() as usize + 28,
            len: 8,
        };
        assert_eq!(rec.locate(&outside), None);
    }

    #[test]
    fn span_overlap_rules() {
        let a = MemSpan { addr: 100, len: 10 };
        let b = MemSpan { addr: 109, len: 4 };
        let c = MemSpan { addr: 110, len: 4 };
        let empty = MemSpan { addr: 105, len: 0 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&empty));
    }

    #[test]
    fn sendrecv_records_both_spans() {
        let rec = RecordingComm::new(0, 2);
        let data = [1u8; 3];
        let mut buf = [0u8; 3];
        rec.sendrecv(1, &data, 1, &mut buf, 5).unwrap();
        let ops = rec.into_ops();
        match ops[0] {
            OpRecord::SendRecv {
                to, from, src, dst, ..
            } => {
                assert_eq!((to, from), (1, 1));
                assert_eq!(src.len, 3);
                assert_eq!(dst.len, 3);
                assert!(!src.overlaps(&dst));
            }
            ref other => panic!("unexpected record {other:?}"),
        }
    }
}
