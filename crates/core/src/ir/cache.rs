//! The process-wide plan cache.
//!
//! A compiled schedule depends only on
//! `(op, group size, size parameter, element size, strategy)` — the same
//! fact the paper exploits to tabulate algorithm choices per machine.
//! The cache memoizes [`lower`](super::lower) under exactly that key, so
//! iterative applications compile each distinct call shape once and
//! every later plan construction is a hash lookup.

use super::{lower, CollectiveProgram, PlanOp};
use crate::error::Result;
use intercom_cost::Strategy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a compiled schedule depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The collective (with root / segment parameters).
    pub op: PlanOp,
    /// Group size.
    pub p: usize,
    /// Size parameter in elements (unit per [`PlanOp::args`]).
    pub n: usize,
    /// Element width in bytes.
    pub elem_size: usize,
    /// Hybrid strategy for strategy-taking ops.
    pub strategy: Option<Strategy>,
}

/// Cache occupancy and hit counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that lowered a fresh program.
    pub misses: u64,
    /// Distinct programs currently cached.
    pub entries: usize,
}

/// A memoizing store of compiled programs, shareable across threads
/// (every rank of a threaded world hits one cache).
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<CollectiveProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached program for `key`, lowering and inserting it
    /// on first use. Lowering happens under the cache lock, so
    /// concurrent ranks requesting the same key compile it exactly once
    /// and the rest observe hits.
    pub fn get_or_compile(&self, key: &PlanKey) -> Result<Arc<CollectiveProgram>> {
        let mut plans = self.plans.lock().unwrap();
        if let Some(prog) = plans.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(prog.clone());
        }
        let prog = Arc::new(lower(
            key.op,
            key.strategy.as_ref(),
            key.p,
            key.n,
            key.elem_size,
        )?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        plans.insert(key.clone(), prog.clone());
        Ok(prog)
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.plans.lock().unwrap().len(),
        }
    }

    /// Drops every cached program and resets the counters.
    pub fn clear(&self) {
        self.plans.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// The process-wide cache used by [`crate::plan`]'s persistent plans.
pub fn global_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(PlanCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> PlanKey {
        PlanKey {
            op: PlanOp::AllReduce,
            p: 4,
            n,
            elem_size: 8,
            strategy: Some(Strategy::pure_mst(4)),
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_program() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&key(16)).unwrap();
        let b = cache.get_or_compile(&key(16)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_shapes_get_distinct_programs() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&key(16)).unwrap();
        let b = cache.get_or_compile(&key(32)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }
}
