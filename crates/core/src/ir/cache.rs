//! The process-wide plan cache.
//!
//! A compiled schedule depends only on
//! `(op, group size, size parameter, element size, strategy, opt level)`
//! — the same fact the paper exploits to tabulate algorithm choices per
//! machine. The cache memoizes [`lower`](super::lower) (plus the
//! [`optimize`](super::optimize) pass pipeline when the key asks for
//! it) under exactly that key, so iterative applications compile each
//! distinct call shape once and every later plan construction is a
//! hash lookup.
//!
//! The cache is **bounded**: when occupancy would exceed the capacity,
//! the least-recently-used program is evicted (and counted). Evicting
//! never invalidates running plans — they hold their program by `Arc`,
//! so an evicted program dies only when its last plan does. Long-lived
//! applications with a known working set can [`warm_up`] the cache
//! ahead of the compute loop so the loop itself sees only hits.
//!
//! [`warm_up`]: PlanCache::warm_up

use super::{lower, lower_hier, optimize, CollectiveProgram, OptLevel, PlanOp};
use crate::error::Result;
use intercom_cost::{HierStrategy, Strategy};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a compiled schedule depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The collective (with root / segment parameters).
    pub op: PlanOp,
    /// Group size.
    pub p: usize,
    /// Size parameter in elements (unit per [`PlanOp::args`]).
    pub n: usize,
    /// Element width in bytes.
    pub elem_size: usize,
    /// Hybrid strategy for strategy-taking ops lowered flat.
    pub strategy: Option<Strategy>,
    /// Hierarchy descriptor and per-level strategies when the program
    /// is lowered hierarchically ([`lower_hier`](super::lower_hier));
    /// `None` for flat programs. Part of the key: a flat and a
    /// hierarchical program of the same `(op, p, n)` coexist.
    pub hier: Option<HierStrategy>,
    /// Optimization level the cached program was compiled at. Programs
    /// at different levels are distinct cache entries: an unoptimized
    /// plan and an optimized plan of the same shape coexist.
    pub opt: OptLevel,
}

/// Cache occupancy and lifecycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that lowered a fresh program.
    pub misses: u64,
    /// Distinct programs currently cached.
    pub entries: usize,
    /// Programs evicted to keep occupancy within the capacity.
    pub evictions: u64,
    /// Programs dropped by [`PlanCache::invalidate_matching`] (stale
    /// after a `MachineParams` refit).
    pub invalidations: u64,
    /// Maximum entries the cache retains.
    pub capacity: usize,
}

impl CacheStats {
    /// The counter-wise difference `self − prev` — what happened
    /// *between* two snapshots. Occupancy and capacity keep `self`'s
    /// values (they are gauges, not counters). Merge-consistent: the
    /// delta of accumulated totals equals the total of interval deltas.
    pub fn delta(&self, prev: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            entries: self.entries,
            evictions: self.evictions.saturating_sub(prev.evictions),
            invalidations: self.invalidations.saturating_sub(prev.invalidations),
            capacity: self.capacity,
        }
    }

    /// Hit fraction of the lookups between construction (or the last
    /// reset) and this snapshot, or `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// One cached program plus its recency stamp for LRU eviction.
struct Entry {
    prog: Arc<CollectiveProgram>,
    last_used: u64,
}

/// The locked cache state: the program map plus an exact recency index.
/// `recency` maps each entry's `last_used` stamp back to its key; the
/// clock is strictly monotone under the lock, so stamps are unique and
/// the index's first entry *is* the LRU — eviction pops it in O(log n)
/// instead of scanning every entry.
struct Store {
    plans: HashMap<PlanKey, Entry>,
    recency: BTreeMap<u64, PlanKey>,
}

impl Store {
    /// Stamps `key` as used `now`, keeping `recency` in sync. Returns
    /// the cached program, or `None` if the key is absent.
    fn touch(&mut self, key: &PlanKey, now: u64) -> Option<Arc<CollectiveProgram>> {
        let entry = self.plans.get_mut(key)?;
        self.recency.remove(&entry.last_used);
        entry.last_used = now;
        self.recency.insert(now, key.clone());
        Some(entry.prog.clone())
    }

    /// Inserts a freshly compiled program stamped `now`.
    fn insert(&mut self, key: PlanKey, prog: Arc<CollectiveProgram>, now: u64) {
        self.recency.insert(now, key.clone());
        self.plans.insert(
            key,
            Entry {
                prog,
                last_used: now,
            },
        );
    }
}

/// A memoizing store of compiled programs, shareable across threads
/// (every rank of a threaded world hits one cache).
pub struct PlanCache {
    store: Mutex<Store>,
    capacity: usize,
    /// Logical clock stamping each access; strictly monotone under the
    /// cache lock, so LRU order is exact.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// Default capacity: generous for real applications (a working set is
/// a handful of shapes per collective) yet small enough that a shape
/// sweep — a benchmark scanning thousands of sizes — cannot grow the
/// cache without bound.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

impl PlanCache {
    /// An empty cache with the [default capacity](DEFAULT_CACHE_CAPACITY).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache retaining at most `capacity` programs (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            store: Mutex::new(Store {
                plans: HashMap::new(),
                recency: BTreeMap::new(),
            }),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Compiles `key`: lowers, then runs the optimizer pass pipeline if
    /// the key's [`OptLevel`] asks for it.
    fn compile(key: &PlanKey) -> Result<Arc<CollectiveProgram>> {
        let prog = match &key.hier {
            Some(hs) => lower_hier(key.op, hs, key.n, key.elem_size)?,
            None => lower(key.op, key.strategy.as_ref(), key.p, key.n, key.elem_size)?,
        };
        Ok(Arc::new(match key.opt {
            OptLevel::None => prog,
            OptLevel::Full => optimize(&prog).0,
        }))
    }

    /// Evicts least-recently-used entries until occupancy fits the
    /// capacity. Called with the lock held, after an insert. The recency
    /// index makes each eviction an O(log n) pop of its first stamp.
    fn enforce_capacity(&self, store: &mut Store) {
        while store.plans.len() > self.capacity {
            let (_, lru) = store.recency.pop_first().expect("non-empty above capacity");
            store.plans.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns the cached program for `key`, compiling and inserting it
    /// on first use. Compilation happens under the cache lock, so
    /// concurrent ranks requesting the same key compile it exactly once
    /// and the rest observe hits.
    pub fn get_or_compile(&self, key: &PlanKey) -> Result<Arc<CollectiveProgram>> {
        let mut store = self.store.lock().unwrap();
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        if let Some(prog) = store.touch(key, now) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(prog);
        }
        let prog = Self::compile(key)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        store.insert(key.clone(), prog.clone(), now);
        self.enforce_capacity(&mut store);
        Ok(prog)
    }

    /// Pre-compiles every key that is not already cached, returning how
    /// many programs were freshly compiled. Warm-up does **not** count
    /// toward the hit/miss counters — those measure the compute loop's
    /// locality, which pre-population would skew — but evictions forced
    /// by warming past the capacity are counted normally.
    ///
    /// Errors abort the warm-up at the first failing key; earlier keys
    /// stay cached.
    pub fn warm_up<I>(&self, keys: I) -> Result<usize>
    where
        I: IntoIterator<Item = PlanKey>,
    {
        let mut compiled = 0;
        for key in keys {
            let mut store = self.store.lock().unwrap();
            let now = self.clock.fetch_add(1, Ordering::Relaxed);
            if store.touch(&key, now).is_some() {
                continue;
            }
            let prog = Self::compile(&key)?;
            compiled += 1;
            store.insert(key, prog, now);
            self.enforce_capacity(&mut store);
        }
        Ok(compiled)
    }

    /// Drops every cached program whose key satisfies `pred`, counting
    /// each drop as an invalidation. Running plans are unaffected (they
    /// hold their program by `Arc`); the next lookup of a dropped key
    /// recompiles. This is how a `MachineParams` refit retires plans
    /// whose frozen strategy was priced under stale parameters.
    pub fn invalidate_matching(&self, pred: impl Fn(&PlanKey) -> bool) -> usize {
        let mut store = self.store.lock().unwrap();
        let stale: Vec<PlanKey> = store.plans.keys().filter(|k| pred(k)).cloned().collect();
        for key in &stale {
            if let Some(entry) = store.plans.remove(key) {
                store.recency.remove(&entry.last_used);
            }
        }
        self.invalidations
            .fetch_add(stale.len() as u64, Ordering::Relaxed);
        stale.len()
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.store.lock().unwrap().plans.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }

    /// Drops every cached program and resets the counters.
    pub fn clear(&self) {
        let mut store = self.store.lock().unwrap();
        store.plans.clear();
        store.recency.clear();
        drop(store);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// The process-wide cache used by [`crate::plan`]'s persistent plans.
pub fn global_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(PlanCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> PlanKey {
        PlanKey {
            op: PlanOp::AllReduce,
            p: 4,
            n,
            elem_size: 8,
            strategy: Some(Strategy::pure_mst(4)),
            hier: None,
            opt: OptLevel::None,
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_program() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&key(16)).unwrap();
        let b = cache.get_or_compile(&key(16)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn distinct_shapes_get_distinct_programs() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile(&key(16)).unwrap();
        let b = cache.get_or_compile(&key(32)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn hierarchy_descriptor_is_part_of_the_key() {
        use intercom_cost::{select_hier, ClusterShape, CollectiveOp, HierMachine};
        let shape = ClusterShape::linear(2, 2);
        let hs = select_hier(
            CollectiveOp::CombineToAll,
            shape,
            16 * 8,
            &HierMachine::paragon_cluster(),
        )
        .unwrap();
        let hier_key = PlanKey {
            hier: Some(hs),
            strategy: None,
            ..key(16)
        };
        let cache = PlanCache::new();
        let flat = cache.get_or_compile(&key(16)).unwrap();
        let hier = cache.get_or_compile(&hier_key).unwrap();
        // Same op/p/n/width, different hierarchy descriptor: distinct
        // entries, and the hier entry lowers through lower_hier.
        assert!(!Arc::ptr_eq(&flat, &hier));
        assert_eq!(cache.stats().entries, 2);
        assert!(flat.hier.is_none());
        assert!(hier.hier.is_some());
        assert!(Arc::ptr_eq(
            &hier,
            &cache.get_or_compile(&hier_key).unwrap()
        ));
    }

    #[test]
    fn opt_levels_are_distinct_entries() {
        let cache = PlanCache::new();
        let plain = cache.get_or_compile(&key(16)).unwrap();
        let opt = cache
            .get_or_compile(&PlanKey {
                opt: OptLevel::Full,
                ..key(16)
            })
            .unwrap();
        assert!(!Arc::ptr_eq(&plain, &opt));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(2);
        let a = cache.get_or_compile(&key(1)).unwrap();
        cache.get_or_compile(&key(2)).unwrap();
        // Touch key(1) so key(2) is the LRU when key(3) overflows.
        cache.get_or_compile(&key(1)).unwrap();
        cache.get_or_compile(&key(3)).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        // key(1) survived (still shared), key(2) was evicted (fresh
        // compile = a new allocation).
        let a2 = cache.get_or_compile(&key(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        let before = cache.stats().misses;
        cache.get_or_compile(&key(2)).unwrap();
        assert_eq!(cache.stats().misses, before + 1, "key(2) was evicted");
    }

    #[test]
    fn recency_index_survives_touch_and_eviction_churn() {
        // Re-touching entries must reorder the recency index, not grow
        // it; sustained overflow then evicts in exact LRU order.
        let cache = PlanCache::with_capacity(3);
        for n in 1..=3 {
            cache.get_or_compile(&key(n)).unwrap();
        }
        for _ in 0..5 {
            cache.get_or_compile(&key(2)).unwrap(); // LRU order: 1, 3, 2
        }
        cache.get_or_compile(&key(4)).unwrap(); // evicts 1
        cache.get_or_compile(&key(5)).unwrap(); // evicts 3
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (3, 2));
        let before = cache.stats().misses;
        cache.get_or_compile(&key(2)).unwrap(); // survived all along
        assert_eq!(cache.stats().misses, before, "key(2) was never evicted");
        cache.get_or_compile(&key(1)).unwrap();
        cache.get_or_compile(&key(3)).unwrap();
        assert_eq!(cache.stats().misses, before + 2, "1 and 3 were evicted");
    }

    #[test]
    fn warm_up_populates_without_skewing_hit_rate() {
        let cache = PlanCache::new();
        let compiled = cache.warm_up([key(16), key(32), key(16)]).unwrap();
        assert_eq!(compiled, 2, "duplicate keys warm once");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 2));
        // The compute loop then sees pure hits.
        cache.get_or_compile(&key(16)).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidate_matching_drops_only_matches() {
        let cache = PlanCache::new();
        let old = cache.get_or_compile(&key(16)).unwrap();
        cache.get_or_compile(&key(32)).unwrap();
        let dropped = cache.invalidate_matching(|k| k.n == 16);
        assert_eq!(dropped, 1);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.invalidations), (1, 1));
        // The dropped key recompiles (a fresh allocation), the survivor
        // still hits.
        let fresh = cache.get_or_compile(&key(16)).unwrap();
        assert!(!Arc::ptr_eq(&old, &fresh), "stale program was retired");
        let before = cache.stats().hits;
        cache.get_or_compile(&key(32)).unwrap();
        assert_eq!(cache.stats().hits, before + 1);
    }

    #[test]
    fn invalidation_keeps_recency_index_consistent() {
        let cache = PlanCache::with_capacity(2);
        cache.get_or_compile(&key(1)).unwrap();
        cache.get_or_compile(&key(2)).unwrap();
        assert_eq!(cache.invalidate_matching(|_| true), 2);
        // Eviction bookkeeping still works after a full purge.
        for n in 3..=6 {
            cache.get_or_compile(&key(n)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 2));
    }

    #[test]
    fn stats_delta_subtracts_counters_keeps_gauges() {
        let cache = PlanCache::new();
        cache.get_or_compile(&key(16)).unwrap();
        let prev = cache.stats();
        cache.get_or_compile(&key(16)).unwrap();
        cache.get_or_compile(&key(32)).unwrap();
        let d = cache.stats().delta(&prev);
        assert_eq!((d.hits, d.misses), (1, 1));
        assert_eq!(d.entries, 2, "occupancy is a gauge");
        assert_eq!(d.hit_rate(), Some(0.5));
    }

    #[test]
    fn warm_up_surfaces_lowering_errors() {
        let cache = PlanCache::new();
        let bad = PlanKey {
            strategy: Some(Strategy::pure_mst(5)), // wrong p
            ..key(8)
        };
        assert!(cache.warm_up([key(16), bad]).is_err());
        assert_eq!(cache.stats().entries, 1, "earlier keys stay cached");
    }
}
