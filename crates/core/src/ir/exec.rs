//! The IR interpreter: executes a [`CollectiveProgram`] against any
//! [`Comm`] backend.
//!
//! One interpreter serves every backend — the threaded runtime, the mesh
//! simulator, a [`RecordingComm`](crate::trace::RecordingComm) (which
//! reproduces the very record stream the program was lowered from), or a
//! single-process [`SelfComm`](crate::comm::SelfComm). Before each step
//! the backend's [`Comm::plan_step`] hook is told `(plan_id, step
//! index)`, so tracing backends can attribute every transfer to the
//! exact compiled step that issued it; the hook is reset to `(0, 0)` on
//! return.
//!
//! Execution is allocation-free in the steady state: the caller-provided
//! scratch vector grows once to [`RankProgram::scratch_bytes`] and is
//! re-zeroed (never re-allocated) on later executions, matching the
//! fresh zeroed allocations of the direct recursive path byte for byte.

use super::{ArgDir, Buf, CollectiveProgram, Loc, StepKind};
use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::op::{Elem, ReduceOp};
use std::ops::Range;

/// One argument-buffer binding for an execution (slot order per
/// [`super::PlanOp::args`]).
pub enum ArgBuf<'a, T> {
    /// A read-only input (contributions, send blocks).
    In(&'a [T]),
    /// A writable buffer; the program may also read it (inout vectors,
    /// result workspace).
    Out(&'a mut [T]),
    /// Not bound on this rank (the scatter/gather root buffer on
    /// non-root ranks).
    Absent,
}

/// Executes the calling rank's program of a combining collective.
/// `args` bind the argument slots, `scratch` is the reusable private
/// arena, `base_tag` offsets every step tag, and `op` supplies the ⊕
/// the program left abstract.
pub fn execute<T: Elem, C: Comm + ?Sized>(
    prog: &CollectiveProgram,
    gc: &GroupComm<'_, C>,
    op: ReduceOp,
    args: &mut [ArgBuf<'_, T>],
    scratch: &mut Vec<T>,
    base_tag: Tag,
) -> Result<()> {
    run(
        prog,
        gc,
        args,
        scratch,
        base_tag,
        &mut |acc: &mut [T], other: &[T]| op.fold_into(acc, other),
    )
}

/// Executes the calling rank's program of a non-combining collective
/// (broadcast, collect, scatter, gather, total exchange). Fails with
/// [`CommError::PlanMismatch`] if the program combines.
pub fn execute_scalar<T: Scalar, C: Comm + ?Sized>(
    prog: &CollectiveProgram,
    gc: &GroupComm<'_, C>,
    args: &mut [ArgBuf<'_, T>],
    scratch: &mut Vec<T>,
    base_tag: Tag,
) -> Result<()> {
    if prog.op.combines() {
        return Err(CommError::PlanMismatch {
            what: "combining program executed without a reduce operator",
        });
    }
    run(prog, gc, args, scratch, base_tag, &mut |_, _| {
        unreachable!("non-combining program contains no reduce steps")
    })
}

fn run<T: Scalar, C: Comm + ?Sized>(
    prog: &CollectiveProgram,
    gc: &GroupComm<'_, C>,
    args: &mut [ArgBuf<'_, T>],
    scratch: &mut Vec<T>,
    base_tag: Tag,
    fold: &mut dyn FnMut(&mut [T], &[T]),
) -> Result<()> {
    let elem = std::mem::size_of::<T>();
    if elem != prog.elem_size {
        return Err(CommError::PlanMismatch {
            what: "element size differs from the compiled program's",
        });
    }
    if gc.len() != prog.p {
        return Err(CommError::PlanMismatch {
            what: "group size differs from the compiled program's",
        });
    }
    let me = gc.me();
    check_args(prog, me, args)?;
    let rp = &prog.ranks[me];
    // Re-zero (and on first use, grow) the arena: the direct path's
    // temporaries are fresh zeroed allocations every call.
    scratch.clear();
    scratch.resize(rp.scratch_bytes.div_ceil(elem), T::default());
    // Production telemetry: one relaxed load each when disabled. When
    // on, the flight recorder gets a black-box entry and the metrics
    // registry a latency sample per execution (per rank — concurrent
    // ranks of one plan share the flight entry via its refcount).
    let metrics_on = intercom_obs::metrics::enabled();
    let flight_on = intercom_obs::flight::enabled();
    let started = metrics_on.then(std::time::Instant::now);
    if flight_on {
        let strategy = prog.strategy.as_ref().map(|s| s.to_string());
        intercom_obs::flight::begin(
            prog.plan_id,
            prog.op.name(),
            prog.p,
            prog.n,
            strategy.as_deref(),
        );
    }
    let comm = gc.comm();
    let result: Result<()> = (|| {
        for (idx, step) in rp.steps.iter().enumerate() {
            comm.plan_step(prog.plan_id, idx as u64);
            if flight_on {
                intercom_obs::flight::mark_step(prog.plan_id, idx as u64);
            }
            match step.kind {
                StepKind::Send { to, tag_off, src } => {
                    let s = read(args, scratch, elem, &src)?;
                    gc.send(to, base_tag + tag_off, s)?;
                }
                StepKind::Recv { from, tag_off, dst } => {
                    let d = write(args, scratch, elem, &dst)?;
                    gc.recv(from, base_tag + tag_off, d)?;
                }
                StepKind::SendRecv {
                    to,
                    src,
                    from,
                    dst,
                    tag_off,
                    rtag_off,
                } => {
                    let (s, d) = read_write(args, scratch, elem, &src, &dst)?;
                    gc.sendrecv_tagged(to, s, base_tag + tag_off, from, d, base_tag + rtag_off)?;
                }
                StepKind::Copy { src, dst } => {
                    let (s, d) = read_write(args, scratch, elem, &src, &dst)?;
                    d.copy_from_slice(s);
                    comm.local_copy(T::as_bytes(s), T::as_bytes(d));
                }
                StepKind::Reduce { acc, other } => {
                    let (o, a) = read_write(args, scratch, elem, &other, &acc)?;
                    fold(a, o);
                    comm.local_reduce(T::as_bytes(a), T::as_bytes(o));
                }
                StepKind::Compute { bytes } => gc.compute(bytes),
                StepKind::CallOverhead => gc.call_overhead(),
            }
        }
        Ok(())
    })();
    comm.plan_step(0, 0);
    if let Some(started) = started {
        // Wall-clock on the executing thread: real latency for the
        // threaded runtime; for the simulator it is host compute time
        // (virtual time lives in the SimReport, ingested separately).
        let strategy = prog
            .strategy
            .as_ref()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "-".into());
        let (p_s, n_s) = (prog.p.to_string(), prog.n.to_string());
        let labels = &[
            ("op", prog.op.name()),
            ("strategy", strategy.as_str()),
            ("p", p_s.as_str()),
            ("n", n_s.as_str()),
        ][..];
        intercom_obs::metrics::observe(
            "intercom_plan_exec_seconds",
            labels,
            started.elapsed().as_secs_f64(),
        );
        intercom_obs::metrics::counter_add(
            "intercom_plan_steps_total",
            &[("op", prog.op.name())],
            rp.steps.len() as u64,
        );
    }
    if flight_on {
        match &result {
            Ok(()) => intercom_obs::flight::finish(prog.plan_id),
            Err(e) => intercom_obs::flight::fail(prog.plan_id, &e.to_string()),
        }
    }
    result
}

/// Validates the bound buffers against the program's argument slots.
fn check_args<T: Scalar>(
    prog: &CollectiveProgram,
    me: usize,
    args: &[ArgBuf<'_, T>],
) -> Result<()> {
    let specs = prog.op.args(prog.p, prog.n);
    if args.len() != specs.len() {
        return Err(CommError::PlanMismatch {
            what: "argument buffer count differs from the program's slots",
        });
    }
    for (arg, spec) in args.iter().zip(&specs) {
        let bound_here = spec.only_rank.is_none_or(|r| r == me);
        let len = match arg {
            ArgBuf::In(b) => {
                if spec.dir == ArgDir::Out {
                    return Err(CommError::PlanMismatch {
                        what: "read-only binding for an output argument",
                    });
                }
                Some(b.len())
            }
            ArgBuf::Out(b) => Some(b.len()),
            ArgBuf::Absent => None,
        };
        match (len, bound_here) {
            (Some(len), true) => {
                if len != spec.elems {
                    return Err(CommError::BadBufferSize {
                        expected: spec.elems,
                        actual: len,
                    });
                }
            }
            (None, true) => {
                return Err(CommError::PlanMismatch {
                    what: "argument buffer required on this rank is absent",
                })
            }
            // A buffer bound where the program does not need it is
            // ignored (mirrors the direct path's `Option` arguments).
            (_, false) => {}
        }
    }
    Ok(())
}

fn elem_range(loc: &Loc, elem: usize) -> Result<Range<usize>> {
    if !loc.off.is_multiple_of(elem) || !loc.len.is_multiple_of(elem) {
        return Err(CommError::PlanMismatch {
            what: "step operand not aligned to the element size",
        });
    }
    Ok(loc.off / elem..(loc.off + loc.len) / elem)
}

const OOB: CommError = CommError::PlanMismatch {
    what: "step operand out of buffer bounds",
};

fn arg_read<'x, T>(arg: &'x ArgBuf<'_, T>, r: Range<usize>) -> Result<&'x [T]> {
    match arg {
        ArgBuf::In(b) => b.get(r).ok_or(OOB),
        ArgBuf::Out(b) => b.get(r).ok_or(OOB),
        ArgBuf::Absent => Err(CommError::PlanMismatch {
            what: "step reads an absent buffer",
        }),
    }
}

fn arg_write<'x, T>(arg: &'x mut ArgBuf<'_, T>, r: Range<usize>) -> Result<&'x mut [T]> {
    match arg {
        ArgBuf::Out(b) => b.get_mut(r).ok_or(OOB),
        ArgBuf::In(_) => Err(CommError::PlanMismatch {
            what: "step writes a read-only buffer",
        }),
        ArgBuf::Absent => Err(CommError::PlanMismatch {
            what: "step writes an absent buffer",
        }),
    }
}

fn read<'x, T: Scalar>(
    args: &'x [ArgBuf<'_, T>],
    scratch: &'x [T],
    elem: usize,
    loc: &Loc,
) -> Result<&'x [T]> {
    let r = elem_range(loc, elem)?;
    match loc.buf {
        Buf::Scratch => scratch.get(r).ok_or(OOB),
        Buf::Arg(i) => arg_read(args.get(i).ok_or(OOB)?, r),
    }
}

fn write<'x, T: Scalar>(
    args: &'x mut [ArgBuf<'_, T>],
    scratch: &'x mut [T],
    elem: usize,
    loc: &Loc,
) -> Result<&'x mut [T]> {
    let r = elem_range(loc, elem)?;
    match loc.buf {
        Buf::Scratch => scratch.get_mut(r).ok_or(OOB),
        Buf::Arg(i) => arg_write(args.get_mut(i).ok_or(OOB)?, r),
    }
}

/// Simultaneous shared read of `rloc` and mutable write of `wloc`,
/// splitting borrows across (or within) buffers. Overlapping operands
/// within one buffer are rejected — the verifier proves compiled
/// programs never produce them.
fn read_write<'x, T: Scalar>(
    args: &'x mut [ArgBuf<'_, T>],
    scratch: &'x mut [T],
    elem: usize,
    rloc: &Loc,
    wloc: &Loc,
) -> Result<(&'x [T], &'x mut [T])> {
    let rr = elem_range(rloc, elem)?;
    let wr = elem_range(wloc, elem)?;
    match (rloc.buf, wloc.buf) {
        (Buf::Scratch, Buf::Scratch) => split_same(scratch, rr, wr),
        (Buf::Arg(i), Buf::Scratch) => {
            let rd = arg_read(args.get(i).ok_or(OOB)?, rr)?;
            Ok((rd, scratch.get_mut(wr).ok_or(OOB)?))
        }
        (Buf::Scratch, Buf::Arg(j)) => {
            let wrt = arg_write(args.get_mut(j).ok_or(OOB)?, wr)?;
            Ok((scratch.get(rr).ok_or(OOB)?, wrt))
        }
        (Buf::Arg(i), Buf::Arg(j)) if i == j => match args.get_mut(i).ok_or(OOB)? {
            ArgBuf::Out(b) => split_same(b, rr, wr),
            ArgBuf::In(_) => Err(CommError::PlanMismatch {
                what: "step writes a read-only buffer",
            }),
            ArgBuf::Absent => Err(CommError::PlanMismatch {
                what: "step writes an absent buffer",
            }),
        },
        (Buf::Arg(i), Buf::Arg(j)) => {
            if i.max(j) >= args.len() {
                return Err(OOB);
            }
            let (lo, hi) = args.split_at_mut(i.max(j));
            let (ra, wa) = if i < j {
                (&lo[i], &mut hi[0])
            } else {
                (&hi[0], &mut lo[j])
            };
            Ok((arg_read(ra, rr)?, arg_write(wa, wr)?))
        }
    }
}

/// Disjoint shared/mutable views of two ranges of one buffer.
fn split_same<T>(buf: &mut [T], r: Range<usize>, w: Range<usize>) -> Result<(&[T], &mut [T])> {
    if w.is_empty() {
        return Ok((buf.get(r).ok_or(OOB)?, &mut []));
    }
    if r.is_empty() {
        return Ok((&[], buf.get_mut(w).ok_or(OOB)?));
    }
    if r.end <= w.start {
        let (a, b) = buf.split_at_mut(w.start);
        Ok((a.get(r).ok_or(OOB)?, b.get_mut(..w.len()).ok_or(OOB)?))
    } else if w.end <= r.start {
        let (a, b) = buf.split_at_mut(r.start);
        Ok((b.get(..r.len()).ok_or(OOB)?, a.get_mut(w).ok_or(OOB)?))
    } else {
        Err(CommError::PlanMismatch {
            what: "overlapping read/write operands in one step",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lower, PlanOp};
    use super::*;
    use crate::comm::SelfComm;
    use intercom_cost::Strategy;

    #[test]
    fn self_comm_collect_through_interpreter() {
        let st = Strategy::pure_mst(1);
        let prog = lower(PlanOp::Collect, Some(&st), 1, 3, 4).unwrap();
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mine = [7u32, 8, 9];
        let mut all = [0u32; 3];
        let mut scratch = Vec::new();
        execute_scalar(
            &prog,
            &gc,
            &mut [ArgBuf::In(&mine), ArgBuf::Out(&mut all)],
            &mut scratch,
            0,
        )
        .unwrap();
        assert_eq!(all, mine);
    }

    #[test]
    fn wrong_bindings_rejected() {
        let st = Strategy::pure_mst(1);
        let prog = lower(PlanOp::Collect, Some(&st), 1, 3, 4).unwrap();
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mine = [1u32; 3];
        let mut all = [0u32; 2]; // wrong length
        let mut scratch = Vec::new();
        assert!(matches!(
            execute_scalar(
                &prog,
                &gc,
                &mut [ArgBuf::In(&mine), ArgBuf::Out(&mut all)],
                &mut scratch,
                0,
            ),
            Err(CommError::BadBufferSize {
                expected: 3,
                actual: 2
            })
        ));
        // Combining program without an operator.
        let prog = lower(PlanOp::AllReduce, Some(&st), 1, 2, 4).unwrap();
        let mut buf = [0u32; 2];
        assert!(matches!(
            execute_scalar(&prog, &gc, &mut [ArgBuf::Out(&mut buf)], &mut scratch, 0),
            Err(CommError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn split_same_handles_order_and_overlap() {
        let mut v = [1, 2, 3, 4, 5, 6];
        let (r, w) = split_same(&mut v, 0..2, 4..6).unwrap();
        assert_eq!(r, &[1, 2]);
        assert_eq!(w, &mut [5, 6]);
        let (r, w) = split_same(&mut v, 3..6, 0..2).unwrap();
        assert_eq!(r, &[4, 5, 6]);
        assert_eq!(w.len(), 2);
        assert!(split_same(&mut v, 0..3, 2..5).is_err());
    }
}
