//! The shared schedule IR: collectives compiled to explicit per-rank
//! step programs.
//!
//! Every collective in this library branches only on
//! `(rank, size, n, strategy, root)` — never on received *values* — so a
//! single symbolic replay per rank (against
//! [`RecordingComm`](crate::trace::RecordingComm)) captures the complete
//! schedule a call would execute. This module lowers that replay into a
//! [`CollectiveProgram`]: one artifact consumed by every layer of the
//! stack instead of four independent re-derivations of the same
//! schedule —
//!
//! * the threaded runtime and the mesh simulator *execute* it through
//!   the backend-generic interpreter ([`execute`] / [`execute_scalar`]),
//! * `intercom-verify` checks its static safety properties directly
//!   (deadlock-freedom, single-port, link conflicts, buffer safety),
//! * `intercom-cost` annotates its stages with predicted costs
//!   ([`annotate`]), and
//! * `intercom-obs` attributes trace events to `(plan, step)` via the
//!   [`Comm::plan_step`](crate::comm::Comm::plan_step) hook.
//!
//! Programs are cached in a process-wide [`PlanCache`] keyed by
//! `(op, p, n, element size, strategy)` — the same observation behind the
//! paper's tables: the chosen schedule depends only on the operation,
//! the group shape and the message length, so iterative applications
//! (§9's mesh row/column workloads) compile once and replay every
//! iteration.
//!
//! # Buffer model
//!
//! A step addresses memory through [`Loc`]: a byte range within either a
//! caller-visible argument buffer ([`Buf::Arg`], indexed per
//! [`PlanOp::args`]) or the rank's private scratch arena
//! ([`Buf::Scratch`]), sized by [`RankProgram::scratch_bytes`]. Lowering
//! resolves the raw addresses observed during replay: spans inside a
//! registered argument become `Arg` offsets, and the remaining
//! temporaries are clustered by overlap and packed into the arena — so
//! an executing rank needs exactly its arguments plus one reusable
//! scratch allocation, and repeated executions allocate nothing.

mod cache;
mod cost;
mod exec;
mod lower;
mod opt;

pub use cache::{global_cache, CacheStats, PlanCache, PlanKey, DEFAULT_CACHE_CAPACITY};
pub use cost::{annotate, cost_op, StageCost};
pub use exec::{execute, execute_scalar, ArgBuf};
pub use lower::{lower, lower_hier};
pub use opt::{optimize, OptLevel, OptStats};

use crate::comm::Tag;
use intercom_cost::{HierStrategy, Strategy};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which collective a program implements, together with the call
/// parameters that shape the schedule (root, segment count). The size
/// parameter `n` lives on [`CollectiveProgram`]; its unit follows each
/// collective's natural convention (see [`PlanOp::args`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// Broadcast of `n` elements from `root` (§5 composed algorithm).
    Broadcast {
        /// Logical root rank.
        root: usize,
    },
    /// Combine-to-one of `n` elements to `root`.
    Reduce {
        /// Logical root rank.
        root: usize,
    },
    /// Combine-to-all of `n` elements.
    AllReduce,
    /// Distributed combine: `p·n` contributed, `n` kept per member.
    ReduceScatter,
    /// Collect (allgather): `n` contributed, `p·n` gathered per member.
    Collect,
    /// Scatter of `n`-element blocks from `root` (strategy-free, §4.2).
    Scatter {
        /// Logical root rank.
        root: usize,
    },
    /// Gather of `n`-element blocks to `root` (strategy-free, §4.2).
    Gather {
        /// Logical root rank.
        root: usize,
    },
    /// Total exchange of `n`-element blocks (extension).
    Alltoall,
    /// Pipelined ring broadcast of `n` elements in `segments` segments
    /// (§8).
    PipelinedBcast {
        /// Logical root rank.
        root: usize,
        /// Segment count (`m ≥ 1`).
        segments: usize,
    },
}

/// How a program touches one argument buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgDir {
    /// Read only (contributions).
    In,
    /// Written; may also be read as workspace (results, inout vectors).
    Out,
}

/// Shape of one argument buffer slot of a [`PlanOp`].
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Buffer name as used throughout the docs (`"buf"`, `"all"`, …).
    pub name: &'static str,
    /// Element count for a program over `(p, n)`.
    pub elems: usize,
    /// `Some(rank)` if only that rank binds this buffer (scatter/gather
    /// root buffers); everyone else passes [`ArgBuf::Absent`].
    pub only_rank: Option<usize>,
    /// Data direction.
    pub dir: ArgDir,
}

impl PlanOp {
    /// Short collective name, e.g. `"broadcast"`.
    pub fn name(&self) -> &'static str {
        match self {
            PlanOp::Broadcast { .. } => "broadcast",
            PlanOp::Reduce { .. } => "reduce",
            PlanOp::AllReduce => "allreduce",
            PlanOp::ReduceScatter => "reduce_scatter",
            PlanOp::Collect => "collect",
            PlanOp::Scatter { .. } => "scatter",
            PlanOp::Gather { .. } => "gather",
            PlanOp::Alltoall => "alltoall",
            PlanOp::PipelinedBcast { .. } => "pipelined_bcast",
        }
    }

    /// Whether this collective lowers under a hybrid [`Strategy`].
    pub fn takes_strategy(&self) -> bool {
        matches!(
            self,
            PlanOp::Broadcast { .. }
                | PlanOp::Reduce { .. }
                | PlanOp::AllReduce
                | PlanOp::ReduceScatter
                | PlanOp::Collect
        )
    }

    /// Whether executing this collective needs a [`crate::ReduceOp`]
    /// (the program itself is operator-agnostic: the ⊕ is supplied at
    /// execution time).
    pub fn combines(&self) -> bool {
        matches!(
            self,
            PlanOp::Reduce { .. } | PlanOp::AllReduce | PlanOp::ReduceScatter
        )
    }

    /// The argument buffer slots of a program over `p` ranks with size
    /// parameter `n`, in binding order. `n` is the *total vector length*
    /// for broadcast, combine-to-one, combine-to-all and the pipelined
    /// broadcast, and the *per-member block length* for the rest —
    /// matching `intercom-verify`'s `VerifyOp` convention.
    pub fn args(&self, p: usize, n: usize) -> Vec<ArgSpec> {
        let spec = |name, elems, only_rank, dir| ArgSpec {
            name,
            elems,
            only_rank,
            dir,
        };
        match *self {
            PlanOp::Broadcast { .. } | PlanOp::PipelinedBcast { .. } => {
                vec![spec("buf", n, None, ArgDir::Out)]
            }
            PlanOp::Reduce { .. } | PlanOp::AllReduce => vec![spec("buf", n, None, ArgDir::Out)],
            PlanOp::ReduceScatter => vec![
                spec("contrib", p * n, None, ArgDir::In),
                spec("mine", n, None, ArgDir::Out),
            ],
            PlanOp::Collect => vec![
                spec("mine", n, None, ArgDir::In),
                spec("all", p * n, None, ArgDir::Out),
            ],
            PlanOp::Scatter { root } => vec![
                spec("full", p * n, Some(root), ArgDir::In),
                spec("mine", n, None, ArgDir::Out),
            ],
            PlanOp::Gather { root } => vec![
                spec("mine", n, None, ArgDir::In),
                spec("full", p * n, Some(root), ArgDir::Out),
            ],
            PlanOp::Alltoall => vec![
                spec("send", p * n, None, ArgDir::In),
                spec("recv", p * n, None, ArgDir::Out),
            ],
        }
    }
}

/// Which buffer a [`Loc`] addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buf {
    /// Caller argument slot `i` of [`PlanOp::args`].
    Arg(usize),
    /// The rank's private scratch arena.
    Scratch,
}

/// A byte range within one buffer: the IR's explicit buffer-region
/// operand. Offsets and lengths are in bytes and always multiples of the
/// program's element size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// Addressed buffer.
    pub buf: Buf,
    /// Byte offset within the buffer.
    pub off: usize,
    /// Byte length.
    pub len: usize,
}

/// Stage coordinates of a step: the recursion level and the within-level
/// stage offset, following the library's tag discipline (`level =
/// tag / LEVEL_TAG_STRIDE`, `sub = tag % LEVEL_TAG_STRIDE`). Local steps
/// inherit the stage of the nearest preceding communication step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageId {
    /// Recursion level (outermost = 0).
    pub level: u64,
    /// Stage offset within the level.
    pub sub: u64,
}

/// One schedule action of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Blocking send of `src` to logical rank `to`.
    Send {
        /// Destination logical rank.
        to: usize,
        /// Tag offset from the execution's base tag.
        tag_off: Tag,
        /// Bytes read.
        src: Loc,
    },
    /// Blocking receive into `dst` from logical rank `from`.
    Recv {
        /// Source logical rank.
        from: usize,
        /// Tag offset from the execution's base tag.
        tag_off: Tag,
        /// Bytes written.
        dst: Loc,
    },
    /// Concurrent send-to / receive-from (possibly different peers).
    SendRecv {
        /// Destination logical rank of the send half.
        to: usize,
        /// Bytes read by the send half.
        src: Loc,
        /// Source logical rank of the receive half.
        from: usize,
        /// Bytes written by the receive half.
        dst: Loc,
        /// Tag offset of the send half.
        tag_off: Tag,
        /// Tag offset of the receive half. Equal to `tag_off` for
        /// exchanges the algorithms emit directly; the optimizer's
        /// cross-stage fusion produces mixed-tag exchanges (tags encode
        /// stages, and the fused halves belong to adjacent stages).
        rtag_off: Tag,
    },
    /// Local copy of `src` into `dst` (block permutes, root staging,
    /// own-block moves).
    Copy {
        /// Bytes read.
        src: Loc,
        /// Bytes written.
        dst: Loc,
    },
    /// Local fold of `other` into `acc` under the execution's ⊕.
    Reduce {
        /// Accumulator bytes (read and written).
        acc: Loc,
        /// Contribution bytes (read).
        other: Loc,
    },
    /// γ-accounting: local combine work over `bytes` bytes.
    Compute {
        /// Combined byte count.
        bytes: usize,
    },
    /// δ-accounting: one level of short-vector recursion overhead.
    CallOverhead,
}

/// One step of a rank's program: an action plus its stage coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The action.
    pub kind: StepKind,
    /// Stage attribution for cost and observability.
    pub stage: StageId,
}

/// One rank's compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankProgram {
    /// Steps in issue order.
    pub steps: Vec<Step>,
    /// Bytes of private scratch the rank needs to execute.
    pub scratch_bytes: usize,
}

/// A compiled collective: per-rank step programs plus the call geometry
/// they were lowered for. The single schedule artifact shared by the
/// runtime, the simulator, the verifier, the cost model and the tracing
/// layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveProgram {
    /// Process-unique plan id (1-based; 0 means "no plan" in traces).
    pub plan_id: u64,
    /// The collective and its shape parameters.
    pub op: PlanOp,
    /// Group size the program was lowered for.
    pub p: usize,
    /// Size parameter in elements (unit per [`PlanOp::args`]).
    pub n: usize,
    /// Element size in bytes the program was lowered at. Any scalar type
    /// of this size executes the program: lowering never branches on
    /// values, only on element geometry.
    pub elem_size: usize,
    /// The hybrid strategy, for strategy-taking ops lowered flat.
    pub strategy: Option<Strategy>,
    /// The hierarchical strategy, for programs lowered by
    /// [`lower_hier`]; `None` for flat programs.
    pub hier: Option<HierStrategy>,
    /// Per-rank programs, indexed by logical rank.
    pub ranks: Vec<RankProgram>,
}

impl CollectiveProgram {
    /// Total communication steps (sends + receives + exchanges) across
    /// all ranks.
    pub fn comm_steps(&self) -> usize {
        self.ranks
            .iter()
            .flat_map(|r| r.steps.iter())
            .filter(|s| {
                matches!(
                    s.kind,
                    StepKind::Send { .. } | StepKind::Recv { .. } | StepKind::SendRecv { .. }
                )
            })
            .count()
    }
}

static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

/// Draws a fresh process-unique plan id.
pub(crate) fn fresh_plan_id() -> u64 {
    NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_ids_are_unique_and_nonzero() {
        let a = fresh_plan_id();
        let b = fresh_plan_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn arg_specs_match_conventions() {
        let args = PlanOp::Scatter { root: 2 }.args(4, 8);
        assert_eq!(args[0].elems, 32);
        assert_eq!(args[0].only_rank, Some(2));
        assert_eq!(args[1].elems, 8);
        assert_eq!(args[1].only_rank, None);

        let args = PlanOp::AllReduce.args(4, 8);
        assert_eq!(args.len(), 1);
        assert_eq!(args[0].elems, 8);
        assert!(PlanOp::AllReduce.combines());
        assert!(!PlanOp::Collect.combines());
        assert!(PlanOp::Collect.takes_strategy());
        assert!(!PlanOp::Alltoall.takes_strategy());
    }
}
