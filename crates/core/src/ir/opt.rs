//! The schedule optimizer: verified rewriting passes over compiled
//! programs.
//!
//! PR 4's IR is a verbatim transcript of the paper's recursive
//! algorithms — it pays for every message the recursion *shape* forces,
//! not just the messages the schedule *needs*. This module closes that
//! gap with a pipeline of pure `Program -> Program` rewrites, in the
//! spirit of the paper's own §6 analysis (combine send and receive into
//! full-duplex exchanges, keep every port busy):
//!
//! 1. **Empty-message elision** — uneven partitions (`n < p` blocks)
//!    leave zero-length blocks whose sends and receives still cost a
//!    full α each; matched zero-length halves are dropped from both
//!    endpoints. Gated on `n > 0` so degenerate programs keep their
//!    barrier semantics (an `n = 0` collective still synchronizes).
//! 2. **Sendrecv fusion** — an adjacent send/recv pair in the same
//!    stage (only local steps between) becomes one full-duplex
//!    [`StepKind::SendRecv`].
//! 3. **Cross-stage overlap** — the same fusion across stage
//!    boundaries, where the §6 exchange lives: an MST combine's
//!    send-up immediately precedes the broadcast's recv-down on every
//!    non-root rank. When the two regions overlap, the receive is
//!    detoured through fresh scratch and copied into place at the
//!    receive's original program point, so execution stays
//!    byte-identical. Applied only when the cost model prices the
//!    rewritten shape cheaper (wire occupancy, see
//!    [`StageCost::wire_bytes`](super::StageCost)).
//! 4. **Message/copy coalescing** — adjacent contiguous messages on
//!    one channel merge into one (both endpoints rewritten in concert),
//!    and adjacent contiguous local copies merge, eliminating per-block
//!    α and per-call overheads.
//! 5. **Dead-copy elimination** — identity round-trips (a block staged
//!    to scratch and copied back to where it came from, as the
//!    multi-dimensional collect's slot un-permutation produces for
//!    fixed points of the permutation) and scratch stores no later step
//!    reads are dropped.
//!
//! # Proof obligations
//!
//! Every rewrite preserves two properties:
//!
//! * **Byte-identity.** Argument buffers hold exactly the bytes the
//!   unoptimized program produces, proven mechanically by the
//!   `ir_opt_differential` oracle on both backends.
//! * **Deadlock-monotonicity.** A fusion only co-posts halves that were
//!   already adjacent (separated by local steps alone): every half is
//!   posted no later than before, no new completion obligations are
//!   introduced beyond those the rank already met at the same program
//!   point, and per-channel FIFO order is untouched. Elision removes
//!   matched pairs symmetrically, which only removes wait-for edges.
//!   As a backstop, the optimized program is re-proven by an internal
//!   rendezvous matcher before it replaces the original (falling back
//!   to the unoptimized program on any failure), and the full
//!   `schedule-audit --source=ir-opt` sweep re-checks deadlock-freedom,
//!   single-port, buffer safety and link conflicts over the whole
//!   strategy space.

use super::lower::{stage_of, ARENA_ALIGN};
use super::{annotate, CollectiveProgram, Loc, Step, StepKind};
use crate::comm::Tag;
use intercom_cost::CostContext;
use std::collections::{BTreeMap, BTreeSet};

/// How much optimization a compiled plan gets — the plan cache's
/// opt-level key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Lowering only: the program is the verbatim transcript of the
    /// recursion.
    None,
    /// The full pass pipeline.
    #[default]
    Full,
}

/// Per-pass rewrite counters of one [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Zero-length message halves elided (pass 1).
    pub elided: usize,
    /// Same-stage send/recv pairs fused into exchanges (pass 2).
    pub fused: usize,
    /// Cross-stage pairs fused by the overlap pass (pass 3).
    pub overlapped: usize,
    /// Messages and local copies merged (pass 4).
    pub coalesced: usize,
    /// Dead or identity copies removed (pass 5).
    pub dead_copies: usize,
    /// The rewritten program failed the internal rendezvous re-proof
    /// and the unoptimized original was kept (never expected; the
    /// passes are deadlock-monotone by construction).
    pub reverted: bool,
}

impl OptStats {
    /// Total rewrites applied.
    pub fn total(&self) -> usize {
        self.elided + self.fused + self.overlapped + self.coalesced + self.dead_copies
    }
}

/// Runs the full pass pipeline over `prog`, returning the optimized
/// program (with a fresh plan id) and per-pass rewrite counts.
///
/// The result executes byte-identically to `prog` and satisfies the
/// same static safety invariants; if the internal rendezvous re-proof
/// fails, the original program is returned unchanged (with
/// [`OptStats::reverted`] set).
pub fn optimize(prog: &CollectiveProgram) -> (CollectiveProgram, OptStats) {
    let mut stats = OptStats::default();
    let mut out = prog.clone();
    out.plan_id = super::fresh_plan_id();
    stats.elided = elide_empty(&mut out);
    stats.fused = fuse_adjacent(&mut out, FuseMode::SameStage);
    // The overlap pass is priced: apply only if the cost model says the
    // fused shape occupies the wire for less.
    let mut candidate = out.clone();
    let n = fuse_adjacent(&mut candidate, FuseMode::CrossStage);
    if n > 0 && priced_wire(&candidate) < priced_wire(&out) {
        out = candidate;
        stats.overlapped = n;
    }
    stats.coalesced = coalesce_messages(&mut out) + coalesce_copies(&mut out);
    stats.dead_copies = dead_copy_elim(&mut out);
    if !rendezvous_ok(&out) {
        let mut orig = prog.clone();
        orig.plan_id = out.plan_id;
        return (
            orig,
            OptStats {
                reverted: true,
                ..OptStats::default()
            },
        );
    }
    (out, stats)
}

/// Total serialized wire occupancy of a program: each send counts its
/// source, each receive its destination, each full-duplex exchange the
/// max of its halves. Where the cost model covers the op this equals
/// the [`annotate`] stage sum of `wire_bytes`; the direct fold also
/// prices the extension collectives the stage model skips.
fn priced_wire(prog: &CollectiveProgram) -> usize {
    if let Some(stages) = annotate(prog, CostContext::LINEAR) {
        return stages.iter().map(|s| s.wire_bytes).sum();
    }
    prog.ranks
        .iter()
        .flat_map(|r| r.steps.iter())
        .map(|s| match s.kind {
            StepKind::Send { src, .. } => src.len,
            StepKind::Recv { dst, .. } => dst.len,
            StepKind::SendRecv { src, dst, .. } => src.len.max(dst.len),
            _ => 0,
        })
        .sum()
}

/// Pass 1: drop matched zero-length message halves from both endpoints.
/// A valid program's k-th send and k-th receive on one `(src, dst, tag)`
/// channel have equal lengths, so dropping every zero-length half keeps
/// the two sides' FIFO indices aligned. Gated on `n > 0`: a zero-size
/// collective is a barrier and must keep synchronizing.
fn elide_empty(prog: &mut CollectiveProgram) -> usize {
    if prog.n == 0 {
        return 0;
    }
    let mut removed = 0;
    for rp in &mut prog.ranks {
        rp.steps.retain_mut(|step| match step.kind {
            StepKind::Send { src, .. } if src.len == 0 => {
                removed += 1;
                false
            }
            StepKind::Recv { dst, .. } if dst.len == 0 => {
                removed += 1;
                false
            }
            StepKind::SendRecv {
                to,
                src,
                from,
                dst,
                tag_off,
                rtag_off,
            } => match (src.len == 0, dst.len == 0) {
                (true, true) => {
                    removed += 2;
                    false
                }
                (true, false) => {
                    removed += 1;
                    step.kind = StepKind::Recv {
                        from,
                        tag_off: rtag_off,
                        dst,
                    };
                    step.stage = stage_of(rtag_off);
                    true
                }
                (false, true) => {
                    removed += 1;
                    step.kind = StepKind::Send { to, tag_off, src };
                    step.stage = stage_of(tag_off);
                    true
                }
                (false, false) => true,
            },
            _ => true,
        });
    }
    removed
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FuseMode {
    /// Pass 2: both halves in the same stage (equal tags); no detour.
    SameStage,
    /// Pass 3 (overlap): halves from different stages; an overlapping
    /// receive destination is detoured through fresh scratch.
    CrossStage,
}

fn locs_overlap(a: &Loc, b: &Loc) -> bool {
    a.len > 0 && b.len > 0 && a.buf == b.buf && a.off < b.off + b.len && b.off < a.off + a.len
}

/// Read/write footprint of a local step, `None` for communication.
fn local_footprint(kind: &StepKind) -> Option<(Vec<Loc>, Vec<Loc>)> {
    match *kind {
        StepKind::Copy { src, dst } => Some((vec![src], vec![dst])),
        StepKind::Reduce { acc, other } => Some((vec![acc, other], vec![acc])),
        StepKind::Compute { .. } | StepKind::CallOverhead => Some((vec![], vec![])),
        _ => None,
    }
}

/// Passes 2 and 3: fuse adjacent send/recv pairs (only local steps
/// between) into full-duplex exchanges. Both orders are handled; a pair
/// is refused when the send would ship bytes the receive (or an
/// intervening local step) produces — fusion never reorders dependent
/// work, it only co-posts halves the rank was already committed to.
fn fuse_adjacent(prog: &mut CollectiveProgram, mode: FuseMode) -> usize {
    let mut count = 0;
    for rp in &mut prog.ranks {
        let steps = &rp.steps;
        let mut out: Vec<Step> = Vec::with_capacity(steps.len());
        let mut tmp_base = rp.scratch_bytes;
        let mut i = 0;
        'scan: while i < steps.len() {
            let first = steps[i];
            let want_pair = matches!(first.kind, StepKind::Send { .. } | StepKind::Recv { .. });
            if want_pair {
                let mut j = i + 1;
                let mut mid_reads: Vec<Loc> = Vec::new();
                let mut mid_writes: Vec<Loc> = Vec::new();
                while j < steps.len() {
                    if let Some((r, w)) = local_footprint(&steps[j].kind) {
                        mid_reads.extend(r);
                        mid_writes.extend(w);
                        j += 1;
                        continue;
                    }
                    break;
                }
                if j < steps.len() {
                    if let Some((fused, copy_back, cnt)) = try_fuse(
                        &first,
                        &steps[j],
                        &mid_reads,
                        &mid_writes,
                        mode,
                        &mut tmp_base,
                    ) {
                        out.push(fused);
                        out.extend_from_slice(&steps[i + 1..j]);
                        if let Some(c) = copy_back {
                            out.push(c);
                        }
                        count += cnt;
                        i = j + 1;
                        continue 'scan;
                    }
                }
            }
            out.push(first);
            i += 1;
        }
        rp.steps = out;
        rp.scratch_bytes = tmp_base;
    }
    count
}

/// Attempts to fuse the pair `(first, second)` separated by local steps
/// with the given read/write footprint. Returns the fused step, an
/// optional copy-back step (the cross-stage detour) and the rewrite
/// count.
fn try_fuse(
    first: &Step,
    second: &Step,
    mid_reads: &[Loc],
    mid_writes: &[Loc],
    mode: FuseMode,
    tmp_base: &mut usize,
) -> Option<(Step, Option<Step>, usize)> {
    let same_stage = first.stage == second.stage;
    match mode {
        FuseMode::SameStage if !same_stage => return None,
        FuseMode::CrossStage if same_stage => return None,
        _ => {}
    }
    // Zero-length halves are synchronization tokens: they carry no
    // bytes (nothing to win by full-duplexing) but their blocking
    // order *is* the schedule's serialization — e.g. an MST rank
    // forwards to its child only after hearing from its parent. The
    // data-dependence gates below are vacuous at length zero, so
    // without this guard fusion would co-post the forward before the
    // receive and break the per-stage link-conflict bounds the §6
    // cost model proves. Empty messages are pass 1's (elision's) job.
    let comm_len = |k: &StepKind| match *k {
        StepKind::Send { src, .. } => src.len,
        StepKind::Recv { dst, .. } => dst.len,
        _ => 0,
    };
    if comm_len(&first.kind) == 0 || comm_len(&second.kind) == 0 {
        return None;
    }
    match (first.kind, second.kind) {
        // send … recv: the receive half moves earlier.
        (
            StepKind::Send { to, tag_off, src },
            StepKind::Recv {
                from,
                tag_off: rtag_off,
                dst,
            },
        ) => {
            let mid_touches_dst = mid_reads
                .iter()
                .chain(mid_writes)
                .any(|l| locs_overlap(l, &dst));
            if !locs_overlap(&src, &dst) && !mid_touches_dst {
                let fused = Step {
                    kind: StepKind::SendRecv {
                        to,
                        src,
                        from,
                        dst,
                        tag_off,
                        rtag_off,
                    },
                    stage: first.stage,
                };
                return Some((fused, None, 1));
            }
            // Overlapping (or mid-read) destination: detour the receive
            // through fresh scratch and copy into place at the
            // receive's original program point — the §6 exchange. The
            // argument buffer is untouched until the copy, so every
            // intervening read still sees the pre-receive bytes.
            if mode == FuseMode::CrossStage && dst.len > 0 {
                let off = tmp_base.next_multiple_of(ARENA_ALIGN);
                *tmp_base = off + dst.len;
                let tmp = Loc {
                    buf: super::Buf::Scratch,
                    off,
                    len: dst.len,
                };
                let fused = Step {
                    kind: StepKind::SendRecv {
                        to,
                        src,
                        from,
                        dst: tmp,
                        tag_off,
                        rtag_off,
                    },
                    stage: first.stage,
                };
                let copy_back = Step {
                    kind: StepKind::Copy { src: tmp, dst },
                    stage: second.stage,
                };
                return Some((fused, Some(copy_back), 1));
            }
            None
        }
        // recv … send: the send half moves earlier; refuse if the send
        // ships bytes the receive or an intervening step produces.
        (
            StepKind::Recv {
                from,
                tag_off: rtag_off,
                dst,
            },
            StepKind::Send { to, tag_off, src },
        ) => {
            if locs_overlap(&src, &dst) || mid_writes.iter().any(|l| locs_overlap(l, &src)) {
                return None;
            }
            let fused = Step {
                kind: StepKind::SendRecv {
                    to,
                    src,
                    from,
                    dst,
                    tag_off,
                    rtag_off,
                },
                // Attribution convention: a fused exchange belongs to
                // its send half's stage (cf. `StageCost::wire_bytes`).
                stage: second.stage,
            };
            Some((fused, None, 1))
        }
        _ => None,
    }
}

/// Pass 4a: merge adjacent contiguous messages on one channel, both
/// endpoints rewritten in concert. Conservative: only plain send/recv
/// pairs on channels no exchange half touches, and only when the k-th
/// and (k+1)-th messages are program-adjacent on *both* sides.
fn coalesce_messages(prog: &mut CollectiveProgram) -> usize {
    let mut merged = 0;
    loop {
        let mut chan_send: BTreeMap<(usize, usize, Tag), Vec<usize>> = BTreeMap::new();
        let mut chan_recv: BTreeMap<(usize, usize, Tag), Vec<usize>> = BTreeMap::new();
        let mut tainted: BTreeSet<(usize, usize, Tag)> = BTreeSet::new();
        for (r, rp) in prog.ranks.iter().enumerate() {
            for (idx, step) in rp.steps.iter().enumerate() {
                match step.kind {
                    StepKind::Send { to, tag_off, .. } => {
                        chan_send.entry((r, to, tag_off)).or_default().push(idx)
                    }
                    StepKind::Recv { from, tag_off, .. } => {
                        chan_recv.entry((from, r, tag_off)).or_default().push(idx)
                    }
                    StepKind::SendRecv {
                        to,
                        from,
                        tag_off,
                        rtag_off,
                        ..
                    } => {
                        tainted.insert((r, to, tag_off));
                        tainted.insert((from, r, rtag_off));
                    }
                    _ => {}
                }
            }
        }
        let mut found: Option<((usize, usize), (usize, usize))> = None;
        'outer: for (key, sends) in &chan_send {
            let (s, d, _) = *key;
            if tainted.contains(key) || s == d {
                continue;
            }
            let Some(recvs) = chan_recv.get(key) else {
                continue;
            };
            if sends.len() != recvs.len() {
                continue;
            }
            for k in 0..sends.len().saturating_sub(1) {
                if sends[k + 1] != sends[k] + 1 || recvs[k + 1] != recvs[k] + 1 {
                    continue;
                }
                let (sa, sb) = (send_src(prog, s, sends[k]), send_src(prog, s, sends[k] + 1));
                let (ra, rb) = (recv_dst(prog, d, recvs[k]), recv_dst(prog, d, recvs[k] + 1));
                if contiguous(&sa, &sb) && contiguous(&ra, &rb) {
                    found = Some(((s, sends[k]), (d, recvs[k])));
                    break 'outer;
                }
            }
        }
        let Some(((s, si), (d, di))) = found else {
            return merged;
        };
        let grow = send_src(prog, s, si + 1).len;
        if let StepKind::Send { src, .. } = &mut prog.ranks[s].steps[si].kind {
            src.len += grow;
        }
        prog.ranks[s].steps.remove(si + 1);
        if let StepKind::Recv { dst, .. } = &mut prog.ranks[d].steps[di].kind {
            dst.len += grow;
        }
        prog.ranks[d].steps.remove(di + 1);
        merged += 1;
    }
}

fn send_src(prog: &CollectiveProgram, rank: usize, idx: usize) -> Loc {
    match prog.ranks[rank].steps[idx].kind {
        StepKind::Send { src, .. } => src,
        ref other => unreachable!("expected send at ({rank}, {idx}), found {other:?}"),
    }
}

fn recv_dst(prog: &CollectiveProgram, rank: usize, idx: usize) -> Loc {
    match prog.ranks[rank].steps[idx].kind {
        StepKind::Recv { dst, .. } => dst,
        ref other => unreachable!("expected recv at ({rank}, {idx}), found {other:?}"),
    }
}

/// `b` starts exactly where `a` ends, in the same buffer.
fn contiguous(a: &Loc, b: &Loc) -> bool {
    a.buf == b.buf && b.off == a.off + a.len && a.len > 0 && b.len > 0
}

/// Pass 4b: merge adjacent local copies whose sources and destinations
/// are both contiguous (the multi-dimensional collect's block-by-block
/// un-permutation emits runs of these).
fn coalesce_copies(prog: &mut CollectiveProgram) -> usize {
    let mut merged = 0;
    for rp in &mut prog.ranks {
        let mut out: Vec<Step> = Vec::with_capacity(rp.steps.len());
        for step in &rp.steps {
            if let (
                Some(Step {
                    kind:
                        StepKind::Copy {
                            src: psrc,
                            dst: pdst,
                        },
                    ..
                }),
                StepKind::Copy { src, dst },
            ) = (out.last_mut(), &step.kind)
            {
                if contiguous(psrc, src) && contiguous(pdst, dst) {
                    psrc.len += src.len;
                    pdst.len += dst.len;
                    merged += 1;
                    continue;
                }
            }
            out.push(*step);
        }
        rp.steps = out;
    }
    merged
}

/// Pass 5: remove copies that move no information — zero-length copies,
/// identity round-trips (scratch bytes copied back to the argument
/// region they were staged from, with no intervening write to either
/// side), and stores to scratch no later step reads (scratch dies at
/// program end and is re-zeroed per run).
fn dead_copy_elim(prog: &mut CollectiveProgram) -> usize {
    let mut removed = 0;
    for rp in &mut prog.ranks {
        rp.steps.retain(|s| {
            if let StepKind::Copy { src, .. } = s.kind {
                if src.len == 0 {
                    removed += 1;
                    return false;
                }
            }
            true
        });
        removed += remove_identity_copies(&mut rp.steps);
        removed += remove_unread_scratch_stores(&mut rp.steps);
    }
    removed
}

/// Provenance scan: `records` tracks scratch ranges known to hold an
/// exact copy of an argument range. A copy from scratch back to the
/// very argument range it was staged from is an identity and is
/// dropped.
fn remove_identity_copies(steps: &mut Vec<Step>) -> usize {
    // (scratch_off, len, arg_slot, arg_off)
    let mut records: Vec<(usize, usize, usize, usize)> = Vec::new();
    let mut dead: Vec<usize> = Vec::new();
    let scratch = |l: &Loc| l.buf == super::Buf::Scratch;
    for (idx, step) in steps.iter().enumerate() {
        // Identity check first (reads see pre-step state).
        if let StepKind::Copy { src, dst } = step.kind {
            if scratch(&src) && !scratch(&dst) {
                if let super::Buf::Arg(slot) = dst.buf {
                    let identity = records.iter().any(|&(so, sl, rslot, ao)| {
                        rslot == slot
                            && src.off >= so
                            && src.off + src.len <= so + sl
                            && ao + (src.off - so) == dst.off
                            && src.len == dst.len
                    });
                    if identity {
                        dead.push(idx);
                        continue; // removed: writes nothing, invalidates nothing
                    }
                }
            }
        }
        // Invalidate records overlapping any byte this step writes.
        let writes: Vec<Loc> = match step.kind {
            StepKind::Recv { dst, .. } | StepKind::SendRecv { dst, .. } => vec![dst],
            StepKind::Copy { dst, .. } => vec![dst],
            StepKind::Reduce { acc, .. } => vec![acc],
            _ => vec![],
        };
        for w in &writes {
            records.retain(|&(so, sl, rslot, ao)| {
                let scratch_hit = scratch(w) && w.off < so + sl && so < w.off + w.len;
                let arg_hit = matches!(w.buf, super::Buf::Arg(s) if s == rslot)
                    && w.off < ao + sl
                    && ao < w.off + w.len;
                !(scratch_hit || arg_hit) || w.len == 0
            });
        }
        // A fresh argument→scratch copy establishes provenance.
        if let StepKind::Copy { src, dst } = step.kind {
            if let (super::Buf::Arg(slot), true) = (src.buf, scratch(&dst)) {
                if dst.len > 0 {
                    records.push((dst.off, dst.len, slot, src.off));
                }
            }
        }
    }
    for &idx in dead.iter().rev() {
        steps.remove(idx);
    }
    dead.len()
}

/// Liveness scan: a copy into scratch whose destination no later step
/// reads is dead (scratch is private, re-zeroed per run, and invisible
/// after the program ends).
fn remove_unread_scratch_stores(steps: &mut Vec<Step>) -> usize {
    let mut dead: Vec<usize> = Vec::new();
    for idx in 0..steps.len() {
        let StepKind::Copy { dst, .. } = steps[idx].kind else {
            continue;
        };
        if dst.buf != super::Buf::Scratch || dst.len == 0 {
            continue;
        }
        let read_later = steps[idx + 1..].iter().any(|s| {
            let reads: Vec<Loc> = match s.kind {
                StepKind::Send { src, .. } => vec![src],
                StepKind::SendRecv { src, .. } => vec![src],
                StepKind::Copy { src, .. } => vec![src],
                StepKind::Reduce { acc, other } => vec![acc, other],
                _ => vec![],
            };
            reads.iter().any(|r| locs_overlap(r, &dst))
        });
        if !read_later {
            dead.push(idx);
        }
    }
    for &idx in dead.iter().rev() {
        steps.remove(idx);
    }
    dead.len()
}

/// The internal rendezvous re-proof: simulates synchronous matching of
/// the whole program (each rank blocks at its current communication
/// step until every half is matched; halves match FIFO per
/// `(src, dst, tag)` channel, at most one send and one receive half per
/// rank at a time). Returns false on deadlock or length mismatch —
/// the same model `intercom-verify`'s matcher proves programs against,
/// under which deadlock-freedom transfers to any eager backend.
fn rendezvous_ok(prog: &CollectiveProgram) -> bool {
    #[derive(Clone, Copy)]
    struct Half {
        peer: usize,
        tag: Tag,
        len: usize,
        done: bool,
    }
    #[derive(Clone, Copy, Default)]
    struct Cur {
        send: Option<Half>,
        recv: Option<Half>,
    }
    let p = prog.p;
    let load = |rank: usize, next: &mut usize| -> Option<Cur> {
        let steps = &prog.ranks[rank].steps;
        while *next < steps.len() {
            match steps[*next].kind {
                StepKind::Send { to, tag_off, src } => {
                    return Some(Cur {
                        send: Some(Half {
                            peer: to,
                            tag: tag_off,
                            len: src.len,
                            done: false,
                        }),
                        recv: None,
                    })
                }
                StepKind::Recv { from, tag_off, dst } => {
                    return Some(Cur {
                        send: None,
                        recv: Some(Half {
                            peer: from,
                            tag: tag_off,
                            len: dst.len,
                            done: false,
                        }),
                    })
                }
                StepKind::SendRecv {
                    to,
                    src,
                    from,
                    dst,
                    tag_off,
                    rtag_off,
                } => {
                    return Some(Cur {
                        send: Some(Half {
                            peer: to,
                            tag: tag_off,
                            len: src.len,
                            done: false,
                        }),
                        recv: Some(Half {
                            peer: from,
                            tag: rtag_off,
                            len: dst.len,
                            done: false,
                        }),
                    })
                }
                _ => *next += 1,
            }
        }
        None
    };
    let mut next = vec![0usize; p];
    let mut cur: Vec<Option<Cur>> = (0..p).map(|r| load(r, &mut next[r])).collect();
    loop {
        if cur.iter().all(Option::is_none) {
            return true;
        }
        let snapshot = cur.clone();
        let mut progressed = false;
        for a in 0..p {
            let Some(ca) = snapshot[a] else { continue };
            let Some(s) = ca.send else { continue };
            if s.done || s.peer >= p {
                if s.peer >= p {
                    return false;
                }
                continue;
            }
            let b = s.peer;
            let Some(cb) = snapshot[b] else { continue };
            let Some(r) = cb.recv else { continue };
            if r.done || r.peer != a || r.tag != s.tag {
                continue;
            }
            if r.len != s.len {
                return false;
            }
            cur[a].as_mut().unwrap().send.as_mut().unwrap().done = true;
            cur[b].as_mut().unwrap().recv.as_mut().unwrap().done = true;
            progressed = true;
        }
        for r in 0..p {
            let all_done = cur[r]
                .is_some_and(|c| c.send.is_none_or(|h| h.done) && c.recv.is_none_or(|h| h.done));
            if all_done {
                next[r] += 1;
                cur[r] = load(r, &mut next[r]);
                progressed = true;
            }
        }
        if !progressed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lower, Buf, PlanOp, RankProgram};
    use super::*;
    use intercom_cost::Strategy;

    fn loc(buf: Buf, off: usize, len: usize) -> Loc {
        Loc { buf, off, len }
    }

    fn step(kind: StepKind, tag: Tag) -> Step {
        Step {
            kind,
            stage: stage_of(tag),
        }
    }

    /// A hand-built two-rank program shell (op/strategy irrelevant to
    /// the passes; Alltoall keeps the priced gate on the direct wire
    /// fold).
    fn mini(p: usize, n: usize, ranks: Vec<Vec<Step>>, scratch: usize) -> CollectiveProgram {
        CollectiveProgram {
            plan_id: 0,
            op: PlanOp::Alltoall,
            p,
            n,
            elem_size: 1,
            strategy: None,
            hier: None,
            ranks: ranks
                .into_iter()
                .map(|steps| RankProgram {
                    steps,
                    scratch_bytes: scratch,
                })
                .collect(),
        }
    }

    #[test]
    fn same_stage_fusion_applies() {
        // Rank 0: send(1, t0) then recv(1, t0), disjoint regions.
        // Rank 1: the mirror in the opposite order.
        let a = loc(Buf::Arg(0), 0, 4);
        let b = loc(Buf::Arg(0), 4, 4);
        let prog = mini(
            2,
            8,
            vec![
                vec![
                    step(
                        StepKind::Send {
                            to: 1,
                            tag_off: 0,
                            src: a,
                        },
                        0,
                    ),
                    step(
                        StepKind::Recv {
                            from: 1,
                            tag_off: 0,
                            dst: b,
                        },
                        0,
                    ),
                ],
                vec![
                    step(
                        StepKind::Recv {
                            from: 0,
                            tag_off: 0,
                            dst: b,
                        },
                        0,
                    ),
                    step(
                        StepKind::Send {
                            to: 0,
                            tag_off: 0,
                            src: a,
                        },
                        0,
                    ),
                ],
            ],
            0,
        );
        let (opt, stats) = optimize(&prog);
        assert_eq!(stats.fused, 2);
        assert!(!stats.reverted);
        for rp in &opt.ranks {
            assert_eq!(rp.steps.len(), 1);
            assert!(matches!(rp.steps[0].kind, StepKind::SendRecv { .. }));
        }
    }

    #[test]
    fn fusion_refuses_dependent_forwarding() {
        // Ring-style forwarding: recv into a region, then send that
        // same region. Co-posting would ship stale bytes — refused.
        let r = loc(Buf::Arg(0), 0, 4);
        let prog = mini(
            2,
            4,
            vec![
                vec![
                    step(
                        StepKind::Recv {
                            from: 1,
                            tag_off: 0,
                            dst: r,
                        },
                        0,
                    ),
                    step(
                        StepKind::Send {
                            to: 1,
                            tag_off: 1,
                            src: r,
                        },
                        1,
                    ),
                ],
                vec![
                    step(
                        StepKind::Send {
                            to: 0,
                            tag_off: 0,
                            src: r,
                        },
                        0,
                    ),
                    step(
                        StepKind::Recv {
                            from: 0,
                            tag_off: 1,
                            dst: r,
                        },
                        1,
                    ),
                ],
            ],
            0,
        );
        let (opt, stats) = optimize(&prog);
        assert_eq!(stats.fused, 0);
        assert_eq!(opt.ranks[0].steps.len(), 2, "dependent pair kept apart");
        // Rank 1's send→recv pair on the same region overlaps, so the
        // cross-stage detour may fire there — but never rank 0's.
        assert!(matches!(opt.ranks[0].steps[0].kind, StepKind::Recv { .. }));
        let _ = stats;
    }

    #[test]
    fn cross_stage_detour_redirects_overlapping_recv() {
        // The §6 exchange: send buf up at tag 0, receive the result
        // back into the same buffer at tag 1 (MST allreduce non-root).
        let buf = loc(Buf::Arg(0), 0, 8);
        let prog = mini(
            2,
            8,
            vec![
                vec![
                    step(
                        StepKind::Send {
                            to: 1,
                            tag_off: 0,
                            src: buf,
                        },
                        0,
                    ),
                    step(StepKind::CallOverhead, 0),
                    step(
                        StepKind::Recv {
                            from: 1,
                            tag_off: 1,
                            dst: buf,
                        },
                        1,
                    ),
                ],
                vec![
                    step(
                        StepKind::Recv {
                            from: 0,
                            tag_off: 0,
                            dst: loc(Buf::Scratch, 0, 8),
                        },
                        0,
                    ),
                    step(
                        StepKind::Send {
                            to: 0,
                            tag_off: 1,
                            src: buf,
                        },
                        1,
                    ),
                ],
            ],
            16,
        );
        let (opt, stats) = optimize(&prog);
        // Rank 0 needs the scratch detour; rank 1's recv→send pair
        // touches disjoint regions, so it fuses plainly. Both count.
        assert_eq!(stats.overlapped, 2);
        assert!(!stats.reverted);
        let r0 = &opt.ranks[0];
        let StepKind::SendRecv {
            src,
            dst,
            tag_off,
            rtag_off,
            ..
        } = r0.steps[0].kind
        else {
            panic!("expected fused exchange, got {:?}", r0.steps[0].kind);
        };
        assert_eq!((tag_off, rtag_off), (0, 1), "halves keep their stage tags");
        assert_eq!(src, buf);
        assert_eq!(dst.buf, Buf::Scratch, "receive detoured through scratch");
        assert!(dst.off >= 16, "detour scratch is fresh");
        assert!(r0.scratch_bytes >= dst.off + dst.len);
        // The copy-back lands at the receive's original program point.
        let last = r0.steps.last().unwrap();
        assert!(matches!(last.kind, StepKind::Copy { src, dst: d } if src == dst && d == buf));
    }

    #[test]
    fn coalescing_merges_contiguous_and_respects_gaps() {
        let s1 = loc(Buf::Arg(0), 0, 4);
        let s2 = loc(Buf::Arg(0), 4, 4);
        let gap = loc(Buf::Arg(0), 12, 4); // not contiguous with s2
        let d1 = loc(Buf::Arg(1), 0, 4);
        let d2 = loc(Buf::Arg(1), 4, 4);
        let d3 = loc(Buf::Arg(1), 8, 4);
        let prog = mini(
            2,
            4,
            vec![
                vec![
                    step(
                        StepKind::Send {
                            to: 1,
                            tag_off: 0,
                            src: s1,
                        },
                        0,
                    ),
                    step(
                        StepKind::Send {
                            to: 1,
                            tag_off: 0,
                            src: s2,
                        },
                        0,
                    ),
                    step(
                        StepKind::Send {
                            to: 1,
                            tag_off: 0,
                            src: gap,
                        },
                        0,
                    ),
                ],
                vec![
                    step(
                        StepKind::Recv {
                            from: 0,
                            tag_off: 0,
                            dst: d1,
                        },
                        0,
                    ),
                    step(
                        StepKind::Recv {
                            from: 0,
                            tag_off: 0,
                            dst: d2,
                        },
                        0,
                    ),
                    step(
                        StepKind::Recv {
                            from: 0,
                            tag_off: 0,
                            dst: d3,
                        },
                        0,
                    ),
                ],
            ],
            0,
        );
        let (opt, stats) = optimize(&prog);
        assert_eq!(
            stats.coalesced, 1,
            "first two merge; the gapped third stays"
        );
        assert_eq!(opt.ranks[0].steps.len(), 2);
        assert!(matches!(
            opt.ranks[0].steps[0].kind,
            StepKind::Send { src, .. } if src.len == 8
        ));
        assert!(matches!(
            opt.ranks[1].steps[0].kind,
            StepKind::Recv { dst, .. } if dst.len == 8
        ));
    }

    #[test]
    fn identity_round_trip_copies_die() {
        // Stage a block to scratch, copy it straight back: the
        // copy-back is an identity; the stage store then has no reader.
        let a = loc(Buf::Arg(0), 8, 4);
        let s = loc(Buf::Scratch, 0, 4);
        let prog = mini(
            1,
            4,
            vec![vec![
                step(StepKind::Copy { src: a, dst: s }, 0),
                step(StepKind::Copy { src: s, dst: a }, 0),
            ]],
            16,
        );
        let (opt, stats) = optimize(&prog);
        assert_eq!(stats.dead_copies, 2);
        assert!(opt.ranks[0].steps.is_empty());
    }

    #[test]
    fn empty_elision_is_gated_on_n() {
        let empty = loc(Buf::Scratch, 0, 0);
        let mk = |n: usize| {
            mini(
                2,
                n,
                vec![
                    vec![step(
                        StepKind::Send {
                            to: 1,
                            tag_off: 0,
                            src: empty,
                        },
                        0,
                    )],
                    vec![step(
                        StepKind::Recv {
                            from: 0,
                            tag_off: 0,
                            dst: empty,
                        },
                        0,
                    )],
                ],
                0,
            )
        };
        let (opt, stats) = optimize(&mk(4));
        assert_eq!(stats.elided, 2);
        assert_eq!(opt.comm_steps(), 0);
        let (opt0, stats0) = optimize(&mk(0));
        assert_eq!(stats0.elided, 0, "n = 0 keeps its barrier messages");
        assert_eq!(opt0.comm_steps(), 2);
    }

    #[test]
    fn broken_programs_revert_to_the_original() {
        // An unmatched send can never rendezvous: the re-proof fails
        // and the original program survives untouched.
        let a = loc(Buf::Arg(0), 0, 4);
        let prog = mini(
            2,
            4,
            vec![
                vec![step(
                    StepKind::Send {
                        to: 1,
                        tag_off: 0,
                        src: a,
                    },
                    0,
                )],
                vec![],
            ],
            0,
        );
        let (opt, stats) = optimize(&prog);
        assert!(stats.reverted);
        assert_eq!(stats.total(), 0);
        assert_eq!(opt.ranks, prog.ranks);
    }

    #[test]
    fn mst_allreduce_gets_the_exchange_detour() {
        let st = Strategy::pure_mst(8);
        let prog = lower(PlanOp::AllReduce, Some(&st), 8, 16, 4).unwrap();
        let (opt, stats) = optimize(&prog);
        assert!(!stats.reverted);
        // Every non-root rank's send-up/recv-down pair fuses: 7 pairs.
        assert_eq!(stats.overlapped, 7);
        assert_eq!(opt.comm_steps(), prog.comm_steps() - 7);
        assert!(priced_wire(&opt) < priced_wire(&prog));
    }

    #[test]
    fn small_broadcast_sheds_empty_messages() {
        // Scatter-collect broadcast of 1 element over 9 ranks: 8 of the
        // 9 partition blocks are empty, and every one of their sends
        // and receives disappears.
        let st = Strategy::new(vec![9], intercom_cost::StrategyKind::ScatterCollect);
        let prog = lower(PlanOp::Broadcast { root: 0 }, Some(&st), 9, 1, 8).unwrap();
        let (opt, stats) = optimize(&prog);
        assert!(!stats.reverted);
        assert!(stats.elided > 0);
        assert!(
            opt.comm_steps() < prog.comm_steps(),
            "{} !< {}",
            opt.comm_steps(),
            prog.comm_steps()
        );
    }

    #[test]
    fn optimized_ring_allreduce_is_already_alpha_optimal() {
        // The paper's ring algorithms emit fused exchanges of exactly
        // the occupied blocks: nothing for the optimizer to find.
        let st = Strategy::pure_long(4);
        let prog = lower(PlanOp::AllReduce, Some(&st), 4, 8, 8).unwrap();
        let (opt, stats) = optimize(&prog);
        assert_eq!(stats.total(), 0, "{stats:?}");
        assert_eq!(opt.comm_steps(), prog.comm_steps());
    }

    #[test]
    fn wire_pricing_agrees_with_annotate() {
        let st = Strategy::pure_mst(5);
        let prog = lower(PlanOp::AllReduce, Some(&st), 5, 10, 4).unwrap();
        let direct: usize = prog
            .ranks
            .iter()
            .flat_map(|r| r.steps.iter())
            .map(|s| match s.kind {
                StepKind::Send { src, .. } => src.len,
                StepKind::Recv { dst, .. } => dst.len,
                StepKind::SendRecv { src, dst, .. } => src.len.max(dst.len),
                _ => 0,
            })
            .sum();
        assert_eq!(priced_wire(&prog), direct);
    }
}
