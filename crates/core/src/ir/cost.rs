//! Cost-model annotation of compiled programs.
//!
//! [`stage_predictions`] and the IR speak the same stage coordinates —
//! `(level, sub)` per the recursive template's tag discipline — so a
//! compiled program's steps can be folded stage-by-stage against the
//! model: each [`StageCost`] pairs one predicted stage with the actual
//! step counts and byte volumes the schedule executes in that stage.
//! This is the static (pre-execution) counterpart of `intercom-obs`'s
//! trace-driven residual attribution.

use super::{CollectiveProgram, PlanOp, StepKind};
use intercom_cost::{stage_predictions, CollectiveOp, CostContext, CostExpr, StageKind, Strategy};

/// One predicted stage of a compiled program, annotated with the
/// schedule's actual per-stage work.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCost {
    /// Recursion level (fastest logical dimension first).
    pub level: usize,
    /// Stage slot within the level.
    pub sub: u64,
    /// Which §4 building block the stage runs.
    pub kind: StageKind,
    /// The dimension extent the stage spans.
    pub dim: usize,
    /// Predicted cost in terms of the total vector length.
    pub cost: CostExpr,
    /// Communication steps the compiled schedule issues in this stage,
    /// summed over all ranks.
    pub comm_steps: usize,
    /// Bytes entering the network in this stage (send halves only, so
    /// each transfer counts once), summed over all ranks.
    pub bytes: usize,
    /// Serialized wire-occupancy bytes in this stage, summed over all
    /// ranks: a send counts its source, a receive its destination, and a
    /// full-duplex exchange `max(send, recv)` — both halves overlap on
    /// the wire (§2: "a processor can both send and receive at the same
    /// time"), so summing them would hide exactly the win sendrecv
    /// fusion buys. A fused cross-stage exchange attributes its whole
    /// `max` to the send half's stage.
    pub wire_bytes: usize,
    /// Bytes of local combine work (γ) in this stage, summed over all
    /// ranks.
    pub compute_bytes: usize,
}

/// The cost-model operation a [`PlanOp`] corresponds to, if the model
/// covers it (total exchange and the pipelined broadcast are extensions
/// outside the paper's Table 1 stage formulas).
pub fn cost_op(op: PlanOp) -> Option<CollectiveOp> {
    match op {
        PlanOp::Broadcast { .. } => Some(CollectiveOp::Broadcast),
        PlanOp::Reduce { .. } => Some(CollectiveOp::CombineToOne),
        PlanOp::AllReduce => Some(CollectiveOp::CombineToAll),
        PlanOp::ReduceScatter => Some(CollectiveOp::DistributedCombine),
        PlanOp::Collect => Some(CollectiveOp::Collect),
        PlanOp::Scatter { .. } => Some(CollectiveOp::Scatter),
        PlanOp::Gather { .. } => Some(CollectiveOp::Gather),
        PlanOp::Alltoall | PlanOp::PipelinedBcast { .. } => None,
    }
}

/// Annotates every predicted stage of `prog` with the compiled
/// schedule's actual step counts and byte volumes. Returns `None` for
/// ops the stage model does not cover ([`cost_op`]).
pub fn annotate(prog: &CollectiveProgram, ctx: CostContext) -> Option<Vec<StageCost>> {
    let cop = cost_op(prog.op)?;
    // Scatter/gather are strategy-free; the model prices them on the
    // flat group.
    let flat;
    let strategy = match &prog.strategy {
        Some(s) => s,
        None => {
            flat = Strategy::pure_mst(prog.p);
            &flat
        }
    };
    let mut stages: Vec<StageCost> = stage_predictions(cop, strategy, ctx)
        .into_iter()
        .map(|p| StageCost {
            level: p.level,
            sub: p.sub,
            kind: p.kind,
            dim: p.dim,
            cost: p.cost,
            comm_steps: 0,
            bytes: 0,
            wire_bytes: 0,
            compute_bytes: 0,
        })
        .collect();
    for rank in &prog.ranks {
        for step in &rank.steps {
            let Some(sc) = stages
                .iter_mut()
                .find(|s| s.level as u64 == step.stage.level && s.sub == step.stage.sub)
            else {
                continue;
            };
            match step.kind {
                StepKind::Send { src, .. } => {
                    sc.comm_steps += 1;
                    sc.bytes += src.len;
                    sc.wire_bytes += src.len;
                }
                StepKind::SendRecv { src, dst, .. } => {
                    sc.comm_steps += 1;
                    sc.bytes += src.len;
                    sc.wire_bytes += src.len.max(dst.len);
                }
                StepKind::Recv { dst, .. } => {
                    sc.comm_steps += 1;
                    sc.wire_bytes += dst.len;
                }
                StepKind::Compute { bytes } => sc.compute_bytes += bytes,
                StepKind::Copy { .. } | StepKind::Reduce { .. } | StepKind::CallOverhead => {}
            }
        }
    }
    Some(stages)
}

#[cfg(test)]
mod tests {
    use super::super::lower;
    use super::*;
    use intercom_cost::StrategyKind;

    #[test]
    fn ring_allreduce_stages_carry_actual_work() {
        let st = Strategy::pure_long(4);
        let prog = lower(PlanOp::AllReduce, Some(&st), 4, 8, 8).unwrap();
        let stages = annotate(&prog, CostContext::LINEAR).unwrap();
        assert_eq!(stages.len(), 2, "RS then C in one level");
        // Ring reduce-scatter: p−1 exchanges per rank.
        assert_eq!(stages[0].comm_steps, 4 * 3);
        assert_eq!(stages[1].comm_steps, 4 * 3);
        // Every exchanged block is 2 elements × 8 bytes.
        assert_eq!(stages[0].bytes, 4 * 3 * 16);
        // γ work happens only in the combining stage.
        assert_eq!(stages[0].compute_bytes, 4 * 3 * 16);
        assert_eq!(stages[1].compute_bytes, 0);
    }

    #[test]
    fn full_duplex_exchanges_price_as_max_not_sum() {
        // Uneven partition of 3 over 2 ranks: the ring reduce-scatter
        // exchange ships 2 bytes one way and 1 byte the other. Each
        // rank's full-duplex step occupies the wire for max(out, in).
        let st = Strategy::pure_long(2);
        let prog = lower(PlanOp::AllReduce, Some(&st), 2, 3, 1).unwrap();
        let stages = annotate(&prog, CostContext::LINEAR).unwrap();
        assert_eq!(stages[0].bytes, 2 + 1, "send halves count once");
        assert_eq!(
            stages[0].wire_bytes,
            2 + 2,
            "max(2,1) + max(1,2), not (2+1) + (1+2)"
        );
    }

    #[test]
    fn every_comm_step_lands_in_a_predicted_stage() {
        for (op, st) in [
            (
                PlanOp::Broadcast { root: 1 },
                Strategy::new(vec![2, 3], StrategyKind::Mst),
            ),
            (
                PlanOp::ReduceScatter,
                Strategy::new(vec![3, 2], StrategyKind::ScatterCollect),
            ),
            (PlanOp::Collect, Strategy::pure_mst(6)),
        ] {
            let prog = lower(op, Some(&st), 6, 12, 4).unwrap();
            let stages = annotate(&prog, CostContext::LINEAR).unwrap();
            let staged: usize = stages.iter().map(|s| s.comm_steps).sum();
            assert_eq!(staged, prog.comm_steps(), "{op:?}");
        }
    }

    #[test]
    fn extensions_are_not_priced() {
        let prog = lower(PlanOp::Alltoall, None, 4, 4, 1).unwrap();
        assert!(annotate(&prog, CostContext::LINEAR).is_none());
        assert!(cost_op(PlanOp::PipelinedBcast {
            root: 0,
            segments: 4
        })
        .is_none());
    }
}
