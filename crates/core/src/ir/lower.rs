//! Lowering: from a symbolic per-rank replay to a [`CollectiveProgram`].
//!
//! Each rank's algorithm is replayed once against a
//! [`RecordingComm`](crate::trace::RecordingComm) with the argument
//! buffers registered as named regions, exactly as the verifier's
//! extraction does — the algorithms branch only on
//! `(rank, size, n, strategy, root)`, so the replayed operation stream
//! *is* the schedule. The recorded raw address spans are then resolved
//! into [`Loc`]s: spans inside a registered argument become
//! [`Buf::Arg`] offsets, and the remaining temporary allocations are
//! clustered by byte overlap (data can only flow between spans that
//! share bytes) and packed into a per-rank scratch arena.

use super::{
    fresh_plan_id, Buf, CollectiveProgram, Loc, PlanOp, RankProgram, StageId, Step, StepKind,
};
use crate::algorithms::{self, LEVEL_TAG_STRIDE};
use crate::comm::{GroupComm, Tag};
use crate::error::Result;
use crate::hier;
use crate::op::{Elem, ReduceOp};
use crate::primitives::pipelined_ring_bcast;
use crate::trace::{MemSpan, OpRecord, RecordingComm};
use intercom_cost::{HierStrategy, Strategy};

/// Scratch-arena alignment: every temporary cluster starts on a 16-byte
/// boundary, a multiple of every supported element size.
pub(super) const ARENA_ALIGN: usize = 16;

/// Lowers one collective call into a compiled program for all `p` ranks.
///
/// `n` is the size parameter in *elements* (unit per [`PlanOp::args`])
/// and `elem_size` the element width in bytes. The program is valid for
/// any scalar type of that width: lowering never branches on values,
/// only on element geometry.
///
/// # Panics
///
/// Panics if `strategy` is `None` for an op where
/// [`PlanOp::takes_strategy`] is true, or if `elem_size` is not one of
/// the supported scalar widths (1, 2, 4, 8).
pub fn lower(
    op: PlanOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
    elem_size: usize,
) -> Result<CollectiveProgram> {
    let ranks = (0..p)
        .map(|rank| match elem_size {
            1 => lower_rank::<u8>(op, strategy, p, n, rank),
            2 => lower_rank::<u16>(op, strategy, p, n, rank),
            4 => lower_rank::<u32>(op, strategy, p, n, rank),
            8 => lower_rank::<u64>(op, strategy, p, n, rank),
            other => panic!("unsupported element size {other} (expected 1, 2, 4 or 8)"),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CollectiveProgram {
        plan_id: fresh_plan_id(),
        op,
        p,
        n,
        elem_size,
        strategy: strategy.cloned(),
        hier: None,
        ranks,
    })
}

/// Lowers one *hierarchical* collective call into a compiled program
/// for all `hs.shape.ranks()` ranks. The per-rank replay runs the
/// leader-based compositions of [`crate::hier`], so the resulting
/// program's steps land in per-stage [`StageId`] bands (stage `k` at
/// levels `k · HIER_STAGE_STRIDE / LEVEL_TAG_STRIDE` and up) — the
/// same IR, executors and verifier checks apply unchanged.
///
/// Supported ops are the five with a hierarchical template: broadcast,
/// reduce, allreduce, reduce-scatter and collect. Others err with
/// [`PlanMismatch`](crate::error::CommError::PlanMismatch).
///
/// # Panics
///
/// Panics if `elem_size` is not one of the supported scalar widths
/// (1, 2, 4, 8).
pub fn lower_hier(
    op: PlanOp,
    hs: &HierStrategy,
    n: usize,
    elem_size: usize,
) -> Result<CollectiveProgram> {
    let p = hs.shape.ranks();
    let ranks = (0..p)
        .map(|rank| match elem_size {
            1 => lower_hier_rank::<u8>(op, hs, p, n, rank),
            2 => lower_hier_rank::<u16>(op, hs, p, n, rank),
            4 => lower_hier_rank::<u32>(op, hs, p, n, rank),
            8 => lower_hier_rank::<u64>(op, hs, p, n, rank),
            other => panic!("unsupported element size {other} (expected 1, 2, 4 or 8)"),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CollectiveProgram {
        plan_id: fresh_plan_id(),
        op,
        p,
        n,
        elem_size,
        strategy: None,
        hier: Some(hs.clone()),
        ranks,
    })
}

/// Replays rank `rank`'s hierarchical composition at base tag 0 with
/// registered argument buffers, then resolves the recorded spans.
fn lower_hier_rank<T: Elem + Default>(
    op: PlanOp,
    hs: &HierStrategy,
    p: usize,
    n: usize,
    rank: usize,
) -> Result<RankProgram> {
    let rec = RecordingComm::new(rank, p);
    {
        let gc = GroupComm::world(&rec);
        match op {
            PlanOp::Broadcast { root } => {
                let mut buf = vec![T::default(); n];
                rec.register("buf", &buf);
                hier::hier_broadcast(&gc, hs, root, &mut buf, 0)?;
            }
            PlanOp::Reduce { root } => {
                let mut buf = vec![T::default(); n];
                rec.register("buf", &buf);
                hier::hier_reduce(&gc, hs, root, &mut buf, ReduceOp::Sum, 0)?;
            }
            PlanOp::AllReduce => {
                let mut buf = vec![T::default(); n];
                rec.register("buf", &buf);
                hier::hier_allreduce(&gc, hs, &mut buf, ReduceOp::Sum, 0)?;
            }
            PlanOp::ReduceScatter => {
                let contrib = vec![T::default(); p * n];
                let mut mine = vec![T::default(); n];
                rec.register("contrib", &contrib);
                rec.register("mine", &mine);
                hier::hier_reduce_scatter(&gc, hs, &contrib, &mut mine, ReduceOp::Sum, 0)?;
            }
            PlanOp::Collect => {
                let mine = vec![T::default(); n];
                let mut all = vec![T::default(); p * n];
                rec.register("mine", &mine);
                rec.register("all", &all);
                hier::hier_collect(&gc, hs, &mine, &mut all, 0)?;
            }
            _ => {
                return Err(crate::error::CommError::PlanMismatch {
                    what: "op has no hierarchical lowering",
                })
            }
        }
    }
    resolve_recorded::<T>(rec, op, p, n)
}

/// Replays rank `rank`'s algorithm at base tag 0 with registered
/// argument buffers, then resolves the recorded spans.
fn lower_rank<T: Elem + Default>(
    op: PlanOp,
    strategy: Option<&Strategy>,
    p: usize,
    n: usize,
    rank: usize,
) -> Result<RankProgram> {
    let rec = RecordingComm::new(rank, p);
    {
        let gc = GroupComm::world(&rec);
        let st = || strategy.unwrap_or_else(|| panic!("{} requires a strategy", op.name()));
        match op {
            PlanOp::Broadcast { root } => {
                let mut buf = vec![T::default(); n];
                rec.register("buf", &buf);
                algorithms::broadcast(&gc, st(), root, &mut buf, 0)?;
            }
            PlanOp::Reduce { root } => {
                let mut buf = vec![T::default(); n];
                rec.register("buf", &buf);
                algorithms::reduce(&gc, st(), root, &mut buf, ReduceOp::Sum, 0)?;
            }
            PlanOp::AllReduce => {
                let mut buf = vec![T::default(); n];
                rec.register("buf", &buf);
                algorithms::allreduce(&gc, st(), &mut buf, ReduceOp::Sum, 0)?;
            }
            PlanOp::ReduceScatter => {
                let contrib = vec![T::default(); p * n];
                let mut mine = vec![T::default(); n];
                rec.register("contrib", &contrib);
                rec.register("mine", &mine);
                algorithms::reduce_scatter(&gc, st(), &contrib, &mut mine, ReduceOp::Sum, 0)?;
            }
            PlanOp::Collect => {
                let mine = vec![T::default(); n];
                let mut all = vec![T::default(); p * n];
                rec.register("mine", &mine);
                rec.register("all", &all);
                algorithms::collect(&gc, st(), &mine, &mut all, 0)?;
            }
            PlanOp::Scatter { root } => {
                let full = vec![T::default(); p * n];
                let mut mine = vec![T::default(); n];
                if rank == root {
                    rec.register("full", &full);
                }
                rec.register("mine", &mine);
                let full = (rank == root).then_some(&full[..]);
                algorithms::scatter(&gc, root, full, &mut mine, 0)?;
            }
            PlanOp::Gather { root } => {
                let mine = vec![T::default(); n];
                let mut full = vec![T::default(); p * n];
                rec.register("mine", &mine);
                if rank == root {
                    rec.register("full", &full);
                }
                let full = (rank == root).then_some(&mut full[..]);
                algorithms::gather(&gc, root, &mine, full, 0)?;
            }
            PlanOp::Alltoall => {
                let send = vec![T::default(); p * n];
                let mut recv = vec![T::default(); p * n];
                rec.register("send", &send);
                rec.register("recv", &recv);
                algorithms::alltoall(&gc, &send, &mut recv, 0)?;
            }
            PlanOp::PipelinedBcast { root, segments } => {
                let mut buf = vec![T::default(); n];
                rec.register("buf", &buf);
                pipelined_ring_bcast(&gc, root, &mut buf, segments, 0)?;
            }
        }
    }
    resolve_recorded::<T>(rec, op, p, n)
}

/// Maps a finished recording's registered regions back to argument
/// slots by name (a non-root rank registers fewer regions than the op
/// has slots) and resolves the recorded spans into a [`RankProgram`].
fn resolve_recorded<T: Elem>(
    rec: RecordingComm,
    op: PlanOp,
    p: usize,
    n: usize,
) -> Result<RankProgram> {
    let specs = op.args(p, n);
    let args: Vec<(usize, usize, usize)> = rec
        .regions()
        .into_iter()
        .map(|rg| {
            let slot = specs
                .iter()
                .position(|s| s.name == rg.name)
                .expect("registered region matches an argument slot");
            (slot, rg.addr, rg.len)
        })
        .collect();
    let ops = rec.into_ops();
    Ok(resolve_rank(&ops, &args, std::mem::size_of::<T>()))
}

/// Resolves one rank's recorded spans into a [`RankProgram`].
fn resolve_rank(ops: &[OpRecord], args: &[(usize, usize, usize)], elem: usize) -> RankProgram {
    let arena = Arena::build(ops, args);
    let resolve = |span: MemSpan| arena.resolve(span, args, elem);
    let mut steps = Vec::with_capacity(ops.len());
    let mut stage = StageId::default();
    for op in ops {
        let kind = match *op {
            OpRecord::Send { to, tag, src } => {
                stage = stage_of(tag);
                StepKind::Send {
                    to,
                    tag_off: tag,
                    src: resolve(src),
                }
            }
            OpRecord::Recv { from, tag, dst } => {
                stage = stage_of(tag);
                StepKind::Recv {
                    from,
                    tag_off: tag,
                    dst: resolve(dst),
                }
            }
            OpRecord::SendRecv {
                to,
                src,
                from,
                dst,
                tag,
                rtag,
            } => {
                stage = stage_of(tag);
                StepKind::SendRecv {
                    to,
                    src: resolve(src),
                    from,
                    dst: resolve(dst),
                    tag_off: tag,
                    rtag_off: rtag,
                }
            }
            OpRecord::Copy { src, dst } => StepKind::Copy {
                src: resolve(src),
                dst: resolve(dst),
            },
            OpRecord::Reduce { acc, other } => StepKind::Reduce {
                acc: resolve(acc),
                other: resolve(other),
            },
            OpRecord::Compute { bytes } => StepKind::Compute { bytes },
            OpRecord::CallOverhead => StepKind::CallOverhead,
        };
        steps.push(Step { kind, stage });
    }
    RankProgram {
        steps,
        scratch_bytes: arena.total_bytes,
    }
}

pub(super) fn stage_of(tag: Tag) -> StageId {
    StageId {
        level: tag / LEVEL_TAG_STRIDE,
        sub: tag % LEVEL_TAG_STRIDE,
    }
}

/// The scratch arena layout of one rank: recorded temporary spans,
/// clustered by byte overlap and packed with aligned bases.
struct Arena {
    /// `(start_addr, end_addr, arena_offset)` per cluster, sorted.
    clusters: Vec<(usize, usize, usize)>,
    total_bytes: usize,
}

impl Arena {
    fn build(ops: &[OpRecord], args: &[(usize, usize, usize)]) -> Arena {
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut note = |s: &MemSpan| {
            if s.len > 0 && in_arg(s, args).is_none() {
                spans.push((s.addr, s.addr + s.len));
            }
        };
        for op in ops {
            match op {
                OpRecord::Send { src, .. } => note(src),
                OpRecord::Recv { dst, .. } => note(dst),
                OpRecord::SendRecv { src, dst, .. } => {
                    note(src);
                    note(dst);
                }
                OpRecord::Copy { src, dst } => {
                    note(src);
                    note(dst);
                }
                OpRecord::Reduce { acc, other } => {
                    note(acc);
                    note(other);
                }
                OpRecord::Compute { .. } | OpRecord::CallOverhead => {}
            }
        }
        spans.sort_unstable();
        // Merge strictly overlapping intervals: data only flows between
        // spans sharing bytes, so non-overlapping temporaries are
        // independent and may pack into separate arena regions.
        let mut clusters: Vec<(usize, usize, usize)> = Vec::new();
        let mut total = 0usize;
        for (start, end) in spans {
            match clusters.last_mut() {
                Some((_, ce, _)) if start < *ce => *ce = (*ce).max(end),
                _ => clusters.push((start, end, 0)),
            }
        }
        for c in &mut clusters {
            total = total.next_multiple_of(ARENA_ALIGN);
            c.2 = total;
            total += c.1 - c.0;
        }
        Arena {
            clusters,
            total_bytes: total,
        }
    }

    fn resolve(&self, span: MemSpan, args: &[(usize, usize, usize)], elem: usize) -> Loc {
        if span.len == 0 {
            // Canonical empty location: zero-length ring blocks from
            // uneven partitions carry no data.
            return Loc {
                buf: Buf::Scratch,
                off: 0,
                len: 0,
            };
        }
        let loc = if let Some((slot, base)) = in_arg(&span, args) {
            Loc {
                buf: Buf::Arg(slot),
                off: span.addr - base,
                len: span.len,
            }
        } else {
            let (cs, _, off) = *self
                .clusters
                .iter()
                .find(|(cs, ce, _)| span.addr >= *cs && span.addr + span.len <= *ce)
                .expect("recorded span lies in a scratch cluster");
            Loc {
                buf: Buf::Scratch,
                off: off + (span.addr - cs),
                len: span.len,
            }
        };
        debug_assert!(
            loc.off % elem == 0 && loc.len % elem == 0,
            "span not element-aligned"
        );
        loc
    }
}

/// `(slot, region base address)` if `span` lies wholly within a
/// registered argument region.
fn in_arg(span: &MemSpan, args: &[(usize, usize, usize)]) -> Option<(usize, usize)> {
    args.iter()
        .find(|(_, addr, len)| span.addr >= *addr && span.addr + span.len <= addr + len)
        .map(|(slot, addr, _)| (*slot, *addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mst_broadcast_lowers_to_arg_only_steps() {
        let st = Strategy::pure_mst(8);
        let prog = lower(PlanOp::Broadcast { root: 0 }, Some(&st), 8, 64, 1).unwrap();
        assert_eq!(prog.p, 8);
        assert_eq!(prog.ranks.len(), 8);
        // A pure-MST broadcast needs no temporaries anywhere.
        for rp in &prog.ranks {
            assert_eq!(rp.scratch_bytes, 0);
            for s in &rp.steps {
                match s.kind {
                    StepKind::Send { src, .. } => assert_eq!(src.buf, Buf::Arg(0)),
                    StepKind::Recv { dst, .. } => assert_eq!(dst.buf, Buf::Arg(0)),
                    StepKind::CallOverhead => {}
                    ref other => panic!("unexpected step {other:?}"),
                }
            }
        }
        // Root sends ⌈log₂ 8⌉ = 3 times.
        let sends = prog.ranks[0]
            .steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Send { .. }))
            .count();
        assert_eq!(sends, 3);
    }

    #[test]
    fn reduce_lowering_allocates_scratch_and_is_op_agnostic() {
        let st = Strategy::pure_mst(4);
        let prog = lower(PlanOp::Reduce { root: 0 }, Some(&st), 4, 16, 8).unwrap();
        // The root folds received contributions out of a scratch buffer.
        let root = &prog.ranks[0];
        assert!(root.scratch_bytes >= 16 * 8);
        assert!(root
            .steps
            .iter()
            .any(|s| matches!(s.kind, StepKind::Reduce { .. })));
        // No ReduceOp appears anywhere in the IR: the ⊕ binds at
        // execution time.
    }

    #[test]
    fn stage_ids_follow_tag_discipline() {
        let st = Strategy::new(vec![3, 3], intercom_cost::StrategyKind::ScatterCollect);
        let prog = lower(PlanOp::AllReduce, Some(&st), 9, 18, 4).unwrap();
        let mut seen_level_1 = false;
        for rp in &prog.ranks {
            for s in &rp.steps {
                if let StepKind::SendRecv { tag_off, .. } = s.kind {
                    assert_eq!(s.stage.level, tag_off / LEVEL_TAG_STRIDE);
                    seen_level_1 |= s.stage.level == 1;
                }
            }
        }
        assert!(seen_level_1, "2-D hybrid must recurse one level down");
    }

    #[test]
    fn hier_lowering_bands_stages_and_keeps_arg_discipline() {
        use intercom_cost::{select_hier, ClusterShape, CollectiveOp, HierMachine};
        let shape = ClusterShape::linear(3, 4);
        let hs = select_hier(
            CollectiveOp::CombineToAll,
            shape,
            64 * 8,
            &HierMachine::paragon_cluster(),
        )
        .unwrap();
        let prog = lower_hier(PlanOp::AllReduce, &hs, 64, 8).unwrap();
        assert_eq!(prog.p, 12);
        assert_eq!(prog.hier.as_ref(), Some(&hs));
        assert!(prog.strategy.is_none());
        // Stage k's steps sit in StageId level band [k·128, (k+1)·128):
        // hier stage tags stride 1024 and stage levels stride by 8.
        let band = crate::hier::HIER_STAGE_STRIDE / LEVEL_TAG_STRIDE;
        let mut bands = std::collections::BTreeSet::new();
        for rp in &prog.ranks {
            for s in &rp.steps {
                if let StepKind::Send { tag_off, .. }
                | StepKind::Recv { tag_off, .. }
                | StepKind::SendRecv { tag_off, .. } = s.kind
                {
                    assert_eq!(s.stage.level, tag_off / LEVEL_TAG_STRIDE);
                    bands.insert(s.stage.level / band);
                }
            }
        }
        assert_eq!(
            bands.into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2],
            "reduce, allreduce and bcast stages all present"
        );
    }

    #[test]
    fn hier_lowering_rejects_non_hierarchical_ops() {
        use intercom_cost::{select_hier, ClusterShape, CollectiveOp, HierMachine};
        let shape = ClusterShape::linear(2, 2);
        let hs = select_hier(
            CollectiveOp::Broadcast,
            shape,
            64,
            &HierMachine::paragon_cluster(),
        )
        .unwrap();
        assert!(lower_hier(PlanOp::Alltoall, &hs, 8, 4).is_err());
        assert!(lower_hier(PlanOp::Scatter { root: 0 }, &hs, 8, 4).is_err());
    }

    #[test]
    fn empty_vector_programs_still_schedule_messages() {
        let st = Strategy::pure_mst(3);
        let prog = lower(PlanOp::AllReduce, Some(&st), 3, 0, 8).unwrap();
        assert!(prog.comm_steps() > 0, "barrier-style allreduce still syncs");
        for rp in &prog.ranks {
            assert_eq!(rp.scratch_bytes, 0);
        }
    }
}
