//! Combine operations ⊕ (paper §3): associative and commutative
//! element-wise reductions such as summation or element-wise product.

use crate::cast::Scalar;

/// The reduction operator applied element-wise by the combining
/// collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum (the paper's "global sum" / `gdsum`).
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise maximum (`gdhigh`). For floats, NaN inputs propagate
    /// per `f64::max` semantics (NaN is ignored unless both are NaN).
    Max,
    /// Element-wise minimum (`gdlow`).
    Min,
}

/// An element type that supports the [`ReduceOp`] combine operations.
pub trait Elem: Scalar {
    /// Applies `op` to a pair of elements.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_elem_int {
    ($($t:ty),*) => {$(
        impl Elem for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }
        }
    )*};
}

macro_rules! impl_elem_float {
    ($($t:ty),*) => {$(
        impl Elem for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }
        }
    )*};
}

impl_elem_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize);
impl_elem_float!(f32, f64);

impl ReduceOp {
    /// Combines `other` into `acc` element-wise: `acc[i] ⊕= other[i]`.
    /// Panics if lengths differ (an internal invariant, not user input).
    pub fn fold_into<T: Elem>(&self, acc: &mut [T], other: &[T]) {
        assert_eq!(acc.len(), other.len(), "combine length mismatch");
        for (a, &b) in acc.iter_mut().zip(other) {
            *a = T::combine(*self, *a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_fold() {
        let mut a = [1i32, 2, 3];
        ReduceOp::Sum.fold_into(&mut a, &[10, 20, 30]);
        assert_eq!(a, [11, 22, 33]);
    }

    #[test]
    fn prod_fold() {
        let mut a = [2.0f64, 3.0];
        ReduceOp::Prod.fold_into(&mut a, &[4.0, 5.0]);
        assert_eq!(a, [8.0, 15.0]);
    }

    #[test]
    fn max_min() {
        assert_eq!(i64::combine(ReduceOp::Max, -3, 7), 7);
        assert_eq!(i64::combine(ReduceOp::Min, -3, 7), -3);
        assert_eq!(f32::combine(ReduceOp::Max, 1.5, 2.5), 2.5);
    }

    #[test]
    fn wrapping_integer_sum() {
        assert_eq!(u8::combine(ReduceOp::Sum, 200, 100), 44);
    }

    #[test]
    fn empty_fold_is_noop() {
        let mut a: [f64; 0] = [];
        ReduceOp::Sum.fold_into(&mut a, &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_fold_panics() {
        let mut a = [1u32];
        ReduceOp::Sum.fold_into(&mut a, &[1, 2]);
    }

    #[test]
    fn ops_are_commutative_and_associative_for_ints() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min] {
            for a in [-5i64, 0, 3] {
                for b in [-2i64, 7] {
                    for c in [1i64, -9] {
                        assert_eq!(i64::combine(op, a, b), i64::combine(op, b, a));
                        assert_eq!(
                            i64::combine(op, i64::combine(op, a, b), c),
                            i64::combine(op, a, i64::combine(op, b, c))
                        );
                    }
                }
            }
        }
    }
}
