//! Pipelined (segmented) ring broadcast — the §8 "other algorithms"
//! family.
//!
//! The paper notes that theoretically superior long-vector algorithms
//! exist — e.g. pipelined broadcasts whose β coefficient approaches `1·nβ`
//! instead of the scatter/collect broadcast's `2·nβ` — but found them
//! "generally difficult to implement and … extremely succeptible to
//! timing irregulaties", and left them out of the production library.
//! This module implements the simplest member of the family so the
//! repository can reproduce that trade-off quantitatively (see the
//! `pipelined` bench binary): the message is cut into `m` segments which
//! flow down the ring, every interior node forwarding segment `k−1`
//! while receiving segment `k`.
//!
//! Cost on a conflict-free ring: `(p − 2 + m)(α + (n/m)β)`; minimized at
//! `m* = √((p−2)·nβ/α)`, approaching `nβ` for long vectors.

use crate::block::partition;
use crate::cast::Scalar;
use crate::comm::{GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::primitives::disjoint_pair;
use crate::Comm;
use intercom_cost::MachineParams;

/// Pipelined ring broadcast of `buf` from logical rank `root`, using `m`
/// segments (`m ≥ 1`; clamped to the buffer length where needed).
pub fn pipelined_ring_bcast<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    buf: &mut [T],
    m: usize,
    tag: Tag,
) -> Result<()> {
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    let p = gc.len();
    if p == 1 {
        return Ok(());
    }
    gc.call_overhead();
    let m = m.max(1);
    let segs = partition(buf.len(), m);
    let me = gc.me();
    // Position along the ring, root first.
    let pos = (me + p - root) % p;
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    // Segments share one tag: matching is FIFO per (source, tag), so
    // in-order forwarding preserves segment identity.
    if pos == 0 {
        // Root: pump all segments into the ring.
        for seg in &segs {
            gc.send(right, tag, &buf[seg.clone()])?;
        }
    } else if pos == p - 1 {
        // Tail: drain only.
        for seg in &segs {
            gc.recv(left, tag, &mut buf[seg.clone()])?;
        }
    } else {
        // Interior: receive segment 0, then forward k−1 while receiving
        // k, then flush the last segment.
        gc.recv(left, tag, &mut buf[segs[0].clone()])?;
        for k in 1..m {
            let (send, recv) = disjoint_pair(buf, segs[k - 1].clone(), segs[k].clone());
            gc.sendrecv(right, send, left, recv, tag)?;
        }
        gc.send(right, tag, &buf[segs[m - 1].clone()])?;
    }
    Ok(())
}

/// The cost-optimal segment count `m* = √((p−2)·nβ/α)` for a pipelined
/// broadcast of `n_bytes` over `p` ring nodes, clamped to `[1, n_bytes]`.
pub fn optimal_segments(p: usize, n_bytes: usize, machine: &MachineParams) -> usize {
    if p < 3 || n_bytes == 0 {
        return 1;
    }
    let m = ((p as f64 - 2.0) * n_bytes as f64 * machine.beta / machine.alpha).sqrt();
    (m.round() as usize).clamp(1, n_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn single_node_noop() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [1u8, 2, 3];
        pipelined_ring_bcast(&gc, 0, &mut buf, 4, 0).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn invalid_root_rejected() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [0u8; 2];
        assert!(matches!(
            pipelined_ring_bcast(&gc, 1, &mut buf, 2, 0),
            Err(CommError::InvalidRoot { .. })
        ));
    }

    #[test]
    fn optimal_segments_scaling() {
        let m = MachineParams::PARAGON;
        // Tiny messages: one segment.
        assert_eq!(optimal_segments(32, 8, &m), 1);
        // Long messages: many segments, growing with n and p.
        let m1 = optimal_segments(32, 1 << 20, &m);
        let m2 = optimal_segments(128, 1 << 20, &m);
        assert!(m1 > 8, "{m1}");
        assert!(m2 > m1);
        // Degenerate cases.
        assert_eq!(optimal_segments(2, 1 << 20, &m), 1);
        assert_eq!(optimal_segments(32, 0, &m), 1);
    }

    #[test]
    fn segment_count_clamped_to_length() {
        let m = MachineParams {
            alpha: 1e-12,
            ..MachineParams::PARAGON
        };
        assert!(optimal_segments(32, 16, &m) <= 16);
    }
}
