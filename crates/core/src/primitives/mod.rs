//! The paper's building blocks (§4).
//!
//! All primitives operate within a [`GroupComm`](crate::comm::GroupComm)
//! in logical ranks, are simple to implement, require no power-of-two
//! sizes, and incur no network conflicts on a linear array (§4's three
//! defining properties):
//!
//! * short-vector primitives ([`mst`]): minimum-spanning-tree broadcast,
//!   combine-to-one, scatter and gather — latency-optimal recursive
//!   halving;
//! * long-vector primitives ([`ring`]): bucket collect and bucket
//!   distributed combine — bandwidth-optimal unidirectional rings (plus
//!   the same scatter/gather, which serve both regimes).
//!
//! Vector layout convention: every participant passes the *full-extent*
//! buffer for the vector being operated on plus a block table
//! (`&[Range<usize>]`, one consecutive item range per logical rank, as
//! produced by [`crate::block::partition`]); primitives move and combine
//! the block contents in place. Public MPI-style wrappers with separate
//! send/receive buffers live in [`crate::algorithms`].

pub mod mst;
pub mod pipeline;
pub mod ring;

pub use mst::{mst_bcast, mst_gather, mst_reduce, mst_reduce_scratch, mst_scatter};
pub use pipeline::{optimal_segments, pipelined_ring_bcast};
pub use ring::{ring_collect, ring_reduce_scatter, ring_reduce_scatter_scratch};

use std::ops::Range;

/// Debug-validates that `blocks` is an in-order partition of
/// `0..total_len` with one block per group member.
pub(crate) fn debug_check_blocks(blocks: &[Range<usize>], members: usize, total_len: usize) {
    debug_assert_eq!(blocks.len(), members, "one block per member required");
    debug_assert_eq!(blocks.first().map_or(0, |b| b.start), 0);
    debug_assert_eq!(blocks.last().map_or(0, |b| b.end), total_len);
    debug_assert!(
        blocks.windows(2).all(|w| w[0].end == w[1].start),
        "blocks must be consecutive"
    );
}

/// Splits `buf` into a shared view of `send` and a mutable view of
/// `recv`, which must be disjoint ranges (guaranteed by the block tables
/// used by the ring primitives).
pub(crate) fn disjoint_pair<T>(
    buf: &mut [T],
    send: Range<usize>,
    recv: Range<usize>,
) -> (&[T], &mut [T]) {
    // Empty ranges carry no data and can sit at any position (zero-length
    // blocks from uneven counts), so handle them before asserting
    // disjointness of the ordering split.
    if recv.is_empty() {
        return (&buf[send], &mut []);
    }
    if send.is_empty() {
        return (&[], &mut buf[recv]);
    }
    debug_assert!(
        send.end <= recv.start || recv.end <= send.start,
        "send {send:?} and recv {recv:?} ranges overlap"
    );
    if send.start < recv.start {
        let (a, b) = buf.split_at_mut(recv.start);
        (&a[send.clone()], &mut b[..recv.len()])
    } else {
        let (a, b) = buf.split_at_mut(send.start);
        let recv_slice = &mut a[recv.start..recv.end];
        (&b[..send.len()], recv_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_pair_send_before_recv() {
        let mut v = [1, 2, 3, 4, 5, 6];
        let (s, r) = disjoint_pair(&mut v, 0..2, 4..6);
        assert_eq!(s, &[1, 2]);
        assert_eq!(r, &mut [5, 6]);
    }

    #[test]
    fn disjoint_pair_recv_before_send() {
        let mut v = [1, 2, 3, 4, 5, 6];
        let (s, r) = disjoint_pair(&mut v, 3..6, 0..2);
        assert_eq!(s, &[4, 5, 6]);
        assert_eq!(r, &mut [1, 2]);
    }

    #[test]
    fn disjoint_pair_empty_ranges() {
        let mut v = [1, 2, 3];
        let (s, r) = disjoint_pair(&mut v, 1..1, 2..3);
        assert!(s.is_empty());
        assert_eq!(r, &mut [3]);
    }

    #[test]
    fn disjoint_pair_empty_recv_at_send_boundary() {
        // Regression: a zero-length recv block whose start equals the
        // send range's start (uneven counts place empty blocks at shared
        // boundaries) must not index out of bounds.
        let mut v = [1, 2, 3, 4, 5, 6, 7];
        let (s, r) = disjoint_pair(&mut v, 4..7, 4..4);
        assert_eq!(s, &[5, 6, 7]);
        assert!(r.is_empty());
        let (s, r) = disjoint_pair(&mut v, 0..7, 3..3);
        assert_eq!(s.len(), 7);
        assert!(r.is_empty());
    }

    #[test]
    fn disjoint_pair_empty_send_inside_recv_span() {
        let mut v = [1, 2, 3, 4];
        let (s, r) = disjoint_pair(&mut v, 2..2, 0..4);
        assert!(s.is_empty());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn debug_check_accepts_partition() {
        debug_check_blocks(&crate::block::partition(10, 3), 3, 10);
    }
}
