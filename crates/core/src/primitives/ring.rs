//! Long-vector primitives: bucket algorithms on unidirectional rings
//! (paper §4.2).
//!
//! "The bucket collect is a special implementation of the collect, which
//! views the linear array as a ring. Buckets are passed between the nodes
//! that move the subvectors to be collected, leaving the result on all
//! nodes." Thanks to worm-hole routing a linear array *is* a
//! unidirectional ring without conflicts: every node sends to its right
//! logical neighbour while receiving from its left, so each directed
//! physical link carries exactly one message per step.
//!
//! Costs (balanced blocks): bucket collect `(p−1)α + ((p−1)/p)nβ`;
//! bucket distributed combine `(p−1)α + ((p−1)/p)nβ + ((p−1)/p)nγ`.

use crate::cast::Scalar;
use crate::comm::{GroupComm, Tag};
use crate::error::Result;
use crate::op::{Elem, ReduceOp};
use crate::primitives::{debug_check_blocks, disjoint_pair};
use crate::Comm;
use std::ops::Range;

/// Bucket collect (ring allgather): on entry, member `j`'s
/// `buf[blocks[j]]` holds block `j`; on return, every member's `buf`
/// holds all blocks. `p − 1` steps of simultaneous send-right /
/// receive-left.
pub fn ring_collect<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    buf: &mut [T],
    blocks: &[Range<usize>],
    tag: Tag,
) -> Result<()> {
    let p = gc.len();
    debug_check_blocks(blocks, p, buf.len());
    if p == 1 {
        return Ok(());
    }
    gc.call_overhead();
    let me = gc.me();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    for t in 0..p - 1 {
        let sb = (me + p - t) % p; // block sent this step
        let rb = (me + p - t - 1) % p; // block received this step
        let (send, recv) = disjoint_pair(buf, blocks[sb].clone(), blocks[rb].clone());
        gc.sendrecv(right, send, left, recv, tag)?;
    }
    Ok(())
}

/// Bucket distributed combine (ring reduce-scatter): on entry every
/// member's `buf` holds a full contribution vector; on return, member
/// `j`'s `buf[blocks[j]]` holds the element-wise ⊕ over all members'
/// block `j` (other regions hold partial combines). The bucket
/// accumulates as it circulates — the collect "executed in reverse,
/// where the buckets are used to accumulate contributions."
pub fn ring_reduce_scatter<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    buf: &mut [T],
    blocks: &[Range<usize>],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    let mut scratch = Vec::new();
    ring_reduce_scatter_scratch(gc, buf, blocks, op, tag, &mut scratch)
}

/// [`ring_reduce_scatter`] with caller-provided scratch: `scratch` is
/// resized to the largest block (growing its allocation at most once
/// across a whole collective's steps) so composed algorithms reuse one
/// bucket buffer for every ring stage instead of allocating per level.
pub fn ring_reduce_scatter_scratch<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    buf: &mut [T],
    blocks: &[Range<usize>],
    op: ReduceOp,
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    let p = gc.len();
    debug_check_blocks(blocks, p, buf.len());
    if p == 1 {
        return Ok(());
    }
    gc.call_overhead();
    let me = gc.me();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let max_block = blocks.iter().map(|b| b.len()).max().unwrap_or(0);
    scratch.clear();
    scratch.resize(max_block, T::default());
    for t in 0..p - 1 {
        let sb = (me + p - t - 1) % p; // partially-combined block sent on
        let rb = (me + p - t - 2) % p; // bucket arriving from the left
        let recv = &mut scratch[..blocks[rb].len()];
        gc.sendrecv(right, &buf[blocks[sb].clone()], left, recv, tag)?;
        let dst = &mut buf[blocks[rb].clone()];
        gc.fold(op, dst, recv);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::partition;
    use crate::comm::SelfComm;

    #[test]
    fn single_member_collect_noop() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [1.0f64, 2.0];
        ring_collect(&gc, &mut buf, &partition(2, 1), 0).unwrap();
        assert_eq!(buf, [1.0, 2.0]);
    }

    #[test]
    fn single_member_reduce_scatter_noop() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [5i32, 6];
        ring_reduce_scatter(&gc, &mut buf, &partition(2, 1), ReduceOp::Sum, 0).unwrap();
        assert_eq!(buf, [5, 6]);
    }

    #[test]
    fn ring_schedule_covers_all_blocks() {
        // Pure index arithmetic: over p−1 steps, each member receives
        // every block except its own, exactly once.
        for p in 2..12 {
            for me in 0..p {
                let mut got = vec![false; p];
                got[me] = true;
                for t in 0..p - 1 {
                    let rb = (me + p - t - 1) % p;
                    assert!(!got[rb], "block {rb} received twice");
                    got[rb] = true;
                }
                assert!(got.iter().all(|&g| g));
            }
        }
    }

    #[test]
    fn reduce_scatter_schedule_sends_then_owns() {
        // Member me never sends its own block and receives the bucket
        // for every block except (me+p-1)%p... verify final ownership:
        // the last received block is me's own.
        for p in 2..12 {
            for me in 0..p {
                let last_rb = (me + p - (p - 2) - 2) % p;
                assert_eq!(last_rb, me % p);
            }
        }
    }
}
