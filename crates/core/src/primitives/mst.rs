//! Short-vector primitives: minimum-spanning-tree recursive halving
//! (paper §4.1).
//!
//! "The broadcast can proceed by dividing the linear array in two
//! (approximately) equal parts and choosing a receiving node in the part
//! that does not contain the root", recursively — `⌈log₂ p⌉` sequential
//! steps, no power-of-two requirement, no network conflicts. The
//! combine-to-one runs the same communications in reverse, interleaving
//! the ⊕ operation; the scatter sends only the data that resides in the
//! other part; the gather is the scatter in reverse.

use crate::block::partition;
use crate::cast::Scalar;
use crate::comm::{GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::op::{Elem, ReduceOp};
use crate::primitives::debug_check_blocks;
use crate::Comm;
use std::ops::Range;

/// One level of the recursive-halving walk: the current range, its split
/// point and the half-roots.
#[derive(Debug, Clone, Copy)]
struct Level {
    mid: usize,
    /// Root of the current range.
    root: usize,
    /// The half-root on the side *not* containing `root` — the node that
    /// exchanges with `root` at this level.
    other: usize,
}

/// The recorded halving walk: at most `⌈log₂ p⌉ ≤ usize::BITS` levels,
/// held inline so tracing the path costs no heap allocation (the walk
/// runs on every hop of every MST primitive).
#[derive(Debug, Clone, Copy)]
struct LevelPath {
    levels: [Level; usize::BITS as usize],
    len: usize,
}

impl LevelPath {
    fn iter(&self) -> std::slice::Iter<'_, Level> {
        self.levels[..self.len].iter()
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.len
    }
}

impl<'a> IntoIterator for &'a LevelPath {
    type Item = &'a Level;
    type IntoIter = std::slice::Iter<'a, Level>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Walks the halving recursion from `[0, p)` down to a singleton around
/// `me`, recording each level. `root` is the range root at entry.
fn levels(me: usize, p: usize, mut root: usize) -> LevelPath {
    let mut lo = 0;
    let mut hi = p;
    let mut out = LevelPath {
        levels: [Level {
            mid: 0,
            root: 0,
            other: 0,
        }; usize::BITS as usize],
        len: 0,
    };
    while hi - lo > 1 {
        // Left half [lo, mid) is the larger on odd sizes.
        let mid = lo + (hi - lo).div_ceil(2);
        let other = if root < mid { mid } else { mid - 1 };
        out.levels[out.len] = Level { mid, root, other };
        out.len += 1;
        if me < mid {
            hi = mid;
            root = if root < mid { root } else { mid - 1 };
        } else {
            lo = mid;
            root = if root < mid { mid } else { root };
        }
    }
    out
}

fn check_root<C: Comm + ?Sized>(gc: &GroupComm<'_, C>, root: usize) -> Result<()> {
    if root < gc.len() {
        Ok(())
    } else {
        Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        })
    }
}

/// MST broadcast of the full `buf` from logical rank `root` to every
/// member of the group. Cost: `⌈log₂ p⌉(α + nβ)`.
pub fn mst_bcast<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    buf: &mut [T],
    tag: Tag,
) -> Result<()> {
    check_root(gc, root)?;
    let me = gc.me();
    for lvl in levels(me, gc.len(), root).iter() {
        gc.call_overhead();
        if me == lvl.root {
            gc.send(lvl.other, tag, buf)?;
        } else if me == lvl.other {
            gc.recv(lvl.root, tag, buf)?;
        }
    }
    Ok(())
}

/// MST combine-to-one: every member contributes `buf`; on return the
/// root's `buf` holds the element-wise ⊕ of all contributions. Non-root
/// buffers are used as workspace and hold partial combines on return.
/// Cost: `⌈log₂ p⌉(α + nβ + nγ)`.
pub fn mst_reduce<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    let mut scratch = Vec::new();
    mst_reduce_scratch(gc, root, buf, op, tag, &mut scratch)
}

/// [`mst_reduce`] with caller-provided scratch: `scratch` is resized to
/// `buf.len()` (growing its allocation at most once across a whole
/// collective's steps) so composed algorithms reuse one buffer for every
/// step instead of allocating per recursion level.
pub fn mst_reduce_scratch<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    check_root(gc, root)?;
    let me = gc.me();
    let path = levels(me, gc.len(), root);
    scratch.clear();
    scratch.resize(buf.len(), T::default());
    // Broadcast communications in reverse order, data flowing inward.
    for lvl in path.iter().rev() {
        gc.call_overhead();
        if me == lvl.other {
            gc.send(lvl.root, tag, buf)?;
        } else if me == lvl.root {
            gc.recv(lvl.other, tag, &mut scratch[..])?;
            gc.fold(op, buf, scratch);
        }
    }
    Ok(())
}

/// MST scatter: `root`'s `buf` holds all blocks; on return, member `j`'s
/// `buf[blocks[j]]` holds block `j` (other regions of non-root buffers
/// are workspace). Cost: `⌈log₂ p⌉α + ((p−1)/p)nβ` for balanced blocks.
pub fn mst_scatter<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    buf: &mut [T],
    blocks: &[Range<usize>],
    tag: Tag,
) -> Result<()> {
    check_root(gc, root)?;
    debug_check_blocks(blocks, gc.len(), buf.len());
    let me = gc.me();
    let mut lo = 0;
    let mut hi = gc.len();
    for lvl in levels(me, gc.len(), root).iter() {
        gc.call_overhead();
        // Region held by the half not containing the current root.
        let region = if lvl.root < lvl.mid {
            blocks[lvl.mid].start..blocks[hi - 1].end
        } else {
            blocks[lo].start..blocks[lvl.mid - 1].end
        };
        if me == lvl.root {
            gc.send(lvl.other, tag, &buf[region])?;
        } else if me == lvl.other {
            gc.recv(lvl.root, tag, &mut buf[region])?;
        }
        if me < lvl.mid {
            hi = lvl.mid;
        } else {
            lo = lvl.mid;
        }
    }
    Ok(())
}

/// MST gather: member `j` contributes `buf[blocks[j]]`; on return the
/// root's `buf` holds all blocks in order (non-root buffers are
/// workspace). Cost: `⌈log₂ p⌉α + ((p−1)/p)nβ` for balanced blocks.
pub fn mst_gather<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    buf: &mut [T],
    blocks: &[Range<usize>],
    tag: Tag,
) -> Result<()> {
    check_root(gc, root)?;
    debug_check_blocks(blocks, gc.len(), buf.len());
    let me = gc.me();
    let path = levels(me, gc.len(), root);
    // Reconstruct the [lo, hi) extents alongside the path so the reversed
    // replay knows each level's region (inline like the path itself — no
    // per-call heap allocation).
    let mut extents = [(0usize, 0usize); usize::BITS as usize];
    {
        let mut lo = 0;
        let mut hi = gc.len();
        for (i, lvl) in path.iter().enumerate() {
            extents[i] = (lo, hi);
            if me < lvl.mid {
                hi = lvl.mid;
            } else {
                lo = lvl.mid;
            }
        }
    }
    for (lvl, &(lo, hi)) in path.iter().zip(extents[..path.len].iter()).rev() {
        gc.call_overhead();
        let region = if lvl.root < lvl.mid {
            blocks[lvl.mid].start..blocks[hi - 1].end
        } else {
            blocks[lo].start..blocks[lvl.mid - 1].end
        };
        if me == lvl.other {
            gc.send(lvl.root, tag, &buf[region])?;
        } else if me == lvl.root {
            gc.recv(lvl.other, tag, &mut buf[region])?;
        }
    }
    Ok(())
}

/// Convenience: the balanced block table for `n` items over this group.
pub fn balanced_blocks<C: Comm + ?Sized>(gc: &GroupComm<'_, C>, n: usize) -> Vec<Range<usize>> {
    partition(n, gc.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_depth_is_ceil_log2() {
        for p in 1..40 {
            let depth = (p as f64).log2().ceil() as usize;
            for me in 0..p {
                for root in [0, p / 2, p - 1] {
                    let l = levels(me, p, root);
                    assert!(
                        l.len() <= depth,
                        "p={p} me={me} root={root}: {} > {depth}",
                        l.len()
                    );
                }
            }
        }
    }

    #[test]
    fn levels_converge_to_me() {
        // After the recorded walk, the final range must be the singleton
        // {me}: verify by replaying the extents.
        for p in 1..25 {
            for me in 0..p {
                for root in 0..p {
                    let mut lo = 0;
                    let mut hi = p;
                    for lvl in levels(me, p, root).iter() {
                        if me < lvl.mid {
                            hi = lvl.mid;
                        } else {
                            lo = lvl.mid;
                        }
                        assert!(lvl.root != lvl.other);
                        assert!((lo..hi).contains(&me));
                    }
                    assert_eq!(hi - lo, 1);
                    assert_eq!(lo, me);
                }
            }
        }
    }

    #[test]
    fn levels_root_stays_in_range() {
        for p in 2..25 {
            for me in 0..p {
                for root in 0..p {
                    let mut lo = 0;
                    let mut hi = p;
                    for lvl in levels(me, p, root).iter() {
                        assert!((lo..hi).contains(&lvl.root), "root escaped range");
                        assert!((lo..hi).contains(&lvl.other));
                        // root and other on opposite sides of mid
                        assert_eq!(lvl.root < lvl.mid, lvl.other >= lvl.mid);
                        if me < lvl.mid {
                            hi = lvl.mid;
                        } else {
                            lo = lvl.mid;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_root_rejected() {
        let c = crate::comm::SelfComm;
        let gc = GroupComm::world(&c);
        let mut b = [0u8; 4];
        assert!(matches!(
            mst_bcast(&gc, 3, &mut b, 0),
            Err(CommError::InvalidRoot { root: 3, size: 1 })
        ));
    }

    #[test]
    fn single_member_is_noop() {
        let c = crate::comm::SelfComm;
        let gc = GroupComm::world(&c);
        let mut b = [7u32, 8];
        mst_bcast(&gc, 0, &mut b, 0).unwrap();
        assert_eq!(b, [7, 8]);
        mst_reduce(&gc, 0, &mut b, ReduceOp::Sum, 0).unwrap();
        assert_eq!(b, [7, 8]);
        let blocks = balanced_blocks(&gc, 2);
        mst_scatter(&gc, 0, &mut b, &blocks, 0).unwrap();
        mst_gather(&gc, 0, &mut b, &blocks, 0).unwrap();
        assert_eq!(b, [7, 8]);
    }
}
