//! Deterministic, seeded fault injection at the [`Comm`] boundary.
//!
//! The paper's library assumes a perfectly reliable fabric; real
//! clusters drop, corrupt and delay messages. This module makes those
//! failures *scriptable*: a [`FaultPlan`] lists exactly which outbound
//! operation of which rank misbehaves and how, and [`FaultyComm`] wraps
//! any backend's `Comm` so the collective algorithms run unmodified
//! while the transport underneath them injects the scripted faults and
//! runs the recovery machinery:
//!
//! * **Delay / stall** — the sending rank sleeps before transmitting.
//!   A delay under the collective deadline is recoverable (the result
//!   must be byte-identical to the fault-free run); a stall past the
//!   deadline trips a peer's bounded wait, which diagnoses the silent
//!   rank and initiates the coordinated abort.
//! * **Drop** — the injection layer models a lossy link with
//!   retransmission: each scripted loss consumes one retry (with
//!   exponential backoff) from the plan's budget before the message is
//!   actually handed to the backend. Losses beyond the budget are
//!   unrecoverable and poison the collective.
//! * **Corrupt** — when any corruption fault is scripted, every data
//!   message is framed with an 8-byte SplitMix64 checksum header and
//!   acknowledged on a reserved control tag; a receiver that detects a
//!   flipped byte NAKs, the sender retries with backoff, and a
//!   corruption that outlives the budget poisons the collective.
//!
//! Unrecoverable faults never hang: the failing rank broadcasts a
//! fixed-size [`AbortInfo`] record on [`POISON_TAG`] (a reserved tag
//! both backends intercept), so every rank returns
//! [`CommError::Aborted`] naming the culprit, op, plan and step.
//!
//! Everything is deterministic given the plan's seed: fault sites are
//! indexed by per-rank operation counters (not wall-clock), corrupted
//! byte positions derive from `splitmix64(seed, op, attempt)`, and the
//! per-rank [`FaultEvent`] logs carry no timestamps — so the same plan
//! yields the same event stream on the threaded runtime and the mesh
//! simulator.
//!
//! The layer is strictly opt-in: production paths never construct a
//! `FaultyComm`, so disabled fault hooks cost nothing.

use crate::comm::{Comm, Tag};
use crate::error::{AbortCause, AbortInfo, CommError, Result};
use crate::rng::splitmix64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Reserved tag carrying coordinated-abort poison records. Sits just
/// under the runtime's farewell tag (`Tag::MAX`), far above every
/// tenant tag window, so it can never collide with data traffic.
pub const POISON_TAG: Tag = Tag::MAX - 1;

/// Tag bit marking checksum-verdict control messages. Data tags never
/// set it (plan tags use bit 62, tenant windows sit far below), so the
/// acknowledgement channel of a framed message is disjoint from all
/// data traffic.
pub const CTRL_TAG_BIT: Tag = 1 << 63;

/// The control tag acknowledging the framed data message sent on `tag`.
pub fn ack_tag(tag: Tag) -> Tag {
    tag | CTRL_TAG_BIT
}

/// The 8-byte SplitMix64 chain checksum framing prepends to payloads.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (data.len() as u64);
    for chunk in data.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(w));
    }
    h
}

/// Bytes of the checksum header a framed message carries.
pub const FRAME_HEADER: usize = 8;

/// One scripted misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep `micros` before transmitting (recoverable slowdown).
    Delay {
        /// Microseconds of injected latency.
        micros: u64,
    },
    /// The link loses the first `count` transmissions of the message;
    /// each loss consumes one retry from the plan's budget.
    Drop {
        /// Transmissions lost before one gets through.
        count: u32,
    },
    /// The link flips a byte in the first `count` transmissions; the
    /// receiver's checksum catches it and NAKs.
    Corrupt {
        /// Transmissions corrupted before a clean one gets through.
        count: u32,
    },
    /// The rank goes silent for `micros` before proceeding — scripted
    /// past the collective deadline, this is the unrecoverable
    /// straggler that peers must diagnose and abort on.
    Stall {
        /// Microseconds of silence.
        micros: u64,
    },
}

impl FaultKind {
    /// Stable lower-case name (used by traces and audit JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Delay { .. } => "delay",
            FaultKind::Drop { .. } => "drop",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::Stall { .. } => "stall",
        }
    }
}

/// One fault site: fires when `rank`'s outbound-operation counter
/// reaches `nth` (1-based; sends and the send half of exchanges count)
/// and the destination matches `peer` (or `peer` is `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The rank whose outbound operation misbehaves.
    pub rank: usize,
    /// Restrict to messages headed for this destination.
    pub peer: Option<usize>,
    /// The 1-based outbound-operation index the fault fires on.
    pub nth: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic, seeded script of faults plus the recovery policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for corrupted-byte positions (and anything else that needs
    /// reproducible randomness).
    pub seed: u64,
    /// The scripted fault sites.
    pub faults: Vec<Fault>,
    /// Retransmissions allowed per message before the sender declares
    /// the fault unrecoverable and poisons the collective.
    pub retry_budget: u32,
    /// First backoff sleep; attempt `k` sleeps `base << (k-1)`, capped.
    pub backoff_base_micros: u64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the default recovery policy.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
            retry_budget: 3,
            backoff_base_micros: 50,
        }
    }

    /// Adds a fault site.
    pub fn with_fault(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Whether this plan requires checksum framing: any scripted
    /// corruption frames *every* data message (both sides of every
    /// link must agree on wire lengths statically).
    pub fn framed(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::Corrupt { .. }))
    }
}

/// What a [`FaultEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A scripted fault fired.
    Injected(FaultKind),
    /// The sender retransmitted (attempt number, 1-based).
    Retry {
        /// The 1-based retransmission attempt.
        attempt: u32,
    },
    /// This rank's checksum verdict rejected an incoming frame (the
    /// receiver-side NAK that triggers the peer's retransmission).
    Nak,
    /// A bounded wait expired on this rank.
    Timeout,
    /// This rank initiated (or observed) the coordinated abort.
    Abort {
        /// Why the abort was declared.
        cause: AbortCause,
    },
}

impl FaultEventKind {
    /// Stable lower-case name (used by traces and audit JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FaultEventKind::Injected(k) => k.name(),
            FaultEventKind::Retry { .. } => "retry",
            FaultEventKind::Nak => "nak",
            FaultEventKind::Timeout => "timeout",
            FaultEventKind::Abort { .. } => "abort",
        }
    }
}

/// One entry of a rank's fault log. Deliberately timestamp-free so the
/// same seed yields the same stream on both backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What happened.
    pub kind: FaultEventKind,
    /// The rank logging the event.
    pub rank: usize,
    /// The peer involved, when the event concerns one message.
    pub peer: Option<usize>,
    /// The data tag involved.
    pub tag: Tag,
    /// The rank's outbound-operation index the event belongs to.
    pub op_index: u64,
}

/// Per-rank `(plan, step)` progress stamp (0 plan = outside a compiled
/// plan), mirrored from [`Comm::plan_step`] so the watchdog can
/// snapshot how far each rank got.
struct Progress {
    plan: AtomicU64,
    step: AtomicU64,
}

/// The shared state of one fault-injected world: the plan, the abort
/// latch, per-rank operation counters, event logs and progress stamps.
/// One `Arc<FaultLayer>` is shared by every rank's [`FaultyComm`].
pub struct FaultLayer {
    plan: FaultPlan,
    framed: bool,
    /// Virtual-time backends (the mesh simulator) cannot let peers
    /// diagnose a wall-clock stall, so a scripted stall poisons
    /// immediately instead of sleeping.
    virtual_time: bool,
    aborted: AtomicBool,
    abort_info: Mutex<Option<AbortInfo>>,
    op_counters: Vec<AtomicU64>,
    logs: Vec<Mutex<Vec<FaultEvent>>>,
    progress: Vec<Progress>,
}

impl FaultLayer {
    /// A fresh layer for a world of `p` ranks running `plan`.
    pub fn new(plan: FaultPlan, p: usize) -> Arc<FaultLayer> {
        Self::build(plan, p, false)
    }

    /// Like [`FaultLayer::new`] but for virtual-time backends (the mesh
    /// simulator), where a scripted stall poisons immediately rather
    /// than sleeping wall-clock time no peer deadline can observe.
    pub fn new_virtual(plan: FaultPlan, p: usize) -> Arc<FaultLayer> {
        Self::build(plan, p, true)
    }

    fn build(plan: FaultPlan, p: usize, virtual_time: bool) -> Arc<FaultLayer> {
        let framed = plan.framed();
        Arc::new(FaultLayer {
            plan,
            framed,
            virtual_time,
            aborted: AtomicBool::new(false),
            abort_info: Mutex::new(None),
            op_counters: (0..p).map(|_| AtomicU64::new(0)).collect(),
            logs: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            progress: (0..p)
                .map(|_| Progress {
                    plan: AtomicU64::new(0),
                    step: AtomicU64::new(0),
                })
                .collect(),
        })
    }

    /// The plan this layer executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether data messages carry the checksum frame.
    pub fn framed(&self) -> bool {
        self.framed
    }

    /// The abort record, once any rank has poisoned the collective.
    pub fn aborted(&self) -> Option<AbortInfo> {
        if self.aborted.load(Ordering::Acquire) {
            *self.abort_info.lock().unwrap_or_else(|p| p.into_inner())
        } else {
            None
        }
    }

    /// One rank's fault log (in that rank's program order).
    pub fn events(&self, rank: usize) -> Vec<FaultEvent> {
        self.logs[rank]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Every rank's fault log.
    pub fn all_events(&self) -> Vec<Vec<FaultEvent>> {
        (0..self.logs.len()).map(|r| self.events(r)).collect()
    }

    /// Per-rank `(plan, step)` progress snapshot (plan 0 = the rank was
    /// outside any compiled plan when last observed).
    pub fn progress(&self) -> Vec<(u64, u64)> {
        self.progress
            .iter()
            .map(|p| {
                (
                    p.plan.load(Ordering::Acquire),
                    p.step.load(Ordering::Acquire),
                )
            })
            .collect()
    }

    fn next_op(&self, rank: usize) -> u64 {
        self.op_counters[rank].fetch_add(1, Ordering::AcqRel) + 1
    }

    fn fault_for(&self, rank: usize, op: u64, peer: usize) -> Option<FaultKind> {
        self.plan
            .faults
            .iter()
            .find(|f| f.rank == rank && f.nth == op && f.peer.map(|q| q == peer).unwrap_or(true))
            .map(|f| f.kind)
    }

    fn log_event(&self, ev: FaultEvent) {
        // The metrics layer sees every fault-path event as it happens
        // (one branch when disabled), so recovered runs are visible in
        // aggregate stats even when no tracer is attached.
        let metric = match ev.kind {
            FaultEventKind::Injected(_) => "intercom_fault_injected_total",
            FaultEventKind::Retry { .. } => "intercom_fault_retries_total",
            FaultEventKind::Nak => "intercom_fault_naks_total",
            FaultEventKind::Timeout => "intercom_fault_timeouts_total",
            FaultEventKind::Abort { .. } => "intercom_fault_aborts_total",
        };
        intercom_obs::metrics::counter_add(metric, &[("kind", ev.kind.name())], 1);
        self.logs[ev.rank]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(ev);
    }

    /// Latches the abort record (first writer wins) and returns the
    /// stored record, so every rank reports the same diagnosis.
    fn store_abort(&self, info: AbortInfo) -> AbortInfo {
        let mut slot = self.abort_info.lock().unwrap_or_else(|p| p.into_inner());
        let stored = *slot.get_or_insert(info);
        self.aborted.store(true, Ordering::Release);
        stored
    }

    fn set_progress(&self, rank: usize, plan: u64, step: u64) {
        self.progress[rank].plan.store(plan, Ordering::Release);
        self.progress[rank].step.store(step, Ordering::Release);
    }
}

/// A fault-injecting wrapper around any backend's [`Comm`]. Collective
/// algorithms run against it unmodified; the wrapper injects the
/// scripted faults, frames/verifies checksums, retries with backoff,
/// and turns unrecoverable faults into the coordinated abort.
pub struct FaultyComm<'a, C: Comm + ?Sized> {
    inner: &'a C,
    layer: Arc<FaultLayer>,
    rank: usize,
}

impl<'a, C: Comm + ?Sized> FaultyComm<'a, C> {
    /// Wraps `inner`, sharing the world's fault layer.
    pub fn new(inner: &'a C, layer: Arc<FaultLayer>) -> FaultyComm<'a, C> {
        let rank = inner.rank();
        FaultyComm { inner, layer, rank }
    }

    /// The shared layer (for reading logs/abort state after a run).
    pub fn layer(&self) -> &Arc<FaultLayer> {
        &self.layer
    }

    fn check_abort(&self) -> Result<()> {
        match self.layer.aborted() {
            Some(info) => Err(CommError::Aborted(info)),
            None => Ok(()),
        }
    }

    /// Maps an inner-transport failure: a bounded-wait timeout names
    /// the silent peer and initiates the abort; an abort observed from
    /// the backend is latched into the layer.
    fn after(&self, r: Result<()>, tag: Tag, op: u64) -> Result<()> {
        match r {
            Err(CommError::Timeout {
                from,
                tag: wtag,
                waited_ms,
            }) => {
                self.layer.log_event(FaultEvent {
                    kind: FaultEventKind::Timeout,
                    rank: self.rank,
                    peer: Some(from),
                    tag,
                    op_index: op,
                });
                self.poison(from, AbortCause::Timeout, tag, op);
                Err(CommError::Timeout {
                    from,
                    tag: wtag,
                    waited_ms,
                })
            }
            Err(CommError::Aborted(info)) => {
                let stored = self.layer.store_abort(info);
                Err(CommError::Aborted(stored))
            }
            other => other,
        }
    }

    /// Declares the collective unrecoverable: latches the abort record,
    /// logs it, and broadcasts the poison so no peer hangs. Returns the
    /// error the caller should propagate.
    fn poison(&self, culprit: usize, cause: AbortCause, tag: Tag, op: u64) -> CommError {
        let (plan, step) = {
            let snap = self.layer.progress();
            snap[self.rank]
        };
        let info = self.layer.store_abort(AbortInfo {
            origin: self.rank,
            culprit,
            plan,
            step,
            cause,
        });
        self.layer.log_event(FaultEvent {
            kind: FaultEventKind::Abort { cause: info.cause },
            rank: self.rank,
            peer: None,
            tag,
            op_index: op,
        });
        let wire = info.encode();
        for r in 0..self.inner.size() {
            if r != self.rank {
                // Best-effort: a peer that already aborted (or a
                // backend already poisoned) rejects the send, which is
                // fine — the poison has landed.
                let _ = self.inner.send(r, POISON_TAG, &wire);
            }
        }
        CommError::Aborted(info)
    }

    fn backoff(&self, attempt: u32) {
        let base = self.layer.plan.backoff_base_micros;
        let micros = base.saturating_mul(1 << (attempt - 1).min(8)).min(10_000);
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }

    /// The byte position a corrupted transmission flips, derived from
    /// the plan seed so both the test and the wire agree.
    fn corrupt_pos(&self, op: u64, attempt: u32, len: usize) -> usize {
        let h = splitmix64(self.layer.plan.seed ^ (op << 8) ^ attempt as u64);
        (h % len as u64) as usize
    }

    /// Applies the send-side fault script for outbound op `op`, then
    /// performs the real (framed) transmission via `transmit`, which
    /// receives the number of corrupted transmissions to inject.
    fn faulted_op(
        &self,
        fault: Option<FaultKind>,
        to: usize,
        tag: Tag,
        op: u64,
        transmit: impl FnOnce(u32) -> Result<()>,
    ) -> Result<()> {
        let mut corrupt = 0u32;
        if let Some(kind) = fault {
            self.layer.log_event(FaultEvent {
                kind: FaultEventKind::Injected(kind),
                rank: self.rank,
                peer: Some(to),
                tag,
                op_index: op,
            });
            match kind {
                FaultKind::Delay { micros } => {
                    if !self.layer.virtual_time {
                        std::thread::sleep(Duration::from_micros(micros));
                    }
                }
                FaultKind::Stall { micros } => {
                    if self.layer.virtual_time {
                        // No peer deadline can observe a wall-clock
                        // stall in virtual time: declare it directly.
                        return Err(self.poison(self.rank, AbortCause::Stall, tag, op));
                    }
                    std::thread::sleep(Duration::from_micros(micros));
                    // Peers' bounded waits may have diagnosed us while
                    // we were silent.
                    self.check_abort()?;
                }
                FaultKind::Drop { count } => {
                    let budget = self.layer.plan.retry_budget;
                    let retries = count.min(budget);
                    for attempt in 1..=retries {
                        self.layer.log_event(FaultEvent {
                            kind: FaultEventKind::Retry { attempt },
                            rank: self.rank,
                            peer: Some(to),
                            tag,
                            op_index: op,
                        });
                        self.backoff(attempt);
                    }
                    if count > budget {
                        // Every allowed retransmission was lost too.
                        return Err(self.poison(self.rank, AbortCause::DropBudget, tag, op));
                    }
                }
                FaultKind::Corrupt { count } => corrupt = count,
            }
        }
        transmit(corrupt)
    }

    /// Framed send: prepend the checksum, transmit (corrupting the
    /// first `corrupt` attempts), and wait for the receiver's verdict
    /// on the control tag; NAKs retry with backoff against the budget.
    fn framed_send(&self, to: usize, tag: Tag, data: &[u8], op: u64, corrupt: u32) -> Result<()> {
        if !self.layer.framed {
            debug_assert_eq!(corrupt, 0, "corruption faults require framing");
            return self.after(self.inner.send(to, tag, data), tag, op);
        }
        let mut wire = frame(data);
        let budget = self.layer.plan.retry_budget;
        let mut attempt = 0u32;
        loop {
            let clean = wire.clone();
            if attempt < corrupt {
                let pos = FRAME_HEADER + self.corrupt_pos(op, attempt, data.len().max(1));
                let pos = pos.min(wire.len() - 1);
                wire[pos] ^= 0xA5;
            }
            self.after(self.inner.send(to, tag, &wire), tag, op)?;
            wire = clean;
            let mut verdict = [0u8; 1];
            self.after(self.inner.recv(to, ack_tag(tag), &mut verdict), tag, op)?;
            if verdict[0] == 1 {
                return Ok(());
            }
            attempt += 1;
            if attempt > budget {
                return Err(self.poison(self.rank, AbortCause::CorruptBudget, tag, op));
            }
            self.layer.log_event(FaultEvent {
                kind: FaultEventKind::Retry { attempt },
                rank: self.rank,
                peer: Some(to),
                tag,
                op_index: op,
            });
            self.backoff(attempt);
        }
    }

    /// Framed receive: take the wire message, verify the checksum, and
    /// return the verdict to the sender on the control tag. NAK loops
    /// are unbounded on the receiver side — the *sender's* budget
    /// decides when to give up, and its poison wakes us.
    fn framed_recv(&self, from: usize, tag: Tag, buf: &mut [u8], op: u64) -> Result<()> {
        if !self.layer.framed {
            return self.after(self.inner.recv(from, tag, buf), tag, op);
        }
        let mut wire = vec![0u8; buf.len() + FRAME_HEADER];
        loop {
            self.after(self.inner.recv(from, tag, &mut wire), tag, op)?;
            let ok = verify(&wire);
            self.after(self.inner.send(from, ack_tag(tag), &[ok as u8]), tag, op)?;
            if ok {
                buf.copy_from_slice(&wire[FRAME_HEADER..]);
                return Ok(());
            }
            self.layer.log_event(FaultEvent {
                kind: FaultEventKind::Nak,
                rank: self.rank,
                peer: Some(from),
                tag,
                op_index: op,
            });
        }
    }

    /// Framed full-duplex exchange. The data round runs send/recv halves
    /// as needed; the verdict round runs *reversed* (my verdict about
    /// the incoming half goes to `from`; the peer's verdict about my
    /// outgoing half comes from `to`), so verdict waits pair up exactly
    /// like the data waits and inherit their deadlock-freedom.
    #[allow(clippy::too_many_arguments)]
    fn framed_exchange(
        &self,
        to: usize,
        data: &[u8],
        stag: Tag,
        from: usize,
        buf: &mut [u8],
        rtag: Tag,
        op: u64,
        corrupt: u32,
    ) -> Result<()> {
        if !self.layer.framed {
            debug_assert_eq!(corrupt, 0, "corruption faults require framing");
            return self.after(
                self.inner.sendrecv_tagged(to, data, stag, from, buf, rtag),
                stag,
                op,
            );
        }
        let swire = frame(data);
        let mut rwire = vec![0u8; buf.len() + FRAME_HEADER];
        let budget = self.layer.plan.retry_budget;
        let mut attempt = 0u32;
        let mut need_send = true;
        let mut need_recv = true;
        loop {
            if need_send {
                let mut w = swire.clone();
                if attempt < corrupt {
                    let pos = FRAME_HEADER + self.corrupt_pos(op, attempt, data.len().max(1));
                    let pos = pos.min(w.len() - 1);
                    w[pos] ^= 0xA5;
                }
                if need_recv {
                    self.after(
                        self.inner
                            .sendrecv_tagged(to, &w, stag, from, &mut rwire, rtag),
                        stag,
                        op,
                    )?;
                } else {
                    self.after(self.inner.send(to, stag, &w), stag, op)?;
                }
            } else {
                self.after(self.inner.recv(from, rtag, &mut rwire), rtag, op)?;
            }
            let my_verdict = if need_recv { verify(&rwire) } else { true };
            let mut peer_verdict = [1u8; 1];
            match (need_send, need_recv) {
                (true, true) => self.after(
                    self.inner.sendrecv_tagged(
                        from,
                        &[my_verdict as u8],
                        ack_tag(rtag),
                        to,
                        &mut peer_verdict,
                        ack_tag(stag),
                    ),
                    stag,
                    op,
                )?,
                (true, false) => self.after(
                    self.inner.recv(to, ack_tag(stag), &mut peer_verdict),
                    stag,
                    op,
                )?,
                (false, true) => self.after(
                    self.inner.send(from, ack_tag(rtag), &[my_verdict as u8]),
                    rtag,
                    op,
                )?,
                (false, false) => unreachable!("exchange loop with nothing pending"),
            }
            if need_recv {
                if my_verdict {
                    buf.copy_from_slice(&rwire[FRAME_HEADER..]);
                    need_recv = false;
                } else {
                    self.layer.log_event(FaultEvent {
                        kind: FaultEventKind::Nak,
                        rank: self.rank,
                        peer: Some(from),
                        tag: rtag,
                        op_index: op,
                    });
                }
            }
            if need_send && peer_verdict[0] == 1 {
                need_send = false;
            }
            if !need_send && !need_recv {
                return Ok(());
            }
            if need_send {
                attempt += 1;
                if attempt > budget {
                    return Err(self.poison(self.rank, AbortCause::CorruptBudget, stag, op));
                }
                self.layer.log_event(FaultEvent {
                    kind: FaultEventKind::Retry { attempt },
                    rank: self.rank,
                    peer: Some(to),
                    tag: stag,
                    op_index: op,
                });
                self.backoff(attempt);
            }
        }
    }
}

/// `[checksum | payload]` wire form of a framed message.
fn frame(data: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(data.len() + FRAME_HEADER);
    wire.extend_from_slice(&checksum(data).to_le_bytes());
    wire.extend_from_slice(data);
    wire
}

/// Whether a framed wire message's checksum matches its payload.
fn verify(wire: &[u8]) -> bool {
    if wire.len() < FRAME_HEADER {
        return false;
    }
    let header = u64::from_le_bytes(wire[..FRAME_HEADER].try_into().unwrap());
    header == checksum(&wire[FRAME_HEADER..])
}

impl<C: Comm + ?Sized> Comm for FaultyComm<'_, C> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.check_abort()?;
        let op = self.layer.next_op(self.rank);
        let fault = self.layer.fault_for(self.rank, op, to);
        self.faulted_op(fault, to, tag, op, |corrupt| {
            self.framed_send(to, tag, data, op, corrupt)
        })
    }

    fn recv(&self, from: usize, tag: Tag, buf: &mut [u8]) -> Result<()> {
        self.check_abort()?;
        self.framed_recv(
            from,
            tag,
            buf,
            self.layer.op_counters[self.rank].load(Ordering::Acquire),
        )
    }

    fn sendrecv(
        &self,
        to: usize,
        data: &[u8],
        from: usize,
        buf: &mut [u8],
        tag: Tag,
    ) -> Result<()> {
        self.sendrecv_tagged(to, data, tag, from, buf, tag)
    }

    fn sendrecv_tagged(
        &self,
        to: usize,
        data: &[u8],
        stag: Tag,
        from: usize,
        buf: &mut [u8],
        rtag: Tag,
    ) -> Result<()> {
        self.check_abort()?;
        let op = self.layer.next_op(self.rank);
        let fault = self.layer.fault_for(self.rank, op, to);
        self.faulted_op(fault, to, stag, op, |corrupt| {
            self.framed_exchange(to, data, stag, from, buf, rtag, op, corrupt)
        })
    }

    fn compute(&self, bytes: usize) {
        self.inner.compute(bytes);
    }

    fn call_overhead(&self) {
        self.inner.call_overhead();
    }

    fn local_copy(&self, src: &[u8], dst: &[u8]) {
        self.inner.local_copy(src, dst);
    }

    fn local_reduce(&self, acc: &[u8], other: &[u8]) {
        self.inner.local_reduce(acc, other);
    }

    fn plan_step(&self, plan: u64, step: u64) {
        self.layer.set_progress(self.rank, plan, step);
        self.inner.plan_step(plan, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_catches_single_byte_flips() {
        let data = vec![7u8; 97];
        let mut wire = frame(&data);
        assert!(verify(&wire));
        for pos in [FRAME_HEADER, FRAME_HEADER + 50, wire.len() - 1, 0, 7] {
            wire[pos] ^= 0xA5;
            assert!(!verify(&wire), "flip at {pos} went undetected");
            wire[pos] ^= 0xA5;
        }
        assert!(verify(&wire));
    }

    #[test]
    fn empty_payload_frames_and_verifies() {
        let wire = frame(&[]);
        assert_eq!(wire.len(), FRAME_HEADER);
        assert!(verify(&wire));
        assert!(!verify(&wire[..4]));
    }

    #[test]
    fn fault_sites_match_rank_op_and_peer() {
        let plan = FaultPlan::new(1)
            .with_fault(Fault {
                rank: 2,
                peer: None,
                nth: 3,
                kind: FaultKind::Drop { count: 1 },
            })
            .with_fault(Fault {
                rank: 0,
                peer: Some(1),
                nth: 1,
                kind: FaultKind::Delay { micros: 5 },
            });
        let layer = FaultLayer::new(plan, 4);
        assert_eq!(layer.fault_for(2, 3, 0), Some(FaultKind::Drop { count: 1 }));
        assert_eq!(layer.fault_for(2, 2, 0), None);
        assert_eq!(layer.fault_for(1, 3, 0), None);
        assert_eq!(
            layer.fault_for(0, 1, 1),
            Some(FaultKind::Delay { micros: 5 })
        );
        assert_eq!(layer.fault_for(0, 1, 2), None, "peer filter must hold");
    }

    #[test]
    fn corruption_anywhere_forces_framing() {
        let plain = FaultPlan::new(0).with_fault(Fault {
            rank: 0,
            peer: None,
            nth: 1,
            kind: FaultKind::Drop { count: 2 },
        });
        assert!(!plain.framed());
        let corrupt = plain.with_fault(Fault {
            rank: 1,
            peer: None,
            nth: 4,
            kind: FaultKind::Corrupt { count: 1 },
        });
        assert!(corrupt.framed());
    }

    #[test]
    fn abort_latch_is_first_writer_wins() {
        let layer = FaultLayer::new(FaultPlan::new(0), 2);
        assert_eq!(layer.aborted(), None);
        let a = AbortInfo {
            origin: 0,
            culprit: 0,
            plan: 1,
            step: 2,
            cause: AbortCause::DropBudget,
        };
        let b = AbortInfo {
            origin: 1,
            culprit: 1,
            plan: 3,
            step: 4,
            cause: AbortCause::Stall,
        };
        assert_eq!(layer.store_abort(a), a);
        assert_eq!(layer.store_abort(b), a, "second abort must not overwrite");
        assert_eq!(layer.aborted(), Some(a));
    }

    #[test]
    fn control_tags_stay_clear_of_data_and_reserved_tags() {
        let data_tag: Tag = (1 << 62) | 0xFFFF; // plan-tag bit + offset
        assert_ne!(ack_tag(data_tag), data_tag);
        assert_ne!(ack_tag(data_tag), POISON_TAG);
        assert_ne!(ack_tag(data_tag), Tag::MAX); // FAREWELL
        assert_eq!(ack_tag(data_tag) & !CTRL_TAG_BIT, data_tag);
    }
}
