//! Safe byte views over plain-old-data element slices.
//!
//! The point-to-point layer moves bytes; collectives are generic over
//! element types. [`Scalar`] is a sealed trait over the fixed-size
//! primitive numeric types, providing zero-copy `&[T] ↔ &[u8]` views.
//! The single `unsafe` block in the crate lives here, justified by the
//! sealed-POD bound.

mod sealed {
    pub trait Sealed {}
}

/// A plain-old-data element type that can be transported by the library.
///
/// Sealed: implemented exactly for `u8, i8, u16, i16, u32, i32, u64, i64,
/// f32, f64, usize`. All implementors are `Copy`, have no padding, no
/// niches, and accept any bit pattern — which is what makes the byte
/// views sound.
pub trait Scalar: Copy + Default + PartialEq + std::fmt::Debug + sealed::Sealed + 'static {
    /// Size of one element in bytes.
    const SIZE: usize;

    /// Views a slice of elements as its underlying bytes.
    fn as_bytes(slice: &[Self]) -> &[u8] {
        // SAFETY: `Self` is a sealed POD type with no padding bytes; any
        // `&[Self]` is a valid initialized byte region of
        // `len * SIZE` bytes, and `u8` has alignment 1.
        unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), slice.len() * Self::SIZE) }
    }

    /// Views a mutable slice of elements as its underlying bytes.
    fn as_bytes_mut(slice: &mut [Self]) -> &mut [u8] {
        // SAFETY: as in `as_bytes`; additionally, every bit pattern is a
        // valid `Self` for the sealed POD implementors, so writes through
        // the byte view cannot create invalid values.
        unsafe {
            std::slice::from_raw_parts_mut(
                slice.as_mut_ptr().cast::<u8>(),
                slice.len() * Self::SIZE,
            )
        }
    }
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl sealed::Sealed for $t {}
        impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_roundtrip_is_identity() {
        let v = [1u8, 2, 3];
        assert_eq!(<u8 as Scalar>::as_bytes(&v), &[1, 2, 3]);
    }

    #[test]
    fn f64_byte_length() {
        let v = [1.0f64, 2.0];
        assert_eq!(<f64 as Scalar>::as_bytes(&v).len(), 16);
    }

    #[test]
    fn write_through_mut_view() {
        let mut v = [0u32; 2];
        let b = <u32 as Scalar>::as_bytes_mut(&mut v);
        b[0] = 0x2A; // little-endian low byte of v[0]
        assert_eq!(v[0].to_le() & 0xFF, 0x2A);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = [3.5f32, -1.25, f32::MAX];
        let mut dst = [0.0f32; 3];
        <f32 as Scalar>::as_bytes_mut(&mut dst).copy_from_slice(<f32 as Scalar>::as_bytes(&src));
        assert_eq!(src, dst);
    }

    #[test]
    fn empty_slice() {
        let v: [i64; 0] = [];
        assert!(<i64 as Scalar>::as_bytes(&v).is_empty());
    }
}
