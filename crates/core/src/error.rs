//! Error types for collective operations.

use std::fmt;

/// Result alias used throughout the library.
pub type Result<T> = std::result::Result<T, CommError>;

/// Errors surfaced by point-to-point and collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank was outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The communicator/group size.
        size: usize,
    },
    /// A root argument was outside the group.
    InvalidRoot {
        /// The offending root.
        root: usize,
        /// The group size.
        size: usize,
    },
    /// A receive completed with a different length than the caller's
    /// buffer (the library operates in the paper's "known lengths" mode).
    LengthMismatch {
        /// Bytes expected by the receiver.
        expected: usize,
        /// Bytes actually sent.
        actual: usize,
    },
    /// Buffer sizes passed to a collective are inconsistent (e.g. an
    /// allgather output that is not `p ×` the input block).
    BadBufferSize {
        /// What the operation required.
        expected: usize,
        /// What was supplied.
        actual: usize,
    },
    /// The peer disconnected or the backend shut down mid-operation.
    Disconnected,
    /// A strategy was used with a group of mismatched size.
    StrategyMismatch {
        /// Nodes the strategy covers.
        strategy_nodes: usize,
        /// Actual group size.
        group_len: usize,
    },
    /// The calling node is not a member of the group it tried to use.
    NotInGroup,
    /// A compiled plan was executed with bindings that do not match its
    /// program (wrong element size or group size, missing buffer, write
    /// to a read-only argument, malformed step operand).
    PlanMismatch {
        /// What did not match.
        what: &'static str,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for size {size}")
            }
            CommError::InvalidRoot { root, size } => {
                write!(f, "root {root} out of range for group of {size}")
            }
            CommError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "receive length mismatch: expected {expected} bytes, got {actual}"
                )
            }
            CommError::BadBufferSize { expected, actual } => {
                write!(
                    f,
                    "buffer size mismatch: expected {expected} items, got {actual}"
                )
            }
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::StrategyMismatch {
                strategy_nodes,
                group_len,
            } => write!(
                f,
                "strategy covers {strategy_nodes} nodes but group has {group_len} members"
            ),
            CommError::NotInGroup => write!(f, "calling node is not a member of the group"),
            CommError::PlanMismatch { what } => write!(f, "plan execution mismatch: {what}"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CommError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("9"));
        assert!(CommError::LengthMismatch {
            expected: 8,
            actual: 4
        }
        .to_string()
        .contains("expected 8"));
        assert!(CommError::Disconnected.to_string().contains("disconnected"));
    }
}
