//! Error types for collective operations.

use std::fmt;

/// Result alias used throughout the library.
pub type Result<T> = std::result::Result<T, CommError>;

/// Errors surfaced by point-to-point and collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank was outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The communicator/group size.
        size: usize,
    },
    /// A root argument was outside the group.
    InvalidRoot {
        /// The offending root.
        root: usize,
        /// The group size.
        size: usize,
    },
    /// A receive completed with a different length than the caller's
    /// buffer (the library operates in the paper's "known lengths" mode).
    LengthMismatch {
        /// Bytes expected by the receiver.
        expected: usize,
        /// Bytes actually sent.
        actual: usize,
    },
    /// Buffer sizes passed to a collective are inconsistent (e.g. an
    /// allgather output that is not `p ×` the input block).
    BadBufferSize {
        /// What the operation required.
        expected: usize,
        /// What was supplied.
        actual: usize,
    },
    /// The peer disconnected or the backend shut down mid-operation.
    Disconnected,
    /// A strategy was used with a group of mismatched size.
    StrategyMismatch {
        /// Nodes the strategy covers.
        strategy_nodes: usize,
        /// Actual group size.
        group_len: usize,
    },
    /// The calling node is not a member of the group it tried to use.
    NotInGroup,
    /// A compiled plan was executed with bindings that do not match its
    /// program (wrong element size or group size, missing buffer, write
    /// to a read-only argument, malformed step operand).
    PlanMismatch {
        /// What did not match.
        what: &'static str,
    },
    /// A blocking wait exceeded its deadline. The watchdog raises this
    /// instead of hanging; `from` names the peer whose message never
    /// arrived.
    Timeout {
        /// The peer rank the wait was matching against.
        from: usize,
        /// The tag the wait was matching against.
        tag: u64,
        /// How long the wait lasted before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// The collective was torn down by the coordinated-abort protocol:
    /// some rank failed unrecoverably and poisoned every peer so that
    /// all `p` ranks return this structured error instead of hanging.
    Aborted(AbortInfo),
}

/// Why a rank declared its collective unrecoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// Message loss persisted beyond the retry budget.
    DropBudget,
    /// Payload corruption persisted beyond the retry budget.
    CorruptBudget,
    /// The rank stalled past the collective deadline.
    Stall,
    /// A blocking wait on this rank timed out (the named culprit never
    /// delivered), so the waiter initiated the abort.
    Timeout,
    /// An abort initiated outside the fault layer (malformed poison
    /// payload, backend shutdown).
    External,
}

impl AbortCause {
    fn code(self) -> u64 {
        match self {
            AbortCause::DropBudget => 0,
            AbortCause::CorruptBudget => 1,
            AbortCause::Stall => 2,
            AbortCause::Timeout => 3,
            AbortCause::External => 4,
        }
    }

    fn from_code(code: u64) -> AbortCause {
        match code {
            0 => AbortCause::DropBudget,
            1 => AbortCause::CorruptBudget,
            2 => AbortCause::Stall,
            3 => AbortCause::Timeout,
            _ => AbortCause::External,
        }
    }

    /// Stable lower-case name (used by traces and audit JSON).
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::DropBudget => "drop-budget",
            AbortCause::CorruptBudget => "corrupt-budget",
            AbortCause::Stall => "stall",
            AbortCause::Timeout => "timeout",
            AbortCause::External => "external",
        }
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The structured payload of a coordinated abort: who failed, where in
/// the schedule, and why. Travels on the reserved poison tag as a fixed
/// 40-byte wire record so every rank reports the same diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortInfo {
    /// The rank that initiated the poison broadcast.
    pub origin: usize,
    /// The rank diagnosed as faulty (usually `origin`; differs when a
    /// waiter times out on a silent peer and names it).
    pub culprit: usize,
    /// The plan id active on the origin when it aborted (0 = none).
    pub plan: u64,
    /// The plan step index active on the origin when it aborted.
    pub step: u64,
    /// Why the abort was declared.
    pub cause: AbortCause,
}

impl AbortInfo {
    /// Bytes of the poison wire record: five little-endian `u64`s.
    pub const WIRE_LEN: usize = 40;

    /// Serializes to the fixed poison wire record.
    pub fn encode(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        let words = [
            self.origin as u64,
            self.culprit as u64,
            self.plan,
            self.step,
            self.cause.code(),
        ];
        for (chunk, word) in out.chunks_exact_mut(8).zip(words) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Parses a poison wire record; `None` if the payload is malformed.
    pub fn decode(bytes: &[u8]) -> Option<AbortInfo> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        let mut words = [0u64; 5];
        for (word, chunk) in words.iter_mut().zip(bytes.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().ok()?);
        }
        Some(AbortInfo {
            origin: words[0] as usize,
            culprit: words[1] as usize,
            plan: words[2],
            step: words[3],
            cause: AbortCause::from_code(words[4]),
        })
    }
}

impl fmt::Display for AbortInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coordinated abort: rank {} faulty ({}), origin {}, plan {} step {}",
            self.culprit, self.cause, self.origin, self.plan, self.step
        )
    }
}

/// A collective-level failure with full structured context: which rank
/// observed it, in which op (and strategy), at which compiled plan and
/// step, and the root-cause [`CommError`] chain underneath.
///
/// `Display` allocates nothing: every field is either `Copy` or a
/// `&'static str`, formatted straight into the caller's formatter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveError {
    /// The rank reporting the failure.
    pub rank: usize,
    /// The collective op name (e.g. `"broadcast"`).
    pub op: &'static str,
    /// The strategy name, when the op takes one.
    pub strategy: Option<&'static str>,
    /// The compiled plan id active when the failure surfaced (0 = none).
    pub plan: u64,
    /// The plan step index active when the failure surfaced.
    pub step: u64,
    /// The underlying transport/collective error.
    pub cause: CommError,
}

impl CollectiveError {
    /// Wraps a transport error with collective context.
    pub fn new(rank: usize, op: &'static str, cause: CommError) -> CollectiveError {
        CollectiveError {
            rank,
            op,
            strategy: None,
            plan: 0,
            step: 0,
            cause,
        }
    }

    /// Attaches a strategy name.
    pub fn with_strategy(mut self, strategy: &'static str) -> CollectiveError {
        self.strategy = Some(strategy);
        self
    }

    /// Attaches the plan/step the rank had reached.
    pub fn at(mut self, plan: u64, step: u64) -> CollectiveError {
        self.plan = plan;
        self.step = step;
        self
    }

    /// The rank diagnosed as faulty, when the cause carries one.
    pub fn faulty_rank(&self) -> Option<usize> {
        match &self.cause {
            CommError::Aborted(info) => Some(info.culprit),
            CommError::Timeout { from, .. } => Some(*from),
            _ => None,
        }
    }
}

impl fmt::Display for CollectiveError {
    /// Non-allocating: every field is `Copy` or `&'static str`, written
    /// straight into the caller's formatter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed on rank {}", self.op, self.rank)?;
        if let Some(s) = self.strategy {
            write!(f, " (strategy {s})")?;
        }
        if self.plan != 0 {
            write!(f, " at plan {} step {}", self.plan, self.step)?;
        }
        write!(f, ": {}", self.cause)
    }
}

impl std::error::Error for CollectiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for size {size}")
            }
            CommError::InvalidRoot { root, size } => {
                write!(f, "root {root} out of range for group of {size}")
            }
            CommError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "receive length mismatch: expected {expected} bytes, got {actual}"
                )
            }
            CommError::BadBufferSize { expected, actual } => {
                write!(
                    f,
                    "buffer size mismatch: expected {expected} items, got {actual}"
                )
            }
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::StrategyMismatch {
                strategy_nodes,
                group_len,
            } => write!(
                f,
                "strategy covers {strategy_nodes} nodes but group has {group_len} members"
            ),
            CommError::NotInGroup => write!(f, "calling node is not a member of the group"),
            CommError::PlanMismatch { what } => write!(f, "plan execution mismatch: {what}"),
            CommError::Timeout {
                from,
                tag,
                waited_ms,
            } => write!(
                f,
                "timed out after {waited_ms} ms waiting on rank {from} (tag {tag:#x})"
            ),
            CommError::Aborted(info) => write!(f, "{info}"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CommError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("9"));
        assert!(CommError::LengthMismatch {
            expected: 8,
            actual: 4
        }
        .to_string()
        .contains("expected 8"));
        assert!(CommError::Disconnected.to_string().contains("disconnected"));
        assert!(CommError::Timeout {
            from: 3,
            tag: 0x20,
            waited_ms: 250
        }
        .to_string()
        .contains("rank 3"));
    }

    #[test]
    fn abort_info_round_trips_through_wire_record() {
        let info = AbortInfo {
            origin: 2,
            culprit: 5,
            plan: 0xdead_beef,
            step: 17,
            cause: AbortCause::CorruptBudget,
        };
        let wire = info.encode();
        assert_eq!(wire.len(), AbortInfo::WIRE_LEN);
        assert_eq!(AbortInfo::decode(&wire), Some(info));
        assert_eq!(AbortInfo::decode(&wire[..39]), None);
        assert_eq!(AbortInfo::decode(&[]), None);
    }

    #[test]
    fn abort_cause_codes_round_trip() {
        for cause in [
            AbortCause::DropBudget,
            AbortCause::CorruptBudget,
            AbortCause::Stall,
            AbortCause::Timeout,
            AbortCause::External,
        ] {
            assert_eq!(AbortCause::from_code(cause.code()), cause);
        }
    }

    #[test]
    fn collective_error_carries_context_and_source() {
        let info = AbortInfo {
            origin: 1,
            culprit: 1,
            plan: 7,
            step: 3,
            cause: AbortCause::DropBudget,
        };
        let err = CollectiveError::new(4, "allreduce", CommError::Aborted(info))
            .with_strategy("sc")
            .at(7, 3);
        assert_eq!(err.faulty_rank(), Some(1));
        let text = err.to_string();
        assert!(text.contains("allreduce failed on rank 4"));
        assert!(text.contains("strategy sc"));
        assert!(text.contains("plan 7 step 3"));
        assert!(text.contains("drop-budget"));
        use std::error::Error as _;
        assert!(err.source().is_some());
    }
}
