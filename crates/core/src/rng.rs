//! Deterministic std-only pseudo-randomness (SplitMix64).
//!
//! The workspace builds with zero external dependencies, so everything
//! that needs reproducible randomness — the simulator's §8 timing
//! jitter, soak tests, benchmark input shuffles — shares this one
//! generator instead of pulling in `rand`.

/// The SplitMix64 finalizer: a deterministic, well-mixed 64-bit hash.
/// Stateless form, convenient for hashing `(seed, counter)` pairs.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sequential SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_matches_stateless_form() {
        // next_u64 from seed s equals splitmix64(s) on the first draw.
        let mut s = SplitMix64::new(0xDEAD_BEEF);
        assert_eq!(s.next_u64(), splitmix64(0xDEAD_BEEF));
    }

    #[test]
    fn below_and_f64_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.below(8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
