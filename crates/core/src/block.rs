//! Block partitioning of vectors over group members (paper §3).
//!
//! A vector of `n` items is partitioned into `p` consecutive subvectors
//! `x₀ … x_{p−1}` with `nᵢ ≈ n/p`: the first `n mod p` blocks get one
//! extra item, so no power-of-two or divisibility assumptions are needed
//! anywhere in the library.

use std::ops::Range;

/// Number of items in block `i` of an `n`-item vector split `p` ways.
pub fn block_size(n: usize, p: usize, i: usize) -> usize {
    debug_assert!(i < p, "block index {i} out of {p}");
    n / p + usize::from(i < n % p)
}

/// First item index of block `i`.
pub fn block_start(n: usize, p: usize, i: usize) -> usize {
    debug_assert!(i <= p, "block index {i} out of {p}");
    i * (n / p) + i.min(n % p)
}

/// The item range of block `i`.
pub fn block_range(n: usize, p: usize, i: usize) -> Range<usize> {
    block_start(n, p, i)..block_start(n, p, i + 1)
}

/// All `p` block ranges of an `n`-item vector, in order.
pub fn partition(n: usize, p: usize) -> Vec<Range<usize>> {
    (0..p).map(|i| block_range(n, p, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn even_split() {
        assert_eq!(partition(12, 4), vec![0..3, 3..6, 6..9, 9..12]);
    }

    #[test]
    fn uneven_split_front_loads_remainder() {
        assert_eq!(partition(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn more_ranks_than_items() {
        let parts = partition(2, 5);
        assert_eq!(parts, vec![0..1, 1..2, 2..2, 2..2, 2..2]);
    }

    #[test]
    fn zero_items() {
        assert!(partition(0, 3).iter().all(|r| r.is_empty()));
    }

    #[test]
    fn single_rank_owns_all() {
        assert_eq!(partition(7, 1), vec![0..7]);
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_partition_covers_exactly(n in 0usize..10_000, p in 1usize..64) {
            let parts = partition(n, p);
            prop_assert_eq!(parts.len(), p);
            prop_assert_eq!(parts[0].start, 0);
            prop_assert_eq!(parts[p - 1].end, n);
            for w in parts.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
        }

        #[test]
        fn prop_block_sizes_balanced(n in 0usize..10_000, p in 1usize..64) {
            for i in 0..p {
                let s = block_size(n, p, i);
                prop_assert!(s == n / p || s == n / p + 1);
                prop_assert_eq!(s, block_range(n, p, i).len());
            }
        }

        #[test]
        fn prop_sizes_sum_to_n(n in 0usize..10_000, p in 1usize..64) {
            let total: usize = (0..p).map(|i| block_size(n, p, i)).sum();
            prop_assert_eq!(total, n);
        }
    }
}
