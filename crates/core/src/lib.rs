//! # intercom — the InterCom collective communication library
//!
//! A Rust reproduction of *Barnett, Gupta, Payne, Shuler, van de Geijn,
//! Watts: "Building a High-Performance Collective Communication Library"*
//! (Supercomputing '94). The library implements the paper's seven target
//! collectives (Table 1) — broadcast, scatter, gather, collect
//! (allgather), combine-to-one (reduce), combine-to-all (allreduce) and
//! distributed combine (reduce-scatter) — from conflict-free short- and
//! long-vector building blocks (§4), composes them per §5, and executes
//! arbitrary hybrid strategies via the recursive template of Fig. 3 (§6),
//! with automatic cost-model-driven algorithm selection and group
//! communication (§9).
//!
//! The library is backend-agnostic: all algorithms are written against
//! the blocking point-to-point [`Comm`] trait ("changing only the message
//! send and receive calls to the native point-to-point communication
//! library", §11). Two backends ship in sibling crates:
//! `intercom-runtime` (real threads + channels) and `intercom-meshsim`
//! (a discrete-event wormhole-mesh simulator with the paper's α+nβ
//! timing model).
//!
//! ## Quick start
//!
//! ```
//! use intercom::{Communicator, ReduceOp};
//! use intercom_cost::MachineParams;
//!
//! // Backends provide a `Comm`; here a trivial 1-process world:
//! let comm = intercom::comm::SelfComm::default();
//! let cc = Communicator::world(&comm, MachineParams::PARAGON);
//! let mut v = vec![1.0f64, 2.0, 3.0];
//! cc.bcast(0, &mut v).unwrap();
//! cc.allreduce(&mut v, ReduceOp::Sum).unwrap();
//! assert_eq!(v, [1.0, 2.0, 3.0]);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod algorithms;
pub mod autotune;
pub mod block;
pub mod cast;
pub mod comm;
pub mod communicator;
pub mod error;
pub mod faults;
pub mod groups;
pub mod hier;
pub mod ir;
pub mod nx_compat;
pub mod op;
pub mod plan;
pub mod pool;
pub mod primitives;
pub mod rng;
pub mod selector;
pub mod trace;

pub use autotune::{AutoTuner, Reselect, RetuneReport, TrackedShape};
pub use cast::Scalar;
pub use comm::{Comm, GroupComm, Tag};
pub use communicator::{Algo, Communicator, CALL_TAG_STRIDE};
pub use error::{AbortCause, AbortInfo, CollectiveError, CommError, Result};
pub use faults::{Fault, FaultKind, FaultLayer, FaultPlan, FaultyComm, POISON_TAG};
pub use hier::{
    hier_allreduce, hier_broadcast, hier_collect, hier_reduce, hier_reduce_scatter,
    HIER_STAGE_STRIDE,
};
pub use op::{Elem, ReduceOp};
pub use pool::{BufferPool, PoolStats};
pub use rng::SplitMix64;
