//! Persistent collective plans, compiled through the schedule IR.
//!
//! Iterative applications (the paper's motivating workloads — §9's
//! "rows and columns of a logical mesh" computations) issue the *same*
//! collective with the same geometry every iteration. A plan runs the
//! cost-model selection once, compiles the chosen strategy to a
//! [`CollectiveProgram`](crate::ir::CollectiveProgram) via the
//! process-wide [plan cache](crate::ir::global_cache), and then executes
//! the compiled step list with no per-call selection or lowering
//! overhead — the moral equivalent of MPI's persistent requests, and the
//! natural home for the paper's observation that the hybrid choice
//! depends only on `(operation, group shape, message length, machine)`.
//!
//! Every plan is the same thin object: a handle on the cached program
//! plus a reusable scratch arena, so two plans for the same call shape
//! share one compiled schedule and repeated executions allocate nothing.
//!
//! ```
//! use intercom::{Communicator, plan::AllreducePlan, ReduceOp};
//! use intercom_cost::MachineParams;
//!
//! let comm = intercom::comm::SelfComm::default();
//! let cc = Communicator::world(&comm, MachineParams::PARAGON);
//! let plan = AllreducePlan::<f64>::new(&cc, 4, ReduceOp::Sum);
//! let mut v = vec![2.0; 4];
//! plan.execute(&cc, &mut v).unwrap();
//! assert_eq!(v, [2.0; 4]);
//! ```

use crate::cast::Scalar;
use crate::comm::Comm;
use crate::communicator::Communicator;
use crate::error::Result;
use crate::ir::{self, ArgBuf, CollectiveProgram, PlanKey, PlanOp};
use crate::op::{Elem, ReduceOp};
use intercom_cost::{CollectiveOp, Strategy};
use std::cell::RefCell;
use std::sync::Arc;

/// The shared compiled-program handle every plan wraps: the cached
/// program (or the lowering error, stashed here and surfaced on the
/// first execute) plus the private scratch arena the interpreter
/// re-zeroes — never re-allocates — on each run.
struct PlanCore<T: Scalar> {
    program: Result<Arc<CollectiveProgram>>,
    scratch: RefCell<Vec<T>>,
}

impl<T: Scalar> PlanCore<T> {
    fn compile<C: Comm + ?Sized>(
        cc: &Communicator<'_, C>,
        op: PlanOp,
        strategy: Option<Strategy>,
        n: usize,
    ) -> Self {
        // Persistent plans compile at full optimization: the pass
        // pipeline's rewrites are re-proven by the schedule audit and
        // pinned byte-identical by the differential suites, so the
        // optimized program is the deployed artifact.
        let key = PlanKey {
            op,
            p: cc.size(),
            n,
            elem_size: std::mem::size_of::<T>(),
            strategy,
            hier: None,
            opt: ir::OptLevel::Full,
        };
        PlanCore {
            program: ir::global_cache().get_or_compile(&key),
            scratch: RefCell::new(Vec::new()),
        }
    }

    fn program(&self) -> Result<&CollectiveProgram> {
        match &self.program {
            Ok(p) => Ok(p),
            Err(e) => Err(e.clone()),
        }
    }
}

/// A frozen broadcast: strategy selected and compiled once for a fixed
/// element count.
pub struct BcastPlan<T: Scalar> {
    core: PlanCore<T>,
    strategy: Strategy,
}

impl<T: Scalar> BcastPlan<T> {
    /// Plans a broadcast of `len` elements from `root`.
    pub fn new<C: Comm + ?Sized>(cc: &Communicator<'_, C>, root: usize, len: usize) -> Self {
        let strategy = cc.auto_strategy(CollectiveOp::Broadcast, len * std::mem::size_of::<T>());
        let core = PlanCore::compile(cc, PlanOp::Broadcast { root }, Some(strategy.clone()), len);
        BcastPlan { core, strategy }
    }

    /// The frozen strategy (for inspection/reporting).
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The compiled schedule this plan executes.
    pub fn program(&self) -> Result<&CollectiveProgram> {
        self.core.program()
    }

    /// Executes the planned broadcast; `buf.len()` must equal the
    /// planned length.
    pub fn execute<C: Comm + ?Sized>(&self, cc: &Communicator<'_, C>, buf: &mut [T]) -> Result<()> {
        let prog = self.core.program()?;
        let mut scratch = self.core.scratch.borrow_mut();
        ir::execute_scalar(
            prog,
            cc.group(),
            &mut [ArgBuf::Out(buf)],
            &mut scratch,
            plan_tag(cc),
        )
    }
}

/// A frozen combine-to-one (reduce): the result lands on the root, and
/// every rank's buffer doubles as workspace exactly as in the direct
/// recursive path.
pub struct ReducePlan<T: Elem> {
    core: PlanCore<T>,
    strategy: Strategy,
    op: ReduceOp,
}

impl<T: Elem> ReducePlan<T> {
    /// Plans a reduce of `len` elements onto `root` under `op`.
    pub fn new<C: Comm + ?Sized>(
        cc: &Communicator<'_, C>,
        root: usize,
        len: usize,
        op: ReduceOp,
    ) -> Self {
        let strategy = cc.auto_strategy(CollectiveOp::CombineToOne, len * std::mem::size_of::<T>());
        let core = PlanCore::compile(cc, PlanOp::Reduce { root }, Some(strategy.clone()), len);
        ReducePlan { core, strategy, op }
    }

    /// The frozen strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The compiled schedule this plan executes.
    pub fn program(&self) -> Result<&CollectiveProgram> {
        self.core.program()
    }

    /// Executes the planned reduce.
    pub fn execute<C: Comm + ?Sized>(&self, cc: &Communicator<'_, C>, buf: &mut [T]) -> Result<()> {
        let prog = self.core.program()?;
        let mut scratch = self.core.scratch.borrow_mut();
        ir::execute(
            prog,
            cc.group(),
            self.op,
            &mut [ArgBuf::Out(buf)],
            &mut scratch,
            plan_tag(cc),
        )
    }
}

/// A frozen combine-to-all (allreduce).
pub struct AllreducePlan<T: Elem> {
    core: PlanCore<T>,
    strategy: Strategy,
    op: ReduceOp,
}

impl<T: Elem> AllreducePlan<T> {
    /// Plans an allreduce of `len` elements under `op`.
    pub fn new<C: Comm + ?Sized>(cc: &Communicator<'_, C>, len: usize, op: ReduceOp) -> Self {
        let strategy = cc.auto_strategy(CollectiveOp::CombineToAll, len * std::mem::size_of::<T>());
        let core = PlanCore::compile(cc, PlanOp::AllReduce, Some(strategy.clone()), len);
        AllreducePlan { core, strategy, op }
    }

    /// The frozen strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The compiled schedule this plan executes.
    pub fn program(&self) -> Result<&CollectiveProgram> {
        self.core.program()
    }

    /// Executes the planned allreduce.
    pub fn execute<C: Comm + ?Sized>(&self, cc: &Communicator<'_, C>, buf: &mut [T]) -> Result<()> {
        let prog = self.core.program()?;
        let mut scratch = self.core.scratch.borrow_mut();
        ir::execute(
            prog,
            cc.group(),
            self.op,
            &mut [ArgBuf::Out(buf)],
            &mut scratch,
            plan_tag(cc),
        )
    }
}

/// A frozen distributed combine (reduce-scatter) with equal per-rank
/// blocks.
pub struct ReduceScatterPlan<T: Elem> {
    core: PlanCore<T>,
    strategy: Strategy,
    op: ReduceOp,
}

impl<T: Elem> ReduceScatterPlan<T> {
    /// Plans a reduce-scatter leaving `block` elements per member.
    pub fn new<C: Comm + ?Sized>(cc: &Communicator<'_, C>, block: usize, op: ReduceOp) -> Self {
        let total = block * cc.size() * std::mem::size_of::<T>();
        let strategy = cc.auto_strategy(CollectiveOp::DistributedCombine, total);
        let core = PlanCore::compile(cc, PlanOp::ReduceScatter, Some(strategy.clone()), block);
        ReduceScatterPlan { core, strategy, op }
    }

    /// The frozen strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The compiled schedule this plan executes.
    pub fn program(&self) -> Result<&CollectiveProgram> {
        self.core.program()
    }

    /// Executes the planned reduce-scatter: `contrib` is this rank's
    /// `p × block` contribution vector, `mine` receives this rank's
    /// combined block.
    pub fn execute<C: Comm + ?Sized>(
        &self,
        cc: &Communicator<'_, C>,
        contrib: &[T],
        mine: &mut [T],
    ) -> Result<()> {
        let prog = self.core.program()?;
        let mut scratch = self.core.scratch.borrow_mut();
        ir::execute(
            prog,
            cc.group(),
            self.op,
            &mut [ArgBuf::In(contrib), ArgBuf::Out(mine)],
            &mut scratch,
            plan_tag(cc),
        )
    }
}

/// A frozen collect (allgather) with equal per-rank blocks.
pub struct CollectPlan<T: Scalar> {
    core: PlanCore<T>,
    strategy: Strategy,
}

impl<T: Scalar> CollectPlan<T> {
    /// Plans a collect of `block` elements per member.
    pub fn new<C: Comm + ?Sized>(cc: &Communicator<'_, C>, block: usize) -> Self {
        let total = block * cc.size() * std::mem::size_of::<T>();
        let strategy = cc.auto_strategy(CollectiveOp::Collect, total);
        let core = PlanCore::compile(cc, PlanOp::Collect, Some(strategy.clone()), block);
        CollectPlan { core, strategy }
    }

    /// The frozen strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The compiled schedule this plan executes.
    pub fn program(&self) -> Result<&CollectiveProgram> {
        self.core.program()
    }

    /// Executes the planned collect.
    pub fn execute<C: Comm + ?Sized>(
        &self,
        cc: &Communicator<'_, C>,
        mine: &[T],
        all: &mut [T],
    ) -> Result<()> {
        let prog = self.core.program()?;
        let mut scratch = self.core.scratch.borrow_mut();
        ir::execute_scalar(
            prog,
            cc.group(),
            &mut [ArgBuf::In(mine), ArgBuf::Out(all)],
            &mut scratch,
            plan_tag(cc),
        )
    }
}

fn plan_tag<C: Comm + ?Sized>(cc: &Communicator<'_, C>) -> u64 {
    // Planned executions share the communicator's tag sequence; a
    // dedicated high bit keeps plans disjoint from ad-hoc calls that
    // might interleave. Programs are lowered at base tag 0, so the
    // drawn tag offsets every compiled step uniformly.
    (1 << 62) | cc.take_plan_tag()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;
    use crate::error::CommError;
    use intercom_cost::MachineParams;

    #[test]
    fn plans_run_on_world_of_one() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let bp = BcastPlan::<u32>::new(&cc, 0, 3);
        let mut v = vec![1u32, 2, 3];
        bp.execute(&cc, &mut v).unwrap();
        assert_eq!(v, [1, 2, 3]);

        let ap = AllreducePlan::<f64>::new(&cc, 2, ReduceOp::Sum);
        let mut w = vec![5.0, 6.0];
        ap.execute(&cc, &mut w).unwrap();
        assert_eq!(w, [5.0, 6.0]);

        let rp = ReducePlan::<i32>::new(&cc, 0, 2, ReduceOp::Max);
        let mut r = vec![-3i32, 9];
        rp.execute(&cc, &mut r).unwrap();
        assert_eq!(r, [-3, 9]);

        let cp = CollectPlan::<i64>::new(&cc, 2);
        let mine = [7i64, 8];
        let mut all = [0i64; 2];
        cp.execute(&cc, &mine, &mut all).unwrap();
        assert_eq!(all, mine);

        let rsp = ReduceScatterPlan::<u64>::new(&cc, 2, ReduceOp::Sum);
        let contrib = [3u64, 4];
        let mut block = [0u64; 2];
        rsp.execute(&cc, &contrib, &mut block).unwrap();
        assert_eq!(block, contrib);
    }

    #[test]
    fn plan_rejects_wrong_lengths() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let bp = BcastPlan::<u8>::new(&cc, 0, 4);
        let mut v = vec![0u8; 3];
        assert!(matches!(
            bp.execute(&cc, &mut v),
            Err(CommError::BadBufferSize {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn lowering_errors_surface_at_execute() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        // Root outside the group: compilation fails, the plan stashes
        // the error, and execute reports it.
        let bp = BcastPlan::<u8>::new(&cc, 3, 4);
        let mut v = vec![0u8; 4];
        assert!(matches!(
            bp.execute(&cc, &mut v),
            Err(CommError::InvalidRoot { root: 3, size: 1 })
        ));
    }

    #[test]
    fn frozen_strategy_matches_auto() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let bp = BcastPlan::<u8>::new(&cc, 0, 4096);
        assert_eq!(
            *bp.strategy(),
            cc.auto_strategy(CollectiveOp::Broadcast, 4096)
        );
    }

    #[test]
    fn identical_plans_share_one_compiled_program() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let a = CollectPlan::<u16>::new(&cc, 5);
        let b = CollectPlan::<u16>::new(&cc, 5);
        assert_eq!(
            a.program().unwrap().plan_id,
            b.program().unwrap().plan_id,
            "same call shape must hit the plan cache"
        );
    }
}
