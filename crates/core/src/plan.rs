//! Persistent collective plans.
//!
//! Iterative applications (the paper's motivating workloads — §9's
//! "rows and columns of a logical mesh" computations) issue the *same*
//! collective with the same geometry every iteration. A plan runs the
//! cost-model selection once, freezes the chosen strategy and buffer
//! geometry, and then executes with no per-call selection overhead —
//! the moral equivalent of MPI's persistent requests, and the natural
//! home for the paper's observation that the hybrid choice depends only
//! on `(operation, group shape, message length, machine)`.
//!
//! ```
//! use intercom::{Communicator, plan::AllreducePlan, ReduceOp};
//! use intercom_cost::MachineParams;
//!
//! let comm = intercom::comm::SelfComm::default();
//! let cc = Communicator::world(&comm, MachineParams::PARAGON);
//! let plan = AllreducePlan::<f64>::new(&cc, 4, ReduceOp::Sum);
//! let mut v = vec![2.0; 4];
//! plan.execute(&cc, &mut v).unwrap();
//! assert_eq!(v, [2.0; 4]);
//! ```

use crate::algorithms;
use crate::cast::Scalar;
use crate::comm::Comm;
use crate::communicator::Communicator;
use crate::error::{CommError, Result};
use crate::op::{Elem, ReduceOp};
use intercom_cost::{CollectiveOp, Strategy};
use std::marker::PhantomData;

fn frozen_strategy<C: Comm + ?Sized>(
    cc: &Communicator<'_, C>,
    op: CollectiveOp,
    n_bytes: usize,
) -> Strategy {
    cc.auto_strategy(op, n_bytes)
}

/// A frozen broadcast: strategy selected once for a fixed element count.
pub struct BcastPlan<T: Scalar> {
    strategy: Strategy,
    root: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Scalar> BcastPlan<T> {
    /// Plans a broadcast of `len` elements from `root`.
    pub fn new<C: Comm + ?Sized>(cc: &Communicator<'_, C>, root: usize, len: usize) -> Self {
        let strategy = frozen_strategy(cc, CollectiveOp::Broadcast, len * std::mem::size_of::<T>());
        BcastPlan {
            strategy,
            root,
            len,
            _marker: PhantomData,
        }
    }

    /// The frozen strategy (for inspection/reporting).
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Executes the planned broadcast; `buf.len()` must equal the
    /// planned length.
    pub fn execute<C: Comm + ?Sized>(&self, cc: &Communicator<'_, C>, buf: &mut [T]) -> Result<()> {
        if buf.len() != self.len {
            return Err(CommError::BadBufferSize {
                expected: self.len,
                actual: buf.len(),
            });
        }
        algorithms::broadcast(cc.group(), &self.strategy, self.root, buf, plan_tag(cc))
    }
}

/// A frozen combine-to-all (allreduce). The plan owns the combine
/// scratch buffer, so repeated executions allocate nothing: the strategy
/// is frozen once, the scratch grows to its steady-state size on the
/// first execution, and every later call reuses both.
pub struct AllreducePlan<T: Elem> {
    strategy: Strategy,
    len: usize,
    op: ReduceOp,
    scratch: std::cell::RefCell<Vec<T>>,
}

impl<T: Elem> AllreducePlan<T> {
    /// Plans an allreduce of `len` elements under `op`.
    pub fn new<C: Comm + ?Sized>(cc: &Communicator<'_, C>, len: usize, op: ReduceOp) -> Self {
        let strategy = frozen_strategy(
            cc,
            CollectiveOp::CombineToAll,
            len * std::mem::size_of::<T>(),
        );
        AllreducePlan {
            strategy,
            len,
            op,
            scratch: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The frozen strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Executes the planned allreduce.
    pub fn execute<C: Comm + ?Sized>(&self, cc: &Communicator<'_, C>, buf: &mut [T]) -> Result<()> {
        if buf.len() != self.len {
            return Err(CommError::BadBufferSize {
                expected: self.len,
                actual: buf.len(),
            });
        }
        let mut scratch = self.scratch.borrow_mut();
        algorithms::allreduce_scratch(
            cc.group(),
            &self.strategy,
            buf,
            self.op,
            plan_tag(cc),
            &mut scratch,
        )
    }
}

/// A frozen collect (allgather) with equal per-rank blocks. The plan
/// owns the slot-permutation scratch, so repeated executions of a
/// multi-dimensional strategy reuse one steady-state buffer.
pub struct CollectPlan<T: Scalar> {
    strategy: Strategy,
    block: usize,
    scratch: std::cell::RefCell<Vec<T>>,
}

impl<T: Scalar> CollectPlan<T> {
    /// Plans a collect of `block` elements per member.
    pub fn new<C: Comm + ?Sized>(cc: &Communicator<'_, C>, block: usize) -> Self {
        let total = block * cc.size() * std::mem::size_of::<T>();
        let strategy = frozen_strategy(cc, CollectiveOp::Collect, total);
        CollectPlan {
            strategy,
            block,
            scratch: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The frozen strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Executes the planned collect.
    pub fn execute<C: Comm + ?Sized>(
        &self,
        cc: &Communicator<'_, C>,
        mine: &[T],
        all: &mut [T],
    ) -> Result<()> {
        if mine.len() != self.block {
            return Err(CommError::BadBufferSize {
                expected: self.block,
                actual: mine.len(),
            });
        }
        let mut scratch = self.scratch.borrow_mut();
        algorithms::collect_scratch(
            cc.group(),
            &self.strategy,
            mine,
            all,
            plan_tag(cc),
            &mut scratch,
        )
    }
}

fn plan_tag<C: Comm + ?Sized>(cc: &Communicator<'_, C>) -> u64 {
    // Planned executions share the communicator's tag sequence; route
    // through a public collective call instead of private internals.
    // (The collect plan calls algorithms directly, so it draws a tag the
    // same way the Communicator does: via an ordinary collective call's
    // reserved stream. A dedicated high bit keeps plans disjoint from
    // ad-hoc calls that might interleave.)
    (1 << 62) | cc.take_plan_tag()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;
    use intercom_cost::MachineParams;

    #[test]
    fn plans_run_on_world_of_one() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let bp = BcastPlan::<u32>::new(&cc, 0, 3);
        let mut v = vec![1u32, 2, 3];
        bp.execute(&cc, &mut v).unwrap();
        assert_eq!(v, [1, 2, 3]);

        let ap = AllreducePlan::<f64>::new(&cc, 2, ReduceOp::Sum);
        let mut w = vec![5.0, 6.0];
        ap.execute(&cc, &mut w).unwrap();
        assert_eq!(w, [5.0, 6.0]);

        let cp = CollectPlan::<i64>::new(&cc, 2);
        let mine = [7i64, 8];
        let mut all = [0i64; 2];
        cp.execute(&cc, &mine, &mut all).unwrap();
        assert_eq!(all, mine);
    }

    #[test]
    fn plan_rejects_wrong_lengths() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let bp = BcastPlan::<u8>::new(&cc, 0, 4);
        let mut v = vec![0u8; 3];
        assert!(matches!(
            bp.execute(&cc, &mut v),
            Err(CommError::BadBufferSize {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn frozen_strategy_matches_auto() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let bp = BcastPlan::<u8>::new(&cc, 0, 4096);
        assert_eq!(
            *bp.strategy(),
            cc.auto_strategy(CollectiveOp::Broadcast, 4096)
        );
    }
}
