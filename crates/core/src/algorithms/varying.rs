//! Varying-count ("v") collectives — the paper's *known lengths* mode.
//!
//! The NX `gcolx` call and the InterCom collect operate on blocks whose
//! lengths differ per node but are known to every participant (Table 3
//! labels the collect "known lengths"). These entry points take an
//! explicit per-rank count table; the underlying MST and bucket
//! primitives already move arbitrary consecutive block ranges, so the v
//! variants are thin layers that build the block table from the counts.

use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::primitives::{mst_gather, mst_scatter, ring_collect};
use std::ops::Range;

/// Builds the block table from per-rank counts; `blocks[j]` spans
/// `counts[j]` items.
fn blocks_from_counts(counts: &[usize]) -> Vec<Range<usize>> {
    let mut out = Vec::with_capacity(counts.len());
    let mut at = 0;
    for &c in counts {
        out.push(at..at + c);
        at += c;
    }
    out
}

fn check_counts<C: Comm + ?Sized>(gc: &GroupComm<'_, C>, counts: &[usize]) -> Result<usize> {
    if counts.len() != gc.len() {
        return Err(CommError::BadBufferSize {
            expected: gc.len(),
            actual: counts.len(),
        });
    }
    Ok(counts.iter().sum())
}

/// Scatter with per-rank counts: the root's `full` holds
/// `counts[0] + … + counts[p−1]` items; member `j` receives `counts[j]`
/// items into `mine`.
pub fn scatterv<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    full: Option<&[T]>,
    counts: &[usize],
    mine: &mut [T],
    tag: Tag,
) -> Result<()> {
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    let total = check_counts(gc, counts)?;
    let me = gc.me();
    if mine.len() != counts[me] {
        return Err(CommError::BadBufferSize {
            expected: counts[me],
            actual: mine.len(),
        });
    }
    let blocks = blocks_from_counts(counts);
    let mut work;
    if me == root {
        let f = full.ok_or(CommError::BadBufferSize {
            expected: total,
            actual: 0,
        })?;
        if f.len() != total {
            return Err(CommError::BadBufferSize {
                expected: total,
                actual: f.len(),
            });
        }
        work = f.to_vec();
    } else {
        work = vec![T::default(); total];
    }
    mst_scatter(gc, root, &mut work, &blocks, tag)?;
    mine.copy_from_slice(&work[blocks[me].clone()]);
    Ok(())
}

/// Gather with per-rank counts: member `j` contributes `counts[j]` items;
/// the root receives the concatenation.
pub fn gatherv<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    mine: &[T],
    counts: &[usize],
    full: Option<&mut [T]>,
    tag: Tag,
) -> Result<()> {
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    let total = check_counts(gc, counts)?;
    let me = gc.me();
    if mine.len() != counts[me] {
        return Err(CommError::BadBufferSize {
            expected: counts[me],
            actual: mine.len(),
        });
    }
    let blocks = blocks_from_counts(counts);
    let mut work = vec![T::default(); total];
    work[blocks[me].clone()].copy_from_slice(mine);
    mst_gather(gc, root, &mut work, &blocks, tag)?;
    if me == root {
        let f = full.ok_or(CommError::BadBufferSize {
            expected: total,
            actual: 0,
        })?;
        if f.len() != total {
            return Err(CommError::BadBufferSize {
                expected: total,
                actual: f.len(),
            });
        }
        f.copy_from_slice(&work);
    }
    Ok(())
}

/// Collect with per-rank counts (`gcolx` semantics): member `j`
/// contributes `counts[j]` items; every member receives the full
/// concatenation via the bucket ring (long-vector regime — the natural
/// choice since uneven lengths are usually data-dependent and large).
pub fn allgatherv<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    mine: &[T],
    counts: &[usize],
    all: &mut [T],
    tag: Tag,
) -> Result<()> {
    let total = check_counts(gc, counts)?;
    let me = gc.me();
    if mine.len() != counts[me] {
        return Err(CommError::BadBufferSize {
            expected: counts[me],
            actual: mine.len(),
        });
    }
    if all.len() != total {
        return Err(CommError::BadBufferSize {
            expected: total,
            actual: all.len(),
        });
    }
    let blocks = blocks_from_counts(counts);
    all[blocks[me].clone()].copy_from_slice(mine);
    ring_collect(gc, all, &blocks, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn single_rank_roundtrip() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let counts = [3usize];
        let full = [1u32, 2, 3];
        let mut mine = [0u32; 3];
        scatterv(&gc, 0, Some(&full), &counts, &mut mine, 0).unwrap();
        assert_eq!(mine, full);
        let mut back = [0u32; 3];
        gatherv(&gc, 0, &mine, &counts, Some(&mut back), 0).unwrap();
        assert_eq!(back, full);
        let mut all = [0u32; 3];
        allgatherv(&gc, &mine, &counts, &mut all, 0).unwrap();
        assert_eq!(all, full);
    }

    #[test]
    fn count_table_arity_checked() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut mine = [0u8; 1];
        assert!(matches!(
            scatterv::<u8, _>(&gc, 0, Some(&[1]), &[1, 1], &mut mine, 0),
            Err(CommError::BadBufferSize {
                expected: 1,
                actual: 2
            })
        ));
    }

    #[test]
    fn my_count_checked() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut mine = [0u8; 2];
        assert!(matches!(
            scatterv::<u8, _>(&gc, 0, Some(&[1]), &[1], &mut mine, 0),
            Err(CommError::BadBufferSize {
                expected: 1,
                actual: 2
            })
        ));
    }

    #[test]
    fn blocks_from_counts_layout() {
        let b = blocks_from_counts(&[2, 0, 3]);
        assert_eq!(b, vec![0..2, 2..2, 2..5]);
    }
}
