//! The seven target collectives (Table 1), each executable under any
//! hybrid [`Strategy`] via the recursive template of Fig. 3.
//!
//! Every algorithm here is *one* implementation parameterized by
//! strategy: `Strategy::pure_mst(p)` yields the §5.1 short-vector
//! composed algorithm, `Strategy::pure_long(p)` the §5.2 long-vector
//! composed algorithm, and multi-dimensional strategies the §6 hybrids.
//! The recursion peels the fastest-varying logical dimension per level:
//!
//! ```text
//! if p = 1 or innermost dimension:
//!     short vector algorithm (or stage-1 + stage-2 back to back)
//! else:
//!     long vector alg. stage 1 within dim-0 lines
//!     recurse within planes (remaining dimensions)
//!     long vector alg. stage 2 within dim-0 lines
//! ```
//!
//! Scatter and gather serve as their own short *and* long primitive
//! (§4.2), so they take no strategy.

mod alltoall;
mod broadcast;
mod collect;
mod combine;
mod scatter_gather;
mod varying;

pub use alltoall::alltoall;
pub use broadcast::broadcast;
pub use collect::{collect, collect_scratch, reduce_scatter};
pub use combine::{allreduce, allreduce_scratch, reduce, reduce_scratch};
pub use scatter_gather::{gather, scatter};
pub use varying::{allgatherv, gatherv, scatterv};

use crate::comm::{Comm, GroupComm};
use crate::error::{CommError, Result};
use intercom_cost::Strategy;

/// Tag stride reserved per recursion level; stages within one level use
/// offsets `0..LEVEL_TAG_STRIDE`. With a base tag of 0, every event's
/// recursion level is therefore `tag / LEVEL_TAG_STRIDE` — the invariant
/// the `intercom-verify` schedule checker uses to attribute link traffic
/// to §6 stages.
pub const LEVEL_TAG_STRIDE: u64 = 8;

/// Validates that `strategy` covers exactly this group.
pub(crate) fn check_strategy<C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
) -> Result<()> {
    if strategy.nodes() == gc.len() {
        Ok(())
    } else {
        Err(CommError::StrategyMismatch {
            strategy_nodes: strategy.nodes(),
            group_len: gc.len(),
        })
    }
}

/// Slot index of logical rank `r` under `dims` (fastest-varying first):
/// the big-endian mixed-radix position that makes every recursion
/// subtree's slots contiguous. Used by collect / distributed combine to
/// lay blocks out so ring stages always move contiguous memory.
pub(crate) fn slot_of(dims: &[usize], mut r: usize) -> usize {
    let mut vol: usize = dims.iter().product();
    let mut slot = 0;
    for &d in dims {
        let i = r % d;
        r /= d;
        vol /= d;
        slot += i * vol;
    }
    slot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_identity_for_one_dim() {
        for r in 0..8 {
            assert_eq!(slot_of(&[8], r), r);
        }
    }

    #[test]
    fn slot_is_permutation() {
        for dims in [vec![2, 3], vec![3, 2, 2], vec![4, 5], vec![2, 2, 2, 2]] {
            let p: usize = dims.iter().product();
            let mut seen = vec![false; p];
            for r in 0..p {
                let s = slot_of(&dims, r);
                assert!(!seen[s], "slot {s} duplicated for dims {dims:?}");
                seen[s] = true;
            }
        }
    }

    #[test]
    fn slot_groups_planes_contiguously() {
        // dims [d0, rest..]: ranks with dim-0 coordinate c occupy slots
        // [c·(p/d0), (c+1)·(p/d0)).
        let dims = [3usize, 4];
        let p = 12;
        for r in 0..p {
            let c = r % 3;
            let s = slot_of(&dims, r);
            assert!(
                s >= c * (p / 3) && s < (c + 1) * (p / 3),
                "rank {r} slot {s}"
            );
        }
    }
}
