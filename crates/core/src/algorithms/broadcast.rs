//! Broadcast under any hybrid strategy.
//!
//! Short (`(1×p, M)`): MST broadcast. Long (`(1×p, SC)`): scatter
//! followed by bucket collect (§5.2). General hybrid: scatters up the
//! logical dimensions (only the root's line is active per level — each
//! level's scatter hands one block to each member of the next level's
//! planes), the innermost algorithm in the last dimension, then
//! simultaneous bucket collects back down within *all* lines (Fig. 1).

use crate::algorithms::{check_strategy, LEVEL_TAG_STRIDE};
use crate::block::partition;
use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::primitives::{mst_bcast, mst_scatter, ring_collect};
use intercom_cost::{Strategy, StrategyKind};

/// Broadcasts `buf` (any length, any group size) from logical rank
/// `root` to every group member, using `strategy`.
pub fn broadcast<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    root: usize,
    buf: &mut [T],
    tag: Tag,
) -> Result<()> {
    check_strategy(gc, strategy)?;
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    bcast_rec(gc, &strategy.dims, strategy.kind, root, buf, tag)
}

fn bcast_rec<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    dims: &[usize],
    kind: StrategyKind,
    root: usize,
    buf: &mut [T],
    tag: Tag,
) -> Result<()> {
    let p = gc.len();
    if p == 1 {
        return Ok(());
    }
    if dims.len() == 1 {
        return match kind {
            StrategyKind::Mst => mst_bcast(gc, root, buf, tag),
            StrategyKind::ScatterCollect => {
                let blocks = partition(buf.len(), p);
                mst_scatter(gc, root, buf, &blocks, tag)?;
                ring_collect(gc, buf, &blocks, tag + 1)
            }
        };
    }
    let d0 = dims[0];
    let me = gc.me();
    let my0 = me % d0;
    let blocks = partition(buf.len(), d0);
    // Stage 1: scatter within the root's dim-0 line only — it is the sole
    // line holding data at this level.
    if me / d0 == root / d0 {
        let line = gc.line(d0);
        mst_scatter(&line, root % d0, buf, &blocks, tag)?;
    }
    // Recurse: within my plane, the member of the root's line (plane rank
    // root / d0) now holds block `my0` and acts as the plane's root.
    let plane = gc.plane(d0);
    let my_block = blocks[my0].clone();
    bcast_rec(
        &plane,
        &dims[1..],
        kind,
        root / d0,
        &mut buf[my_block],
        tag + LEVEL_TAG_STRIDE,
    )?;
    // Stage 2: simultaneous collects within every dim-0 line reassemble
    // the full vector.
    let line = gc.line(d0);
    ring_collect(&line, buf, &blocks, tag + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn single_node_all_strategies() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [42u8, 7];
        for s in [Strategy::pure_mst(1), Strategy::pure_long(1)] {
            broadcast(&gc, &s, 0, &mut buf, 0).unwrap();
            assert_eq!(buf, [42, 7]);
        }
    }

    #[test]
    fn strategy_mismatch_rejected() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [0u8; 4];
        let err = broadcast(&gc, &Strategy::pure_mst(4), 0, &mut buf, 0);
        assert!(matches!(err, Err(CommError::StrategyMismatch { .. })));
    }

    #[test]
    fn invalid_root_rejected() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [0u8; 4];
        let err = broadcast(&gc, &Strategy::pure_mst(1), 2, &mut buf, 0);
        assert!(matches!(
            err,
            Err(CommError::InvalidRoot { root: 2, size: 1 })
        ));
    }
}
