//! Collect (allgather) and distributed combine (reduce-scatter) under any
//! hybrid strategy.
//!
//! These two collectives identify blocks with ranks globally, so the
//! recursive template is executed over a *slot-permuted* work buffer:
//! rank `r`'s block lives at slot [`slot_of`]`(dims, r)`, which makes the
//! blocks of every recursion subtree contiguous. The permutation is a
//! node-local memcpy (free of communication) applied once on entry
//! (distributed combine) or once on exit (collect).
//!
//! Per the template (Fig. 3), collect's stage 1 is void — the recursion
//! descends straight to the innermost dimension, whose *short* center is
//! a gather followed by an MST broadcast and whose *long* center is a
//! bucket collect, then bucket-collects ever-larger super-blocks back up.
//! Distributed combine is the exact dual (stage 2 void).

use crate::algorithms::{check_strategy, slot_of, LEVEL_TAG_STRIDE};
use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::op::{Elem, ReduceOp};
use crate::primitives::{
    mst_bcast, mst_gather, mst_reduce_scratch, mst_scatter, ring_collect,
    ring_reduce_scatter_scratch,
};
use intercom_cost::{Strategy, StrategyKind};
use std::ops::Range;

fn equal_blocks(p: usize, b: usize) -> Vec<Range<usize>> {
    (0..p).map(|j| j * b..(j + 1) * b).collect()
}

/// Collect: member `j` contributes the block `mine`; on return, `all`
/// holds every member's block concatenated in logical-rank order
/// (`all.len() == p · mine.len()`). Blocks are equal-length per rank, as
/// in the paper's `nᵢ ≈ n/p` setting.
pub fn collect<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    mine: &[T],
    all: &mut [T],
    tag: Tag,
) -> Result<()> {
    collect_scratch(gc, strategy, mine, all, tag, &mut Vec::new())
}

/// [`collect`] with a caller-supplied scratch buffer for the multi-dim
/// slot un-permutation, so repeated planned executions ([`crate::plan::CollectPlan`])
/// reuse one steady-state allocation instead of copying `all` afresh
/// every call.
pub fn collect_scratch<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    mine: &[T],
    all: &mut [T],
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    check_strategy(gc, strategy)?;
    let p = gc.len();
    let b = mine.len();
    if all.len() != p * b {
        return Err(CommError::BadBufferSize {
            expected: p * b,
            actual: all.len(),
        });
    }
    let dims = &strategy.dims;
    // Place my block at my slot and run the template over slot order.
    let my_slot = slot_of(dims, gc.me());
    gc.copy(mine, &mut all[my_slot * b..(my_slot + 1) * b]);
    collect_rec(gc, dims, strategy.kind, all, b, tag)?;
    // Un-permute into rank order (identity for one-dimensional
    // strategies).
    if dims.len() > 1 {
        scratch.clear();
        scratch.resize(all.len(), T::default());
        gc.copy(all, &mut scratch[..]);
        for q in 0..p {
            let s = slot_of(dims, q);
            gc.copy(&scratch[s * b..(s + 1) * b], &mut all[q * b..(q + 1) * b]);
        }
    }
    Ok(())
}

fn collect_rec<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    dims: &[usize],
    kind: StrategyKind,
    work: &mut [T],
    b: usize,
    tag: Tag,
) -> Result<()> {
    let p = gc.len();
    if p == 1 {
        return Ok(());
    }
    if dims.len() == 1 {
        let blocks = equal_blocks(p, b);
        return match kind {
            StrategyKind::Mst => {
                // Short collect: gather followed by MST broadcast (§5.1).
                mst_gather(gc, 0, work, &blocks, tag)?;
                mst_bcast(gc, 0, work, tag + 1)
            }
            StrategyKind::ScatterCollect => ring_collect(gc, work, &blocks, tag),
        };
    }
    let d0 = dims[0];
    let sub = p / d0;
    let my0 = gc.me() % d0;
    // Stage 1 is void: recurse within my plane over my plane's slot
    // super-block (contiguous by construction of the slot order). The
    // recursion owns the next tag level, keeping `tag / LEVEL_TAG_STRIDE`
    // equal to the recursion depth for every stage of every collective.
    let plane = gc.plane(d0);
    let plane_range = my0 * sub * b..(my0 + 1) * sub * b;
    collect_rec(
        &plane,
        &dims[1..],
        kind,
        &mut work[plane_range],
        b,
        tag + LEVEL_TAG_STRIDE,
    )?;
    // Stage 2: bucket-collect the d0 plane super-blocks within my line.
    let line = gc.line(d0);
    let blocks = equal_blocks(d0, sub * b);
    ring_collect(&line, work, &blocks, tag + 1)
}

/// Distributed combine: every member contributes `contrib`
/// (`p · mine.len()` items); on return, member `j`'s `mine` holds block
/// `j` of the element-wise ⊕ over all contributions.
pub fn reduce_scatter<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    contrib: &[T],
    mine: &mut [T],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    check_strategy(gc, strategy)?;
    let p = gc.len();
    let b = mine.len();
    if contrib.len() != p * b {
        return Err(CommError::BadBufferSize {
            expected: p * b,
            actual: contrib.len(),
        });
    }
    let dims = &strategy.dims;
    // Permute the contribution into slot order. The work buffer and the
    // per-stage bucket scratch are each allocated once here and threaded
    // through every recursion level.
    let mut work = vec![T::default(); p * b];
    for q in 0..p {
        let s = slot_of(dims, q);
        gc.copy(&contrib[q * b..(q + 1) * b], &mut work[s * b..(s + 1) * b]);
    }
    let mut scratch = Vec::new();
    rs_rec(gc, dims, strategy.kind, &mut work, b, op, tag, &mut scratch)?;
    let my_slot = slot_of(dims, gc.me());
    gc.copy(&work[my_slot * b..(my_slot + 1) * b], mine);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn rs_rec<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    dims: &[usize],
    kind: StrategyKind,
    work: &mut [T],
    b: usize,
    op: ReduceOp,
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    let p = gc.len();
    if p == 1 {
        return Ok(());
    }
    if dims.len() == 1 {
        let blocks = equal_blocks(p, b);
        return match kind {
            StrategyKind::Mst => {
                // Short distributed combine: combine-to-one followed by
                // scatter (§5.1).
                mst_reduce_scratch(gc, 0, work, op, tag, scratch)?;
                mst_scatter(gc, 0, work, &blocks, tag + 1)
            }
            StrategyKind::ScatterCollect => {
                ring_reduce_scatter_scratch(gc, work, &blocks, op, tag, scratch)
            }
        };
    }
    let d0 = dims[0];
    let sub = p / d0;
    let my0 = gc.me() % d0;
    // Stage 1: bucket distributed combine of the d0 plane super-blocks
    // within my line; member j keeps super-block j (its own plane's).
    let line = gc.line(d0);
    let blocks = equal_blocks(d0, sub * b);
    ring_reduce_scatter_scratch(&line, work, &blocks, op, tag, scratch)?;
    // Stage 2 is void: recurse within my plane on my super-block.
    let plane = gc.plane(d0);
    let plane_range = my0 * sub * b..(my0 + 1) * sub * b;
    rs_rec(
        &plane,
        &dims[1..],
        kind,
        &mut work[plane_range],
        b,
        op,
        tag + LEVEL_TAG_STRIDE,
        scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn single_node_collect_copies() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mine = [9u64, 8];
        let mut all = [0u64; 2];
        collect(&gc, &Strategy::pure_long(1), &mine, &mut all, 0).unwrap();
        assert_eq!(all, mine);
    }

    #[test]
    fn single_node_reduce_scatter_copies() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let contrib = [1.5f32, 2.5];
        let mut mine = [0.0f32; 2];
        reduce_scatter(
            &gc,
            &Strategy::pure_mst(1),
            &contrib,
            &mut mine,
            ReduceOp::Sum,
            0,
        )
        .unwrap();
        assert_eq!(mine, contrib);
    }

    #[test]
    fn buffer_size_validated() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mine = [1u8, 2];
        let mut all = [0u8; 3];
        assert!(matches!(
            collect(&gc, &Strategy::pure_mst(1), &mine, &mut all, 0),
            Err(CommError::BadBufferSize {
                expected: 2,
                actual: 3
            })
        ));
        let contrib = [0i16; 5];
        let mut m = [0i16; 2];
        assert!(matches!(
            reduce_scatter(
                &gc,
                &Strategy::pure_mst(1),
                &contrib,
                &mut m,
                ReduceOp::Sum,
                0
            ),
            Err(CommError::BadBufferSize {
                expected: 2,
                actual: 5
            })
        ));
    }
}
