//! Scatter and gather — primitives that serve both vector-length regimes
//! (§4.2), exposed with MPI-style separate buffers.

use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::primitives::{mst_gather, mst_scatter};

fn equal_blocks(p: usize, b: usize) -> Vec<std::ops::Range<usize>> {
    (0..p).map(|j| j * b..(j + 1) * b).collect()
}

/// Scatter: the root's `full` (length `p · mine.len()`) is split into
/// equal blocks; member `j` receives block `j` into `mine`. Non-roots
/// pass `None` for `full`. Cost: `⌈log₂ p⌉α + ((p−1)/p)nβ`.
pub fn scatter<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    full: Option<&[T]>,
    mine: &mut [T],
    tag: Tag,
) -> Result<()> {
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    let p = gc.len();
    let b = mine.len();
    let me = gc.me();
    let mut work;
    if me == root {
        let f = full.ok_or(CommError::BadBufferSize {
            expected: p * b,
            actual: 0,
        })?;
        if f.len() != p * b {
            return Err(CommError::BadBufferSize {
                expected: p * b,
                actual: f.len(),
            });
        }
        work = vec![T::default(); p * b];
        gc.copy(f, &mut work[..]);
    } else {
        work = vec![T::default(); p * b];
    }
    mst_scatter(gc, root, &mut work, &equal_blocks(p, b), tag)?;
    gc.copy(&work[me * b..(me + 1) * b], mine);
    Ok(())
}

/// Gather: member `j` contributes `mine`; the root's `full` (length
/// `p · mine.len()`) receives all blocks concatenated in rank order.
/// Non-roots pass `None` for `full`. Cost: `⌈log₂ p⌉α + ((p−1)/p)nβ`.
pub fn gather<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    mine: &[T],
    full: Option<&mut [T]>,
    tag: Tag,
) -> Result<()> {
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    let p = gc.len();
    let b = mine.len();
    let me = gc.me();
    let mut work = vec![T::default(); p * b];
    gc.copy(mine, &mut work[me * b..(me + 1) * b]);
    mst_gather(gc, root, &mut work, &equal_blocks(p, b), tag)?;
    if me == root {
        let f = full.ok_or(CommError::BadBufferSize {
            expected: p * b,
            actual: 0,
        })?;
        if f.len() != p * b {
            return Err(CommError::BadBufferSize {
                expected: p * b,
                actual: f.len(),
            });
        }
        gc.copy(&work, f);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn single_node_scatter() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let full = [1u32, 2, 3];
        let mut mine = [0u32; 3];
        scatter(&gc, 0, Some(&full), &mut mine, 0).unwrap();
        assert_eq!(mine, full);
    }

    #[test]
    fn single_node_gather() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mine = [4i64, 5];
        let mut full = [0i64; 2];
        gather(&gc, 0, &mine, Some(&mut full), 0).unwrap();
        assert_eq!(full, mine);
    }

    #[test]
    fn root_must_supply_full_buffer() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut mine = [0u8; 2];
        assert!(matches!(
            scatter::<u8, _>(&gc, 0, None, &mut mine, 0),
            Err(CommError::BadBufferSize { .. })
        ));
        let mine2 = [0u8; 2];
        assert!(matches!(
            gather::<u8, _>(&gc, 0, &mine2, None, 0),
            Err(CommError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn wrong_full_length_rejected() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let full = [1u8; 5];
        let mut mine = [0u8; 2];
        assert!(matches!(
            scatter(&gc, 0, Some(&full), &mut mine, 0),
            Err(CommError::BadBufferSize {
                expected: 2,
                actual: 5
            })
        ));
    }
}
