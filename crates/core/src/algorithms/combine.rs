//! Combine-to-one (reduce) and combine-to-all (allreduce) under any
//! hybrid strategy.
//!
//! Combine-to-one is the exact dual of broadcast: bucket distributed
//! combines up the dimensions (all lines active — every node holds a
//! contribution), the innermost combine in the last dimension, then
//! gathers within the root's lines back down. Combine-to-all replaces
//! the gathers with bucket collects so the result lands everywhere
//! (§5: distributed combine followed by collect).

use crate::algorithms::{check_strategy, LEVEL_TAG_STRIDE};
use crate::block::partition;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};
use crate::op::{Elem, ReduceOp};
use crate::primitives::{
    mst_bcast, mst_gather, mst_reduce_scratch, ring_collect, ring_reduce_scatter_scratch,
};
use intercom_cost::{Strategy, StrategyKind};

/// Combine-to-one: every member contributes `buf`; on return, the root's
/// `buf` holds the element-wise ⊕ of all contributions (other members'
/// buffers are workspace).
pub fn reduce<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    root: usize,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    let mut scratch = Vec::new();
    reduce_scratch(gc, strategy, root, buf, op, tag, &mut scratch)
}

/// [`reduce`] with caller-provided scratch, threaded through every
/// recursion level and ring stage: a persistent plan (or any caller
/// issuing the same reduce repeatedly) pays zero steady-state
/// allocations for temporaries.
pub fn reduce_scratch<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    root: usize,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    check_strategy(gc, strategy)?;
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    reduce_rec(
        gc,
        &strategy.dims,
        strategy.kind,
        root,
        buf,
        op,
        tag,
        scratch,
    )
}

#[allow(clippy::too_many_arguments)]
fn reduce_rec<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    dims: &[usize],
    kind: StrategyKind,
    root: usize,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    let p = gc.len();
    if p == 1 {
        return Ok(());
    }
    if dims.len() == 1 {
        return match kind {
            StrategyKind::Mst => mst_reduce_scratch(gc, root, buf, op, tag, scratch),
            StrategyKind::ScatterCollect => {
                let blocks = partition(buf.len(), p);
                ring_reduce_scatter_scratch(gc, buf, &blocks, op, tag, scratch)?;
                mst_gather(gc, root, buf, &blocks, tag + 1)
            }
        };
    }
    let d0 = dims[0];
    let me = gc.me();
    let my0 = me % d0;
    let blocks = partition(buf.len(), d0);
    // Stage 1: every dim-0 line combines-and-scatters its members'
    // contributions; member j keeps the line-combined block j.
    let line = gc.line(d0);
    ring_reduce_scatter_scratch(&line, buf, &blocks, op, tag, scratch)?;
    // Recurse within my plane: the plane member in the root's line
    // (plane rank root / d0) accumulates the fully-combined block `my0`.
    let plane = gc.plane(d0);
    let my_block = blocks[my0].clone();
    reduce_rec(
        &plane,
        &dims[1..],
        kind,
        root / d0,
        &mut buf[my_block],
        op,
        tag + LEVEL_TAG_STRIDE,
        scratch,
    )?;
    // Stage 2: only the root's line gathers the combined blocks to root.
    if me / d0 == root / d0 {
        mst_gather(&line, root % d0, buf, &blocks, tag + 1)?;
    }
    Ok(())
}

/// Combine-to-all: every member contributes `buf`; on return, *every*
/// member's `buf` holds the element-wise ⊕ of all contributions.
pub fn allreduce<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
) -> Result<()> {
    let mut scratch = Vec::new();
    allreduce_scratch(gc, strategy, buf, op, tag, &mut scratch)
}

/// [`allreduce`] with caller-provided scratch (see [`reduce_scratch`]).
pub fn allreduce_scratch<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    strategy: &Strategy,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    check_strategy(gc, strategy)?;
    allreduce_rec(gc, &strategy.dims, strategy.kind, buf, op, tag, scratch)
}

fn allreduce_rec<T: Elem, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    dims: &[usize],
    kind: StrategyKind,
    buf: &mut [T],
    op: ReduceOp,
    tag: Tag,
    scratch: &mut Vec<T>,
) -> Result<()> {
    let p = gc.len();
    if p == 1 {
        return Ok(());
    }
    if dims.len() == 1 {
        return match kind {
            StrategyKind::Mst => {
                // Short combine-to-all: combine-to-one followed by
                // broadcast (§5.1), both rooted at logical 0.
                mst_reduce_scratch(gc, 0, buf, op, tag, scratch)?;
                mst_bcast(gc, 0, buf, tag + 1)
            }
            StrategyKind::ScatterCollect => {
                // Long: distributed combine followed by collect (§5.2).
                let blocks = partition(buf.len(), p);
                ring_reduce_scatter_scratch(gc, buf, &blocks, op, tag, scratch)?;
                ring_collect(gc, buf, &blocks, tag + 1)
            }
        };
    }
    let d0 = dims[0];
    let my0 = gc.me() % d0;
    let blocks = partition(buf.len(), d0);
    let line = gc.line(d0);
    ring_reduce_scatter_scratch(&line, buf, &blocks, op, tag, scratch)?;
    let plane = gc.plane(d0);
    let my_block = blocks[my0].clone();
    allreduce_rec(
        &plane,
        &dims[1..],
        kind,
        &mut buf[my_block],
        op,
        tag + LEVEL_TAG_STRIDE,
        scratch,
    )?;
    ring_collect(&line, buf, &blocks, tag + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn single_node_reduce_keeps_contribution() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [3.5f64, -1.0];
        for s in [Strategy::pure_mst(1), Strategy::pure_long(1)] {
            reduce(&gc, &s, 0, &mut buf, ReduceOp::Sum, 0).unwrap();
            allreduce(&gc, &s, &mut buf, ReduceOp::Max, 0).unwrap();
        }
        assert_eq!(buf, [3.5, -1.0]);
    }

    #[test]
    fn reduce_validates_root_and_strategy() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let mut buf = [1i32];
        assert!(matches!(
            reduce(&gc, &Strategy::pure_mst(1), 1, &mut buf, ReduceOp::Sum, 0),
            Err(CommError::InvalidRoot { .. })
        ));
        assert!(matches!(
            allreduce(&gc, &Strategy::pure_mst(2), &mut buf, ReduceOp::Sum, 0),
            Err(CommError::StrategyMismatch { .. })
        ));
    }
}
