//! Total exchange (alltoall) — an extension beyond the paper's Table 1,
//! built from the same conflict-free ring machinery: every member sends
//! a distinct block to every other member.
//!
//! The ring algorithm runs `p − 1` simultaneous shift steps: at step
//! `t`, member `i` sends the block destined for `(i + t) mod p` directly
//! to it along the ring's routing. On a linear array viewed as a ring
//! this keeps the §4 structure (single send + single receive per step);
//! the messages are not nearest-neighbour, so unlike the bucket
//! primitives it *does* pay distance-dependent contention — which is
//! also why the paper's library family treats total exchange separately.
//!
//! Cost (balanced blocks, no conflicts): `(p−1)(α + (n/p)β)` where `n`
//! is each member's total send volume.

use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::{CommError, Result};

/// Total exchange: `send` holds `p` blocks of `mine_len = send.len()/p`
/// items, block `j` destined for member `j`; on return `recv[j·b..]`
/// holds the block member `j` sent to me. `send.len()` must equal
/// `recv.len()` and be a multiple of `p`.
pub fn alltoall<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    send: &[T],
    recv: &mut [T],
    tag: Tag,
) -> Result<()> {
    let p = gc.len();
    if send.len() != recv.len() || !send.len().is_multiple_of(p) {
        return Err(CommError::BadBufferSize {
            expected: recv.len(),
            actual: send.len(),
        });
    }
    let b = send.len() / p;
    let me = gc.me();
    // Own block copies locally.
    gc.copy(&send[me * b..(me + 1) * b], &mut recv[me * b..(me + 1) * b]);
    // Shift exchange: at step t, send to (me+t) and receive from (me−t).
    for t in 1..p {
        let to = (me + t) % p;
        let from = (me + p - t) % p;
        let (sblock, rblock) = (
            &send[to * b..(to + 1) * b],
            &mut recv[from * b..(from + 1) * b],
        );
        gc.sendrecv(to, sblock, from, rblock, tag + t as Tag)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn single_member_copies() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let send = [1u32, 2, 3];
        let mut recv = [0u32; 3];
        alltoall(&gc, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
    }

    #[test]
    fn size_validation() {
        let c = SelfComm;
        let gc = GroupComm::world(&c);
        let send = [1u8, 2];
        let mut recv = [0u8; 3];
        assert!(matches!(
            alltoall(&gc, &send, &mut recv, 0),
            Err(CommError::BadBufferSize { .. })
        ));
    }
}
