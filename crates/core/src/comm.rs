//! The point-to-point layer and logical-rank group views.
//!
//! Porting the paper's library to a new platform means "changing only the
//! message send and receive calls to the native point-to-point
//! communication library" (§11). [`Comm`] is that porting surface: a
//! blocking send/receive/send-receive triple plus two accounting hooks
//! the timing backends use (`compute` for the γ term, `call_overhead`
//! for the δ recursion overhead of §7.2). Real backends implement the
//! data movement; the accounting hooks default to no-ops.
//!
//! [`GroupComm`] layers the paper's §9 group abstraction on top: an
//! ordered member list provides the logical-to-physical mapping, so every
//! collective algorithm is written once in logical ranks and runs
//! unchanged on the whole machine, a mesh row, or an arbitrary group.

use crate::cast::Scalar;
use crate::error::{CommError, Result};
use crate::op::{Elem, ReduceOp};

/// Message tag disambiguating concurrent traffic between the same pair of
/// nodes. Matching is FIFO per `(source, tag)`.
pub type Tag = u64;

/// Blocking point-to-point communication endpoint of one node.
///
/// Semantics required of implementations:
///
/// * `send`/`recv` are blocking and deliver exactly the posted bytes;
///   receivers know message lengths a priori (the paper's "known
///   lengths" mode), and a length mismatch is an error.
/// * `sendrecv` makes progress on both transfers concurrently — ring
///   algorithms rely on this to exchange with both neighbours without
///   deadlock (§2: "a processor can both send and receive at the same
///   time").
/// * Message order is preserved per `(sender, tag)`.
pub trait Comm {
    /// This node's world rank (physical node id).
    fn rank(&self) -> usize;

    /// Number of nodes in the world.
    fn size(&self) -> usize;

    /// Blocking send of `data` to world rank `to`.
    fn send(&self, to: usize, tag: Tag, data: &[u8]) -> Result<()>;

    /// Blocking receive from world rank `from` into `buf` (exact length).
    fn recv(&self, from: usize, tag: Tag, buf: &mut [u8]) -> Result<()>;

    /// Concurrent send-to / receive-from (possibly different peers).
    fn sendrecv(&self, to: usize, data: &[u8], from: usize, buf: &mut [u8], tag: Tag)
        -> Result<()>;

    /// Concurrent exchange with independent per-half tags: send `data`
    /// to `to` under `stag` while receiving into `buf` from `from`
    /// under `rtag`. Optimized schedules fuse adjacent cross-stage
    /// send/recv pairs into one exchange, and tags encode stages, so
    /// the two halves of a fused exchange may carry different tags.
    ///
    /// The default delegates equal tags to [`Comm::sendrecv`] and
    /// serializes mixed tags as send-then-recv — correct for every
    /// schedule the optimizer emits (it only fuses pairs that were
    /// already safe in that order), but backends that can post both
    /// halves concurrently should override for full-duplex progress.
    fn sendrecv_tagged(
        &self,
        to: usize,
        data: &[u8],
        stag: Tag,
        from: usize,
        buf: &mut [u8],
        rtag: Tag,
    ) -> Result<()> {
        if stag == rtag {
            return self.sendrecv(to, data, from, buf, stag);
        }
        self.send(to, stag, data)?;
        self.recv(from, rtag, buf)
    }

    /// Accounts local combine work over `bytes` bytes (γ term). Real
    /// backends do the arithmetic in caller code; timing backends advance
    /// the local clock.
    fn compute(&self, bytes: usize) {
        let _ = bytes;
    }

    /// Accounts one level of short-vector-primitive recursion overhead
    /// (δ term, §7.2).
    fn call_overhead(&self) {}

    /// Observes a completed local byte copy (`src` was copied into
    /// `dst`). The copy itself is performed by caller code; recording
    /// backends note the regions so schedule lowering sees data movement
    /// that never crosses the network.
    fn local_copy(&self, src: &[u8], dst: &[u8]) {
        let _ = (src, dst);
    }

    /// Observes a completed local reduction (`other` was folded into
    /// `acc`). Like [`Comm::local_copy`], a recording hook: the fold
    /// itself is performed by caller code.
    fn local_reduce(&self, acc: &[u8], other: &[u8]) {
        let _ = (acc, other);
    }

    /// Announces the compiled-plan step about to execute, for trace
    /// attribution: `(plan, step)` identify a step of a cached
    /// `CollectiveProgram` (0 = not executing a compiled plan).
    fn plan_step(&self, plan: u64, step: u64) {
        let _ = (plan, step);
    }
}

/// The trivial single-process backend: rank 0 of a world of 1. Useful in
/// examples, doctests and degenerate-case tests; any attempt to actually
/// communicate is an error.
#[derive(Debug, Default, Clone, Copy)]
pub struct SelfComm;

impl Comm for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn send(&self, to: usize, _tag: Tag, _data: &[u8]) -> Result<()> {
        Err(CommError::InvalidRank { rank: to, size: 1 })
    }
    fn recv(&self, from: usize, _tag: Tag, _buf: &mut [u8]) -> Result<()> {
        Err(CommError::InvalidRank {
            rank: from,
            size: 1,
        })
    }
    fn sendrecv(
        &self,
        to: usize,
        _data: &[u8],
        _from: usize,
        _buf: &mut [u8],
        _tag: Tag,
    ) -> Result<()> {
        Err(CommError::InvalidRank { rank: to, size: 1 })
    }
}

/// A group-scoped communication view: logical ranks `0..len` map to world
/// ranks through the member array (§9's "group array").
///
/// All collective algorithms in this crate are written against
/// `GroupComm`; sub-groups for hybrid stages are carved out with
/// [`GroupComm::line`] and [`GroupComm::plane`].
pub struct GroupComm<'a, C: Comm + ?Sized> {
    comm: &'a C,
    members: Vec<usize>,
    me: usize,
}

impl<'a, C: Comm + ?Sized> GroupComm<'a, C> {
    /// The whole world as one group, logical rank = world rank.
    pub fn world(comm: &'a C) -> Self {
        let members = (0..comm.size()).collect();
        let me = comm.rank();
        GroupComm { comm, members, me }
    }

    /// A group from an explicit member list. Fails with
    /// [`CommError::NotInGroup`] if the calling node is not listed.
    pub fn new(comm: &'a C, members: Vec<usize>) -> Result<Self> {
        let me = members
            .iter()
            .position(|&m| m == comm.rank())
            .ok_or(CommError::NotInGroup)?;
        Ok(GroupComm { comm, members, me })
    }

    /// The underlying endpoint.
    pub fn comm(&self) -> &'a C {
        self.comm
    }

    /// My logical rank within the group.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Groups are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// World rank of logical rank `i`.
    pub fn world_rank(&self, i: usize) -> usize {
        self.members[i]
    }

    /// The member list (logical order).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// My dimension-0 *line* for a first-dimension extent `d`: the `d`
    /// consecutive logical ranks `[⌊me/d⌋·d, ⌊me/d⌋·d + d)`. My logical
    /// rank within the line is `me mod d`.
    pub fn line(&self, d: usize) -> GroupComm<'a, C> {
        debug_assert_eq!(self.len() % d, 0, "line extent must divide group");
        let base = self.me / d * d;
        let members = self.members[base..base + d].to_vec();
        GroupComm {
            comm: self.comm,
            members,
            me: self.me % d,
        }
    }

    /// My dimension-0 *plane* for a first-dimension extent `d`: the
    /// `len/d` logical ranks sharing my dimension-0 coordinate
    /// (`me mod d`), strided by `d`. My logical rank within the plane is
    /// `⌊me/d⌋`.
    pub fn plane(&self, d: usize) -> GroupComm<'a, C> {
        debug_assert_eq!(self.len() % d, 0, "plane extent must divide group");
        let offset = self.me % d;
        let members = (0..self.len() / d)
            .map(|j| self.members[offset + j * d])
            .collect();
        GroupComm {
            comm: self.comm,
            members,
            me: self.me / d,
        }
    }

    /// Validates a logical peer rank.
    fn check(&self, peer: usize) -> Result<()> {
        if peer < self.len() {
            Ok(())
        } else {
            Err(CommError::InvalidRank {
                rank: peer,
                size: self.len(),
            })
        }
    }

    /// Typed blocking send to logical rank `to`.
    pub fn send<T: Scalar>(&self, to: usize, tag: Tag, data: &[T]) -> Result<()> {
        self.check(to)?;
        self.comm.send(self.members[to], tag, T::as_bytes(data))
    }

    /// Typed blocking receive from logical rank `from`.
    pub fn recv<T: Scalar>(&self, from: usize, tag: Tag, buf: &mut [T]) -> Result<()> {
        self.check(from)?;
        self.comm
            .recv(self.members[from], tag, T::as_bytes_mut(buf))
    }

    /// Typed concurrent exchange: send `data` to `to` while receiving
    /// into `buf` from `from`.
    pub fn sendrecv<T: Scalar>(
        &self,
        to: usize,
        data: &[T],
        from: usize,
        buf: &mut [T],
        tag: Tag,
    ) -> Result<()> {
        self.check(to)?;
        self.check(from)?;
        self.comm.sendrecv(
            self.members[to],
            T::as_bytes(data),
            self.members[from],
            T::as_bytes_mut(buf),
            tag,
        )
    }

    /// Typed concurrent exchange with independent per-half tags (see
    /// [`Comm::sendrecv_tagged`]).
    pub fn sendrecv_tagged<T: Scalar>(
        &self,
        to: usize,
        data: &[T],
        stag: Tag,
        from: usize,
        buf: &mut [T],
        rtag: Tag,
    ) -> Result<()> {
        self.check(to)?;
        self.check(from)?;
        self.comm.sendrecv_tagged(
            self.members[to],
            T::as_bytes(data),
            stag,
            self.members[from],
            T::as_bytes_mut(buf),
            rtag,
        )
    }

    /// γ-accounting passthrough (in element bytes).
    pub fn compute(&self, bytes: usize) {
        self.comm.compute(bytes);
    }

    /// δ-accounting passthrough.
    pub fn call_overhead(&self) {
        self.comm.call_overhead();
    }

    /// Local copy of `src` into `dst` with the recording hook fired, so
    /// schedule lowering observes in-rank data movement. Panics on
    /// length mismatch (an internal invariant, as with `copy_from_slice`).
    pub fn copy<T: Scalar>(&self, src: &[T], dst: &mut [T]) {
        dst.copy_from_slice(src);
        self.comm.local_copy(T::as_bytes(src), T::as_bytes(dst));
    }

    /// Local fold of `other` into `acc` with the recording hook and the
    /// γ-accounting the combining collectives charge per fold.
    pub fn fold<T: Elem>(&self, op: ReduceOp, acc: &mut [T], other: &[T]) {
        op.fold_into(acc, other);
        self.comm.local_reduce(T::as_bytes(acc), T::as_bytes(other));
        self.comm.compute(std::mem::size_of_val(acc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_comm_world() {
        let c = SelfComm;
        let g = GroupComm::world(&c);
        assert_eq!(g.len(), 1);
        assert_eq!(g.me(), 0);
        assert_eq!(g.world_rank(0), 0);
    }

    #[test]
    fn self_comm_rejects_traffic() {
        let c = SelfComm;
        assert!(c.send(1, 0, &[0u8]).is_err());
        let mut b = [0u8];
        assert!(c.recv(1, 0, &mut b).is_err());
    }

    #[test]
    fn group_requires_membership() {
        let c = SelfComm;
        assert!(matches!(
            GroupComm::new(&c, vec![3, 4]),
            Err(CommError::NotInGroup)
        ));
        let g = GroupComm::new(&c, vec![0]).unwrap();
        assert_eq!(g.me(), 0);
    }

    // line/plane geometry is testable without any communication: use a
    // fake endpoint with a configurable rank.
    struct FakeComm {
        rank: usize,
        size: usize,
    }
    impl Comm for FakeComm {
        fn rank(&self) -> usize {
            self.rank
        }
        fn size(&self) -> usize {
            self.size
        }
        fn send(&self, _: usize, _: Tag, _: &[u8]) -> Result<()> {
            unimplemented!()
        }
        fn recv(&self, _: usize, _: Tag, _: &mut [u8]) -> Result<()> {
            unimplemented!()
        }
        fn sendrecv(&self, _: usize, _: &[u8], _: usize, _: &mut [u8], _: Tag) -> Result<()> {
            unimplemented!()
        }
    }

    #[test]
    fn line_geometry() {
        let c = FakeComm { rank: 7, size: 12 };
        let g = GroupComm::world(&c);
        let line = g.line(3); // ranks [6, 7, 8]
        assert_eq!(line.members(), &[6, 7, 8]);
        assert_eq!(line.me(), 1);
    }

    #[test]
    fn plane_geometry() {
        let c = FakeComm { rank: 7, size: 12 };
        let g = GroupComm::world(&c);
        let plane = g.plane(3); // coordinate 7 % 3 == 1: ranks [1, 4, 7, 10]
        assert_eq!(plane.members(), &[1, 4, 7, 10]);
        assert_eq!(plane.me(), 2);
    }

    #[test]
    fn nested_line_plane_compose() {
        // dims [2, 3, 2] over 12 ranks, rank 7 = (1, 0, 1): line(2) then
        // plane-of-plane arithmetic must agree with mixed-radix indices.
        let c = FakeComm { rank: 7, size: 12 };
        let g = GroupComm::world(&c);
        let p1 = g.plane(2); // strip dim0 (coord 1): [1,3,5,7,9,11], me=3
        assert_eq!(p1.me(), 3);
        let line2 = p1.line(3); // dim1 line within plane: [7/?]..
                                // p1 members [1,3,5,7,9,11]; me=3 → base 3/3*3=3 → members[3..6] = [7,9,11]
        assert_eq!(line2.members(), &[7, 9, 11]);
        assert_eq!(line2.me(), 0);
    }

    #[test]
    fn group_peer_validation() {
        let c = SelfComm;
        let g = GroupComm::world(&c);
        let mut buf = [0u8; 1];
        assert!(matches!(
            g.recv(5, 0, &mut buf),
            Err(CommError::InvalidRank { rank: 5, size: 1 })
        ));
    }
}
