//! Recycling buffer pool for transport payloads.
//!
//! The paper's model charges every message `α + nβ`; a heap allocation
//! per hop inflates the *effective* α of any real backend. Both shipped
//! backends therefore carry payloads in pooled `Vec<u8>`s: a sender
//! acquires a buffer from its pool, the receiver copies the bytes out
//! and returns the buffer to the originating pool, and after a warm-up
//! round every hop runs allocation-free.
//!
//! Buffers are kept in size-classed free lists (power-of-two capacity
//! classes), so a pool serving mixed message sizes never hands out a
//! buffer with insufficient capacity and never shrinks one. The pool is
//! `Sync` (a single `Mutex` around the free lists — the critical section
//! is a pointer push/pop) and its hit/miss counters let tests and
//! benches assert steady-state behaviour.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of power-of-two size classes: class `c` holds buffers of
/// capacity at least `1 << c`, covering payloads up to 1 GiB.
const NUM_CLASSES: usize = 31;

/// Default bound on buffers retained per size class; extras are freed on
/// release rather than hoarded.
pub const DEFAULT_MAX_PER_CLASS: usize = 64;

/// Cumulative acquire/release counters of a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquires served from a free list (no heap allocation).
    pub hits: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to a free list.
    pub recycled: u64,
    /// Buffers dropped on release because their class was full.
    pub discarded: u64,
}

impl PoolStats {
    /// Fraction of acquires served without allocating, in `[0, 1]` —
    /// or `None` for a pool that was never asked (disabled, or every
    /// transfer took the zero-copy rendezvous path). A bypassed pool
    /// has no hit rate; reporting `1.0` for it would flatter exactly
    /// the shapes that skip pooling.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total != 0).then(|| self.hits as f64 / total as f64)
    }

    /// Accumulates `other` into `self` (for cross-rank aggregates — a
    /// single rank's pool understates misses on asymmetric schedules
    /// where peers release into the sender's free lists).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled += other.recycled;
        self.discarded += other.discarded;
    }

    /// The counter-wise difference `self − prev`: what the pool did
    /// *between* two snapshots, so live views and bench A/Bs read
    /// interval rates directly instead of re-deriving them from raw
    /// totals. Merge-consistent with [`merge`](PoolStats::merge):
    /// `merge(a, b).delta(&merge(a0, b0)) == merge(a.delta(&a0), b.delta(&b0))`.
    pub fn delta(&self, prev: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            recycled: self.recycled.saturating_sub(prev.recycled),
            discarded: self.discarded.saturating_sub(prev.discarded),
        }
    }
}

/// A size-classed recycling pool of `Vec<u8>` payload buffers.
pub struct BufferPool {
    classes: Mutex<Vec<Vec<Vec<u8>>>>,
    max_per_class: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Size class that can serve a request of `len` bytes: the smallest `c`
/// with `1 << c >= len`.
fn class_for_len(len: usize) -> usize {
    (len.max(1).next_power_of_two().trailing_zeros() as usize).min(NUM_CLASSES - 1)
}

/// Size class a buffer of `capacity` belongs in on release: the largest
/// `c` with `1 << c <= capacity`, so every buffer in class `c` can serve
/// any request routed there.
fn class_for_capacity(capacity: usize) -> usize {
    debug_assert!(capacity > 0);
    ((usize::BITS - 1 - capacity.leading_zeros()) as usize).min(NUM_CLASSES - 1)
}

impl BufferPool {
    /// An empty pool with the default per-class retention bound.
    pub fn new() -> Self {
        Self::with_max_per_class(DEFAULT_MAX_PER_CLASS)
    }

    /// A pool that never retains anything: every acquire allocates and
    /// every release frees. This is the pre-pooling transport behaviour,
    /// kept as an A/B baseline for the `hotpath` bench.
    pub fn disabled() -> Self {
        Self::with_max_per_class(0)
    }

    /// An empty pool retaining at most `max_per_class` buffers per size
    /// class.
    pub fn with_max_per_class(max_per_class: usize) -> Self {
        BufferPool {
            classes: Mutex::new((0..NUM_CLASSES).map(|_| Vec::new()).collect()),
            max_per_class,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// Acquires an empty buffer with capacity for at least `len` bytes.
    /// Served from the free list when possible (a *hit*); otherwise a
    /// fresh rounded-up allocation (a *miss*). Zero-length requests are
    /// allocation-free by construction and count as hits.
    pub fn acquire(&self, len: usize) -> Vec<u8> {
        if len == 0 {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Vec::new();
        }
        let class = class_for_len(len);
        let recycled = {
            let mut classes = self.classes.lock().unwrap();
            classes[class].pop()
        };
        match recycled {
            Some(mut buf) => {
                debug_assert!(buf.capacity() >= len);
                buf.clear();
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(1 << class)
            }
        }
    }

    /// Returns a buffer to its size class for reuse. Buffers with no
    /// backing allocation, and overflow beyond the per-class bound, are
    /// simply dropped.
    pub fn release(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = class_for_capacity(buf.capacity());
        let mut classes = self.classes.lock().unwrap();
        if classes[class].len() < self.max_per_class {
            classes[class].push(buf);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(classes);
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    /// Buffers currently parked across all free lists.
    pub fn free_buffers(&self) -> usize {
        self.classes.lock().unwrap().iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle_hits() {
        let pool = BufferPool::new();
        let b = pool.acquire(100);
        assert!(b.capacity() >= 100);
        assert!(b.is_empty());
        pool.release(b);
        let b2 = pool.acquire(100);
        assert!(b2.capacity() >= 100);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.recycled), (1, 1, 1));
    }

    #[test]
    fn smaller_request_reuses_larger_buffer_class_only_if_compatible() {
        let pool = BufferPool::new();
        // A 1024-capacity buffer lands in class 10 and must not serve a
        // class-4 request (different list), but must serve class 10.
        pool.release(Vec::with_capacity(1024));
        let small = pool.acquire(16);
        assert_eq!(pool.stats().misses, 1, "class-4 request missed");
        let big = pool.acquire(1000);
        assert!(big.capacity() >= 1000);
        assert_eq!(pool.stats().hits, 1, "class-10 request hit");
        pool.release(small);
        pool.release(big);
    }

    #[test]
    fn zero_length_never_allocates() {
        let pool = BufferPool::new();
        let b = pool.acquire(0);
        assert_eq!(b.capacity(), 0);
        assert_eq!(pool.stats().misses, 0);
        pool.release(b); // dropped silently
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn retention_bound_discards_overflow() {
        let pool = BufferPool::with_max_per_class(2);
        for _ in 0..4 {
            pool.release(Vec::with_capacity(64));
        }
        let s = pool.stats();
        assert_eq!(s.recycled, 2);
        assert_eq!(s.discarded, 2);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn class_arithmetic() {
        assert_eq!(class_for_len(1), 0);
        assert_eq!(class_for_len(2), 1);
        assert_eq!(class_for_len(3), 2);
        assert_eq!(class_for_len(1024), 10);
        assert_eq!(class_for_len(1025), 11);
        assert_eq!(class_for_capacity(1024), 10);
        assert_eq!(class_for_capacity(1536), 10);
        assert_eq!(class_for_capacity(2048), 11);
        // Round trip: a miss-allocated buffer returns to the class it
        // serves.
        for len in [1usize, 2, 3, 7, 100, 4096, 1 << 20] {
            let c = class_for_len(len);
            assert_eq!(class_for_capacity(1 << c), c);
        }
    }

    #[test]
    fn hit_rate_of_untouched_pool_is_not_applicable() {
        // A pool nothing ever acquired from (disabled transport, pure
        // rendezvous traffic) has no hit rate — `Some(1.0)` here would
        // report perfect pooling for shapes that bypass the pool.
        assert_eq!(BufferPool::new().stats().hit_rate(), None);
        assert_eq!(BufferPool::disabled().stats().hit_rate(), None);
    }

    #[test]
    fn hit_rate_counts_misses_honestly() {
        let pool = BufferPool::new();
        let b = pool.acquire(64); // miss: fresh pool allocates
        pool.release(b);
        let b = pool.acquire(64); // hit: served from the free list
        pool.release(b);
        assert_eq!(pool.stats().hit_rate(), Some(0.5));
    }

    #[test]
    fn stats_merge_sums_all_counters() {
        let a = PoolStats {
            hits: 3,
            misses: 1,
            recycled: 4,
            discarded: 0,
        };
        let mut b = PoolStats {
            hits: 1,
            misses: 0,
            recycled: 1,
            discarded: 2,
        };
        b.merge(&a);
        assert_eq!(
            b,
            PoolStats {
                hits: 4,
                misses: 1,
                recycled: 5,
                discarded: 2,
            }
        );
        assert_eq!(b.hit_rate(), Some(0.8));
    }

    #[test]
    fn pool_is_sync_and_usable_across_threads() {
        let pool = std::sync::Arc::new(BufferPool::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = pool.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        let b = p.acquire(i * 17 % 300 + 1);
                        p.release(b);
                    }
                });
            }
        });
        let st = pool.stats();
        assert_eq!(st.hits + st.misses, 400);
    }
}
