//! Automatic algorithm selection.
//!
//! The paper refines its techniques "to the point where very good hybrids
//! can be obtained as long as good short and long vector primitives are
//! provided as well as an accurate model for their expense as a function
//! of message length and number of interleaving subgroups" (§7.1). The
//! selector does exactly that: given the collective, the group's physical
//! shape, the message length and the machine parameters, it evaluates the
//! closed-form cost of every enumerable strategy and returns the
//! cheapest.

use intercom_cost::select::best_mesh_strategy;
use intercom_cost::{
    best_strategy, ClusterShape, CollectiveOp, CostContext, MachineParams, Strategy,
};
use intercom_topology::{GroupStructure, Mesh2D, ProcGroup};

/// The physical shape the selector assumes for a group (paper §9: "in
/// cases where a group comprises a physical rectangular submesh, the same
/// row- and column-based techniques are used as in the whole-mesh
/// operations. When a group is unstructured … it is treated as though it
/// were a linear array").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupShape {
    /// A linear array (physical line or unstructured group) of `p` nodes.
    Linear(usize),
    /// A rectangular physical submesh: stages run within dedicated
    /// physical rows and columns.
    Mesh {
        /// Submesh height.
        rows: usize,
        /// Submesh width.
        cols: usize,
    },
    /// A two-level cluster: an inter-node mesh of nodes, each holding
    /// `ranks_per_node` ranks, numbered node-major. Hierarchical
    /// selection applies when the communicator also carries per-level
    /// machine parameters; flat selection treats the group as a linear
    /// array priced at the network level.
    Cluster {
        /// Rows of the inter-node mesh.
        inter_rows: usize,
        /// Columns of the inter-node mesh.
        inter_cols: usize,
        /// Ranks per node.
        ranks_per_node: usize,
    },
}

impl GroupShape {
    /// Number of ranks covered.
    pub fn nodes(&self) -> usize {
        match *self {
            GroupShape::Linear(p) => p,
            GroupShape::Mesh { rows, cols } => rows * cols,
            GroupShape::Cluster {
                inter_rows,
                inter_cols,
                ranks_per_node,
            } => inter_rows * inter_cols * ranks_per_node,
        }
    }

    /// The cluster variant for a hierarchy descriptor.
    pub fn cluster(shape: ClusterShape) -> GroupShape {
        GroupShape::Cluster {
            inter_rows: shape.inter_rows,
            inter_cols: shape.inter_cols,
            ranks_per_node: shape.ranks_per_node,
        }
    }

    /// The hierarchy descriptor, when this shape is a cluster.
    pub fn cluster_shape(&self) -> Option<ClusterShape> {
        match *self {
            GroupShape::Cluster {
                inter_rows,
                inter_cols,
                ranks_per_node,
            } => Some(ClusterShape {
                inter_rows,
                inter_cols,
                ranks_per_node,
            }),
            _ => None,
        }
    }

    /// Classifies `group` on `mesh` per §9's structure extraction.
    pub fn detect(group: &ProcGroup, mesh: &Mesh2D) -> GroupShape {
        match group.structure(mesh) {
            GroupStructure::Submesh { rows, cols, .. } => GroupShape::Mesh { rows, cols },
            GroupStructure::PhysicalLine | GroupStructure::Unstructured => {
                GroupShape::Linear(group.len())
            }
        }
    }
}

/// Picks the cheapest strategy for `op` over a group of `shape` at
/// message length `n_bytes` on `machine`.
pub fn choose_strategy(
    op: CollectiveOp,
    shape: GroupShape,
    n_bytes: usize,
    machine: &MachineParams,
) -> Strategy {
    match shape {
        GroupShape::Linear(p) => {
            best_strategy(op, p, n_bytes, machine, CostContext::linear_with(machine))
        }
        GroupShape::Mesh { rows, cols } => best_mesh_strategy(op, rows, cols, n_bytes, machine),
        // Flat selection over a cluster: the schedule is level-blind,
        // so the group is a linear array of all ranks priced at the
        // supplied (network-level) parameters. Hierarchical candidates
        // are priced separately by `intercom_cost::choose_hier`.
        GroupShape::Cluster { .. } => best_strategy(
            op,
            shape.nodes(),
            n_bytes,
            machine,
            CostContext::linear_with(machine),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom_cost::StrategyKind;

    #[test]
    fn detect_shapes() {
        let mesh = Mesh2D::new(4, 6);
        assert_eq!(
            GroupShape::detect(&ProcGroup::whole_mesh(&mesh), &mesh),
            GroupShape::Mesh { rows: 4, cols: 6 }
        );
        assert_eq!(
            GroupShape::detect(&ProcGroup::mesh_row(&mesh, 1), &mesh),
            GroupShape::Linear(6)
        );
        let scattered = ProcGroup::new(vec![0, 7, 14, 21]).unwrap();
        assert_eq!(GroupShape::detect(&scattered, &mesh), GroupShape::Linear(4));
    }

    #[test]
    fn short_messages_choose_mst_kind() {
        let s = choose_strategy(
            CollectiveOp::Broadcast,
            GroupShape::Linear(32),
            8,
            &MachineParams::PARAGON,
        );
        assert_eq!(s.kind, StrategyKind::Mst);
    }

    #[test]
    fn long_messages_choose_long_kind() {
        let s = choose_strategy(
            CollectiveOp::Broadcast,
            GroupShape::Linear(32),
            1 << 20,
            &MachineParams::PARAGON,
        );
        assert_eq!(s.kind, StrategyKind::ScatterCollect);
    }

    #[test]
    fn mesh_selection_covers_all_nodes() {
        for n in [8, 1024, 1 << 20] {
            let s = choose_strategy(
                CollectiveOp::CombineToAll,
                GroupShape::Mesh { rows: 16, cols: 32 },
                n,
                &MachineParams::PARAGON,
            );
            assert_eq!(s.nodes(), 512, "n={n}");
        }
    }

    #[test]
    fn cluster_shape_round_trips_and_prices_flat_over_all_ranks() {
        let shape = GroupShape::cluster(ClusterShape::linear(4, 4));
        assert_eq!(shape.nodes(), 16);
        assert_eq!(
            shape.cluster_shape(),
            Some(ClusterShape {
                inter_rows: 1,
                inter_cols: 4,
                ranks_per_node: 4,
            })
        );
        assert_eq!(GroupShape::Linear(16).cluster_shape(), None);
        // Flat selection over a cluster is level-blind: same answer as a
        // 16-rank linear array at the same (network-level) parameters.
        for n in [8usize, 1 << 20] {
            let on_cluster =
                choose_strategy(CollectiveOp::Broadcast, shape, n, &MachineParams::PARAGON);
            let on_line = choose_strategy(
                CollectiveOp::Broadcast,
                GroupShape::Linear(16),
                n,
                &MachineParams::PARAGON,
            );
            assert_eq!(on_cluster, on_line, "n={n}");
        }
    }

    #[test]
    fn singleton_group() {
        let s = choose_strategy(
            CollectiveOp::Collect,
            GroupShape::Linear(1),
            64,
            &MachineParams::PARAGON,
        );
        assert_eq!(s.nodes(), 1);
    }
}
