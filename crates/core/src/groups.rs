//! Mesh-aware group construction helpers (paper §9).
//!
//! "Many applications require parallel implementations formulated in
//! terms of computation and communication within node groups (e.g. rows
//! and columns of a logical mesh)." These helpers build the common group
//! communicators — my physical row, my physical column, an arbitrary
//! rectangular submesh — with the physical structure already extracted
//! so the §7.1 row/column techniques apply automatically.

use crate::comm::Comm;
use crate::communicator::Communicator;
use crate::error::Result;
use intercom_cost::MachineParams;
use intercom_topology::{Coord, Mesh2D};

/// Node ids of physical row `r`, west→east — the logical order
/// [`MeshWorld::my_row`] uses. Comm-free so embedding-consumers (the
/// multi-program verifier, workload generators) can build the same
/// rank→node maps a live group communicator would induce.
pub fn row_members(mesh: &Mesh2D, r: usize) -> Vec<usize> {
    mesh.row_nodes(r)
}

/// Node ids of physical column `c`, north→south — the logical order
/// [`MeshWorld::my_col`] uses.
pub fn col_members(mesh: &Mesh2D, c: usize) -> Vec<usize> {
    mesh.col_nodes(c)
}

/// Node ids of the rectangular submesh with corner `(row0, col0)` and
/// extent `rows × cols`, row-major — the logical order
/// [`MeshWorld::submesh`] uses. Panics if the rectangle leaves the mesh.
pub fn submesh_members(
    mesh: &Mesh2D,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
) -> Vec<usize> {
    assert!(
        row0 + rows <= mesh.rows() && col0 + cols <= mesh.cols(),
        "submesh {rows}x{cols} at ({row0},{col0}) leaves the {}x{} mesh",
        mesh.rows(),
        mesh.cols(),
    );
    let mut members = Vec::with_capacity(rows * cols);
    for r in row0..row0 + rows {
        for c in col0..col0 + cols {
            members.push(mesh.id(Coord::new(r, c)));
        }
    }
    members
}

/// A world laid out as a physical 2-D mesh, row-major: node id
/// `= row · cols + col`. Factory for whole-mesh, row, column and submesh
/// communicators.
pub struct MeshWorld<'a, C: Comm + ?Sized> {
    comm: &'a C,
    mesh: Mesh2D,
    machine: MachineParams,
}

impl<'a, C: Comm + ?Sized> MeshWorld<'a, C> {
    /// Binds `comm` to `mesh`; the world size must match.
    pub fn new(comm: &'a C, mesh: Mesh2D, machine: MachineParams) -> Result<Self> {
        if comm.size() != mesh.nodes() {
            return Err(crate::error::CommError::BadBufferSize {
                expected: mesh.nodes(),
                actual: comm.size(),
            });
        }
        Ok(MeshWorld {
            comm,
            mesh,
            machine,
        })
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    /// My physical coordinates.
    pub fn my_coord(&self) -> Coord {
        self.mesh.coord(self.comm.rank())
    }

    /// Whole-mesh communicator with row/column staging enabled.
    pub fn world(&self) -> Result<Communicator<'a, C>> {
        Communicator::world_on_mesh(self.comm, self.machine, self.mesh)
    }

    /// Communicator over my physical row (west→east logical order).
    pub fn my_row(&self) -> Result<Communicator<'a, C>> {
        let r = self.my_coord().row;
        Communicator::from_group(
            self.comm,
            self.machine,
            self.mesh.row_nodes(r),
            Some(&self.mesh),
        )
    }

    /// Communicator over my physical column (north→south logical order).
    pub fn my_col(&self) -> Result<Communicator<'a, C>> {
        let c = self.my_coord().col;
        Communicator::from_group(
            self.comm,
            self.machine,
            self.mesh.col_nodes(c),
            Some(&self.mesh),
        )
    }

    /// Communicator over the rectangular submesh with corner
    /// `(row0, col0)` and extent `rows × cols`, row-major logical order.
    /// The calling node must be inside the rectangle.
    pub fn submesh(
        &self,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Communicator<'a, C>> {
        let members = submesh_members(&self.mesh, row0, col0, rows, cols);
        Communicator::from_group(self.comm, self.machine, members, Some(&self.mesh))
    }

    /// Communicator over an arbitrary member list; structure is detected
    /// automatically (§9).
    pub fn group(&self, members: Vec<usize>) -> Result<Communicator<'a, C>> {
        Communicator::from_group(self.comm, self.machine, members, Some(&self.mesh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;
    use crate::selector::GroupShape;

    #[test]
    fn one_node_mesh_world() {
        let c = SelfComm;
        let mw = MeshWorld::new(&c, Mesh2D::new(1, 1), MachineParams::PARAGON).unwrap();
        assert_eq!(mw.my_coord(), Coord::new(0, 0));
        let w = mw.world().unwrap();
        assert_eq!(w.shape(), GroupShape::Mesh { rows: 1, cols: 1 });
        let row = mw.my_row().unwrap();
        assert_eq!(row.size(), 1);
        let col = mw.my_col().unwrap();
        assert_eq!(col.size(), 1);
        let sub = mw.submesh(0, 0, 1, 1).unwrap();
        assert_eq!(sub.size(), 1);
    }

    #[test]
    fn size_mismatch_rejected() {
        let c = SelfComm;
        assert!(MeshWorld::new(&c, Mesh2D::new(2, 3), MachineParams::PARAGON).is_err());
    }

    #[test]
    fn group_requires_membership() {
        let c = SelfComm;
        let mw = MeshWorld::new(&c, Mesh2D::new(1, 1), MachineParams::PARAGON).unwrap();
        assert!(mw.group(vec![0]).is_ok());
    }

    #[test]
    fn row_and_col_members_on_3x3() {
        let m = Mesh2D::new(3, 3);
        assert_eq!(row_members(&m, 0), [0, 1, 2]);
        assert_eq!(row_members(&m, 2), [6, 7, 8]);
        assert_eq!(col_members(&m, 0), [0, 3, 6]);
        assert_eq!(col_members(&m, 2), [2, 5, 8]);
    }

    #[test]
    fn submesh_members_on_4x4() {
        let m = Mesh2D::new(4, 4);
        // Interior 2x2 block at (1,1): row-major logical order.
        assert_eq!(submesh_members(&m, 1, 1, 2, 2), [5, 6, 9, 10]);
        // Full mesh is the identity embedding.
        assert_eq!(submesh_members(&m, 0, 0, 4, 4), (0..16).collect::<Vec<_>>());
        // A row / a column are the row_members / col_members embeddings.
        assert_eq!(submesh_members(&m, 2, 0, 1, 4), row_members(&m, 2));
        assert_eq!(submesh_members(&m, 0, 3, 4, 1), col_members(&m, 3));
    }

    #[test]
    fn degenerate_1xp_submeshes() {
        let m = Mesh2D::new(1, 5);
        assert_eq!(row_members(&m, 0), [0, 1, 2, 3, 4]);
        assert_eq!(col_members(&m, 3), [3]);
        assert_eq!(submesh_members(&m, 0, 1, 1, 3), [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "leaves the")]
    fn submesh_out_of_bounds_panics() {
        submesh_members(&Mesh2D::new(3, 3), 2, 2, 2, 2);
    }
}
