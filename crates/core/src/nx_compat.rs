//! NX-compatible calling sequences (paper §10).
//!
//! The original library shipped `NXtoiCC.<vers>.a`, "which converts all
//! NX collective operations to Intercom collective operations". This
//! module is that shim: the classic NX global-operation entry points
//! (`gdsum`, `gdhigh`, `gdlow`, `gisum`, `gcolx`, and the broadcast that
//! replaced `csend(-1)`) mapped onto the auto-selecting [`Communicator`].
//!
//! NX semantics notes: the `g*` operations take a work array the same
//! length as the data (mirrored here by internal workspace), and `gcolx`
//! concatenates per-node contributions of *known lengths* — this shim,
//! like the paper's experiments, uses equal lengths.

use crate::comm::Comm;
use crate::communicator::Communicator;
use crate::error::Result;
use crate::op::ReduceOp;

/// The NX-style facade over a [`Communicator`].
pub struct NxWorld<'a, C: Comm + ?Sized> {
    cc: &'a Communicator<'a, C>,
}

impl<'a, C: Comm + ?Sized> NxWorld<'a, C> {
    /// Wraps a communicator.
    pub fn new(cc: &'a Communicator<'a, C>) -> Self {
        NxWorld { cc }
    }

    /// `gdsum`: global sum of doubles, result everywhere.
    pub fn gdsum(&self, x: &mut [f64]) -> Result<()> {
        self.cc.allreduce(x, ReduceOp::Sum)
    }

    /// `gdhigh`: global element-wise max of doubles, result everywhere.
    pub fn gdhigh(&self, x: &mut [f64]) -> Result<()> {
        self.cc.allreduce(x, ReduceOp::Max)
    }

    /// `gdlow`: global element-wise min of doubles, result everywhere.
    pub fn gdlow(&self, x: &mut [f64]) -> Result<()> {
        self.cc.allreduce(x, ReduceOp::Min)
    }

    /// `gisum`: global sum of integers, result everywhere.
    pub fn gisum(&self, x: &mut [i64]) -> Result<()> {
        self.cc.allreduce(x, ReduceOp::Sum)
    }

    /// `gihigh`: global element-wise max of integers.
    pub fn gihigh(&self, x: &mut [i64]) -> Result<()> {
        self.cc.allreduce(x, ReduceOp::Max)
    }

    /// `gilow`: global element-wise min of integers.
    pub fn gilow(&self, x: &mut [i64]) -> Result<()> {
        self.cc.allreduce(x, ReduceOp::Min)
    }

    /// `gcolx`: concatenate each node's `mine` into `all` in node order
    /// (known, equal lengths).
    pub fn gcolx(&self, mine: &[f64], all: &mut [f64]) -> Result<()> {
        self.cc.allgather(mine, all)
    }

    /// `iCC_bcast`: the Intercom broadcast that replaces NX's
    /// `csend(-1)`.
    pub fn bcast(&self, root: usize, x: &mut [f64]) -> Result<()> {
        self.cc.bcast(root, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;
    use intercom_cost::MachineParams;

    #[test]
    fn facade_runs_on_world_of_one() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let nx = NxWorld::new(&cc);
        let mut x = vec![1.0, 2.0];
        nx.gdsum(&mut x).unwrap();
        nx.gdhigh(&mut x).unwrap();
        nx.gdlow(&mut x).unwrap();
        nx.bcast(0, &mut x).unwrap();
        assert_eq!(x, [1.0, 2.0]);
        let mut xi = vec![3i64];
        nx.gisum(&mut xi).unwrap();
        nx.gihigh(&mut xi).unwrap();
        nx.gilow(&mut xi).unwrap();
        assert_eq!(xi, [3]);
        let mine = [5.0];
        let mut all = [0.0];
        nx.gcolx(&mine, &mut all).unwrap();
        assert_eq!(all, [5.0]);
    }
}
