//! The acting half of the closed autotuning loop: turn a
//! [`DriftVerdict`] into a [`MachineParams`] refit, plan-cache
//! invalidation and strategy re-selection.
//!
//! The obs side (`obs::drift`) *senses* — it folds streaming residual
//! reports into an online α̂/β̂ estimate and raises a verdict when the
//! estimate departs from the configured machine. This module *acts* on
//! the verdict, which only the core crate can do, because it owns the
//! plan cache and the selector:
//!
//! 1. install the refit via [`TunedParams::refit`] (bumping the params
//!    version, exported as the `intercom_machine_params_version` gauge);
//! 2. for every call shape the tuner has seen, re-run the selector
//!    under the new parameters;
//! 3. where the choice changed, [`PlanCache::invalidate_matching`] the
//!    stale entries and [`PlanCache::warm_up`] the new winner, so the
//!    next collective call compiles nothing and prices correctly;
//! 4. report everything in a [`RetuneReport`] with both strategies
//!    priced under the *new* parameters, making the win auditable.
//!
//! This is ROADMAP's "closed-loop autotuning from observed residuals"
//! ("Fast Tuning of Intra-Cluster Collective Communications" rebuilt on
//! verified schedules), end to end.

use crate::ir::{global_cache, OptLevel, PlanCache, PlanKey, PlanOp};
use crate::selector::{choose_strategy, GroupShape};
use intercom_cost::{hybrid_cost, CollectiveOp, CostContext, MachineParams, Strategy, TunedParams};
use intercom_obs::drift::{DriftConfig, DriftMonitor, DriftVerdict};
use intercom_obs::residual::ResidualReport;

/// One call shape the tuner re-selects for after a refit: the plan-side
/// identity (what the cache is keyed on) plus the cost-side identity
/// (what the selector prices).
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedShape {
    /// The compiled op (with root/segment parameters) as cached.
    pub plan_op: PlanOp,
    /// The selector-facing collective.
    pub cost_op: CollectiveOp,
    /// The group shape selection runs over.
    pub shape: GroupShape,
    /// Size parameter in elements (the plan key's `n`).
    pub n_elems: usize,
    /// Element width in bytes.
    pub elem_size: usize,
    /// The byte length the selector prices (the communicator passes
    /// `len · elem_size` for vector-length ops).
    pub n_cost_bytes: usize,
}

/// One re-selection performed by a retune: the shape, the stale and
/// fresh strategies, and both priced under the *new* parameters.
#[derive(Debug, Clone)]
pub struct Reselect {
    /// The call shape that flipped.
    pub shape: TrackedShape,
    /// The strategy selected under the stale parameters.
    pub old: Strategy,
    /// The strategy selected under the refit parameters.
    pub new: Strategy,
    /// `old`'s predicted seconds under the refit parameters.
    pub old_cost: f64,
    /// `new`'s predicted seconds under the refit parameters.
    pub new_cost: f64,
    /// Cache entries invalidated for this shape.
    pub invalidated: usize,
}

/// What one [`DriftVerdict`] caused.
#[derive(Debug, Clone)]
pub struct RetuneReport {
    /// The verdict that triggered the retune.
    pub verdict: DriftVerdict,
    /// Parameters before the refit.
    pub old_params: MachineParams,
    /// Parameters now active.
    pub new_params: MachineParams,
    /// The bumped params version.
    pub version: u64,
    /// Shapes whose best strategy changed (stale entries invalidated,
    /// new winner warmed).
    pub reselections: Vec<Reselect>,
    /// Total cache entries invalidated.
    pub invalidated: usize,
    /// Programs freshly compiled by re-warming.
    pub warmed: usize,
}

/// The closed-loop tuner: wraps a [`DriftMonitor`] and a versioned
/// parameter set, and acts on verdicts against the plan cache.
#[derive(Debug)]
pub struct AutoTuner {
    monitor: DriftMonitor,
    tuned: TunedParams,
    shapes: Vec<TrackedShape>,
}

impl AutoTuner {
    /// A tuner for a machine configured as `params`, with default drift
    /// knobs.
    pub fn new(params: MachineParams) -> Self {
        Self::with_config(params, DriftConfig::default())
    }

    /// A tuner with explicit drift knobs.
    pub fn with_config(params: MachineParams, cfg: DriftConfig) -> Self {
        AutoTuner {
            monitor: DriftMonitor::with_config(params, cfg),
            tuned: TunedParams::new(params),
            shapes: Vec::new(),
        }
    }

    /// The parameters currently pricing selections.
    pub fn params(&self) -> &MachineParams {
        &self.tuned.current
    }

    /// The current params version (1 = as configured; each refit bumps).
    pub fn version(&self) -> u64 {
        self.tuned.version
    }

    /// Read access to the wrapped monitor (estimate, sample count).
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Registers a call shape for post-refit re-selection. Duplicate
    /// registrations are ignored.
    pub fn track(&mut self, shape: TrackedShape) {
        if !self.shapes.contains(&shape) {
            self.shapes.push(shape);
        }
    }

    /// The shapes the tuner will re-select after a refit.
    pub fn tracked(&self) -> &[TrackedShape] {
        &self.shapes
    }

    /// Feeds one residual report; on a drift verdict, retunes against
    /// the process-wide [`global_cache`].
    pub fn observe(&mut self, report: &ResidualReport) -> Option<RetuneReport> {
        self.observe_with_cache(report, global_cache())
    }

    /// Feeds one residual report; on a drift verdict, refits the
    /// parameters, re-selects every tracked shape and
    /// invalidates/re-warms `cache`. Publishes the params version and
    /// retune counters to the metrics registry.
    pub fn observe_with_cache(
        &mut self,
        report: &ResidualReport,
        cache: &PlanCache,
    ) -> Option<RetuneReport> {
        let verdict = self.monitor.observe(report)?;
        let old_params = self.tuned.current;
        let version = self.tuned.refit(verdict.refit.alpha, verdict.refit.beta);
        let new_params = self.tuned.current;
        self.monitor.rebase(new_params);

        let mut reselections = Vec::new();
        let mut invalidated = 0usize;
        let mut warmed = 0usize;
        for shape in &self.shapes {
            let old = choose_strategy(shape.cost_op, shape.shape, shape.n_cost_bytes, &old_params);
            let new = choose_strategy(shape.cost_op, shape.shape, shape.n_cost_bytes, &new_params);
            if old == new {
                continue;
            }
            // Retire every cached plan of this shape (any strategy,
            // any opt level): each was compiled for a choice priced
            // under the stale parameters.
            let dropped = cache.invalidate_matching(|k| {
                k.op == shape.plan_op && k.n == shape.n_elems && k.elem_size == shape.elem_size
            });
            invalidated += dropped;
            warmed += cache
                .warm_up([PlanKey {
                    op: shape.plan_op,
                    p: shape.shape.nodes(),
                    n: shape.n_elems,
                    elem_size: shape.elem_size,
                    strategy: Some(new.clone()),
                    hier: None,
                    opt: OptLevel::Full,
                }])
                .unwrap_or(0);
            let ctx = match shape.shape {
                GroupShape::Linear(_) | GroupShape::Cluster { .. } => {
                    CostContext::linear_with(&new_params)
                }
                GroupShape::Mesh { .. } => CostContext::mesh_with(&new_params),
            };
            let price = |s: &Strategy| {
                hybrid_cost(shape.cost_op, s, ctx).eval(shape.n_cost_bytes, &new_params)
            };
            reselections.push(Reselect {
                shape: shape.clone(),
                old_cost: price(&old),
                new_cost: price(&new),
                old,
                new,
                invalidated: dropped,
            });
        }

        intercom_obs::metrics::counter_add(
            "intercom_drift_verdicts_total",
            &[("param", verdict.param.name())],
            1,
        );
        intercom_obs::metrics::counter_add("intercom_refits_total", &[], 1);
        intercom_obs::metrics::gauge_set("intercom_machine_params_version", &[], version as f64);
        publish_cache_stats(cache);

        Some(RetuneReport {
            verdict,
            old_params,
            new_params,
            version,
            reselections,
            invalidated,
            warmed,
        })
    }
}

/// Publishes a plan cache's counters and occupancy to the metrics
/// registry (no-op when the metrics layer is disabled).
pub fn publish_cache_stats(cache: &PlanCache) {
    if !intercom_obs::metrics::enabled() {
        return;
    }
    let s = cache.stats();
    let reg = intercom_obs::metrics::global();
    reg.gauge_set("intercom_plancache_hits_total", &[], s.hits as f64);
    reg.gauge_set("intercom_plancache_misses_total", &[], s.misses as f64);
    reg.gauge_set(
        "intercom_plancache_evictions_total",
        &[],
        s.evictions as f64,
    );
    reg.gauge_set(
        "intercom_plancache_invalidations_total",
        &[],
        s.invalidations as f64,
    );
    reg.gauge_set("intercom_plancache_entries", &[], s.entries as f64);
    if let Some(rate) = s.hit_rate() {
        reg.gauge_set("intercom_plancache_hit_rate", &[], rate);
    }
}

/// Publishes pool counters and the derived hit rate to the metrics
/// registry (no-op when the metrics layer is disabled).
pub fn publish_pool_stats(stats: &crate::pool::PoolStats) {
    if !intercom_obs::metrics::enabled() {
        return;
    }
    let reg = intercom_obs::metrics::global();
    reg.counter_add("intercom_pool_acquire_hits_total", &[], stats.hits);
    reg.counter_add("intercom_pool_acquire_misses_total", &[], stats.misses);
    reg.counter_add("intercom_pool_recycled_total", &[], stats.recycled);
    reg.counter_add("intercom_pool_discarded_total", &[], stats.discarded);
    if let Some(rate) = stats.hit_rate() {
        reg.gauge_set("intercom_pool_hit_rate", &[], rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_shapes_deduplicate() {
        let mut tuner = AutoTuner::new(MachineParams::PARAGON_MODEL);
        let shape = TrackedShape {
            plan_op: PlanOp::Broadcast { root: 0 },
            cost_op: CollectiveOp::Broadcast,
            shape: GroupShape::Linear(8),
            n_elems: 1024,
            elem_size: 8,
            n_cost_bytes: 8192,
        };
        tuner.track(shape.clone());
        tuner.track(shape);
        assert_eq!(tuner.tracked().len(), 1);
        assert_eq!(tuner.version(), 1);
    }
}
