//! The high-level, MPI-like collective interface (paper §9–§10).
//!
//! A [`Communicator`] binds a point-to-point endpoint, a group (whole
//! world or arbitrary member list), the machine's cost parameters, and
//! the group's detected physical shape. Every collective picks its
//! algorithm automatically from the cost model ([`Algo::Auto`]), or runs
//! a caller-specified short / long / explicit-hybrid algorithm.

use crate::algorithms;
use crate::autotune::{AutoTuner, RetuneReport, TrackedShape};
use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::Result;
use crate::hier;
use crate::ir::PlanOp;
use crate::op::{Elem, ReduceOp};
use crate::selector::{choose_strategy, GroupShape};
use intercom_cost::{
    choose_hier, CollectiveOp, HierChoice, HierMachine, HierStrategy, MachineParams, Strategy,
    TunedHier,
};
use intercom_obs::residual::ResidualReport;
use intercom_topology::{Cluster, Hypercube, Mesh2D, ProcGroup};
use std::cell::{Cell, Ref, RefCell};

/// Algorithm choice for one collective call.
#[derive(Debug, Clone, PartialEq)]
pub enum Algo {
    /// The §5.1 short-vector composed algorithm (MST-based).
    Short,
    /// The §5.2 long-vector composed algorithm (bucket-based).
    Long,
    /// An explicit §6 hybrid strategy.
    Hybrid(Strategy),
    /// An explicit hierarchical hybrid: level-tagged stages over a
    /// cluster (requires the communicator's group to match the
    /// strategy's cluster shape).
    HierHybrid(HierStrategy),
    /// Cost-model-driven selection (the library default). On a cluster
    /// communicator this prices hierarchical hybrids against the best
    /// flat strategy under the two-level model.
    Auto,
}

/// What the per-call dispatch resolved to: a flat strategy for the
/// recursive §6 template, or a hierarchical strategy for the
/// leader-based compositions of [`crate::hier`].
enum Decision {
    Flat(Strategy),
    Hier(HierStrategy),
}

/// Tag stride between successive collective calls, comfortably larger
/// than any recursion's internal stage offsets.
///
/// This is also the granularity of the multi-tenant tag-space contract:
/// a communicator's `k`-th call uses absolute tags
/// `base + k·CALL_TAG_STRIDE + off` with every stage offset
/// `off < CALL_TAG_STRIDE`, so two communicators sharing one physical
/// fabric are isolated for *any* number of calls iff their tag bases
/// (and stage offsets) are disjoint **mod `CALL_TAG_STRIDE`** — the
/// residue arithmetic `intercom_verify::concurrent` checks statically.
pub const CALL_TAG_STRIDE: u64 = 1 << 20;

/// An MPI-like communicator over a group of nodes.
pub struct Communicator<'a, C: Comm + ?Sized> {
    gc: GroupComm<'a, C>,
    machine: MachineParams,
    shape: GroupShape,
    /// Versioned per-level parameters, present on cluster communicators;
    /// `machine` mirrors the network (outermost) level for flat pricing.
    hier: Option<TunedHier>,
    /// Drift tuner fed automatically by every selector-driven collective
    /// (see [`Communicator::attach_tuner`]).
    tuner: RefCell<Option<AutoTuner>>,
    next_tag: Cell<Tag>,
}

impl<'a, C: Comm + ?Sized> Communicator<'a, C> {
    /// The whole world as one group, treated as a linear array.
    pub fn world(comm: &'a C, machine: MachineParams) -> Self {
        let gc = GroupComm::world(comm);
        let shape = GroupShape::Linear(gc.len());
        Communicator {
            gc,
            machine,
            shape,
            hier: None,
            tuner: RefCell::new(None),
            next_tag: Cell::new(0),
        }
    }

    /// The whole world as a two-level cluster (node-major rank order:
    /// global rank = node · ranks_per_node + local slot). Automatic
    /// selection prices hierarchical hybrids under the per-level
    /// `machine` against the best flat strategy at the network level.
    pub fn world_on_cluster(comm: &'a C, machine: HierMachine, cluster: &Cluster) -> Result<Self> {
        let gc = GroupComm::world(comm);
        if cluster.ranks() != gc.len() {
            return Err(crate::error::CommError::BadBufferSize {
                expected: gc.len(),
                actual: cluster.ranks(),
            });
        }
        let shape = GroupShape::Cluster {
            inter_rows: cluster.inter().rows(),
            inter_cols: cluster.inter().cols(),
            ranks_per_node: cluster.ranks_per_node(),
        };
        Ok(Communicator {
            gc,
            machine: *machine.inter(),
            shape,
            hier: Some(TunedHier::new(machine)),
            tuner: RefCell::new(None),
            next_tag: Cell::new(0),
        })
    }

    /// The whole world as a physical `mesh` (row-major rank order):
    /// enables the §7.1 row/column techniques.
    pub fn world_on_mesh(comm: &'a C, machine: MachineParams, mesh: Mesh2D) -> Result<Self> {
        let gc = GroupComm::world(comm);
        let shape = if mesh.nodes() == gc.len() {
            GroupShape::Mesh {
                rows: mesh.rows(),
                cols: mesh.cols(),
            }
        } else {
            return Err(crate::error::CommError::BadBufferSize {
                expected: gc.len(),
                actual: mesh.nodes(),
            });
        };
        Ok(Communicator {
            gc,
            machine,
            shape,
            hier: None,
            tuner: RefCell::new(None),
            next_tag: Cell::new(0),
        })
    }

    /// The whole world as a physical hypercube (§11's iPSC/860 port):
    /// logical ranks follow the binary-reflected Gray code, so the bucket
    /// primitives' rings are single-hop and conflict-free, and hybrid
    /// logical meshes (naturally `2 × 2 × …`) nest subcubes.
    pub fn world_on_hypercube(
        comm: &'a C,
        machine: MachineParams,
        cube: Hypercube,
    ) -> Result<Self> {
        if cube.nodes() != comm.size() {
            return Err(crate::error::CommError::BadBufferSize {
                expected: comm.size(),
                actual: cube.nodes(),
            });
        }
        let gc = GroupComm::new(comm, cube.gray_ring())?;
        let shape = GroupShape::Linear(gc.len());
        Ok(Communicator {
            gc,
            machine,
            shape,
            hier: None,
            tuner: RefCell::new(None),
            next_tag: Cell::new(0),
        })
    }

    /// A group communicator from an explicit member list (§9). When the
    /// physical `mesh` is known, the group's structure is extracted and
    /// rectangular submeshes get the whole-mesh row/column treatment;
    /// otherwise the group is treated as a linear array.
    pub fn from_group(
        comm: &'a C,
        machine: MachineParams,
        members: Vec<usize>,
        mesh: Option<&Mesh2D>,
    ) -> Result<Self> {
        let shape = match (mesh, ProcGroup::new(members.clone())) {
            (Some(m), Ok(g)) => GroupShape::detect(&g, m),
            _ => GroupShape::Linear(members.len()),
        };
        let gc = GroupComm::new(comm, members)?;
        Ok(Communicator {
            gc,
            machine,
            shape,
            hier: None,
            tuner: RefCell::new(None),
            next_tag: Cell::new(0),
        })
    }

    /// My logical rank within the group.
    pub fn rank(&self) -> usize {
        self.gc.me()
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.gc.len()
    }

    /// The underlying group view.
    pub fn group(&self) -> &GroupComm<'a, C> {
        &self.gc
    }

    /// The machine parameters driving automatic selection.
    pub fn machine(&self) -> &MachineParams {
        &self.machine
    }

    /// The detected physical shape driving automatic selection.
    pub fn shape(&self) -> GroupShape {
        self.shape
    }

    /// The versioned per-level parameters, when this communicator runs
    /// on a cluster.
    pub fn hier(&self) -> Option<&TunedHier> {
        self.hier.as_ref()
    }

    /// The *flat* strategy [`Algo::Auto`] would pick for `op` at
    /// `n_bytes` (on a cluster: the best level-blind strategy, priced
    /// at the network level).
    pub fn auto_strategy(&self, op: CollectiveOp, n_bytes: usize) -> Strategy {
        choose_strategy(op, self.shape, n_bytes, &self.machine)
    }

    /// What [`Algo::Auto`] would run for `op` at `n_bytes`: on a
    /// cluster communicator, the cheaper of the best hierarchical
    /// hybrid and the best flat strategy under the two-level model;
    /// elsewhere, the flat selection.
    pub fn auto_choice(&self, op: CollectiveOp, n_bytes: usize) -> HierChoice {
        match (self.shape.cluster_shape(), &self.hier) {
            (Some(cs), Some(th)) => choose_hier(op, cs, n_bytes, &th.current),
            _ => HierChoice::Flat(self.auto_strategy(op, n_bytes)),
        }
    }

    /// Attaches a drift tuner. From now on every selector-driven
    /// collective call registers its shape with the tuner — no explicit
    /// [`AutoTuner::track`] plumbing — so a drift verdict re-selects
    /// exactly the shapes this communicator actually ran.
    pub fn attach_tuner(&mut self, tuner: AutoTuner) {
        *self.tuner.borrow_mut() = Some(tuner);
    }

    /// Removes and returns the attached tuner, if any.
    pub fn detach_tuner(&mut self) -> Option<AutoTuner> {
        self.tuner.get_mut().take()
    }

    /// Read access to the attached tuner (estimate, tracked shapes).
    pub fn tuner(&self) -> Ref<'_, Option<AutoTuner>> {
        self.tuner.borrow()
    }

    /// Feeds one residual report to the attached tuner. On a drift
    /// verdict the tuner refits, re-selects every tracked shape against
    /// the process-wide plan cache, and this communicator adopts the new
    /// parameters for subsequent selections — on a cluster, as a refit
    /// of the *network* level (the drift monitor watches end-to-end
    /// residuals, which the expensive level dominates), bumping the
    /// [`TunedHier`] version.
    pub fn observe(&mut self, report: &ResidualReport) -> Option<RetuneReport> {
        let rep = self.tuner.get_mut().as_mut()?.observe(report)?;
        self.machine = rep.new_params;
        if let Some(th) = &mut self.hier {
            let level = th.current.levels() - 1;
            th.refit_level(level, rep.new_params.alpha, rep.new_params.beta);
        }
        Some(rep)
    }

    /// Registers a call shape with the attached tuner (no-op without
    /// one). Only [`Algo::Auto`] calls feed the tuner: those are the
    /// calls whose strategy a refit can change.
    fn note_shape(
        &self,
        algo: &Algo,
        plan_op: PlanOp,
        cost_op: CollectiveOp,
        n_elems: usize,
        elem_size: usize,
        n_cost_bytes: usize,
    ) {
        if !matches!(algo, Algo::Auto) {
            return;
        }
        if let Some(t) = self.tuner.borrow_mut().as_mut() {
            t.track(TrackedShape {
                plan_op,
                cost_op,
                shape: self.shape,
                n_elems,
                elem_size,
                n_cost_bytes,
            });
        }
    }

    fn fresh_tag(&self) -> Tag {
        let t = self.next_tag.get();
        self.next_tag.set(t.wrapping_add(CALL_TAG_STRIDE));
        t
    }

    /// Draws a tag from the communicator's sequence for a persistent
    /// plan execution (see [`crate::plan`]).
    pub(crate) fn take_plan_tag(&self) -> Tag {
        self.fresh_tag()
    }

    fn decide(&self, op: CollectiveOp, n_bytes: usize, algo: &Algo) -> Decision {
        match algo {
            Algo::Short => Decision::Flat(Strategy::pure_mst(self.size())),
            Algo::Long => Decision::Flat(Strategy::pure_long(self.size())),
            Algo::Hybrid(s) => Decision::Flat(s.clone()),
            Algo::HierHybrid(h) => Decision::Hier(h.clone()),
            Algo::Auto => match self.auto_choice(op, n_bytes) {
                HierChoice::Flat(s) => Decision::Flat(s),
                HierChoice::Hier(h) => Decision::Hier(h),
            },
        }
    }

    /// Broadcast `buf` from `root` to all members (auto-selected
    /// algorithm).
    ///
    /// ```
    /// # use intercom::{Communicator, Comm};
    /// # use intercom_cost::MachineParams;
    /// let out = intercom_runtime::run_world(5, |c| {
    ///     let cc = Communicator::world(c, MachineParams::PARAGON);
    ///     let mut v = if c.rank() == 2 { vec![7u8; 10] } else { vec![0; 10] };
    ///     cc.bcast(2, &mut v).unwrap();
    ///     v[9]
    /// });
    /// assert!(out.iter().all(|&x| x == 7));
    /// ```
    pub fn bcast<T: Scalar>(&self, root: usize, buf: &mut [T]) -> Result<()> {
        self.bcast_with(root, buf, &Algo::Auto)
    }

    /// Broadcast with an explicit algorithm choice.
    pub fn bcast_with<T: Scalar>(&self, root: usize, buf: &mut [T], algo: &Algo) -> Result<()> {
        let bytes = std::mem::size_of_val(&buf[..]);
        self.note_shape(
            algo,
            PlanOp::Broadcast { root },
            CollectiveOp::Broadcast,
            buf.len(),
            std::mem::size_of::<T>(),
            bytes,
        );
        match self.decide(CollectiveOp::Broadcast, bytes, algo) {
            Decision::Flat(s) => algorithms::broadcast(&self.gc, &s, root, buf, self.fresh_tag()),
            Decision::Hier(h) => hier::hier_broadcast(&self.gc, &h, root, buf, self.fresh_tag()),
        }
    }

    /// Combine-to-one: ⊕-combine everyone's `buf` onto the root.
    pub fn reduce<T: Elem>(&self, root: usize, buf: &mut [T], op: ReduceOp) -> Result<()> {
        self.reduce_with(root, buf, op, &Algo::Auto)
    }

    /// Combine-to-one with an explicit algorithm choice.
    pub fn reduce_with<T: Elem>(
        &self,
        root: usize,
        buf: &mut [T],
        op: ReduceOp,
        algo: &Algo,
    ) -> Result<()> {
        let bytes = std::mem::size_of_val(&buf[..]);
        self.note_shape(
            algo,
            PlanOp::Reduce { root },
            CollectiveOp::CombineToOne,
            buf.len(),
            std::mem::size_of::<T>(),
            bytes,
        );
        match self.decide(CollectiveOp::CombineToOne, bytes, algo) {
            Decision::Flat(s) => algorithms::reduce(&self.gc, &s, root, buf, op, self.fresh_tag()),
            Decision::Hier(h) => hier::hier_reduce(&self.gc, &h, root, buf, op, self.fresh_tag()),
        }
    }

    /// Combine-to-all: ⊕-combine everyone's `buf` onto every member.
    ///
    /// ```
    /// # use intercom::{Communicator, ReduceOp, Comm};
    /// # use intercom_cost::MachineParams;
    /// let out = intercom_runtime::run_world(4, |c| {
    ///     let cc = Communicator::world(c, MachineParams::PARAGON);
    ///     let mut v = vec![(c.rank() + 1) as i64; 3];
    ///     cc.allreduce(&mut v, ReduceOp::Prod).unwrap();
    ///     v[0]
    /// });
    /// assert!(out.iter().all(|&x| x == 24)); // 1·2·3·4
    /// ```
    pub fn allreduce<T: Elem>(&self, buf: &mut [T], op: ReduceOp) -> Result<()> {
        self.allreduce_with(buf, op, &Algo::Auto)
    }

    /// Combine-to-all with an explicit algorithm choice.
    pub fn allreduce_with<T: Elem>(&self, buf: &mut [T], op: ReduceOp, algo: &Algo) -> Result<()> {
        let bytes = std::mem::size_of_val(&buf[..]);
        self.note_shape(
            algo,
            PlanOp::AllReduce,
            CollectiveOp::CombineToAll,
            buf.len(),
            std::mem::size_of::<T>(),
            bytes,
        );
        match self.decide(CollectiveOp::CombineToAll, bytes, algo) {
            Decision::Flat(s) => algorithms::allreduce(&self.gc, &s, buf, op, self.fresh_tag()),
            Decision::Hier(h) => hier::hier_allreduce(&self.gc, &h, buf, op, self.fresh_tag()),
        }
    }

    /// Collect (allgather): concatenate every member's `mine` into `all`
    /// in rank order.
    ///
    /// ```
    /// # use intercom::{Communicator, Comm};
    /// # use intercom_cost::MachineParams;
    /// let out = intercom_runtime::run_world(3, |c| {
    ///     let cc = Communicator::world(c, MachineParams::PARAGON);
    ///     let mine = [c.rank() as u16; 2];
    ///     let mut all = [0u16; 6];
    ///     cc.allgather(&mine, &mut all).unwrap();
    ///     all
    /// });
    /// assert!(out.iter().all(|a| a == &[0, 0, 1, 1, 2, 2]));
    /// ```
    pub fn allgather<T: Scalar>(&self, mine: &[T], all: &mut [T]) -> Result<()> {
        self.allgather_with(mine, all, &Algo::Auto)
    }

    /// Collect with an explicit algorithm choice.
    pub fn allgather_with<T: Scalar>(&self, mine: &[T], all: &mut [T], algo: &Algo) -> Result<()> {
        let bytes = std::mem::size_of_val(&all[..]);
        self.note_shape(
            algo,
            PlanOp::Collect,
            CollectiveOp::Collect,
            mine.len(),
            std::mem::size_of::<T>(),
            bytes,
        );
        match self.decide(CollectiveOp::Collect, bytes, algo) {
            Decision::Flat(s) => algorithms::collect(&self.gc, &s, mine, all, self.fresh_tag()),
            Decision::Hier(h) => hier::hier_collect(&self.gc, &h, mine, all, self.fresh_tag()),
        }
    }

    /// Distributed combine (reduce-scatter): ⊕-combine everyone's
    /// `contrib`; member `j` receives block `j` into `mine`.
    pub fn reduce_scatter<T: Elem>(
        &self,
        contrib: &[T],
        mine: &mut [T],
        op: ReduceOp,
    ) -> Result<()> {
        self.reduce_scatter_with(contrib, mine, op, &Algo::Auto)
    }

    /// Distributed combine with an explicit algorithm choice.
    pub fn reduce_scatter_with<T: Elem>(
        &self,
        contrib: &[T],
        mine: &mut [T],
        op: ReduceOp,
        algo: &Algo,
    ) -> Result<()> {
        let bytes = std::mem::size_of_val(contrib);
        self.note_shape(
            algo,
            PlanOp::ReduceScatter,
            CollectiveOp::DistributedCombine,
            mine.len(),
            std::mem::size_of::<T>(),
            bytes,
        );
        match self.decide(CollectiveOp::DistributedCombine, bytes, algo) {
            Decision::Flat(s) => {
                algorithms::reduce_scatter(&self.gc, &s, contrib, mine, op, self.fresh_tag())
            }
            Decision::Hier(h) => {
                hier::hier_reduce_scatter(&self.gc, &h, contrib, mine, op, self.fresh_tag())
            }
        }
    }

    /// Scatter the root's `full` into per-member blocks.
    pub fn scatter<T: Scalar>(
        &self,
        root: usize,
        full: Option<&[T]>,
        mine: &mut [T],
    ) -> Result<()> {
        algorithms::scatter(&self.gc, root, full, mine, self.fresh_tag())
    }

    /// Gather every member's `mine` into the root's `full`.
    pub fn gather<T: Scalar>(&self, root: usize, mine: &[T], full: Option<&mut [T]>) -> Result<()> {
        algorithms::gather(&self.gc, root, mine, full, self.fresh_tag())
    }

    /// Scatter with per-rank counts (known-lengths mode).
    pub fn scatterv<T: Scalar>(
        &self,
        root: usize,
        full: Option<&[T]>,
        counts: &[usize],
        mine: &mut [T],
    ) -> Result<()> {
        algorithms::scatterv(&self.gc, root, full, counts, mine, self.fresh_tag())
    }

    /// Gather with per-rank counts (known-lengths mode).
    pub fn gatherv<T: Scalar>(
        &self,
        root: usize,
        mine: &[T],
        counts: &[usize],
        full: Option<&mut [T]>,
    ) -> Result<()> {
        algorithms::gatherv(&self.gc, root, mine, counts, full, self.fresh_tag())
    }

    /// Collect with per-rank counts (`gcolx` known-lengths semantics).
    pub fn allgatherv<T: Scalar>(&self, mine: &[T], counts: &[usize], all: &mut [T]) -> Result<()> {
        algorithms::allgatherv(&self.gc, mine, counts, all, self.fresh_tag())
    }

    /// Total exchange (alltoall, extension): `send` holds one block per
    /// member in rank order; `recv` receives one block from each member.
    pub fn alltoall<T: Scalar>(&self, send: &[T], recv: &mut [T]) -> Result<()> {
        algorithms::alltoall(&self.gc, send, recv, self.fresh_tag())
    }

    /// Barrier: returns only after every member has entered. Implemented
    /// as a zero-byte combine-to-all (the α-only degenerate case of the
    /// §5 short algorithm: `2⌈log p⌉α`).
    pub fn barrier(&self) -> Result<()> {
        let mut token = [0u8; 0];
        self.allreduce_with(&mut token, ReduceOp::Sum, &Algo::Short)?;
        Ok(())
    }

    /// Splits the communicator by `color`, MPI-`Comm_split` style: every
    /// member calls this collectively; members sharing a color form a new
    /// group, ordered by `(key, old logical rank)`. One collect over the
    /// `(color, key)` pairs is the only communication. When the physical
    /// `mesh` is supplied, each new group's structure is re-extracted
    /// (§9) so rectangular sub-groups keep the fast row/column paths.
    pub fn split(
        &self,
        color: usize,
        key: usize,
        mesh: Option<&Mesh2D>,
    ) -> Result<Communicator<'a, C>> {
        let mine = [color as u64, key as u64];
        let mut table = vec![0u64; 2 * self.size()];
        self.allgather(&mine, &mut table)?;
        let mut members: Vec<(usize, usize)> = (0..self.size())
            .filter(|&r| table[2 * r] as usize == color)
            .map(|r| (table[2 * r + 1] as usize, r))
            .collect();
        members.sort_unstable();
        let world_members: Vec<usize> = members
            .into_iter()
            .map(|(_, r)| self.gc.world_rank(r))
            .collect();
        Communicator::from_group(self.gc.comm(), self.machine, world_members, mesh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn world_of_one_runs_everything() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        assert_eq!(cc.rank(), 0);
        assert_eq!(cc.size(), 1);
        let mut v = vec![1.0f64, 2.0];
        cc.bcast(0, &mut v).unwrap();
        cc.reduce(0, &mut v, ReduceOp::Sum).unwrap();
        cc.allreduce(&mut v, ReduceOp::Min).unwrap();
        let mine = v.clone();
        let mut all = vec![0.0; 2];
        cc.allgather(&mine, &mut all).unwrap();
        assert_eq!(all, v);
        let mut m = vec![0.0; 2];
        cc.reduce_scatter(&mine, &mut m, ReduceOp::Sum).unwrap();
        assert_eq!(m, v);
        cc.scatter(0, Some(&mine), &mut m).unwrap();
        let mut full = vec![0.0; 2];
        cc.gather(0, &m, Some(&mut full)).unwrap();
        assert_eq!(full, mine);
    }

    #[test]
    fn tags_advance_between_calls() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let t1 = cc.fresh_tag();
        let t2 = cc.fresh_tag();
        assert_ne!(t1, t2);
        assert_eq!(t2 - t1, CALL_TAG_STRIDE);
    }

    #[test]
    fn mesh_world_requires_matching_size() {
        let c = SelfComm;
        assert!(
            Communicator::world_on_mesh(&c, MachineParams::PARAGON, Mesh2D::new(2, 2)).is_err()
        );
        let cc =
            Communicator::world_on_mesh(&c, MachineParams::PARAGON, Mesh2D::new(1, 1)).unwrap();
        assert_eq!(cc.shape(), GroupShape::Mesh { rows: 1, cols: 1 });
    }

    #[test]
    fn auto_strategy_depends_on_length() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        // Degenerate world; just verify the call path works.
        let s = cc.auto_strategy(CollectiveOp::Broadcast, 1024);
        assert_eq!(s.nodes(), 1);
    }

    #[test]
    fn cluster_world_requires_matching_size() {
        let c = SelfComm;
        assert!(Communicator::world_on_cluster(
            &c,
            HierMachine::paragon_cluster(),
            &Cluster::linear(2, 2)
        )
        .is_err());
        let cc = Communicator::world_on_cluster(
            &c,
            HierMachine::paragon_cluster(),
            &Cluster::linear(1, 1),
        )
        .unwrap();
        assert!(cc.hier().is_some());
        assert_eq!(cc.shape().cluster_shape().unwrap().ranks(), 1);
        // The flat-pricing mirror is the network level.
        assert_eq!(
            cc.machine().beta,
            HierMachine::paragon_cluster().inter().beta
        );
    }

    #[test]
    fn auto_calls_feed_the_attached_tuner() {
        let c = SelfComm;
        let mut cc = Communicator::world(&c, MachineParams::PARAGON);
        assert!(cc.detach_tuner().is_none());
        cc.attach_tuner(AutoTuner::new(MachineParams::PARAGON));
        let mut v = vec![1u8; 4];
        cc.bcast(0, &mut v).unwrap(); // Auto: tracked
        cc.bcast_with(0, &mut v, &Algo::Short).unwrap(); // explicit: skipped
        cc.allreduce(&mut v, ReduceOp::Sum).unwrap(); // Auto: tracked
        cc.allreduce(&mut v, ReduceOp::Sum).unwrap(); // duplicate: deduped
        let tuner = cc.detach_tuner().unwrap();
        let ops: Vec<CollectiveOp> = tuner.tracked().iter().map(|s| s.cost_op).collect();
        assert_eq!(ops, [CollectiveOp::Broadcast, CollectiveOp::CombineToAll]);
    }

    #[test]
    fn observe_refits_the_network_level() {
        let c = SelfComm;
        let machine = HierMachine::paragon_cluster();
        let configured = *machine.inter();
        let intra_beta = machine.intra().beta;
        let mut cc = Communicator::world_on_cluster(&c, machine, &Cluster::linear(1, 1)).unwrap();
        cc.attach_tuner(AutoTuner::new(configured));
        assert_eq!(cc.hier().unwrap().version, 1);
        let report = ResidualReport {
            op: CollectiveOp::Broadcast,
            strategy: Strategy::pure_mst(1),
            p: 1,
            n: 1024,
            machine: configured,
            stages: vec![],
            overlaps: vec![],
            fitted_alpha: Some(configured.alpha),
            fitted_beta: Some(configured.beta * 2.0),
            ranks: vec![],
            slowest_rank: 0,
            measured_total_secs: 0.0,
            predicted_total_secs: 0.0,
            unattributed_events: 0,
        };
        let mut retune = None;
        for _ in 0..8 {
            if let Some(r) = cc.observe(&report) {
                retune = Some(r);
                break;
            }
        }
        let retune = retune.expect("a sustained 2x beta residual must trip the drift gate");
        // The flat mirror and the network level both adopt the refit β;
        // the intra-node level is untouched and the hier version bumps.
        assert_eq!(cc.machine().beta, retune.new_params.beta);
        let th = cc.hier().unwrap();
        assert_eq!(th.version, 2);
        let net = th.current.levels() - 1;
        assert_eq!(th.current.level(net).beta, retune.new_params.beta);
        assert_eq!(th.current.intra().beta, intra_beta);
    }
}
