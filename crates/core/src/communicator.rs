//! The high-level, MPI-like collective interface (paper §9–§10).
//!
//! A [`Communicator`] binds a point-to-point endpoint, a group (whole
//! world or arbitrary member list), the machine's cost parameters, and
//! the group's detected physical shape. Every collective picks its
//! algorithm automatically from the cost model ([`Algo::Auto`]), or runs
//! a caller-specified short / long / explicit-hybrid algorithm.

use crate::algorithms;
use crate::cast::Scalar;
use crate::comm::{Comm, GroupComm, Tag};
use crate::error::Result;
use crate::op::{Elem, ReduceOp};
use crate::selector::{choose_strategy, GroupShape};
use intercom_cost::{CollectiveOp, MachineParams, Strategy};
use intercom_topology::{Hypercube, Mesh2D, ProcGroup};
use std::cell::Cell;

/// Algorithm choice for one collective call.
#[derive(Debug, Clone, PartialEq)]
pub enum Algo {
    /// The §5.1 short-vector composed algorithm (MST-based).
    Short,
    /// The §5.2 long-vector composed algorithm (bucket-based).
    Long,
    /// An explicit §6 hybrid strategy.
    Hybrid(Strategy),
    /// Cost-model-driven selection (the library default).
    Auto,
}

/// Tag stride between successive collective calls, comfortably larger
/// than any recursion's internal stage offsets.
///
/// This is also the granularity of the multi-tenant tag-space contract:
/// a communicator's `k`-th call uses absolute tags
/// `base + k·CALL_TAG_STRIDE + off` with every stage offset
/// `off < CALL_TAG_STRIDE`, so two communicators sharing one physical
/// fabric are isolated for *any* number of calls iff their tag bases
/// (and stage offsets) are disjoint **mod `CALL_TAG_STRIDE`** — the
/// residue arithmetic `intercom_verify::concurrent` checks statically.
pub const CALL_TAG_STRIDE: u64 = 1 << 20;

/// An MPI-like communicator over a group of nodes.
pub struct Communicator<'a, C: Comm + ?Sized> {
    gc: GroupComm<'a, C>,
    machine: MachineParams,
    shape: GroupShape,
    next_tag: Cell<Tag>,
}

impl<'a, C: Comm + ?Sized> Communicator<'a, C> {
    /// The whole world as one group, treated as a linear array.
    pub fn world(comm: &'a C, machine: MachineParams) -> Self {
        let gc = GroupComm::world(comm);
        let shape = GroupShape::Linear(gc.len());
        Communicator {
            gc,
            machine,
            shape,
            next_tag: Cell::new(0),
        }
    }

    /// The whole world as a physical `mesh` (row-major rank order):
    /// enables the §7.1 row/column techniques.
    pub fn world_on_mesh(comm: &'a C, machine: MachineParams, mesh: Mesh2D) -> Result<Self> {
        let gc = GroupComm::world(comm);
        let shape = if mesh.nodes() == gc.len() {
            GroupShape::Mesh {
                rows: mesh.rows(),
                cols: mesh.cols(),
            }
        } else {
            return Err(crate::error::CommError::BadBufferSize {
                expected: gc.len(),
                actual: mesh.nodes(),
            });
        };
        Ok(Communicator {
            gc,
            machine,
            shape,
            next_tag: Cell::new(0),
        })
    }

    /// The whole world as a physical hypercube (§11's iPSC/860 port):
    /// logical ranks follow the binary-reflected Gray code, so the bucket
    /// primitives' rings are single-hop and conflict-free, and hybrid
    /// logical meshes (naturally `2 × 2 × …`) nest subcubes.
    pub fn world_on_hypercube(
        comm: &'a C,
        machine: MachineParams,
        cube: Hypercube,
    ) -> Result<Self> {
        if cube.nodes() != comm.size() {
            return Err(crate::error::CommError::BadBufferSize {
                expected: comm.size(),
                actual: cube.nodes(),
            });
        }
        let gc = GroupComm::new(comm, cube.gray_ring())?;
        let shape = GroupShape::Linear(gc.len());
        Ok(Communicator {
            gc,
            machine,
            shape,
            next_tag: Cell::new(0),
        })
    }

    /// A group communicator from an explicit member list (§9). When the
    /// physical `mesh` is known, the group's structure is extracted and
    /// rectangular submeshes get the whole-mesh row/column treatment;
    /// otherwise the group is treated as a linear array.
    pub fn from_group(
        comm: &'a C,
        machine: MachineParams,
        members: Vec<usize>,
        mesh: Option<&Mesh2D>,
    ) -> Result<Self> {
        let shape = match (mesh, ProcGroup::new(members.clone())) {
            (Some(m), Ok(g)) => GroupShape::detect(&g, m),
            _ => GroupShape::Linear(members.len()),
        };
        let gc = GroupComm::new(comm, members)?;
        Ok(Communicator {
            gc,
            machine,
            shape,
            next_tag: Cell::new(0),
        })
    }

    /// My logical rank within the group.
    pub fn rank(&self) -> usize {
        self.gc.me()
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.gc.len()
    }

    /// The underlying group view.
    pub fn group(&self) -> &GroupComm<'a, C> {
        &self.gc
    }

    /// The machine parameters driving automatic selection.
    pub fn machine(&self) -> &MachineParams {
        &self.machine
    }

    /// The detected physical shape driving automatic selection.
    pub fn shape(&self) -> GroupShape {
        self.shape
    }

    /// The strategy [`Algo::Auto`] would pick for `op` at `n_bytes`.
    pub fn auto_strategy(&self, op: CollectiveOp, n_bytes: usize) -> Strategy {
        choose_strategy(op, self.shape, n_bytes, &self.machine)
    }

    fn fresh_tag(&self) -> Tag {
        let t = self.next_tag.get();
        self.next_tag.set(t.wrapping_add(CALL_TAG_STRIDE));
        t
    }

    /// Draws a tag from the communicator's sequence for a persistent
    /// plan execution (see [`crate::plan`]).
    pub(crate) fn take_plan_tag(&self) -> Tag {
        self.fresh_tag()
    }

    fn resolve(&self, op: CollectiveOp, n_bytes: usize, algo: &Algo) -> Strategy {
        match algo {
            Algo::Short => Strategy::pure_mst(self.size()),
            Algo::Long => Strategy::pure_long(self.size()),
            Algo::Hybrid(s) => s.clone(),
            Algo::Auto => self.auto_strategy(op, n_bytes),
        }
    }

    /// Broadcast `buf` from `root` to all members (auto-selected
    /// algorithm).
    ///
    /// ```
    /// # use intercom::{Communicator, Comm};
    /// # use intercom_cost::MachineParams;
    /// let out = intercom_runtime::run_world(5, |c| {
    ///     let cc = Communicator::world(c, MachineParams::PARAGON);
    ///     let mut v = if c.rank() == 2 { vec![7u8; 10] } else { vec![0; 10] };
    ///     cc.bcast(2, &mut v).unwrap();
    ///     v[9]
    /// });
    /// assert!(out.iter().all(|&x| x == 7));
    /// ```
    pub fn bcast<T: Scalar>(&self, root: usize, buf: &mut [T]) -> Result<()> {
        self.bcast_with(root, buf, &Algo::Auto)
    }

    /// Broadcast with an explicit algorithm choice.
    pub fn bcast_with<T: Scalar>(&self, root: usize, buf: &mut [T], algo: &Algo) -> Result<()> {
        let s = self.resolve(
            CollectiveOp::Broadcast,
            std::mem::size_of_val(&buf[..]),
            algo,
        );
        algorithms::broadcast(&self.gc, &s, root, buf, self.fresh_tag())
    }

    /// Combine-to-one: ⊕-combine everyone's `buf` onto the root.
    pub fn reduce<T: Elem>(&self, root: usize, buf: &mut [T], op: ReduceOp) -> Result<()> {
        self.reduce_with(root, buf, op, &Algo::Auto)
    }

    /// Combine-to-one with an explicit algorithm choice.
    pub fn reduce_with<T: Elem>(
        &self,
        root: usize,
        buf: &mut [T],
        op: ReduceOp,
        algo: &Algo,
    ) -> Result<()> {
        let s = self.resolve(
            CollectiveOp::CombineToOne,
            std::mem::size_of_val(&buf[..]),
            algo,
        );
        algorithms::reduce(&self.gc, &s, root, buf, op, self.fresh_tag())
    }

    /// Combine-to-all: ⊕-combine everyone's `buf` onto every member.
    ///
    /// ```
    /// # use intercom::{Communicator, ReduceOp, Comm};
    /// # use intercom_cost::MachineParams;
    /// let out = intercom_runtime::run_world(4, |c| {
    ///     let cc = Communicator::world(c, MachineParams::PARAGON);
    ///     let mut v = vec![(c.rank() + 1) as i64; 3];
    ///     cc.allreduce(&mut v, ReduceOp::Prod).unwrap();
    ///     v[0]
    /// });
    /// assert!(out.iter().all(|&x| x == 24)); // 1·2·3·4
    /// ```
    pub fn allreduce<T: Elem>(&self, buf: &mut [T], op: ReduceOp) -> Result<()> {
        self.allreduce_with(buf, op, &Algo::Auto)
    }

    /// Combine-to-all with an explicit algorithm choice.
    pub fn allreduce_with<T: Elem>(&self, buf: &mut [T], op: ReduceOp, algo: &Algo) -> Result<()> {
        let s = self.resolve(
            CollectiveOp::CombineToAll,
            std::mem::size_of_val(&buf[..]),
            algo,
        );
        algorithms::allreduce(&self.gc, &s, buf, op, self.fresh_tag())
    }

    /// Collect (allgather): concatenate every member's `mine` into `all`
    /// in rank order.
    ///
    /// ```
    /// # use intercom::{Communicator, Comm};
    /// # use intercom_cost::MachineParams;
    /// let out = intercom_runtime::run_world(3, |c| {
    ///     let cc = Communicator::world(c, MachineParams::PARAGON);
    ///     let mine = [c.rank() as u16; 2];
    ///     let mut all = [0u16; 6];
    ///     cc.allgather(&mine, &mut all).unwrap();
    ///     all
    /// });
    /// assert!(out.iter().all(|a| a == &[0, 0, 1, 1, 2, 2]));
    /// ```
    pub fn allgather<T: Scalar>(&self, mine: &[T], all: &mut [T]) -> Result<()> {
        self.allgather_with(mine, all, &Algo::Auto)
    }

    /// Collect with an explicit algorithm choice.
    pub fn allgather_with<T: Scalar>(&self, mine: &[T], all: &mut [T], algo: &Algo) -> Result<()> {
        let s = self.resolve(CollectiveOp::Collect, std::mem::size_of_val(&all[..]), algo);
        algorithms::collect(&self.gc, &s, mine, all, self.fresh_tag())
    }

    /// Distributed combine (reduce-scatter): ⊕-combine everyone's
    /// `contrib`; member `j` receives block `j` into `mine`.
    pub fn reduce_scatter<T: Elem>(
        &self,
        contrib: &[T],
        mine: &mut [T],
        op: ReduceOp,
    ) -> Result<()> {
        self.reduce_scatter_with(contrib, mine, op, &Algo::Auto)
    }

    /// Distributed combine with an explicit algorithm choice.
    pub fn reduce_scatter_with<T: Elem>(
        &self,
        contrib: &[T],
        mine: &mut [T],
        op: ReduceOp,
        algo: &Algo,
    ) -> Result<()> {
        let s = self.resolve(
            CollectiveOp::DistributedCombine,
            std::mem::size_of_val(contrib),
            algo,
        );
        algorithms::reduce_scatter(&self.gc, &s, contrib, mine, op, self.fresh_tag())
    }

    /// Scatter the root's `full` into per-member blocks.
    pub fn scatter<T: Scalar>(
        &self,
        root: usize,
        full: Option<&[T]>,
        mine: &mut [T],
    ) -> Result<()> {
        algorithms::scatter(&self.gc, root, full, mine, self.fresh_tag())
    }

    /// Gather every member's `mine` into the root's `full`.
    pub fn gather<T: Scalar>(&self, root: usize, mine: &[T], full: Option<&mut [T]>) -> Result<()> {
        algorithms::gather(&self.gc, root, mine, full, self.fresh_tag())
    }

    /// Scatter with per-rank counts (known-lengths mode).
    pub fn scatterv<T: Scalar>(
        &self,
        root: usize,
        full: Option<&[T]>,
        counts: &[usize],
        mine: &mut [T],
    ) -> Result<()> {
        algorithms::scatterv(&self.gc, root, full, counts, mine, self.fresh_tag())
    }

    /// Gather with per-rank counts (known-lengths mode).
    pub fn gatherv<T: Scalar>(
        &self,
        root: usize,
        mine: &[T],
        counts: &[usize],
        full: Option<&mut [T]>,
    ) -> Result<()> {
        algorithms::gatherv(&self.gc, root, mine, counts, full, self.fresh_tag())
    }

    /// Collect with per-rank counts (`gcolx` known-lengths semantics).
    pub fn allgatherv<T: Scalar>(&self, mine: &[T], counts: &[usize], all: &mut [T]) -> Result<()> {
        algorithms::allgatherv(&self.gc, mine, counts, all, self.fresh_tag())
    }

    /// Total exchange (alltoall, extension): `send` holds one block per
    /// member in rank order; `recv` receives one block from each member.
    pub fn alltoall<T: Scalar>(&self, send: &[T], recv: &mut [T]) -> Result<()> {
        algorithms::alltoall(&self.gc, send, recv, self.fresh_tag())
    }

    /// Barrier: returns only after every member has entered. Implemented
    /// as a zero-byte combine-to-all (the α-only degenerate case of the
    /// §5 short algorithm: `2⌈log p⌉α`).
    pub fn barrier(&self) -> Result<()> {
        let mut token = [0u8; 0];
        self.allreduce_with(&mut token, ReduceOp::Sum, &Algo::Short)?;
        Ok(())
    }

    /// Splits the communicator by `color`, MPI-`Comm_split` style: every
    /// member calls this collectively; members sharing a color form a new
    /// group, ordered by `(key, old logical rank)`. One collect over the
    /// `(color, key)` pairs is the only communication. When the physical
    /// `mesh` is supplied, each new group's structure is re-extracted
    /// (§9) so rectangular sub-groups keep the fast row/column paths.
    pub fn split(
        &self,
        color: usize,
        key: usize,
        mesh: Option<&Mesh2D>,
    ) -> Result<Communicator<'a, C>> {
        let mine = [color as u64, key as u64];
        let mut table = vec![0u64; 2 * self.size()];
        self.allgather(&mine, &mut table)?;
        let mut members: Vec<(usize, usize)> = (0..self.size())
            .filter(|&r| table[2 * r] as usize == color)
            .map(|r| (table[2 * r + 1] as usize, r))
            .collect();
        members.sort_unstable();
        let world_members: Vec<usize> = members
            .into_iter()
            .map(|(_, r)| self.gc.world_rank(r))
            .collect();
        Communicator::from_group(self.gc.comm(), self.machine, world_members, mesh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::SelfComm;

    #[test]
    fn world_of_one_runs_everything() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        assert_eq!(cc.rank(), 0);
        assert_eq!(cc.size(), 1);
        let mut v = vec![1.0f64, 2.0];
        cc.bcast(0, &mut v).unwrap();
        cc.reduce(0, &mut v, ReduceOp::Sum).unwrap();
        cc.allreduce(&mut v, ReduceOp::Min).unwrap();
        let mine = v.clone();
        let mut all = vec![0.0; 2];
        cc.allgather(&mine, &mut all).unwrap();
        assert_eq!(all, v);
        let mut m = vec![0.0; 2];
        cc.reduce_scatter(&mine, &mut m, ReduceOp::Sum).unwrap();
        assert_eq!(m, v);
        cc.scatter(0, Some(&mine), &mut m).unwrap();
        let mut full = vec![0.0; 2];
        cc.gather(0, &m, Some(&mut full)).unwrap();
        assert_eq!(full, mine);
    }

    #[test]
    fn tags_advance_between_calls() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        let t1 = cc.fresh_tag();
        let t2 = cc.fresh_tag();
        assert_ne!(t1, t2);
        assert_eq!(t2 - t1, CALL_TAG_STRIDE);
    }

    #[test]
    fn mesh_world_requires_matching_size() {
        let c = SelfComm;
        assert!(
            Communicator::world_on_mesh(&c, MachineParams::PARAGON, Mesh2D::new(2, 2)).is_err()
        );
        let cc =
            Communicator::world_on_mesh(&c, MachineParams::PARAGON, Mesh2D::new(1, 1)).unwrap();
        assert_eq!(cc.shape(), GroupShape::Mesh { rows: 1, cols: 1 });
    }

    #[test]
    fn auto_strategy_depends_on_length() {
        let c = SelfComm;
        let cc = Communicator::world(&c, MachineParams::PARAGON);
        // Degenerate world; just verify the call path works.
        let s = cc.auto_strategy(CollectiveOp::Broadcast, 1024);
        assert_eq!(s.nodes(), 1);
    }
}
