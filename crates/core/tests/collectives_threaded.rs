//! End-to-end correctness of every collective under every algorithm
//! family, executed on the real threaded backend across a spread of group
//! sizes — including non-powers-of-two, primes, and the paper's p = 30.

use intercom::{Algo, Communicator, ReduceOp};
use intercom_cost::{MachineParams, Strategy, StrategyKind};
use intercom_runtime::run_world;

/// Group sizes exercising p = 1, powers of two, primes and rich
/// composites (the paper stresses non-power-of-two support).
const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 30];

/// A spread of algorithm choices valid for any p: the two pure families
/// plus auto-selection.
fn common_algos() -> Vec<Algo> {
    vec![Algo::Short, Algo::Long, Algo::Auto]
}

/// Hybrid strategies specific to p (only proper factorizations).
fn hybrids(p: usize) -> Vec<Algo> {
    let mut out = Vec::new();
    for dims in intercom_topology::factor::factorizations(p, 0) {
        if dims.len() >= 2 {
            out.push(Algo::Hybrid(Strategy::new(dims.clone(), StrategyKind::Mst)));
            out.push(Algo::Hybrid(Strategy::new(
                dims,
                StrategyKind::ScatterCollect,
            )));
        }
    }
    // Bound the explosion for rich composites: keep at most 8.
    out.truncate(8);
    out
}

fn algos(p: usize) -> Vec<Algo> {
    let mut a = common_algos();
    a.extend(hybrids(p));
    a
}

/// Per-rank deterministic test vector.
fn contribution(rank: usize, n: usize) -> Vec<i64> {
    (0..n).map(|i| (rank * 1_000 + i) as i64 * 7 - 3).collect()
}

#[test]
fn broadcast_all_sizes_roots_algos() {
    for &p in SIZES {
        for algo in algos(p) {
            for root in [0, p / 2, p - 1] {
                for n in [0usize, 1, 5, 64, 257] {
                    let expect = contribution(root, n);
                    let out = run_world(p, |c| {
                        let cc = Communicator::world(c, MachineParams::PARAGON);
                        let mut buf = if cc.rank() == root {
                            contribution(root, n)
                        } else {
                            vec![0i64; n]
                        };
                        cc.bcast_with(root, &mut buf, &algo).unwrap();
                        buf
                    });
                    for (r, got) in out.iter().enumerate() {
                        assert_eq!(
                            got, &expect,
                            "bcast p={p} root={root} n={n} algo={algo:?} rank={r}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn reduce_all_sizes_roots_algos() {
    for &p in SIZES {
        for algo in algos(p) {
            for root in [0, p - 1] {
                for n in [0usize, 1, 7, 128] {
                    let mut expect = vec![0i64; n];
                    for r in 0..p {
                        for (e, v) in expect.iter_mut().zip(contribution(r, n)) {
                            *e += v;
                        }
                    }
                    let out = run_world(p, |c| {
                        let cc = Communicator::world(c, MachineParams::PARAGON);
                        let mut buf = contribution(cc.rank(), n);
                        cc.reduce_with(root, &mut buf, ReduceOp::Sum, &algo)
                            .unwrap();
                        buf
                    });
                    assert_eq!(
                        out[root], expect,
                        "reduce p={p} root={root} n={n} algo={algo:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn allreduce_all_sizes_algos_and_ops() {
    for &p in SIZES {
        for algo in algos(p) {
            for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
                let n = 33;
                let mut expect = contribution(0, n);
                for r in 1..p {
                    op.fold_into(&mut expect, &contribution(r, n));
                }
                let out = run_world(p, |c| {
                    let cc = Communicator::world(c, MachineParams::PARAGON);
                    let mut buf = contribution(cc.rank(), n);
                    cc.allreduce_with(&mut buf, op, &algo).unwrap();
                    buf
                });
                for (r, got) in out.iter().enumerate() {
                    assert_eq!(
                        got, &expect,
                        "allreduce p={p} op={op:?} algo={algo:?} rank={r}"
                    );
                }
            }
        }
    }
}

#[test]
fn collect_all_sizes_algos() {
    for &p in SIZES {
        for algo in algos(p) {
            for b in [0usize, 1, 3, 50] {
                let mut expect = Vec::with_capacity(p * b);
                for r in 0..p {
                    expect.extend(contribution(r, b));
                }
                let out = run_world(p, |c| {
                    let cc = Communicator::world(c, MachineParams::PARAGON);
                    let mine = contribution(cc.rank(), b);
                    let mut all = vec![0i64; p * b];
                    cc.allgather_with(&mine, &mut all, &algo).unwrap();
                    all
                });
                for (r, got) in out.iter().enumerate() {
                    assert_eq!(got, &expect, "collect p={p} b={b} algo={algo:?} rank={r}");
                }
            }
        }
    }
}

#[test]
fn reduce_scatter_all_sizes_algos() {
    for &p in SIZES {
        for algo in algos(p) {
            for b in [0usize, 1, 4, 29] {
                // Combined vector, then rank j's expected block j.
                let mut combined = vec![0i64; p * b];
                for r in 0..p {
                    for (e, v) in combined.iter_mut().zip(contribution(r, p * b)) {
                        *e += v;
                    }
                }
                let out = run_world(p, |c| {
                    let cc = Communicator::world(c, MachineParams::PARAGON);
                    let contrib = contribution(cc.rank(), p * b);
                    let mut mine = vec![0i64; b];
                    cc.reduce_scatter_with(&contrib, &mut mine, ReduceOp::Sum, &algo)
                        .unwrap();
                    mine
                });
                for (r, got) in out.iter().enumerate() {
                    assert_eq!(
                        got,
                        &combined[r * b..(r + 1) * b],
                        "reduce_scatter p={p} b={b} algo={algo:?} rank={r}"
                    );
                }
            }
        }
    }
}

#[test]
fn scatter_and_gather_all_sizes() {
    for &p in SIZES {
        for root in [0, p / 2] {
            for b in [0usize, 2, 17] {
                let full: Vec<i64> = (0..p * b).map(|i| i as i64 * 3 - 11).collect();
                let full_for_world = full.clone();
                let out = run_world(p, |c| {
                    let cc = Communicator::world(c, MachineParams::PARAGON);
                    let me = cc.rank();
                    let mut mine = vec![0i64; b];
                    let send = if me == root {
                        Some(&full_for_world[..])
                    } else {
                        None
                    };
                    cc.scatter(root, send, &mut mine).unwrap();
                    // Round-trip: gather back and verify at the root.
                    let mut back = vec![0i64; if me == root { p * b } else { 0 }];
                    let recv = if me == root {
                        Some(&mut back[..])
                    } else {
                        None
                    };
                    cc.gather(root, &mine, recv).unwrap();
                    (mine, back)
                });
                for (r, (mine, _)) in out.iter().enumerate() {
                    assert_eq!(
                        mine,
                        &full[r * b..(r + 1) * b],
                        "scatter p={p} root={root} b={b}"
                    );
                }
                assert_eq!(
                    out[root].1, full,
                    "gather round-trip p={p} root={root} b={b}"
                );
            }
        }
    }
}

#[test]
fn float_allreduce_is_deterministic_across_algos() {
    // Different algorithms combine in different orders; for
    // associativity-safe integer data this is invisible, and for floats
    // the library guarantees *per-algorithm* determinism: two runs of the
    // same algorithm produce bitwise-identical results.
    let p = 12;
    for algo in algos(p) {
        let run = || {
            run_world(p, |c| {
                let cc = Communicator::world(c, MachineParams::PARAGON);
                let mut buf: Vec<f64> = (0..40)
                    .map(|i| ((cc.rank() * 37 + i) as f64).sin())
                    .collect();
                cc.allreduce_with(&mut buf, ReduceOp::Sum, &algo).unwrap();
                buf
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "nondeterministic result for {algo:?}");
    }
}

#[test]
fn group_collectives_on_subsets() {
    // A group over a strided subset of the world: logical ranks remap.
    let p = 12;
    let members: Vec<usize> = (0..p).step_by(3).collect(); // 0,3,6,9
    let g = members.clone();
    let out = run_world(p, |c| {
        let cc = Communicator::from_group(c, MachineParams::PARAGON, g.clone(), None);
        match cc {
            Ok(cc) => {
                let mut v = vec![(intercom::Comm::rank(c) + 1) as i64; 8];
                cc.allreduce(&mut v, ReduceOp::Sum).unwrap();
                Some(v[0])
            }
            Err(intercom::CommError::NotInGroup) => None,
            Err(e) => panic!("unexpected error {e}"),
        }
    });
    let expect: i64 = members.iter().map(|&m| (m + 1) as i64).sum();
    for (r, v) in out.iter().enumerate() {
        if members.contains(&r) {
            assert_eq!(*v, Some(expect), "member {r}");
        } else {
            assert_eq!(*v, None, "non-member {r}");
        }
    }
}

#[test]
fn back_to_back_collectives_do_not_cross_talk() {
    // Issue several different collectives in sequence on the same
    // communicator; tag isolation must keep them separate.
    let p = 8;
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let me = cc.rank();
        let mut a = vec![me as i64; 16];
        cc.allreduce(&mut a, ReduceOp::Sum).unwrap();
        let mut b = vec![0i64; 4];
        if me == 0 {
            b = vec![5, 6, 7, 8];
        }
        cc.bcast(0, &mut b).unwrap();
        let mine = vec![me as i64; 2];
        let mut all = vec![0i64; 16];
        cc.allgather(&mine, &mut all).unwrap();
        (a[0], b, all)
    });
    let sum: i64 = (0..p as i64).sum();
    for (r, (a, b, all)) in out.iter().enumerate() {
        assert_eq!(*a, sum, "rank {r}");
        assert_eq!(b, &[5, 6, 7, 8]);
        let expect: Vec<i64> = (0..p as i64).flat_map(|x| [x, x]).collect();
        assert_eq!(all, &expect);
    }
}

#[test]
fn alltoall_total_exchange() {
    for p in [1usize, 2, 4, 7, 9] {
        for b in [0usize, 1, 3, 16] {
            let out = run_world(p, |c| {
                let cc = Communicator::world(c, MachineParams::PARAGON);
                let me = cc.rank();
                // Block for member j encodes (me, j).
                let send: Vec<i64> = (0..p)
                    .flat_map(|j| (0..b).map(move |i| (me * 10_000 + j * 100 + i) as i64))
                    .collect();
                let mut recv = vec![0i64; p * b];
                cc.alltoall(&send, &mut recv).unwrap();
                (me, recv)
            });
            for (me, recv) in out {
                for j in 0..p {
                    for i in 0..b {
                        // Block j of my recv came from member j, destined
                        // for me.
                        assert_eq!(
                            recv[j * b + i],
                            (j * 10_000 + me * 100 + i) as i64,
                            "p={p} b={b} me={me} j={j} i={i}"
                        );
                    }
                }
            }
        }
    }
}

/// On a cluster communicator with expensive inter-node links, automatic
/// selection picks the hierarchical hybrid and the call still computes
/// the right answer on the threaded backend.
#[test]
fn cluster_auto_selects_the_hierarchical_hybrid() {
    use intercom_cost::{CollectiveOp, HierChoice, HierMachine};
    use intercom_topology::Cluster;
    let out = run_world(16, |c| {
        let cluster = Cluster::linear(4, 4);
        let cc =
            Communicator::world_on_cluster(c, HierMachine::paragon_cluster(), &cluster).unwrap();
        // With inter β ≥ 10× intra β the two-level model prices the
        // leader-based hybrid under the best flat strategy.
        assert!(matches!(
            cc.auto_choice(CollectiveOp::CombineToAll, 1 << 16),
            HierChoice::Hier(_)
        ));
        let mut v = vec![(cc.rank() + 1) as u64; 1 << 13];
        cc.allreduce(&mut v, ReduceOp::Max).unwrap();
        v[0]
    });
    assert!(out.iter().all(|&x| x == 16));
}
