//! Known-lengths ("v") collectives and communicator splitting on the
//! threaded backend.

use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;
use intercom_topology::Mesh2D;

/// Uneven per-rank counts: rank r contributes r + 1 items... with a zero
/// thrown in.
fn counts(p: usize) -> Vec<usize> {
    (0..p).map(|r| if r == p / 2 { 0 } else { r + 1 }).collect()
}

#[test]
fn allgatherv_concatenates_uneven_blocks() {
    for p in [1usize, 2, 5, 9] {
        let cts = counts(p);
        let total: usize = cts.iter().sum();
        let mut expect = Vec::new();
        for (r, &ct) in cts.iter().enumerate() {
            expect.extend((0..ct).map(|i| (r * 100 + i) as i64));
        }
        let cts2 = cts.clone();
        let out = run_world(p, |c| {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let me = c.rank();
            let mine: Vec<i64> = (0..cts2[me]).map(|i| (me * 100 + i) as i64).collect();
            let mut all = vec![0i64; total];
            cc.allgatherv(&mine, &cts2, &mut all).unwrap();
            all
        });
        for (r, got) in out.iter().enumerate() {
            assert_eq!(got, &expect, "p={p} rank={r}");
        }
    }
}

#[test]
fn scatterv_gatherv_roundtrip_uneven() {
    for p in [1usize, 3, 6] {
        for root in [0, p - 1] {
            let cts = counts(p);
            let total: usize = cts.iter().sum();
            let full: Vec<i64> = (0..total as i64).map(|x| x * 3 - 7).collect();
            let cts2 = cts.clone();
            let full2 = full.clone();
            let out = run_world(p, |c| {
                let cc = Communicator::world(c, MachineParams::PARAGON);
                let me = c.rank();
                let mut mine = vec![0i64; cts2[me]];
                let send = if me == root { Some(&full2[..]) } else { None };
                cc.scatterv(root, send, &cts2, &mut mine).unwrap();
                let mut back = vec![0i64; if me == root { total } else { 0 }];
                let recv = if me == root {
                    Some(&mut back[..])
                } else {
                    None
                };
                cc.gatherv(root, &mine, &cts2, recv).unwrap();
                (mine, back)
            });
            // Verify scattered pieces and the gathered round-trip.
            let mut at = 0;
            for (r, (mine, _)) in out.iter().enumerate() {
                assert_eq!(mine, &full[at..at + cts[r]], "p={p} root={root} rank={r}");
                at += cts[r];
            }
            assert_eq!(out[root].1, full, "gatherv p={p} root={root}");
        }
    }
}

#[test]
fn split_by_parity_forms_working_groups() {
    let p = 10;
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let me = c.rank();
        let sub = cc.split(me % 2, me, None).unwrap();
        let mut v = vec![1i64; 4];
        sub.allreduce(&mut v, ReduceOp::Sum).unwrap();
        (sub.rank(), sub.size(), v[0])
    });
    for (r, &(sub_rank, sub_size, sum)) in out.iter().enumerate() {
        assert_eq!(sub_size, 5, "rank {r}");
        assert_eq!(sum, 5);
        assert_eq!(sub_rank, r / 2, "rank order by key within color");
    }
}

#[test]
fn split_with_reversed_keys_reorders() {
    let p = 6;
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let me = c.rank();
        // One color, keys descending: logical order flips.
        let sub = cc.split(0, p - me, None).unwrap();
        sub.rank()
    });
    for (r, &sub_rank) in out.iter().enumerate() {
        assert_eq!(sub_rank, p - 1 - r);
    }
}

#[test]
fn split_rows_of_mesh_detects_lines() {
    let p = 12;
    let mesh = Mesh2D::new(3, 4);
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let me = c.rank();
        let row = me / 4;
        let sub = cc.split(row, me, Some(&mesh)).unwrap();
        let mut v = vec![me as i64];
        sub.allreduce(&mut v, ReduceOp::Max).unwrap();
        (sub.size(), v[0])
    });
    for (r, &(size, maxv)) in out.iter().enumerate() {
        assert_eq!(size, 4);
        let row = r / 4;
        assert_eq!(maxv, (row * 4 + 3) as i64);
    }
}
