//! Correctness of the §8 pipelined ring broadcast on the threaded
//! backend, plus model sanity for its cost.

use intercom::comm::GroupComm;
use intercom::primitives::{optimal_segments, pipelined_ring_bcast};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 % 251) as u8).collect()
}

#[test]
fn pipelined_bcast_delivers_all_sizes_roots_segments() {
    for p in [2usize, 3, 5, 8, 12] {
        for root in [0, p / 2, p - 1] {
            for n in [0usize, 1, 10, 333] {
                for m in [1usize, 2, 5, 16] {
                    let expect = payload(n);
                    let out = run_world(p, |c| {
                        let gc = GroupComm::world(c);
                        let mut buf = if gc.me() == root {
                            payload(n)
                        } else {
                            vec![0; n]
                        };
                        pipelined_ring_bcast(&gc, root, &mut buf, m, 0).unwrap();
                        buf
                    });
                    for (r, got) in out.iter().enumerate() {
                        assert_eq!(got, &expect, "p={p} root={root} n={n} m={m} rank={r}");
                    }
                }
            }
        }
    }
}

#[test]
fn pipelined_beats_scatter_collect_in_model_for_long_vectors() {
    // β coefficient: pipelined → (p−2+m)/m ≈ 1 for large m; scatter/
    // collect → 2(p−1)/p ≈ 2. Check the closed forms at m*.
    let machine = MachineParams::PARAGON_MODEL;
    let p = 64;
    let n = 1 << 20;
    let m = optimal_segments(p, n, &machine);
    let t_pipe =
        (p as f64 - 2.0 + m as f64) * (machine.alpha + (n as f64 / m as f64) * machine.beta);
    let t_sc = intercom_cost::collective::long_cost(
        intercom_cost::CollectiveOp::Broadcast,
        p,
        intercom_cost::CostContext::LINEAR,
    )
    .eval(n, &machine);
    assert!(
        t_pipe < t_sc,
        "pipelined {t_pipe} should beat scatter/collect {t_sc} at 1MB"
    );
    // ... but lose at short lengths even with its best m.
    let n_short = 64;
    let m_short = optimal_segments(p, n_short, &machine);
    let t_pipe_short = (p as f64 - 2.0 + m_short as f64)
        * (machine.alpha + (n_short as f64 / m_short as f64) * machine.beta);
    let t_mst = intercom_cost::collective::short_cost(
        intercom_cost::CollectiveOp::Broadcast,
        p,
        intercom_cost::CostContext::LINEAR,
    )
    .eval(n_short, &machine);
    assert!(
        t_mst < t_pipe_short,
        "MST {t_mst} must beat pipelined {t_pipe_short} at 64B"
    );
}
