//! Property-based correctness: randomized group sizes, roots, vector
//! lengths, reduce ops and hybrid strategies, executed on the threaded
//! backend and checked against sequential references.
//!
//! Gated behind the non-default `heavy-tests` feature because it needs
//! the external `proptest` crate (see the dep policy in the README).
#![cfg(feature = "heavy-tests")]

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::{MachineParams, Strategy, StrategyKind};
use intercom_runtime::run_world;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

/// A random ordered factorization of some p ≤ 24 plus a kind — i.e. an
/// arbitrary valid hybrid strategy with its group size.
fn arb_strategy() -> impl PropStrategy<Value = (usize, Strategy)> {
    (2usize..=24, any::<bool>(), any::<u64>()).prop_map(|(p, mst, seed)| {
        let fs = intercom_topology::factor::factorizations(p, 0);
        let dims = fs[(seed as usize) % fs.len()].clone();
        let kind = if mst {
            StrategyKind::Mst
        } else {
            StrategyKind::ScatterCollect
        };
        (p, Strategy::new(dims, kind))
    })
}

fn contribution(rank: usize, n: usize, salt: u64) -> Vec<i64> {
    (0..n)
        .map(|i| {
            let x = (rank as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(i as u64)
                ^ salt;
            (x % 2003) as i64 - 1001
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_broadcast_delivers_for_any_strategy(
        (p, strategy) in arb_strategy(),
        root_sel in any::<u64>(),
        n in 0usize..200,
        salt in any::<u64>(),
    ) {
        let root = (root_sel as usize) % p;
        let expect = contribution(root, n, salt);
        let algo = Algo::Hybrid(strategy);
        let out = run_world(p, |c| {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let mut buf = if c.rank() == root {
                contribution(root, n, salt)
            } else {
                vec![0; n]
            };
            cc.bcast_with(root, &mut buf, &algo).unwrap();
            buf
        });
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn prop_allreduce_for_any_strategy_and_op(
        (p, strategy) in arb_strategy(),
        n in 0usize..150,
        op_sel in 0u8..4,
        salt in any::<u64>(),
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod][op_sel as usize];
        let mut expect = contribution(0, n, salt);
        for r in 1..p {
            op.fold_into(&mut expect, &contribution(r, n, salt));
        }
        let algo = Algo::Hybrid(strategy);
        let out = run_world(p, |c| {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let mut buf = contribution(c.rank(), n, salt);
            cc.allreduce_with(&mut buf, op, &algo).unwrap();
            buf
        });
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn prop_collect_reduce_scatter_duality(
        (p, strategy) in arb_strategy(),
        b in 0usize..40,
        salt in any::<u64>(),
    ) {
        // reduce_scatter(contribs) then collect(blocks) == allreduce.
        let algo = Algo::Hybrid(strategy);
        let out = run_world(p, |c| {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let contrib = contribution(c.rank(), p * b, salt);
            let mut mine = vec![0i64; b];
            cc.reduce_scatter_with(&contrib, &mut mine, ReduceOp::Sum, &algo).unwrap();
            let mut all = vec![0i64; p * b];
            cc.allgather_with(&mine, &mut all, &algo).unwrap();
            all
        });
        let mut expect = contribution(0, p * b, salt);
        for r in 1..p {
            ReduceOp::Sum.fold_into(&mut expect, &contribution(r, p * b, salt));
        }
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn prop_scatter_gather_roundtrip(
        p in 1usize..16,
        b in 0usize..32,
        root_sel in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let root = (root_sel as usize) % p;
        let full = contribution(99, p * b, salt);
        let full2 = full.clone();
        let out = run_world(p, |c| {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let me = c.rank();
            let mut mine = vec![0i64; b];
            cc.scatter(root, if me == root { Some(&full2[..]) } else { None }, &mut mine)
                .unwrap();
            let mut back = vec![0i64; if me == root { p * b } else { 0 }];
            cc.gather(root, &mine, if me == root { Some(&mut back[..]) } else { None })
                .unwrap();
            (mine, back)
        });
        for (r, (mine, _)) in out.iter().enumerate() {
            prop_assert_eq!(&mine[..], &full[r * b..(r + 1) * b]);
        }
        prop_assert_eq!(&out[root].1, &full);
    }

    #[test]
    fn prop_reduce_matches_allreduce_at_root(
        (p, strategy) in arb_strategy(),
        n in 1usize..100,
        root_sel in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let root = (root_sel as usize) % p;
        let algo = Algo::Hybrid(strategy);
        let out = run_world(p, |c| {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let mut red = contribution(c.rank(), n, salt);
            cc.reduce_with(root, &mut red, ReduceOp::Sum, &algo).unwrap();
            let mut ar = contribution(c.rank(), n, salt);
            cc.allreduce_with(&mut ar, ReduceOp::Sum, &algo).unwrap();
            (red, ar)
        });
        let (red_at_root, ar_anywhere) = &out[root];
        prop_assert_eq!(red_at_root, ar_anywhere);
    }

    #[test]
    fn prop_auto_selection_always_correct(
        p in 1usize..20,
        n_exp in 0u32..14,
        salt in any::<u64>(),
    ) {
        // Whatever the selector picks at any length must be correct.
        let n = (1usize << n_exp) / 8;
        let expect = contribution(0, n, salt);
        let out = run_world(p, |c| {
            let cc = Communicator::world(c, MachineParams::PARAGON);
            let mut buf = if c.rank() == 0 { contribution(0, n, salt) } else { vec![0; n] };
            cc.bcast(0, &mut buf).unwrap();
            buf
        });
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }
}
