//! Soak test: long random sequences of mixed collectives on one
//! communicator — exercises tag isolation, buffer reuse and strategy
//! switching under realistic call patterns.

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::{MachineParams, Strategy, StrategyKind};
use intercom_runtime::run_world;

/// Deterministic pseudo-random stream (SplitMix64).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn mixed_collective_soak() {
    const P: usize = 12;
    const OPS: usize = 120;
    // Every rank derives the same op sequence from the same seed, then
    // verifies every result against a sequential reference.
    let out = run_world(P, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let me = c.rank();
        let mut rng = Rng(0xC0FFEE);
        let mut failures = Vec::new();
        for step in 0..OPS {
            let n = [0usize, 1, 7, 32, 129][rng.below(5)];
            let algo = match rng.below(4) {
                0 => Algo::Short,
                1 => Algo::Long,
                2 => Algo::Auto,
                _ => Algo::Hybrid(Strategy::new(
                    [vec![12], vec![2, 6], vec![3, 4], vec![2, 2, 3]][rng.below(4)].clone(),
                    if rng.below(2) == 0 {
                        StrategyKind::Mst
                    } else {
                        StrategyKind::ScatterCollect
                    },
                )),
            };
            match rng.below(4) {
                0 => {
                    let root = rng.below(P);
                    let mut buf: Vec<i64> = if me == root {
                        (0..n as i64).map(|i| i + step as i64).collect()
                    } else {
                        vec![0; n]
                    };
                    cc.bcast_with(root, &mut buf, &algo).unwrap();
                    let expect: Vec<i64> = (0..n as i64).map(|i| i + step as i64).collect();
                    if buf != expect {
                        failures.push(format!("step {step} bcast"));
                    }
                }
                1 => {
                    let mut buf = vec![(me + 1) as i64; n];
                    cc.allreduce_with(&mut buf, ReduceOp::Sum, &algo).unwrap();
                    let expect = (P * (P + 1) / 2) as i64;
                    if !buf.iter().all(|&x| x == expect) {
                        failures.push(format!("step {step} allreduce"));
                    }
                }
                2 => {
                    let mine = vec![me as i64; n];
                    let mut all = vec![0i64; n * P];
                    cc.allgather_with(&mine, &mut all, &algo).unwrap();
                    let ok = (0..P).all(|r| all[r * n..(r + 1) * n].iter().all(|&x| x == r as i64));
                    if !ok {
                        failures.push(format!("step {step} allgather"));
                    }
                }
                _ => {
                    let contrib: Vec<i64> = (0..(n * P) as i64).collect();
                    let mut mine = vec![0i64; n];
                    cc.reduce_scatter_with(&contrib, &mut mine, ReduceOp::Sum, &algo)
                        .unwrap();
                    let ok = mine
                        .iter()
                        .enumerate()
                        .all(|(i, &x)| x == ((me * n + i) as i64) * P as i64);
                    if !ok {
                        failures.push(format!("step {step} reduce_scatter"));
                    }
                }
            }
        }
        failures
    });
    for (r, failures) in out.iter().enumerate() {
        assert!(failures.is_empty(), "rank {r}: {failures:?}");
    }
}

#[test]
fn soak_on_group_subset() {
    // The same communicator pattern within a strided sub-group.
    const P: usize = 9;
    let members: Vec<usize> = vec![1, 3, 5, 7];
    let m2 = members.clone();
    let out = run_world(P, |c| {
        let Ok(cc) = Communicator::from_group(c, MachineParams::PARAGON, m2.clone(), None) else {
            return true;
        };
        for n in [1usize, 5, 64] {
            let mut buf = vec![1i64; n];
            cc.allreduce(&mut buf, ReduceOp::Sum).unwrap();
            if !buf.iter().all(|&x| x == 4) {
                return false;
            }
        }
        true
    });
    assert!(out.iter().all(|&ok| ok));
    let _ = members;
}
