//! Persistent plans on the threaded backend: repeated execution,
//! strategy stability, interleaving with ad-hoc collectives.

use intercom::plan::{AllreducePlan, BcastPlan, CollectPlan};
use intercom::{Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_runtime::run_world;

#[test]
fn plans_execute_repeatedly_with_stable_results() {
    let p = 6;
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let me = c.rank();
        let bcast = BcastPlan::<i64>::new(&cc, 1, 32);
        let ar = AllreducePlan::<i64>::new(&cc, 16, ReduceOp::Sum);
        let gather = CollectPlan::<i64>::new(&cc, 4);
        let mut sums = Vec::new();
        for iter in 0..10i64 {
            let mut b = if me == 1 {
                (0..32).map(|i| i + iter).collect()
            } else {
                vec![0i64; 32]
            };
            bcast.execute(&cc, &mut b).unwrap();
            assert_eq!(b[31], 31 + iter);

            let mut v = vec![iter; 16];
            ar.execute(&cc, &mut v).unwrap();
            assert!(v.iter().all(|&x| x == iter * p as i64));

            let mine = vec![me as i64; 4];
            let mut all = vec![0i64; 4 * p];
            gather.execute(&cc, &mine, &mut all).unwrap();
            assert_eq!(all[4 * me], me as i64);

            sums.push(v[0]);
        }
        sums
    });
    for sums in out {
        assert_eq!(sums, (0..10).map(|i| i * p as i64).collect::<Vec<_>>());
    }
}

#[test]
fn plans_interleave_with_adhoc_collectives() {
    let p = 5;
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let ar = AllreducePlan::<i64>::new(&cc, 8, ReduceOp::Max);
        for _ in 0..5 {
            let mut v = vec![c.rank() as i64; 8];
            ar.execute(&cc, &mut v).unwrap();
            assert!(v.iter().all(|&x| x == (p - 1) as i64));
            // Ad-hoc collective between planned executions.
            let mut w = vec![1i64; 3];
            cc.allreduce(&mut w, ReduceOp::Sum).unwrap();
            assert_eq!(w[0], p as i64);
            cc.barrier().unwrap();
        }
        true
    });
    assert!(out.iter().all(|&ok| ok));
}

#[test]
fn barrier_synchronizes() {
    // Weak but real check: after a barrier, a rank can immediately
    // consume a message sent before its peer's barrier entry.
    let p = 4;
    let out = run_world(p, |c| {
        let cc = Communicator::world(c, MachineParams::PARAGON);
        let me = c.rank();
        if me == 0 {
            for peer in 1..p {
                c.send(peer, 999, &[42u8]).unwrap();
            }
        }
        cc.barrier().unwrap();
        if me != 0 {
            let mut b = [0u8];
            c.recv(0, 999, &mut b).unwrap();
            b[0]
        } else {
            42
        }
    });
    assert!(out.iter().all(|&x| x == 42));
}
