//! # intercom-nx — NX-style baseline collectives
//!
//! The paper's Table 3 and Fig. 4 compare the InterCom library ("iCC")
//! against "the current implementations that are part of the NX operating
//! system for the Intel Paragon". NX's collectives were latency-tuned
//! single-technique algorithms: good at 8 bytes, an order of magnitude
//! slower for long vectors. This crate reimplements that baseline style
//! against the same [`Comm`] trait so both libraries run on identical
//! backends:
//!
//! * [`nx_bcast`] — an *unsegmented* spanning-tree broadcast: `⌈log p⌉`
//!   sequential full-length messages, no scatter/collect pipelining, so
//!   the β term is `⌈log p⌉·nβ` (plus mesh contention) instead of
//!   InterCom's `2nβ`.
//! * [`nx_gop`] (and the classic [`nx_gdsum`]/[`nx_gdhigh`]/[`nx_gdlow`]
//!   wrappers) — global combine as an unsegmented spanning-tree reduce
//!   followed by an unsegmented broadcast.
//! * [`nx_gcolx`] — the collect: every contributor's block is broadcast
//!   to all nodes *sequentially*, one spanning tree after another —
//!   `p·⌈log p⌉` startups, which is why the paper measures NX's collect
//!   at ~0.3 s even for 8-byte blocks (a 77× loss to iCC).
//!
//! Unlike the InterCom code, none of these charge the δ recursion
//! overhead: NX entry points were flat native calls (which is exactly why
//! NX edges out iCC at 8 bytes in Table 3, ratios 0.92 / 0.88).

#![forbid(unsafe_code)]

use intercom::{Comm, CommError, Elem, GroupComm, ReduceOp, Result, Scalar, Tag};

mod tree;

pub use tree::spanning_levels;

const TAG_BCAST: Tag = 1 << 40;
const TAG_REDUCE: Tag = (1 << 40) + 1;
const TAG_GCOL: Tag = 1 << 41;

/// Unsegmented spanning-tree broadcast of `buf` from world rank `root`.
pub fn nx_bcast<T: Scalar, C: Comm + ?Sized>(comm: &C, root: usize, buf: &mut [T]) -> Result<()> {
    let gc = GroupComm::world(comm);
    bcast_in(&gc, root, buf, TAG_BCAST)
}

fn bcast_in<T: Scalar, C: Comm + ?Sized>(
    gc: &GroupComm<'_, C>,
    root: usize,
    buf: &mut [T],
    tag: Tag,
) -> Result<()> {
    if root >= gc.len() {
        return Err(CommError::InvalidRoot {
            root,
            size: gc.len(),
        });
    }
    for lvl in spanning_levels(gc.me(), gc.len(), root) {
        if gc.me() == lvl.root {
            gc.send(lvl.other, tag, buf)?;
        } else if gc.me() == lvl.other {
            gc.recv(lvl.root, tag, buf)?;
        }
    }
    Ok(())
}

/// Global combine in the NX style: unsegmented spanning-tree reduce to
/// node 0 followed by an unsegmented broadcast. Every stage moves the
/// *full* vector.
pub fn nx_gop<T: Elem, C: Comm + ?Sized>(comm: &C, buf: &mut [T], op: ReduceOp) -> Result<()> {
    let gc = GroupComm::world(comm);
    // Reduce: broadcast communications reversed, combining inward.
    let path = spanning_levels(gc.me(), gc.len(), 0);
    let mut scratch = vec![T::default(); buf.len()];
    for lvl in path.iter().rev() {
        if gc.me() == lvl.other {
            gc.send(lvl.root, TAG_REDUCE, buf)?;
        } else if gc.me() == lvl.root {
            gc.recv(lvl.other, TAG_REDUCE, &mut scratch)?;
            op.fold_into(buf, &scratch);
            gc.compute(std::mem::size_of_val(&buf[..]));
        }
    }
    bcast_in(&gc, 0, buf, TAG_REDUCE)
}

/// `gdsum`: global sum of doubles, result everywhere.
pub fn nx_gdsum<C: Comm + ?Sized>(comm: &C, buf: &mut [f64]) -> Result<()> {
    nx_gop(comm, buf, ReduceOp::Sum)
}

/// `gdhigh`: global max of doubles, result everywhere.
pub fn nx_gdhigh<C: Comm + ?Sized>(comm: &C, buf: &mut [f64]) -> Result<()> {
    nx_gop(comm, buf, ReduceOp::Max)
}

/// `gdlow`: global min of doubles, result everywhere.
pub fn nx_gdlow<C: Comm + ?Sized>(comm: &C, buf: &mut [f64]) -> Result<()> {
    nx_gop(comm, buf, ReduceOp::Min)
}

/// `gcolx`: concatenate every node's `mine` into `all` (equal, known
/// lengths) by broadcasting each contributor's block in turn — the
/// sequential-spanning-tree structure whose startup cost is
/// `p·⌈log p⌉·α`.
pub fn nx_gcolx<T: Scalar, C: Comm + ?Sized>(comm: &C, mine: &[T], all: &mut [T]) -> Result<()> {
    let gc = GroupComm::world(comm);
    let p = gc.len();
    let b = mine.len();
    if all.len() != p * b {
        return Err(CommError::BadBufferSize {
            expected: p * b,
            actual: all.len(),
        });
    }
    all[gc.me() * b..(gc.me() + 1) * b].copy_from_slice(mine);
    for contributor in 0..p {
        let (pre, rest) = all.split_at_mut(contributor * b);
        let _ = pre;
        let block = &mut rest[..b];
        bcast_in(&gc, contributor, block, TAG_GCOL + contributor as Tag)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom_runtime::run_world;

    #[test]
    fn nx_bcast_delivers() {
        for p in [1usize, 2, 5, 8, 13] {
            for root in [0, p - 1] {
                let out = run_world(p, |c| {
                    let mut v = if c.rank() == root {
                        vec![7i32, 8, 9]
                    } else {
                        vec![0; 3]
                    };
                    nx_bcast(c, root, &mut v).unwrap();
                    v
                });
                assert!(out.iter().all(|v| v == &[7, 8, 9]), "p={p} root={root}");
            }
        }
    }

    #[test]
    fn nx_gdsum_sums_everywhere() {
        for p in [1usize, 3, 6, 9] {
            let out = run_world(p, |c| {
                let mut v = vec![(c.rank() + 1) as f64; 4];
                nx_gdsum(c, &mut v).unwrap();
                v[0]
            });
            let expect: f64 = (1..=p).map(|x| x as f64).sum();
            assert!(out.iter().all(|&s| s == expect), "p={p}: {out:?}");
        }
    }

    #[test]
    fn nx_high_low() {
        let out = run_world(5, |c| {
            let mut hi = vec![c.rank() as f64];
            let mut lo = vec![c.rank() as f64];
            nx_gdhigh(c, &mut hi).unwrap();
            nx_gdlow(c, &mut lo).unwrap();
            (hi[0], lo[0])
        });
        assert!(out.iter().all(|&(h, l)| h == 4.0 && l == 0.0));
    }

    #[test]
    fn nx_gcolx_concatenates() {
        for p in [1usize, 2, 7, 12] {
            let b = 3;
            let out = run_world(p, |c| {
                let mine: Vec<i64> = (0..b).map(|i| (c.rank() * 10 + i) as i64).collect();
                let mut all = vec![0i64; p * b];
                nx_gcolx(c, &mine, &mut all).unwrap();
                all
            });
            let mut expect = Vec::new();
            for r in 0..p {
                expect.extend((0..b).map(|i| (r * 10 + i) as i64));
            }
            assert!(out.iter().all(|a| a == &expect), "p={p}");
        }
    }

    #[test]
    fn gcolx_size_validated() {
        let out = run_world(2, |c| {
            let mine = [1.0f64];
            let mut all = [0.0f64; 3];
            nx_gcolx(c, &mine, &mut all).is_err()
        });
        assert!(out.iter().all(|&e| e));
    }
}
