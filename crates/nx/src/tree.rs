//! The spanning tree NX-style collectives walk: plain recursive halving
//! (the same shape InterCom's MST primitives use, but exposed without
//! block ranges or overhead accounting — NX moved full vectors at every
//! level).

/// One level of the halving walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level {
    /// Root of the current range.
    pub root: usize,
    /// Its counterpart in the other half.
    pub other: usize,
}

/// Walks the recursive halving of `[0, p)` down to the singleton `{me}`,
/// with `root` the initial range root, returning the transfer of each
/// level.
pub fn spanning_levels(me: usize, p: usize, mut root: usize) -> Vec<Level> {
    assert!(me < p && root < p, "me/root out of range");
    let mut lo = 0;
    let mut hi = p;
    let mut out = Vec::new();
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        let other = if root < mid { mid } else { mid - 1 };
        out.push(Level { root, other });
        if me < mid {
            hi = mid;
            root = if root < mid { root } else { mid - 1 };
        } else {
            lo = mid;
            root = if root < mid { mid } else { root };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_log() {
        for p in 1..64 {
            let depth = (p as f64).log2().ceil() as usize;
            for me in 0..p {
                assert!(spanning_levels(me, p, 0).len() <= depth, "p={p} me={me}");
            }
        }
    }

    #[test]
    fn reaches_every_rank() {
        // Union of receive events over all ranks covers everyone but root.
        for p in 2..20 {
            for root in 0..p {
                let mut reached = vec![false; p];
                reached[root] = true;
                for (me, flag) in reached.iter_mut().enumerate() {
                    for lvl in spanning_levels(me, p, root) {
                        if me == lvl.other {
                            *flag = true;
                        }
                    }
                }
                assert!(reached.iter().all(|&r| r), "p={p} root={root}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_args_panic() {
        spanning_levels(5, 4, 0);
    }
}
