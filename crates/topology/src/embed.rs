//! Logical mesh views over process groups (paper §6).
//!
//! A hybrid strategy views a linear array of `p` nodes as a logical
//! `d1 × … × dk` mesh. Logical rank `r` corresponds to the mixed-radix
//! index `(i1, …, ik)` with
//!
//! ```text
//! r = i1·(d2·d3·…·dk) + i2·(d3·…·dk) + … + ik
//! ```
//!
//! so dimension `k` (the last) varies fastest and groups nearest
//! neighbours — matching the paper's Fig. 1, where the *first* scatter
//! stage runs within subgroups of adjacent nodes ("while the vectors are
//! long, the hybrid should choose the localized groups in an effort to
//! reduce network conflicts").

use crate::group::ProcGroup;
use std::fmt;

/// A logical `d1 × … × dk` view over a [`ProcGroup`] of exactly
/// `d1·…·dk` members.
#[derive(Debug, Clone)]
pub struct LogicalMesh {
    group: ProcGroup,
    dims: Vec<usize>,
}

/// Error constructing a [`LogicalMesh`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// The product of the dims did not equal the group size.
    SizeMismatch {
        /// Product of the requested dims.
        dims_product: usize,
        /// Actual group size.
        group_len: usize,
    },
    /// A dimension of zero was supplied.
    ZeroDim,
    /// No dimensions were supplied.
    NoDims,
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::SizeMismatch {
                dims_product,
                group_len,
            } => write!(
                f,
                "logical dims multiply to {dims_product} but group has {group_len} members"
            ),
            EmbedError::ZeroDim => write!(f, "logical mesh dimensions must be positive"),
            EmbedError::NoDims => write!(f, "at least one logical dimension required"),
        }
    }
}

impl std::error::Error for EmbedError {}

impl LogicalMesh {
    /// Creates a logical view; `dims` must multiply to `group.len()`.
    pub fn new(group: ProcGroup, dims: Vec<usize>) -> Result<Self, EmbedError> {
        if dims.is_empty() {
            return Err(EmbedError::NoDims);
        }
        if dims.contains(&0) {
            return Err(EmbedError::ZeroDim);
        }
        let prod: usize = dims.iter().product();
        if prod != group.len() {
            return Err(EmbedError::SizeMismatch {
                dims_product: prod,
                group_len: group.len(),
            });
        }
        Ok(LogicalMesh { group, dims })
    }

    /// The underlying group.
    pub fn group(&self) -> &ProcGroup {
        &self.group
    }

    /// The logical dimensions `d1, …, dk`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of logical dimensions `k`.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Stride (in logical ranks) between consecutive indices of dimension
    /// `d` (0-based): the product of all later dimensions.
    pub fn stride(&self, d: usize) -> usize {
        self.dims[d + 1..].iter().product()
    }

    /// Mixed-radix index of logical rank `r`.
    pub fn index_of(&self, mut r: usize) -> Vec<usize> {
        assert!(r < self.group.len(), "rank {r} out of range");
        let mut idx = vec![0; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            idx[d] = r % self.dims[d];
            r /= self.dims[d];
        }
        idx
    }

    /// Logical rank of a mixed-radix index.
    pub fn rank_of(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index arity mismatch");
        let mut r = 0;
        for (d, &i) in idx.iter().enumerate() {
            assert!(i < self.dims[d], "index {i} out of range in dim {d}");
            r = r * self.dims[d] + i;
        }
        r
    }

    /// The 1-D sub-group along dimension `d` that contains logical rank
    /// `r`: all ranks whose indices agree with `r` everywhere except
    /// dimension `d`, ordered by that dimension's index. The returned
    /// group maps *dimension indices* to physical nodes.
    pub fn line_through(&self, r: usize, d: usize) -> ProcGroup {
        let stride = self.stride(d);
        let idx = self.index_of(r);
        let base = r - idx[d] * stride;
        self.group.strided(base, stride, self.dims[d])
    }

    /// Index of rank `r` within its dimension-`d` line (its coordinate in
    /// that dimension).
    pub fn coord_in_dim(&self, r: usize, d: usize) -> usize {
        self.index_of(r)[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    fn mesh(dims: &[usize]) -> LogicalMesh {
        let p: usize = dims.iter().product();
        LogicalMesh::new(ProcGroup::new((0..p).collect()).unwrap(), dims.to_vec()).unwrap()
    }

    #[test]
    fn size_mismatch_rejected() {
        let g = ProcGroup::new((0..6).collect()).unwrap();
        assert!(matches!(
            LogicalMesh::new(g, vec![2, 2]),
            Err(EmbedError::SizeMismatch {
                dims_product: 4,
                group_len: 6
            })
        ));
    }

    #[test]
    fn zero_dim_rejected() {
        let g = ProcGroup::new(vec![0]).unwrap();
        assert!(matches!(
            LogicalMesh::new(g.clone(), vec![0]),
            Err(EmbedError::ZeroDim)
        ));
        assert!(matches!(
            LogicalMesh::new(g, vec![]),
            Err(EmbedError::NoDims)
        ));
    }

    #[test]
    fn index_roundtrip_2x3x2() {
        let m = mesh(&[2, 3, 2]);
        for r in 0..12 {
            assert_eq!(m.rank_of(&m.index_of(r)), r);
        }
        // Last dimension varies fastest.
        assert_eq!(m.index_of(0), vec![0, 0, 0]);
        assert_eq!(m.index_of(1), vec![0, 0, 1]);
        assert_eq!(m.index_of(2), vec![0, 1, 0]);
        assert_eq!(m.index_of(6), vec![1, 0, 0]);
    }

    #[test]
    fn strides() {
        let m = mesh(&[2, 3, 5]);
        assert_eq!(m.stride(0), 15);
        assert_eq!(m.stride(1), 5);
        assert_eq!(m.stride(2), 1);
    }

    #[test]
    fn line_through_last_dim_is_contiguous() {
        let m = mesh(&[3, 4]);
        let line = m.line_through(5, 1);
        assert_eq!(line.members(), &[4, 5, 6, 7]);
        assert_eq!(m.coord_in_dim(5, 1), 1);
    }

    #[test]
    fn line_through_first_dim_is_strided() {
        let m = mesh(&[3, 4]);
        let line = m.line_through(5, 0);
        assert_eq!(line.members(), &[1, 5, 9]);
        assert_eq!(m.coord_in_dim(5, 0), 1);
    }

    #[test]
    fn fig1_twelve_nodes_as_2x3x2() {
        // Paper Fig. 1: 12 nodes; first scatter within subgroups of two
        // *adjacent* nodes. With dims [2,3,2] reversed convention, stage
        // order in our hybrid runs the LAST dim first; its lines are the
        // adjacent pairs.
        let m = mesh(&[2, 3, 2]);
        let pairs: Vec<_> = (0..12).step_by(2).map(|r| m.line_through(r, 2)).collect();
        assert_eq!(pairs[0].members(), &[0, 1]);
        assert_eq!(pairs[1].members(), &[2, 3]);
        assert_eq!(pairs[5].members(), &[10, 11]);
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_rank_index_roundtrip(d1 in 1usize..5, d2 in 1usize..5, d3 in 1usize..5) {
            let m = mesh(&[d1, d2, d3]);
            for r in 0..d1 * d2 * d3 {
                prop_assert_eq!(m.rank_of(&m.index_of(r)), r);
            }
        }

        #[test]
        fn prop_lines_partition_ranks(d1 in 1usize..5, d2 in 1usize..5, dim in 0usize..2) {
            let m = mesh(&[d1, d2]);
            let p = d1 * d2;
            // Lines through a given dimension, collected over all ranks,
            // cover each rank exactly dims[dim] times.
            let mut count = vec![0usize; p];
            for r in 0..p {
                let line = m.line_through(r, dim);
                for &n in line.members() {
                    count[n] += 1;
                }
            }
            for c in count {
                prop_assert_eq!(c, m.dims()[dim]);
            }
        }

        #[test]
        fn prop_line_contains_self(d1 in 1usize..5, d2 in 1usize..5, d3 in 1usize..4) {
            let m = mesh(&[d1, d2, d3]);
            for r in 0..d1 * d2 * d3 {
                for d in 0..3 {
                    let line = m.line_through(r, d);
                    let pos = m.coord_in_dim(r, d);
                    prop_assert_eq!(line.node(pos), r);
                }
            }
        }
    }
}
