//! XY dimension-ordered wormhole routing.
//!
//! The Paragon and Delta route messages first along the row (X / east-west)
//! to the destination column, then along the column (Y / north-south) to
//! the destination row. Because the full route is claimed link-by-link
//! (cut-through), the simulator models a message as simultaneously
//! occupying every directed link of its route; two messages whose routes
//! share a directed link share that link's bandwidth (§2).

use crate::mesh::{Direction, LinkId, Mesh2D, NodeId};

/// One hop of a route: the directed link traversed.
pub type RouteStep = LinkId;

/// Computes the XY dimension-ordered route from `src` to `dst` as the list
/// of directed links traversed, in order. The route for `src == dst` is
/// empty (a node-local transfer touches no links).
pub fn route_xy(mesh: &Mesh2D, src: NodeId, dst: NodeId) -> Vec<RouteStep> {
    let a = mesh.coord(src);
    let b = mesh.coord(dst);
    let mut steps = Vec::with_capacity(a.manhattan(&b));
    let mut cur = src;
    // X leg: fix the column first.
    let xdir = if b.col > a.col {
        Some(Direction::East)
    } else if b.col < a.col {
        Some(Direction::West)
    } else {
        None
    };
    if let Some(dir) = xdir {
        let hops = a.col.abs_diff(b.col);
        for _ in 0..hops {
            steps.push(LinkId { from: cur, dir });
            cur = mesh
                .neighbor(cur, dir)
                .expect("XY route stepped off the mesh");
        }
    }
    // Y leg: then fix the row.
    let ydir = if b.row > a.row {
        Some(Direction::South)
    } else if b.row < a.row {
        Some(Direction::North)
    } else {
        None
    };
    if let Some(dir) = ydir {
        let hops = a.row.abs_diff(b.row);
        for _ in 0..hops {
            steps.push(LinkId { from: cur, dir });
            cur = mesh
                .neighbor(cur, dir)
                .expect("XY route stepped off the mesh");
        }
    }
    debug_assert_eq!(cur, dst);
    steps
}

/// Returns the node reached by following `route` from `src`; used in tests
/// and assertions to validate route integrity.
pub fn follow(mesh: &Mesh2D, src: NodeId, route: &[RouteStep]) -> Option<NodeId> {
    let mut cur = src;
    for step in route {
        if step.from != cur {
            return None;
        }
        cur = mesh.neighbor(cur, step.dir)?;
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn self_route_is_empty() {
        let m = Mesh2D::new(4, 4);
        assert!(route_xy(&m, 5, 5).is_empty());
    }

    #[test]
    fn route_length_is_manhattan() {
        let m = Mesh2D::new(7, 9);
        for s in 0..m.nodes() {
            for d in 0..m.nodes() {
                let r = route_xy(&m, s, d);
                assert_eq!(r.len(), m.coord(s).manhattan(&m.coord(d)));
            }
        }
    }

    #[test]
    fn x_before_y() {
        let m = Mesh2D::new(5, 5);
        // (0,0) -> (2,3): expect 3 east hops then 2 south hops.
        let r = route_xy(&m, 0, m.id(crate::coord::Coord::new(2, 3)));
        assert_eq!(
            r.iter().map(|s| s.dir).collect::<Vec<_>>(),
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South
            ]
        );
    }

    #[test]
    fn neighbor_routes_single_hop() {
        let m = Mesh2D::new(3, 3);
        let r = route_xy(&m, 4, 5);
        assert_eq!(
            r,
            vec![LinkId {
                from: 4,
                dir: Direction::East
            }]
        );
    }

    #[test]
    fn ring_of_row_neighbors_shares_no_links() {
        // All "send right" messages in a row are pairwise link-disjoint —
        // the property that makes ring primitives conflict-free (§4).
        let m = Mesh2D::new(1, 8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..7 {
            for l in route_xy(&m, i, i + 1) {
                assert!(seen.insert(l), "link {l} reused");
            }
        }
        // The wrap-around message 7 -> 0 travels west over distinct
        // (west-directed) links, so even the wrapped ring is conflict-free.
        for l in route_xy(&m, 7, 0) {
            assert!(seen.insert(l), "wrap link {l} reused");
        }
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_route_reaches_destination(
            rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()
        ) {
            let m = Mesh2D::new(rows, cols);
            let n = m.nodes();
            let src = (seed as usize) % n;
            let dst = (seed as usize / n.max(1)) % n;
            let r = route_xy(&m, src, dst);
            prop_assert_eq!(follow(&m, src, &r), Some(dst));
        }

        #[test]
        fn prop_route_is_minimal(
            rows in 1usize..10, cols in 1usize..10, s in any::<u16>(), d in any::<u16>()
        ) {
            let m = Mesh2D::new(rows, cols);
            let src = (s as usize) % m.nodes();
            let dst = (d as usize) % m.nodes();
            let r = route_xy(&m, src, dst);
            prop_assert_eq!(r.len(), m.coord(src).manhattan(&m.coord(dst)));
        }

        #[test]
        fn prop_route_no_repeated_links(
            rows in 1usize..10, cols in 1usize..10, s in any::<u16>(), d in any::<u16>()
        ) {
            let m = Mesh2D::new(rows, cols);
            let src = (s as usize) % m.nodes();
            let dst = (d as usize) % m.nodes();
            let r = route_xy(&m, src, dst);
            let set: std::collections::HashSet<_> = r.iter().collect();
            prop_assert_eq!(set.len(), r.len());
        }
    }
}
