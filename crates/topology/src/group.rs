//! Process groups and physical-structure detection (paper §9).
//!
//! A [`ProcGroup`] is an ordered list of physical node ids; position in the
//! list is the node's *logical rank* within the group. "The ring collect
//! routine would treat those processors as a group of contiguous nodes
//! numbered 0 to r−1, using the group array to provide the
//! logical-to-physical mapping" — this module is that group array, plus
//! the structure analysis the paper uses to keep group collectives fast:
//! a group that forms a rectangular physical submesh gets the row/column
//! staging techniques; anything else is treated as a linear array.

use crate::mesh::{Mesh2D, NodeId};
use std::collections::HashSet;
use std::fmt;

/// What physical shape a group's nodes form on the machine (paper §9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupStructure {
    /// The group covers a full rectangular submesh in row-major order:
    /// rows `row0..row0+rows`, columns `col0..col0+cols`. Whole-mesh
    /// row/column techniques apply directly.
    Submesh {
        /// Top-left corner row.
        row0: usize,
        /// Top-left corner column.
        col0: usize,
        /// Height of the submesh.
        rows: usize,
        /// Width of the submesh.
        cols: usize,
    },
    /// The group is a contiguous run of nodes within one physical row
    /// (west→east) or column (north→south) — a physical linear array with
    /// nearest-neighbour links.
    PhysicalLine,
    /// No physical structure could be ascertained; the group is treated
    /// as though it were a linear array in logical-rank order.
    Unstructured,
}

impl fmt::Display for GroupStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupStructure::Submesh {
                row0,
                col0,
                rows,
                cols,
            } => {
                write!(f, "{rows}x{cols} submesh @({row0},{col0})")
            }
            GroupStructure::PhysicalLine => write!(f, "physical line"),
            GroupStructure::Unstructured => write!(f, "unstructured"),
        }
    }
}

/// An ordered set of physical nodes; index = logical rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcGroup {
    ranks: Vec<NodeId>,
}

/// Error constructing a [`ProcGroup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// The member list was empty.
    Empty,
    /// A node id appeared more than once (the offending id is carried).
    Duplicate(NodeId),
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::Empty => write!(f, "process group must not be empty"),
            GroupError::Duplicate(id) => write!(f, "node {id} appears twice in group"),
        }
    }
}

impl std::error::Error for GroupError {}

impl ProcGroup {
    /// Builds a group from a logical-rank-ordered list of physical nodes.
    pub fn new(ranks: Vec<NodeId>) -> Result<Self, GroupError> {
        if ranks.is_empty() {
            return Err(GroupError::Empty);
        }
        let mut seen = HashSet::with_capacity(ranks.len());
        for &r in &ranks {
            if !seen.insert(r) {
                return Err(GroupError::Duplicate(r));
            }
        }
        Ok(ProcGroup { ranks })
    }

    /// The whole machine as one group, in row-major (node-id) order.
    pub fn whole_mesh(mesh: &Mesh2D) -> Self {
        ProcGroup {
            ranks: mesh.all_nodes(),
        }
    }

    /// Physical row `r` of the mesh as a group (west→east order).
    pub fn mesh_row(mesh: &Mesh2D, r: usize) -> Self {
        ProcGroup {
            ranks: mesh.row_nodes(r),
        }
    }

    /// Physical column `c` of the mesh as a group (north→south order).
    pub fn mesh_col(mesh: &Mesh2D, c: usize) -> Self {
        ProcGroup {
            ranks: mesh.col_nodes(c),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True iff the group has exactly one member. (Groups are never empty.)
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Physical node id of logical rank `i`. Panics if out of range.
    pub fn node(&self, i: usize) -> NodeId {
        self.ranks[i]
    }

    /// All members in logical-rank order.
    pub fn members(&self) -> &[NodeId] {
        &self.ranks
    }

    /// Logical rank of physical node `id`, if a member.
    pub fn rank_of(&self, id: NodeId) -> Option<usize> {
        self.ranks.iter().position(|&r| r == id)
    }

    /// The sub-group of every `stride`-th member starting at `offset` —
    /// how the hybrid template slices a logical `d1 × … × dk` view into
    /// per-dimension groups.
    pub fn strided(&self, offset: usize, stride: usize, count: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        let ranks: Vec<NodeId> = (0..count)
            .map(|i| self.ranks[offset + i * stride])
            .collect();
        ProcGroup { ranks }
    }

    /// Detects the physical structure of the group on `mesh` (paper §9).
    ///
    /// Returns [`GroupStructure::Submesh`] when the members enumerate a
    /// full rectangle in row-major order, [`GroupStructure::PhysicalLine`]
    /// when they walk one row or column in physically-contiguous order,
    /// and [`GroupStructure::Unstructured`] otherwise.
    pub fn structure(&self, mesh: &Mesh2D) -> GroupStructure {
        let coords: Vec<_> = self.ranks.iter().map(|&id| mesh.coord(id)).collect();
        let rmin = coords.iter().map(|c| c.row).min().unwrap();
        let rmax = coords.iter().map(|c| c.row).max().unwrap();
        let cmin = coords.iter().map(|c| c.col).min().unwrap();
        let cmax = coords.iter().map(|c| c.col).max().unwrap();
        let rows = rmax - rmin + 1;
        let cols = cmax - cmin + 1;

        // A full rectangle in row-major order?
        if rows * cols == self.ranks.len() {
            let row_major = coords
                .iter()
                .enumerate()
                .all(|(i, c)| c.row == rmin + i / cols && c.col == cmin + i % cols);
            if row_major && (rows > 1 && cols > 1) {
                return GroupStructure::Submesh {
                    row0: rmin,
                    col0: cmin,
                    rows,
                    cols,
                };
            }
            if row_major && (rows == 1 || cols == 1) {
                // Degenerate rectangle: one physical row or column walked
                // contiguously.
                return GroupStructure::PhysicalLine;
            }
        }

        // A contiguous walk along one row or column in either direction?
        if rows == 1 && cols == self.ranks.len() {
            let fwd = coords.windows(2).all(|w| w[1].col == w[0].col + 1);
            let bwd = coords.windows(2).all(|w| w[1].col + 1 == w[0].col);
            if fwd || bwd {
                return GroupStructure::PhysicalLine;
            }
        }
        if cols == 1 && rows == self.ranks.len() {
            let fwd = coords.windows(2).all(|w| w[1].row == w[0].row + 1);
            let bwd = coords.windows(2).all(|w| w[1].row + 1 == w[0].row);
            if fwd || bwd {
                return GroupStructure::PhysicalLine;
            }
        }
        GroupStructure::Unstructured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_and_duplicates() {
        assert_eq!(ProcGroup::new(vec![]), Err(GroupError::Empty));
        assert_eq!(ProcGroup::new(vec![1, 2, 1]), Err(GroupError::Duplicate(1)));
    }

    #[test]
    fn rank_mapping_roundtrip() {
        let g = ProcGroup::new(vec![7, 3, 11, 0]).unwrap();
        for i in 0..g.len() {
            assert_eq!(g.rank_of(g.node(i)), Some(i));
        }
        assert_eq!(g.rank_of(99), None);
    }

    #[test]
    fn whole_mesh_is_submesh() {
        let m = Mesh2D::new(4, 6);
        let g = ProcGroup::whole_mesh(&m);
        assert_eq!(
            g.structure(&m),
            GroupStructure::Submesh {
                row0: 0,
                col0: 0,
                rows: 4,
                cols: 6
            }
        );
    }

    #[test]
    fn row_group_is_line() {
        let m = Mesh2D::new(4, 6);
        assert_eq!(
            ProcGroup::mesh_row(&m, 2).structure(&m),
            GroupStructure::PhysicalLine
        );
        assert_eq!(
            ProcGroup::mesh_col(&m, 5).structure(&m),
            GroupStructure::PhysicalLine
        );
    }

    #[test]
    fn reversed_row_is_line() {
        let m = Mesh2D::new(2, 5);
        let mut nodes = m.row_nodes(1);
        nodes.reverse();
        let g = ProcGroup::new(nodes).unwrap();
        assert_eq!(g.structure(&m), GroupStructure::PhysicalLine);
    }

    #[test]
    fn interior_submesh_detected() {
        let m = Mesh2D::new(6, 8);
        // 2x3 rectangle at (1,2), row-major.
        let ids = vec![
            m.id(crate::coord::Coord::new(1, 2)),
            m.id(crate::coord::Coord::new(1, 3)),
            m.id(crate::coord::Coord::new(1, 4)),
            m.id(crate::coord::Coord::new(2, 2)),
            m.id(crate::coord::Coord::new(2, 3)),
            m.id(crate::coord::Coord::new(2, 4)),
        ];
        let g = ProcGroup::new(ids).unwrap();
        assert_eq!(
            g.structure(&m),
            GroupStructure::Submesh {
                row0: 1,
                col0: 2,
                rows: 2,
                cols: 3
            }
        );
    }

    #[test]
    fn scattered_group_unstructured() {
        let m = Mesh2D::new(4, 4);
        let g = ProcGroup::new(vec![0, 5, 10, 15]).unwrap(); // diagonal
        assert_eq!(g.structure(&m), GroupStructure::Unstructured);
    }

    #[test]
    fn permuted_rectangle_unstructured() {
        let m = Mesh2D::new(4, 4);
        // The nodes of a 2x2 rectangle, but NOT in row-major order.
        let g = ProcGroup::new(vec![0, 4, 1, 5]).unwrap();
        assert_eq!(g.structure(&m), GroupStructure::Unstructured);
    }

    #[test]
    fn singleton_group_is_line() {
        let m = Mesh2D::new(3, 3);
        let g = ProcGroup::new(vec![4]).unwrap();
        assert_eq!(g.structure(&m), GroupStructure::PhysicalLine);
    }

    #[test]
    fn strided_subgroup() {
        let g = ProcGroup::new((0..12).collect()).unwrap();
        let s = g.strided(1, 3, 4);
        assert_eq!(s.members(), &[1, 4, 7, 10]);
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_rank_of_is_inverse(perm in proptest::sample::subsequence((0usize..64).collect::<Vec<_>>(), 1..32)) {
            let g = ProcGroup::new(perm.clone()).unwrap();
            for (i, &id) in perm.iter().enumerate() {
                prop_assert_eq!(g.rank_of(id), Some(i));
            }
        }

        #[test]
        fn prop_submesh_groups_detected(
            rows in 1usize..6, cols in 1usize..6,
            r0 in 0usize..4, c0 in 0usize..4
        ) {
            let m = Mesh2D::new(10, 10);
            let mut ids = Vec::new();
            for r in r0..r0 + rows {
                for c in c0..c0 + cols {
                    ids.push(m.id(crate::coord::Coord::new(r, c)));
                }
            }
            let g = ProcGroup::new(ids).unwrap();
            match g.structure(&m) {
                GroupStructure::Submesh { row0, col0, rows: rr, cols: cc } => {
                    prop_assert!(rows > 1 && cols > 1);
                    prop_assert_eq!((row0, col0, rr, cc), (r0, c0, rows, cols));
                }
                GroupStructure::PhysicalLine => {
                    prop_assert!(rows == 1 || cols == 1);
                }
                GroupStructure::Unstructured => prop_assert!(false, "rectangle not detected"),
            }
        }
    }
}
