//! The physical machine: a `rows × cols` mesh with bidirectional links.

use crate::coord::Coord;
use std::fmt;

/// A physical node id, assigned row-major: `id = row * cols + col`.
pub type NodeId = usize;

/// One of the four mesh directions a directed link can point in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger column indices.
    East,
    /// Toward smaller column indices.
    West,
    /// Toward larger row indices.
    South,
    /// Toward smaller row indices.
    North,
}

impl Direction {
    /// All four directions, in a fixed enumeration order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::South,
        Direction::North,
    ];

    /// Dense index of this direction, `0..4`, matching [`Direction::ALL`].
    pub fn index(&self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }
}

/// A *directed* physical link, identified by the node it leaves and the
/// direction it points. Bidirectional mesh links are modeled as two
/// independent directed links (each full-duplex direction has its own
/// bandwidth, matching the paper's machine model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    /// Node the link departs from.
    pub from: NodeId,
    /// Direction of travel.
    pub dir: Direction,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.dir {
            Direction::East => "E",
            Direction::West => "W",
            Direction::South => "S",
            Direction::North => "N",
        };
        write!(f, "{}→{}", self.from, d)
    }
}

/// A two-dimensional mesh of `rows × cols` processing nodes with
/// bidirectional nearest-neighbour links (the paper's target machine, §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2D {
    rows: usize,
    cols: usize,
}

impl Mesh2D {
    /// Creates a mesh. Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        Mesh2D { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of nodes, `rows × cols`.
    pub fn nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// Coordinate of a node id (row-major). Panics if out of range.
    pub fn coord(&self, id: NodeId) -> Coord {
        assert!(id < self.nodes(), "node id {id} out of range");
        Coord::new(id / self.cols, id % self.cols)
    }

    /// Node id at a coordinate (row-major). Panics if out of range.
    pub fn id(&self, c: Coord) -> NodeId {
        assert!(
            c.row < self.rows && c.col < self.cols,
            "coordinate {c} out of range for {}x{} mesh",
            self.rows,
            self.cols
        );
        c.row * self.cols + c.col
    }

    /// Whether `id` is a valid node id on this mesh.
    pub fn contains(&self, id: NodeId) -> bool {
        id < self.nodes()
    }

    /// The neighbour of `id` in direction `dir`, if one exists (mesh, not
    /// torus: edge nodes have no neighbour off the edge).
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(id);
        let n = match dir {
            Direction::East if c.col + 1 < self.cols => Coord::new(c.row, c.col + 1),
            Direction::West if c.col > 0 => Coord::new(c.row, c.col - 1),
            Direction::South if c.row + 1 < self.rows => Coord::new(c.row + 1, c.col),
            Direction::North if c.row > 0 => Coord::new(c.row - 1, c.col),
            _ => return None,
        };
        Some(self.id(n))
    }

    /// Every directed link in the mesh. A `rows × cols` mesh has
    /// `2·(rows·(cols−1) + cols·(rows−1))` directed links.
    pub fn links(&self) -> Vec<LinkId> {
        let mut out = Vec::new();
        for id in 0..self.nodes() {
            for dir in Direction::ALL {
                if self.neighbor(id, dir).is_some() {
                    out.push(LinkId { from: id, dir });
                }
            }
        }
        out
    }

    /// The node ids of physical row `r`, west to east.
    pub fn row_nodes(&self, r: usize) -> Vec<NodeId> {
        assert!(r < self.rows, "row {r} out of range");
        (0..self.cols).map(|c| self.id(Coord::new(r, c))).collect()
    }

    /// The node ids of physical column `c`, north to south.
    pub fn col_nodes(&self, c: usize) -> Vec<NodeId> {
        assert!(c < self.cols, "column {c} out of range");
        (0..self.rows).map(|r| self.id(Coord::new(r, c))).collect()
    }

    /// All node ids in row-major order — the canonical linear-array view of
    /// the whole machine.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes()).collect()
    }

    /// Dense slot of a directed link: `from · 4 + direction index`. Edge
    /// slots for non-existent boundary links are simply never referenced;
    /// the slot space has size [`Mesh2D::link_slots`].
    pub fn link_slot(&self, l: LinkId) -> usize {
        l.from * 4 + l.dir.index()
    }

    /// Size of the dense directed-link slot space, `4 · nodes`.
    pub fn link_slots(&self) -> usize {
        4 * self.nodes()
    }
}

impl fmt::Display for Mesh2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip() {
        let m = Mesh2D::new(15, 30);
        for id in 0..m.nodes() {
            assert_eq!(m.id(m.coord(id)), id);
        }
    }

    #[test]
    fn neighbors_interior() {
        let m = Mesh2D::new(4, 5);
        let c = m.id(Coord::new(2, 2));
        assert_eq!(m.neighbor(c, Direction::East), Some(m.id(Coord::new(2, 3))));
        assert_eq!(m.neighbor(c, Direction::West), Some(m.id(Coord::new(2, 1))));
        assert_eq!(
            m.neighbor(c, Direction::South),
            Some(m.id(Coord::new(3, 2)))
        );
        assert_eq!(
            m.neighbor(c, Direction::North),
            Some(m.id(Coord::new(1, 2)))
        );
    }

    #[test]
    fn neighbors_corner() {
        let m = Mesh2D::new(3, 3);
        assert_eq!(m.neighbor(0, Direction::West), None);
        assert_eq!(m.neighbor(0, Direction::North), None);
        assert_eq!(m.neighbor(8, Direction::East), None);
        assert_eq!(m.neighbor(8, Direction::South), None);
    }

    #[test]
    fn link_count_formula() {
        for (r, c) in [(1, 1), (1, 8), (4, 4), (15, 30), (16, 32)] {
            let m = Mesh2D::new(r, c);
            let expect = 2 * (r * (c - 1) + c * (r - 1));
            assert_eq!(m.links().len(), expect, "{r}x{c}");
        }
    }

    #[test]
    fn rows_and_cols_slices() {
        let m = Mesh2D::new(3, 4);
        assert_eq!(m.row_nodes(1), vec![4, 5, 6, 7]);
        assert_eq!(m.col_nodes(2), vec![2, 6, 10]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_id_panics() {
        Mesh2D::new(2, 2).coord(4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        Mesh2D::new(0, 3);
    }

    #[test]
    fn single_node_mesh() {
        let m = Mesh2D::new(1, 1);
        assert_eq!(m.nodes(), 1);
        assert!(m.links().is_empty());
        for dir in Direction::ALL {
            assert_eq!(m.neighbor(0, dir), None);
        }
    }
}
