//! # intercom-topology
//!
//! Topology substrate for the InterCom reproduction: two-dimensional
//! wormhole-routed meshes, XY dimension-ordered routing, linear-array and
//! ring embeddings, integer factorizations (for logical-mesh hybrid
//! strategies), and process groups with physical-structure detection.
//!
//! The paper's target architecture (§2) is a 2-D physical mesh with
//! bidirectional links and worm-hole (cut-through) routing, on which a
//! linear array of nodes can be treated as a unidirectional ring without
//! link conflicts. This crate provides exactly those abstractions:
//!
//! * [`Mesh2D`] — the physical machine: `rows × cols` nodes, node-id ↔
//!   coordinate mapping, link enumeration.
//! * [`routing`] — XY dimension-ordered wormhole routes as sequences of
//!   directed links, used by the simulator's contention model.
//! * [`factor`] — ordered factorizations `p = d1 × … × dk`, the search
//!   space of logical meshes for hybrid algorithms (§6).
//! * [`ProcGroup`] — a list of physical node ids with a logical rank order;
//!   [`GroupStructure`] detection (§9) distinguishes rectangular submeshes
//!   (row/column techniques apply) from unstructured groups (treated as
//!   linear arrays).

#![forbid(unsafe_code)]

pub mod cluster;
pub mod coord;
pub mod embed;
pub mod factor;
pub mod group;
pub mod hypercube;
pub mod mesh;
pub mod routing;
pub mod torus;

pub use cluster::{Cluster, HopLevel};
pub use coord::Coord;
pub use embed::LogicalMesh;
pub use factor::{divisors, factorizations, prime_factors};
pub use group::{GroupStructure, ProcGroup};
pub use hypercube::{CubeLink, Hypercube};
pub use mesh::{Direction, LinkId, Mesh2D, NodeId};
pub use routing::{route_xy, RouteStep};
pub use torus::Torus2D;
