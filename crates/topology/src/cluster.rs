//! Cluster-of-meshes topologies: an inter-node mesh of nodes, each
//! holding an intra-node group of ranks.
//!
//! The paper's machine is a flat 2-D mesh with one (α, β) pair. The
//! cluster literature (Task & Chauhan's model for clusters of
//! multi-core machines; Barchet-Estefanel & Mounié's intra-cluster
//! characterization) generalizes this: ranks inside a node talk over
//! cheap near-zero-α shared-memory links, while ranks on different
//! nodes cross an expensive network. A [`Cluster`] captures exactly
//! that structure as *two levels*:
//!
//! * **level 0 (intra)** — the `ranks_per_node` ranks of one node;
//! * **level 1 (inter)** — the nodes themselves, arranged on an
//!   ordinary [`Mesh2D`].
//!
//! Global ranks are numbered node-major: `rank = node · rpn + local`,
//! where `node` is the inter-mesh row-major node id. This makes the
//! cluster a mixed-radix [`LogicalMesh`] with dims `[nodes, rpn]`
//! (last dim fastest), so the intra-node group of a rank is
//! `line_through(rank, 1)` and the leader plane at a local slot is
//! `line_through(rank, 0)` — the same embedding machinery hybrid
//! strategies already use.
//!
//! The cluster also embeds onto a *physical* mesh so the simulator and
//! the link-conflict analysis run unchanged: node `(r, c)` occupies the
//! column band `rows r·rpn .. (r+1)·rpn` of column `c` on a
//! `(inter_rows · rpn) × inter_cols` mesh. Under XY routing, same-node
//! traffic stays entirely on the node's vertical band (intra links);
//! horizontal links and band-boundary vertical links carry inter-node
//! traffic. [`Cluster::link_level`] classifies every directed link, and
//! [`Cluster::route_levels`] classifies each hop of a route.

use crate::embed::LogicalMesh;
use crate::group::ProcGroup;
use crate::mesh::{Direction, LinkId, Mesh2D, NodeId};
use crate::routing::route_xy;
use std::fmt;

/// Which level of the hierarchy a hop (or link) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopLevel {
    /// Inside one node: a cheap intra-node link.
    Intra,
    /// Between nodes: an expensive inter-node link.
    Inter,
}

impl HopLevel {
    /// Dense level index: intra = 0, inter = 1 (matching the per-level
    /// machine-parameter convention).
    pub fn index(&self) -> usize {
        match self {
            HopLevel::Intra => 0,
            HopLevel::Inter => 1,
        }
    }
}

impl fmt::Display for HopLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopLevel::Intra => write!(f, "intra"),
            HopLevel::Inter => write!(f, "inter"),
        }
    }
}

/// A cluster of meshes: an inter-node [`Mesh2D`] whose every node holds
/// `ranks_per_node` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cluster {
    inter: Mesh2D,
    ranks_per_node: usize,
}

impl Cluster {
    /// A cluster with the given inter-node mesh and per-node rank count.
    /// Panics if `ranks_per_node` is zero.
    pub fn new(inter: Mesh2D, ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "ranks_per_node must be positive");
        Cluster {
            inter,
            ranks_per_node,
        }
    }

    /// A linear array of `nodes` nodes (a `1 × nodes` inter mesh), each
    /// with `ranks_per_node` ranks — the common small-cluster shape.
    pub fn linear(nodes: usize, ranks_per_node: usize) -> Self {
        Cluster::new(Mesh2D::new(1, nodes), ranks_per_node)
    }

    /// The inter-node mesh.
    pub fn inter(&self) -> Mesh2D {
        self.inter
    }

    /// Ranks per node (the intra-node group size).
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.inter.nodes()
    }

    /// Total ranks, `nodes · ranks_per_node`.
    pub fn ranks(&self) -> usize {
        self.nodes() * self.ranks_per_node
    }

    /// The node holding global rank `r`.
    pub fn node_of(&self, r: usize) -> usize {
        assert!(r < self.ranks(), "rank {r} out of range");
        r / self.ranks_per_node
    }

    /// The local (intra-node) slot of global rank `r`.
    pub fn local_of(&self, r: usize) -> usize {
        assert!(r < self.ranks(), "rank {r} out of range");
        r % self.ranks_per_node
    }

    /// The global rank at (`node`, `local`).
    pub fn rank_of(&self, node: usize, local: usize) -> usize {
        assert!(node < self.nodes(), "node {node} out of range");
        assert!(local < self.ranks_per_node, "local {local} out of range");
        node * self.ranks_per_node + local
    }

    /// Whether two global ranks live on the same node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The mixed-radix logical view `[nodes, rpn]` over the physical
    /// embedding, in global rank order: `line_through(r, 1)` is rank
    /// `r`'s intra-node group, `line_through(r, 0)` its leader plane.
    pub fn logical(&self) -> LogicalMesh {
        LogicalMesh::new(self.group(), vec![self.nodes(), self.ranks_per_node])
            .expect("cluster dims always match group size")
    }

    /// The whole cluster as a [`ProcGroup`] of *physical* node ids in
    /// global rank order (the group array the collectives run over).
    pub fn group(&self) -> ProcGroup {
        let phys = self.phys_mesh();
        let ids: Vec<NodeId> = (0..self.ranks())
            .map(|r| self.phys_node_at(r, &phys))
            .collect();
        ProcGroup::new(ids).expect("cluster embedding is injective")
    }

    /// Global ranks of one node's intra-node group, local order.
    pub fn node_members(&self, node: usize) -> Vec<usize> {
        assert!(node < self.nodes(), "node {node} out of range");
        let base = node * self.ranks_per_node;
        (base..base + self.ranks_per_node).collect()
    }

    /// Global ranks of the inter-node plane at local slot `local` (one
    /// rank per node, node order) — the leader group for that slot.
    pub fn leaders(&self, local: usize) -> Vec<usize> {
        assert!(local < self.ranks_per_node, "local {local} out of range");
        (0..self.nodes())
            .map(|n| n * self.ranks_per_node + local)
            .collect()
    }

    /// The physical mesh the cluster embeds onto:
    /// `(inter_rows · rpn) × inter_cols`, with node `(r, c)` occupying
    /// the vertical band `rows r·rpn .. (r+1)·rpn` of column `c`.
    pub fn phys_mesh(&self) -> Mesh2D {
        Mesh2D::new(self.inter.rows() * self.ranks_per_node, self.inter.cols())
    }

    /// Physical mesh node of global rank `r`.
    pub fn phys_node(&self, r: usize) -> NodeId {
        self.phys_node_at(r, &self.phys_mesh())
    }

    fn phys_node_at(&self, r: usize, phys: &Mesh2D) -> NodeId {
        let node = self.node_of(r);
        let local = self.local_of(r);
        let nc = self.inter.coord(node);
        phys.id(crate::coord::Coord::new(
            nc.row * self.ranks_per_node + local,
            nc.col,
        ))
    }

    /// Global rank occupying physical mesh node `id` (the inverse of
    /// [`Cluster::phys_node`]).
    pub fn rank_at(&self, id: NodeId) -> usize {
        let phys = self.phys_mesh();
        let c = phys.coord(id);
        let node_row = c.row / self.ranks_per_node;
        let local = c.row % self.ranks_per_node;
        let node = self.inter.id(crate::coord::Coord::new(node_row, c.col));
        self.rank_of(node, local)
    }

    /// Classifies one directed physical link. Horizontal links always
    /// cross node columns (inter); a vertical link is intra iff it stays
    /// inside one node's row band.
    pub fn link_level(&self, l: LinkId) -> HopLevel {
        let phys = self.phys_mesh();
        let row = phys.coord(l.from).row;
        match l.dir {
            Direction::East | Direction::West => HopLevel::Inter,
            Direction::South => {
                if (row + 1).is_multiple_of(self.ranks_per_node) {
                    HopLevel::Inter
                } else {
                    HopLevel::Intra
                }
            }
            Direction::North => {
                if row.is_multiple_of(self.ranks_per_node) {
                    HopLevel::Inter
                } else {
                    HopLevel::Intra
                }
            }
        }
    }

    /// The XY route between two global ranks on the physical embedding,
    /// with each hop classified by level. Same-node routes are entirely
    /// intra; the empty route (`a == b`) touches no links.
    pub fn route_levels(&self, a: usize, b: usize) -> Vec<(LinkId, HopLevel)> {
        let phys = self.phys_mesh();
        route_xy(&phys, self.phys_node(a), self.phys_node(b))
            .into_iter()
            .map(|l| (l, self.link_level(l)))
            .collect()
    }

    /// Number of inter-node hops on the XY route between two ranks —
    /// zero exactly when the ranks share a node.
    pub fn inter_hops(&self, a: usize, b: usize) -> usize {
        self.route_levels(a, b)
            .iter()
            .filter(|(_, lvl)| *lvl == HopLevel::Inter)
            .count()
    }

    /// The hierarchy descriptor `rows x cols x rpn` the plan cache keys
    /// on (e.g. `"1x4x2"`).
    pub fn descriptor(&self) -> String {
        format!(
            "{}x{}x{}",
            self.inter.rows(),
            self.inter.cols(),
            self.ranks_per_node
        )
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} cluster of {} ranks/node",
            self.inter.rows(),
            self.inter.cols(),
            self.ranks_per_node
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_mapping_roundtrip() {
        let c = Cluster::new(Mesh2D::new(2, 3), 4);
        assert_eq!(c.nodes(), 6);
        assert_eq!(c.ranks(), 24);
        for r in 0..c.ranks() {
            assert_eq!(c.rank_of(c.node_of(r), c.local_of(r)), r);
            assert_eq!(c.rank_at(c.phys_node(r)), r);
        }
    }

    #[test]
    fn node_members_and_leaders_partition_ranks() {
        let c = Cluster::linear(3, 4);
        let mut seen = vec![0usize; c.ranks()];
        for n in 0..c.nodes() {
            for r in c.node_members(n) {
                assert_eq!(c.node_of(r), n);
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
        let mut seen = vec![0usize; c.ranks()];
        for l in 0..c.ranks_per_node() {
            for r in c.leaders(l) {
                assert_eq!(c.local_of(r), l);
                seen[r] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn logical_lines_match_levels() {
        // The LogicalMesh [nodes, rpn] view reproduces node_members
        // (dim 1 lines) and leaders (dim 0 lines) via phys ids.
        let c = Cluster::new(Mesh2D::new(2, 2), 3);
        let lm = c.logical();
        for r in 0..c.ranks() {
            let intra = lm.line_through(r, 1);
            let expect: Vec<NodeId> = c
                .node_members(c.node_of(r))
                .into_iter()
                .map(|g| c.phys_node(g))
                .collect();
            assert_eq!(intra.members(), expect.as_slice());
            let plane = lm.line_through(r, 0);
            let expect: Vec<NodeId> = c
                .leaders(c.local_of(r))
                .into_iter()
                .map(|g| c.phys_node(g))
                .collect();
            assert_eq!(plane.members(), expect.as_slice());
        }
    }

    #[test]
    fn same_node_routes_are_intra_only() {
        let c = Cluster::new(Mesh2D::new(2, 3), 4);
        for n in 0..c.nodes() {
            let members = c.node_members(n);
            for &a in &members {
                for &b in &members {
                    let route = c.route_levels(a, b);
                    assert!(route.iter().all(|(_, lvl)| *lvl == HopLevel::Intra));
                    assert_eq!(c.inter_hops(a, b), 0);
                    assert_eq!(route.len(), c.local_of(a).abs_diff(c.local_of(b)));
                }
            }
        }
    }

    #[test]
    fn linear_cluster_leader_routes_are_inter_only() {
        // On a 1-row inter mesh, leaders sit in one physical row; their
        // XY routes are purely horizontal, i.e. purely inter-level.
        let c = Cluster::linear(4, 3);
        for l in 0..c.ranks_per_node() {
            let leaders = c.leaders(l);
            for &a in &leaders {
                for &b in &leaders {
                    if a == b {
                        continue;
                    }
                    let route = c.route_levels(a, b);
                    assert!(!route.is_empty());
                    assert!(route.iter().all(|(_, lvl)| *lvl == HopLevel::Inter));
                }
            }
        }
    }

    #[test]
    fn cross_node_route_mixes_levels() {
        // Rank (node 0, local 2) -> (node 1, local 0) on a linear
        // cluster: one horizontal inter hop plus two vertical intra hops.
        let c = Cluster::linear(2, 3);
        let a = c.rank_of(0, 2);
        let b = c.rank_of(1, 0);
        assert!(!c.same_node(a, b));
        assert_eq!(c.inter_hops(a, b), 1);
        let route = c.route_levels(a, b);
        assert_eq!(route.len(), 3);
    }

    #[test]
    fn link_census_on_linear_cluster() {
        // phys mesh rpn x nodes: all vertical links intra, all
        // horizontal links inter.
        let c = Cluster::linear(4, 3);
        let phys = c.phys_mesh();
        let (mut intra, mut inter) = (0, 0);
        for l in phys.links() {
            match c.link_level(l) {
                HopLevel::Intra => intra += 1,
                HopLevel::Inter => inter += 1,
            }
        }
        assert_eq!(intra, 2 * 4 * 2); // 2 dirs x 4 cols x (rpn-1) rows
        assert_eq!(inter, 2 * 3 * 3); // 2 dirs x (nodes-1) x rpn rows
    }

    #[test]
    fn band_boundary_vertical_links_are_inter() {
        // 2-row inter mesh: the vertical link crossing from one node
        // band into the next is inter-level.
        let c = Cluster::new(Mesh2D::new(2, 1), 2);
        let phys = c.phys_mesh(); // 4 x 1
        let boundary = LinkId {
            from: phys.id(crate::coord::Coord::new(1, 0)),
            dir: Direction::South,
        };
        assert_eq!(c.link_level(boundary), HopLevel::Inter);
        let inside = LinkId {
            from: phys.id(crate::coord::Coord::new(0, 0)),
            dir: Direction::South,
        };
        assert_eq!(c.link_level(inside), HopLevel::Intra);
    }

    #[test]
    fn descriptor_and_display() {
        let c = Cluster::new(Mesh2D::new(2, 3), 4);
        assert_eq!(c.descriptor(), "2x3x4");
        assert_eq!(format!("{c}"), "2x3 cluster of 4 ranks/node");
        assert_eq!(HopLevel::Intra.index(), 0);
        assert_eq!(HopLevel::Inter.index(), 1);
    }

    #[test]
    fn degenerate_single_node_cluster() {
        let c = Cluster::linear(1, 4);
        assert_eq!(c.ranks(), 4);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(c.inter_hops(a, b), 0);
            }
        }
    }
}
