//! 2-D torus (wraparound mesh) — the related-work topology of the
//! paper's reference [6] (Bermond, Michallon, Trystram, "Broadcasting in
//! Wraparound Meshes with Parallel Monodirectional Links").
//!
//! A torus adds wraparound links to the mesh, making every row and
//! column a *physical* ring: the bucket primitives' wrap message becomes
//! a single hop instead of a `c−1`-hop backhaul, and XY routing can take
//! the shorter way around each dimension. The simulator supports it as a
//! third [`NetSpec`](../../intercom_meshsim/net/enum.NetSpec.html)
//! variant, enabling mesh-vs-torus ablations.

use crate::coord::Coord;
use crate::mesh::{Direction, LinkId, NodeId};
use std::fmt;

/// A `rows × cols` torus: mesh plus wraparound links in both dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus2D {
    rows: usize,
    cols: usize,
}

impl Torus2D {
    /// Creates a torus. Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "torus dimensions must be positive");
        Torus2D { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total nodes.
    pub fn nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// Coordinate of a node id (row-major).
    pub fn coord(&self, id: NodeId) -> Coord {
        assert!(id < self.nodes(), "node id {id} out of range");
        Coord::new(id / self.cols, id % self.cols)
    }

    /// Node id at a coordinate.
    pub fn id(&self, c: Coord) -> NodeId {
        assert!(
            c.row < self.rows && c.col < self.cols,
            "coordinate out of range"
        );
        c.row * self.cols + c.col
    }

    /// The neighbour in `dir`, wrapping around the edges.
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> NodeId {
        let c = self.coord(id);
        let n = match dir {
            Direction::East => Coord::new(c.row, (c.col + 1) % self.cols),
            Direction::West => Coord::new(c.row, (c.col + self.cols - 1) % self.cols),
            Direction::South => Coord::new((c.row + 1) % self.rows, c.col),
            Direction::North => Coord::new((c.row + self.rows - 1) % self.rows, c.col),
        };
        self.id(n)
    }

    /// Dense slot of a directed link: `from · 4 + direction index`.
    pub fn link_slot(&self, l: LinkId) -> usize {
        l.from * 4 + l.dir.index()
    }

    /// Size of the dense directed-link slot space, `4 · nodes` (every
    /// slot is a real link on a torus, unlike the mesh's boundary gaps —
    /// except in degenerate 1-wide dimensions where East/West coincide).
    pub fn link_slots(&self) -> usize {
        4 * self.nodes()
    }

    /// Shortest-way dimension-ordered route: columns first (choosing the
    /// shorter wrap direction), then rows.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let a = self.coord(src);
        let b = self.coord(dst);
        let mut out = Vec::new();
        let mut cur = src;
        // Column leg: shorter of east/west.
        let fwd = (b.col + self.cols - a.col) % self.cols;
        let (steps, dir) = if fwd <= self.cols - fwd {
            (fwd, Direction::East)
        } else {
            (self.cols - fwd, Direction::West)
        };
        for _ in 0..steps {
            out.push(LinkId { from: cur, dir });
            cur = self.neighbor(cur, dir);
        }
        // Row leg: shorter of south/north.
        let fwd = (b.row + self.rows - a.row) % self.rows;
        let (steps, dir) = if fwd <= self.rows - fwd {
            (fwd, Direction::South)
        } else {
            (self.rows - fwd, Direction::North)
        };
        for _ in 0..steps {
            out.push(LinkId { from: cur, dir });
            cur = self.neighbor(cur, dir);
        }
        debug_assert_eq!(cur, dst);
        out
    }
}

impl fmt::Display for Torus2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} torus", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_neighbors() {
        let t = Torus2D::new(3, 4);
        assert_eq!(t.neighbor(3, Direction::East), 0); // row 0 wraps
        assert_eq!(t.neighbor(0, Direction::West), 3);
        assert_eq!(t.neighbor(0, Direction::North), 8); // col 0 wraps
        assert_eq!(t.neighbor(8, Direction::South), 0);
    }

    #[test]
    fn route_takes_shorter_way_around() {
        let t = Torus2D::new(1, 8);
        // 0 → 6: forward 6 hops, backward 2 → west twice.
        let r = t.route(0, 6);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|l| l.dir == Direction::West));
        // 0 → 3: forward 3 is shorter.
        assert_eq!(t.route(0, 3).len(), 3);
    }

    #[test]
    fn route_reaches_destination_everywhere() {
        let t = Torus2D::new(4, 5);
        for s in 0..t.nodes() {
            for d in 0..t.nodes() {
                let r = t.route(s, d);
                let mut cur = s;
                for l in &r {
                    assert_eq!(l.from, cur);
                    cur = t.neighbor(cur, l.dir);
                }
                assert_eq!(cur, d);
                // Never longer than half the torus in each dimension.
                assert!(r.len() <= 5 / 2 + 4 / 2 + 1);
            }
        }
    }

    #[test]
    fn ring_shift_is_single_hop_everywhere() {
        // On a torus row, the ring's wrap message is one hop — the
        // latency advantage over the mesh backhaul.
        let t = Torus2D::new(1, 6);
        for i in 0..6 {
            assert_eq!(t.route(i, (i + 1) % 6).len(), 1);
        }
    }

    #[test]
    fn link_slots_unique() {
        let t = Torus2D::new(2, 3);
        let mut seen = std::collections::HashSet::new();
        for from in 0..t.nodes() {
            for dir in Direction::ALL {
                assert!(seen.insert(t.link_slot(LinkId { from, dir })));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        Torus2D::new(0, 4);
    }
}
