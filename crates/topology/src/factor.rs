//! Integer factorization utilities.
//!
//! Hybrid algorithms (paper §6) view a linear array of `p` nodes as a
//! logical `d1 × … × dk` mesh; the search space of hybrid strategies is
//! the set of *ordered* factorizations of `p` into factors ≥ 2 (plus the
//! trivial one-dimensional view). The paper notes the approach "has a
//! heavy dependence on the integer factorization of the dimensions", so
//! these utilities are load-bearing for strategy enumeration.

/// The prime factorization of `n` as an ascending list with multiplicity,
/// e.g. `prime_factors(30) == [2, 3, 5]`, `prime_factors(12) == [2, 2, 3]`.
/// Returns an empty list for `n < 2`.
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2usize;
    while d * d <= n {
        while n.is_multiple_of(d) {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// All divisors of `n` in ascending order, including 1 and `n`.
/// `divisors(0)` is empty.
pub fn divisors(n: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1usize;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// All *ordered* factorizations of `p` into factors ≥ 2, each of length at
/// most `max_dims` (0 means unlimited). The trivial factorization `[p]`
/// (the one-dimensional logical view) is included when `p ≥ 2`.
///
/// For `p = 30`, this yields `[30]`, `[2,15]`, `[15,2]`, `[3,10]`,
/// `[10,3]`, `[5,6]`, `[6,5]`, `[2,3,5]`, … — exactly the logical meshes
/// enumerated in the paper's Table 2.
pub fn factorizations(p: usize, max_dims: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if p < 2 {
        return out;
    }
    let mut prefix = Vec::new();
    rec(p, max_dims, &mut prefix, &mut out);
    out
}

fn rec(rem: usize, max_dims: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    // Taking `rem` itself as the final factor closes a factorization.
    prefix.push(rem);
    out.push(prefix.clone());
    prefix.pop();
    if max_dims != 0 && prefix.len() + 1 >= max_dims {
        return;
    }
    for d in divisors(rem) {
        if d >= 2 && d < rem {
            prefix.push(d);
            rec(rem / d, max_dims, prefix, out);
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn primes_of_thirty() {
        assert_eq!(prime_factors(30), vec![2, 3, 5]);
    }

    #[test]
    fn primes_of_prime() {
        assert_eq!(prime_factors(31), vec![31]);
    }

    #[test]
    fn primes_with_multiplicity() {
        assert_eq!(prime_factors(512), vec![2; 9]);
        assert_eq!(prime_factors(12), vec![2, 2, 3]);
    }

    #[test]
    fn primes_edge_cases() {
        assert!(prime_factors(0).is_empty());
        assert!(prime_factors(1).is_empty());
    }

    #[test]
    fn divisors_of_30() {
        assert_eq!(divisors(30), vec![1, 2, 3, 5, 6, 10, 15, 30]);
    }

    #[test]
    fn divisors_of_square() {
        assert_eq!(divisors(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn factorizations_of_12() {
        let f = factorizations(12, 0);
        // [12], [2,6], [2,2,3], [2,3,2], [2,2,3]... enumerate explicitly:
        let expect: Vec<Vec<usize>> = vec![
            vec![12],
            vec![2, 6],
            vec![2, 2, 3],
            vec![2, 3, 2],
            vec![3, 4],
            vec![3, 2, 2],
            vec![4, 3],
            vec![6, 2],
        ];
        for e in &expect {
            assert!(f.contains(e), "missing {e:?} in {f:?}");
        }
        assert_eq!(f.len(), expect.len());
    }

    #[test]
    fn factorizations_of_30_contains_paper_table2_meshes() {
        let f = factorizations(30, 0);
        for mesh in [
            vec![30],
            vec![3, 10],
            vec![10, 3],
            vec![2, 15],
            vec![15, 2],
            vec![5, 6],
            vec![6, 5],
            vec![2, 3, 5],
        ] {
            assert!(f.contains(&mesh), "missing {mesh:?}");
        }
    }

    #[test]
    fn factorizations_respect_max_dims() {
        let f = factorizations(30, 2);
        assert!(f.iter().all(|v| v.len() <= 2));
        assert!(f.contains(&vec![5, 6]));
        assert!(!f.contains(&vec![2, 3, 5]));
    }

    #[test]
    fn factorizations_of_prime_is_trivial() {
        assert_eq!(factorizations(13, 0), vec![vec![13]]);
    }

    #[test]
    fn factorizations_small() {
        assert!(factorizations(0, 0).is_empty());
        assert!(factorizations(1, 0).is_empty());
        assert_eq!(factorizations(2, 0), vec![vec![2]]);
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_prime_factors_multiply_back(n in 2usize..10_000) {
            let f = prime_factors(n);
            prop_assert_eq!(f.iter().product::<usize>(), n);
        }

        #[test]
        fn prop_divisors_divide(n in 1usize..5_000) {
            for d in divisors(n) {
                prop_assert_eq!(n % d, 0);
            }
        }

        #[test]
        fn prop_divisors_sorted_unique(n in 1usize..5_000) {
            let d = divisors(n);
            prop_assert!(d.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn prop_factorizations_multiply_back(p in 2usize..200) {
            for f in factorizations(p, 0) {
                prop_assert_eq!(f.iter().product::<usize>(), p);
                prop_assert!(f.iter().all(|&d| d >= 2));
            }
        }

        #[test]
        fn prop_factorizations_distinct(p in 2usize..200) {
            let fs = factorizations(p, 0);
            let set: std::collections::HashSet<_> = fs.iter().cloned().collect();
            prop_assert_eq!(set.len(), fs.len());
        }
    }
}
