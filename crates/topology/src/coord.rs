//! Row/column coordinates on a 2-D mesh.

use std::fmt;

/// A `(row, col)` position on a 2-D mesh.
///
/// Rows grow downward, columns grow rightward; the node with id 0 sits at
/// `(0, 0)` and ids are assigned in row-major order (the Paragon
/// convention used throughout the paper's examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Row index, `0..rows`.
    pub row: usize,
    /// Column index, `0..cols`.
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// Manhattan (L1) distance to `other`: the number of mesh hops an XY
    /// route between the two nodes traverses.
    pub fn manhattan(&self, other: &Coord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_symmetric() {
        let a = Coord::new(2, 5);
        let b = Coord::new(7, 1);
        assert_eq!(a.manhattan(&b), 9);
        assert_eq!(b.manhattan(&a), 9);
    }

    #[test]
    fn manhattan_zero_for_same() {
        let a = Coord::new(3, 3);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Coord::new(1, 2).to_string(), "(1,2)");
    }
}
