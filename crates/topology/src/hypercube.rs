//! Hypercube topology (paper §11: "a version tuned for the iPSC/860 that
//! has the same functionality, but uses algorithms more appropriate for
//! hypercubes").
//!
//! A `d`-cube has `2^d` nodes; node ids are bit strings and dimension-`j`
//! links connect ids differing in bit `j`. Deterministic *e-cube* routing
//! fixes bits lowest-dimension-first, which is deadlock-free and gives
//! every (src, dst) pair a unique path — the hypercube analogue of the
//! mesh's XY routing. A Hamiltonian ring for the bucket primitives comes
//! from the binary-reflected Gray code: consecutive Gray codes differ in
//! one bit, so the ring's steps are single links and, as on the mesh,
//! ring traffic is conflict-free.

use std::fmt;

/// A binary `d`-dimensional hypercube of `2^d` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    dims: u32,
}

/// A directed hypercube link: the edge leaving `from` along `dim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeLink {
    /// Node the link departs from.
    pub from: usize,
    /// Dimension (bit position) it flips.
    pub dim: u32,
}

impl Hypercube {
    /// Creates a `d`-cube. Panics for `d > 20` (guard against absurd
    /// sizes) — `d = 0` (a single node) is allowed.
    pub fn new(dims: u32) -> Self {
        assert!(dims <= 20, "hypercube dimension too large");
        Hypercube { dims }
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Number of nodes `2^d`.
    pub fn nodes(&self) -> usize {
        1 << self.dims
    }

    /// Number of directed links `d · 2^d`.
    pub fn links(&self) -> usize {
        self.dims as usize * self.nodes()
    }

    /// Whether `id` is a valid node.
    pub fn contains(&self, id: usize) -> bool {
        id < self.nodes()
    }

    /// The neighbour across dimension `dim`.
    pub fn neighbor(&self, id: usize, dim: u32) -> usize {
        debug_assert!(self.contains(id) && dim < self.dims);
        id ^ (1 << dim)
    }

    /// Dense slot of a directed link, `from · d + dim` — the simulator's
    /// constraint index space.
    pub fn link_slot(&self, l: CubeLink) -> usize {
        l.from * self.dims as usize + l.dim as usize
    }

    /// E-cube (dimension-ordered) route: fix differing bits from lowest
    /// to highest dimension. Unique, minimal, deadlock-free.
    pub fn route(&self, src: usize, dst: usize) -> Vec<CubeLink> {
        debug_assert!(self.contains(src) && self.contains(dst));
        let mut cur = src;
        let mut out = Vec::with_capacity((src ^ dst).count_ones() as usize);
        for dim in 0..self.dims {
            if (cur ^ dst) & (1 << dim) != 0 {
                out.push(CubeLink { from: cur, dim });
                cur ^= 1 << dim;
            }
        }
        debug_assert_eq!(cur, dst);
        out
    }

    /// The binary-reflected Gray code sequence: a Hamiltonian ring in
    /// which consecutive nodes (and the wrap-around pair) are neighbours.
    pub fn gray_ring(&self) -> Vec<usize> {
        (0..self.nodes()).map(|i| i ^ (i >> 1)).collect()
    }
}

impl fmt::Display for Hypercube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-cube ({} nodes)", self.dims, self.nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "heavy-tests")]
    use proptest::prelude::*;

    #[test]
    fn sizes() {
        let c = Hypercube::new(4);
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.links(), 64);
        assert_eq!(Hypercube::new(0).nodes(), 1);
        assert_eq!(Hypercube::new(0).links(), 0);
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let c = Hypercube::new(3);
        for id in 0..c.nodes() {
            for dim in 0..3 {
                let n = c.neighbor(id, dim);
                assert_eq!((id ^ n).count_ones(), 1);
                assert_eq!(c.neighbor(n, dim), id);
            }
        }
    }

    #[test]
    fn route_is_minimal_and_correct() {
        let c = Hypercube::new(4);
        for src in 0..c.nodes() {
            for dst in 0..c.nodes() {
                let r = c.route(src, dst);
                assert_eq!(r.len(), (src ^ dst).count_ones() as usize);
                let mut cur = src;
                for l in &r {
                    assert_eq!(l.from, cur);
                    cur ^= 1 << l.dim;
                }
                assert_eq!(cur, dst);
            }
        }
    }

    #[test]
    fn route_dimension_ordered() {
        let c = Hypercube::new(5);
        let r = c.route(0, 0b10110);
        let dims: Vec<u32> = r.iter().map(|l| l.dim).collect();
        assert_eq!(dims, vec![1, 2, 4]);
    }

    #[test]
    fn gray_ring_is_hamiltonian() {
        for d in 0..6 {
            let c = Hypercube::new(d);
            let ring = c.gray_ring();
            assert_eq!(ring.len(), c.nodes());
            let mut seen = vec![false; c.nodes()];
            for &v in &ring {
                assert!(!seen[v]);
                seen[v] = true;
            }
            if d >= 1 {
                for w in ring.windows(2) {
                    assert_eq!((w[0] ^ w[1]).count_ones(), 1, "{w:?}");
                }
                let wrap = ring[0] ^ ring[c.nodes() - 1];
                assert_eq!(wrap.count_ones(), 1);
            }
        }
    }

    #[test]
    fn gray_ring_traffic_is_link_disjoint() {
        // Every ring member sending to its successor uses a distinct
        // directed link — the §4 conflict-freedom property on cubes.
        for d in 1..6u32 {
            let c = Hypercube::new(d);
            let ring = c.gray_ring();
            let n = c.nodes();
            let mut used = std::collections::HashSet::new();
            for i in 0..n {
                let (src, dst) = (ring[i], ring[(i + 1) % n]);
                let r = c.route(src, dst);
                assert_eq!(r.len(), 1, "ring step must be one hop");
                assert!(used.insert(c.link_slot(r[0])), "link reused in d={d}");
            }
        }
    }

    #[test]
    fn link_slots_are_dense_and_unique() {
        let c = Hypercube::new(3);
        let mut seen = std::collections::HashSet::new();
        for from in 0..c.nodes() {
            for dim in 0..3 {
                let s = c.link_slot(CubeLink { from, dim });
                assert!(s < c.links());
                assert!(seen.insert(s));
            }
        }
        assert_eq!(seen.len(), c.links());
    }

    #[cfg(feature = "heavy-tests")]
    proptest! {
        #[test]
        fn prop_routes_within_links(d in 1u32..7, seed in any::<u64>()) {
            let c = Hypercube::new(d);
            let n = c.nodes();
            let src = (seed as usize) % n;
            let dst = ((seed >> 16) as usize) % n;
            for l in c.route(src, dst) {
                prop_assert!(c.link_slot(l) < c.links());
            }
        }
    }
}
