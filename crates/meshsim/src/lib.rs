//! # intercom-meshsim — discrete-event wormhole-mesh simulator
//!
//! The paper's evaluation platform — a 512-node Intel Paragon — realized
//! as a simulator implementing the §2 machine model: two-dimensional
//! mesh, XY worm-hole routing, per-message cost `α + nβ`, single-port
//! full-duplex nodes, max-min-fair bandwidth sharing on contended
//! directed links (with the §7.1 link-excess refinement), `γ` per
//! combined byte and `δ` per short-vector recursion level.
//!
//! Rank code executes *for real* (direct-execution simulation): each rank
//! is a thread running actual library collectives over a [`SimComm`];
//! every blocking operation rendezvouses with the central [`engine`],
//! which advances virtual clocks. Results are therefore bit-identical to
//! the threaded backend, while elapsed time reflects the Paragon model —
//! the substitution that lets this reproduction regenerate the paper's
//! Table 3 and Fig. 4 without the original hardware.
//!
//! ```
//! use intercom_meshsim::{simulate, SimConfig};
//! use intercom_topology::Mesh2D;
//! use intercom_cost::MachineParams;
//! use intercom::{Comm, Communicator};
//!
//! let cfg = SimConfig::new(Mesh2D::new(2, 4), MachineParams::PARAGON);
//! let report = simulate(&cfg, |comm| {
//!     let cc = Communicator::world(comm, MachineParams::PARAGON);
//!     let mut v = vec![comm.rank() as u8; 64];
//!     if comm.rank() != 0 { v.fill(0); }
//!     cc.bcast(0, &mut v).unwrap();
//!     v[0]
//! });
//! assert!(report.results.iter().all(|&x| x == 0));
//! assert!(report.elapsed > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod comm;
mod engine;
pub mod fluid;
pub mod net;
pub mod sim;
pub mod stats;

pub use comm::SimComm;
pub use net::NetSpec;
pub use sim::{simulate, ClusterLevels, SimConfig, SimReport};
pub use stats::{LinkConcurrency, LinkLoad};
// The trace schema moved to the unified observability layer; the
// simulator emits `intercom_obs::TraceEvent`s (one per transfer) and
// the old names remain available from here.
pub use intercom_obs::TraceEvent as TransferRecord;
pub use intercom_obs::{Trace, TraceEvent};
