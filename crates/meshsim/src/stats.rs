//! Derived network statistics over a completed trace: per-link byte
//! loads, hottest links, and theoretical-vs-achieved bandwidth summaries
//! — the §7.1 analysis surface ("there is an excess of bandwidth on each
//! link of the network compared to the bandwidth from a node").

use crate::net::NetSpec;
use intercom_obs::Trace;
use std::collections::HashMap;

/// Per-directed-link byte loads for a trace on a given network.
#[derive(Debug, Clone)]
pub struct LinkLoad {
    /// Bytes carried per directed-link slot (sparse: only used links).
    loads: HashMap<usize, usize>,
    /// Total bytes injected (Σ message sizes).
    pub total_bytes: usize,
    /// Total byte·hops (Σ size × route length).
    pub byte_hops: usize,
}

impl LinkLoad {
    /// Recomputes each record's route on `net` and accumulates per-link
    /// byte counts.
    pub fn from_trace(trace: &Trace, net: &NetSpec) -> Self {
        let mut loads: HashMap<usize, usize> = HashMap::new();
        let mut total_bytes = 0;
        let mut byte_hops = 0;
        for r in trace.records() {
            total_bytes += r.bytes;
            let mut slots = Vec::new();
            let hops = net.route_slots(r.src, r.dst, 0, &mut slots);
            byte_hops += r.bytes * hops;
            for s in slots {
                *loads.entry(s as usize).or_default() += r.bytes;
            }
        }
        LinkLoad {
            loads,
            total_bytes,
            byte_hops,
        }
    }

    /// Number of distinct directed links used.
    pub fn links_used(&self) -> usize {
        self.loads.len()
    }

    /// The heaviest per-link byte load (0 for an empty trace).
    pub fn max_link_bytes(&self) -> usize {
        self.loads.values().copied().max().unwrap_or(0)
    }

    /// Mean byte load over *used* links.
    pub fn mean_link_bytes(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.byte_hops as f64 / self.loads.len() as f64
        }
    }

    /// Load imbalance: max / mean over used links (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_link_bytes();
        if mean == 0.0 {
            1.0
        } else {
            self.max_link_bytes() as f64 / mean
        }
    }

    /// The `top` hottest (slot, bytes) pairs, descending.
    pub fn hottest(&self, top: usize) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self.loads.iter().map(|(&s, &b)| (s, b)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }
}

/// Per-directed-link **peak concurrency** for a trace: the maximum
/// number of transfers simultaneously in flight on each link, from the
/// records' `[start, end)` timestamp intervals. This is the dynamic
/// twin of the static composite contention bound the concurrent
/// verifier computes — on an overlapping-tenant workload the observed
/// peak on the worst shared link must not exceed (and, when the
/// tenants actually align, matches) the static factor.
#[derive(Debug, Clone)]
pub struct LinkConcurrency {
    /// Peak simultaneous transfers per directed-link slot (sparse).
    peaks: HashMap<usize, usize>,
}

impl LinkConcurrency {
    /// Routes each record on `net` and sweeps its `[start, end)`
    /// interval over every link of the route. Zero-length intervals
    /// (degenerate zero-byte transfers) still count at their instant.
    pub fn from_trace(trace: &Trace, net: &NetSpec) -> Self {
        let mut intervals: HashMap<usize, Vec<(f64, f64)>> = HashMap::new();
        for r in trace.records() {
            let mut slots = Vec::new();
            net.route_slots(r.src, r.dst, 0, &mut slots);
            for s in slots {
                intervals
                    .entry(s as usize)
                    .or_default()
                    .push((r.start, r.end.max(r.start)));
            }
        }
        let peaks = intervals
            .into_iter()
            .map(|(slot, iv)| (slot, peak_overlap(&iv)))
            .collect();
        LinkConcurrency { peaks }
    }

    /// Peak simultaneous transfers on directed-link `slot` (0 if unused).
    pub fn peak(&self, slot: usize) -> usize {
        self.peaks.get(&slot).copied().unwrap_or(0)
    }

    /// The worst per-link peak across the whole network, with its slot
    /// (lowest slot wins ties); `(0, 0)` for an empty trace.
    pub fn max_peak(&self) -> (usize, usize) {
        self.peaks
            .iter()
            .map(|(&s, &p)| (s, p))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap_or((0, 0))
    }
}

/// Maximum overlap of half-open intervals; touching endpoints
/// (`end == start`) do not overlap, except that a zero-length interval
/// still counts as occupying its instant.
fn peak_overlap(intervals: &[(f64, f64)]) -> usize {
    let mut points: Vec<(f64, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(s, e) in intervals {
        // A zero-length transfer still occupies its instant: give it
        // epsilon width so it overlaps anything covering `s` (and other
        // zero-length transfers at the same instant).
        let e = if e > s { e } else { s.next_up() };
        points.push((s, 1));
        points.push((e, -1));
    }
    // Ends sort before starts at equal times (half-open semantics).
    points.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut cur: i32 = 0;
    let mut peak: i32 = 0;
    for (_, d) in points {
        cur += d;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom_obs::TraceEvent;
    use intercom_topology::Mesh2D;

    fn rec(src: usize, dst: usize, bytes: usize) -> TraceEvent {
        TraceEvent::transfer(src, dst, 0, bytes, 0.0, 1.0, 0)
    }

    #[test]
    fn single_hop_load() {
        let net = NetSpec::Mesh(Mesh2D::new(1, 3));
        let trace = Trace::new(vec![rec(0, 1, 100)]);
        let load = LinkLoad::from_trace(&trace, &net);
        assert_eq!(load.total_bytes, 100);
        assert_eq!(load.byte_hops, 100);
        assert_eq!(load.links_used(), 1);
        assert_eq!(load.max_link_bytes(), 100);
    }

    #[test]
    fn multi_hop_accumulates() {
        let net = NetSpec::Mesh(Mesh2D::new(1, 4));
        // 0→3 (3 hops) and 1→2 (1 hop, shared middle link).
        let trace = Trace::new(vec![rec(0, 3, 10), rec(1, 2, 10)]);
        let load = LinkLoad::from_trace(&trace, &net);
        assert_eq!(load.byte_hops, 40);
        assert_eq!(load.links_used(), 3);
        assert_eq!(load.max_link_bytes(), 20); // the shared 1→2 link
        assert!(load.imbalance() > 1.0);
        assert_eq!(load.hottest(1)[0].1, 20);
    }

    #[test]
    fn empty_trace() {
        let net = NetSpec::Mesh(Mesh2D::new(2, 2));
        let load = LinkLoad::from_trace(&Trace::default(), &net);
        assert_eq!(load.links_used(), 0);
        assert_eq!(load.imbalance(), 1.0);
    }

    fn timed(src: usize, dst: usize, start: f64, end: f64) -> TraceEvent {
        TraceEvent::transfer(src, dst, 0, 8, start, end, 0)
    }

    #[test]
    fn concurrency_counts_true_overlap_only() {
        let net = NetSpec::Mesh(Mesh2D::new(1, 4));
        // 0→2 and 1→3 share link 1→E while [1,3)∩[2,4) overlap; the
        // back-to-back 0→1 transfers touch at t=5 but never overlap.
        let trace = Trace::new(vec![
            timed(0, 2, 1.0, 3.0),
            timed(1, 3, 2.0, 4.0),
            timed(0, 1, 4.0, 5.0),
            timed(0, 1, 5.0, 6.0),
        ]);
        let conc = LinkConcurrency::from_trace(&trace, &net);
        let mut slots = Vec::new();
        net.route_slots(1, 2, 0, &mut slots);
        let shared = slots[0] as usize;
        assert_eq!(conc.peak(shared), 2);
        slots.clear();
        net.route_slots(0, 1, 0, &mut slots);
        assert_eq!(conc.peak(slots[0] as usize), 1, "touching ≠ overlapping");
        assert_eq!(conc.max_peak(), (shared, 2));
    }

    #[test]
    fn concurrency_of_empty_trace() {
        let net = NetSpec::Mesh(Mesh2D::new(2, 2));
        let conc = LinkConcurrency::from_trace(&Trace::default(), &net);
        assert_eq!(conc.max_peak(), (0, 0));
        assert_eq!(conc.peak(3), 0);
    }

    #[test]
    fn zero_length_transfers_occupy_their_instant() {
        let net = NetSpec::Mesh(Mesh2D::new(1, 2));
        let trace = Trace::new(vec![timed(0, 1, 2.0, 2.0), timed(0, 1, 1.0, 3.0)]);
        let conc = LinkConcurrency::from_trace(&trace, &net);
        assert_eq!(conc.max_peak().1, 2);
    }

    #[test]
    fn ring_is_perfectly_balanced() {
        // A full ring shift on a row: every east link carries the same
        // bytes; imbalance 1 across eastward links (the west wrap link
        // carries the same bytes spread over more links).
        let net = NetSpec::Mesh(Mesh2D::new(1, 4));
        let trace = Trace::new(vec![rec(0, 1, 8), rec(1, 2, 8), rec(2, 3, 8)]);
        let load = LinkLoad::from_trace(&trace, &net);
        assert!((load.imbalance() - 1.0).abs() < 1e-12);
    }
}
