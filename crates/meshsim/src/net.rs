//! Topology dispatch for the simulator: the 2-D mesh of the paper's main
//! target (§2) and the hypercube of its iPSC/860 port (§11).

use intercom_topology::{route_xy, Cluster, Hypercube, Mesh2D, Torus2D};
use std::fmt;

/// Which physical network the simulated machine has.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetSpec {
    /// A 2-D wormhole mesh with XY routing.
    Mesh(Mesh2D),
    /// A binary hypercube with e-cube routing.
    Hypercube(Hypercube),
    /// A 2-D torus (wraparound mesh, paper ref [6]) with shortest-way
    /// dimension-ordered routing.
    Torus(Torus2D),
    /// A two-level cluster: world rank = global cluster rank, routed
    /// over the cluster's physical mesh embedding with XY routing. The
    /// engine prices each link at its level's parameters.
    Cluster(Cluster),
}

impl NetSpec {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match self {
            NetSpec::Mesh(m) => m.nodes(),
            NetSpec::Hypercube(c) => c.nodes(),
            NetSpec::Torus(t) => t.nodes(),
            NetSpec::Cluster(c) => c.ranks(),
        }
    }

    /// Size of the dense directed-link slot space.
    pub fn link_slots(&self) -> usize {
        match self {
            NetSpec::Mesh(m) => m.link_slots(),
            NetSpec::Hypercube(c) => c.links(),
            NetSpec::Torus(t) => t.link_slots(),
            NetSpec::Cluster(c) => c.phys_mesh().link_slots(),
        }
    }

    /// Appends the constraint slots (offset by `base`) of the
    /// deterministic route from `src` to `dst`, returning the hop count.
    pub fn route_slots(&self, src: usize, dst: usize, base: usize, out: &mut Vec<u32>) -> usize {
        match self {
            NetSpec::Mesh(m) => {
                let route = route_xy(m, src, dst);
                for l in &route {
                    out.push((base + m.link_slot(*l)) as u32);
                }
                route.len()
            }
            NetSpec::Hypercube(c) => {
                let route = c.route(src, dst);
                for l in &route {
                    out.push((base + c.link_slot(*l)) as u32);
                }
                route.len()
            }
            NetSpec::Torus(t) => {
                let route = t.route(src, dst);
                for l in &route {
                    out.push((base + t.link_slot(*l)) as u32);
                }
                route.len()
            }
            NetSpec::Cluster(c) => {
                let phys = c.phys_mesh();
                let route = route_xy(&phys, c.phys_node(src), c.phys_node(dst));
                for l in &route {
                    out.push((base + phys.link_slot(*l)) as u32);
                }
                route.len()
            }
        }
    }
}

impl fmt::Display for NetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetSpec::Mesh(m) => write!(f, "{m}"),
            NetSpec::Hypercube(c) => write!(f, "{c}"),
            NetSpec::Torus(t) => write!(f, "{t}"),
            NetSpec::Cluster(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_route_slots() {
        let net = NetSpec::Mesh(Mesh2D::new(2, 3));
        let mut out = Vec::new();
        let hops = net.route_slots(0, 5, 12, &mut out);
        assert_eq!(hops, 3); // 2 east + 1 south
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|&s| s >= 12));
    }

    #[test]
    fn cube_route_slots() {
        let net = NetSpec::Hypercube(Hypercube::new(3));
        let mut out = Vec::new();
        let hops = net.route_slots(0, 0b101, 16, &mut out);
        assert_eq!(hops, 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn self_route_is_empty() {
        for net in [
            NetSpec::Mesh(Mesh2D::new(2, 2)),
            NetSpec::Hypercube(Hypercube::new(2)),
        ] {
            let mut out = Vec::new();
            assert_eq!(net.route_slots(1, 1, 8, &mut out), 0);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn sizes_match_topologies() {
        assert_eq!(NetSpec::Mesh(Mesh2D::new(4, 4)).nodes(), 16);
        assert_eq!(NetSpec::Mesh(Mesh2D::new(4, 4)).link_slots(), 64);
        assert_eq!(NetSpec::Hypercube(Hypercube::new(4)).nodes(), 16);
        assert_eq!(NetSpec::Hypercube(Hypercube::new(4)).link_slots(), 64);
    }
}
