//! Max-min fair bandwidth allocation.
//!
//! The paper's machine model (§2): "When two messages traverse the same
//! physical link on the communication interconnect, we assume they share
//! the bandwidth of that link." The simulator realizes this as a fluid
//! model: every in-flight transfer is constrained by its source's
//! injection port, its destination's ejection port, and every directed
//! link on its route; rates are assigned max-min fairly by progressive
//! filling. The §7.1 refinement — links carry more bandwidth than a node
//! can inject — enters through larger link capacities.

/// Reusable workspace for [`solve_max_min`]: sized once for a fixed
/// constraint universe, reset per call in O(touched) rather than
/// O(universe).
#[derive(Debug, Default)]
pub struct FluidScratch {
    cap_left: Vec<f64>,
    /// Initial capacity of each touched constraint, cached at
    /// registration so the saturation test in the filling loop never
    /// re-queries `cap_of` (which runs once per user per round).
    cap_init: Vec<f64>,
    active_users: Vec<u32>,
    touched: Vec<u32>,
    frozen: Vec<bool>,
}

impl FluidScratch {
    /// Creates a workspace for `universe` constraint slots.
    pub fn new(universe: usize) -> Self {
        FluidScratch {
            cap_left: vec![0.0; universe],
            cap_init: vec![0.0; universe],
            active_users: vec![0; universe],
            touched: Vec::new(),
            frozen: Vec::new(),
        }
    }

    /// Max-min fair rates over a *static* constraint universe.
    ///
    /// `users[t]` lists transfer `t`'s constraint indices (dense, within
    /// the universe); `cap_of(c)` yields constraint `c`'s capacity.
    /// Writes one rate per transfer into `rates` (resized as needed).
    /// Only constraints actually referenced are touched, so the per-call
    /// cost is O(Σ|users|·rounds), independent of universe size.
    pub fn solve_max_min(
        &mut self,
        users: &[&[u32]],
        mut cap_of: impl FnMut(u32) -> f64,
        rates: &mut Vec<f64>,
    ) {
        let n = users.len();
        rates.clear();
        rates.resize(n, 0.0);
        if n == 0 {
            return;
        }
        // Reset only previously-touched slots, then register this call's.
        for &c in &self.touched {
            self.active_users[c as usize] = 0;
        }
        self.touched.clear();
        for u in users {
            for &c in *u {
                if self.active_users[c as usize] == 0 {
                    self.touched.push(c);
                    let cap = cap_of(c);
                    self.cap_left[c as usize] = cap;
                    self.cap_init[c as usize] = cap;
                }
                self.active_users[c as usize] += 1;
            }
        }
        self.frozen.clear();
        self.frozen.resize(n, false);
        let mut remaining = n;
        for (t, u) in users.iter().enumerate() {
            if u.is_empty() {
                rates[t] = f64::INFINITY;
                self.frozen[t] = true;
                remaining -= 1;
            }
        }
        while remaining > 0 {
            let mut lambda = f64::INFINITY;
            for &c in &self.touched {
                let au = self.active_users[c as usize];
                if au > 0 {
                    lambda = lambda.min(self.cap_left[c as usize] / au as f64);
                }
            }
            debug_assert!(
                lambda.is_finite(),
                "active transfer with no live constraint"
            );
            for &c in &self.touched {
                let au = self.active_users[c as usize];
                if au > 0 {
                    self.cap_left[c as usize] -= lambda * au as f64;
                }
            }
            let mut progressed = false;
            for (t, u) in users.iter().enumerate() {
                if !self.frozen[t] {
                    rates[t] += lambda;
                    let saturated = u.iter().any(|&c| {
                        self.cap_left[c as usize] <= 1e-12 * self.cap_init[c as usize].max(1.0)
                    });
                    if saturated {
                        self.frozen[t] = true;
                        remaining -= 1;
                        progressed = true;
                        for &c in *u {
                            self.active_users[c as usize] -= 1;
                        }
                    }
                }
            }
            debug_assert!(progressed, "progressive filling stalled");
        }
    }
}

/// Computes max-min fair rates (allocation-per-call convenience wrapper
/// over [`FluidScratch::solve_max_min`], which the engine uses directly
/// — one algorithm, two entry points).
///
/// `users[t]` lists the constraint indices transfer `t` consumes;
/// `caps[c]` is constraint `c`'s capacity (same rate units as the
/// result). A transfer with an empty constraint list is unconstrained
/// and gets `f64::INFINITY`.
pub fn max_min_rates(users: &[Vec<usize>], caps: &[f64]) -> Vec<f64> {
    let users_u32: Vec<Vec<u32>> = users
        .iter()
        .map(|u| u.iter().map(|&c| c as u32).collect())
        .collect();
    let user_refs: Vec<&[u32]> = users_u32.iter().map(Vec::as_slice).collect();
    let mut scratch = FluidScratch::new(caps.len());
    let mut rates = Vec::new();
    scratch.solve_max_min(&user_refs, |c| caps[c as usize], &mut rates);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_transfer_gets_bottleneck() {
        // One transfer through constraints of caps 4 and 2 → rate 2.
        let rates = max_min_rates(&[vec![0, 1]], &[4.0, 2.0]);
        assert!(close(rates[0], 2.0));
    }

    #[test]
    fn two_transfers_share_a_link_equally() {
        // Both through constraint 0 (cap 2) → 1 each.
        let rates = max_min_rates(&[vec![0], vec![0]], &[2.0]);
        assert!(close(rates[0], 1.0));
        assert!(close(rates[1], 1.0));
    }

    #[test]
    fn max_min_redistributes_slack() {
        // t0 bottlenecked at 1 by its private constraint; t1 shares a
        // cap-3 link with t0 and takes the slack: t0 = 1, t1 = 2.
        let rates = max_min_rates(&[vec![0, 1], vec![1]], &[1.0, 3.0]);
        assert!(close(rates[0], 1.0), "{rates:?}");
        assert!(close(rates[1], 2.0), "{rates:?}");
    }

    #[test]
    fn disjoint_transfers_full_rate() {
        let rates = max_min_rates(&[vec![0], vec![1]], &[5.0, 7.0]);
        assert!(close(rates[0], 5.0));
        assert!(close(rates[1], 7.0));
    }

    #[test]
    fn unconstrained_transfer_infinite() {
        let rates = max_min_rates(&[vec![]], &[]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[1.0]).is_empty());
    }

    #[test]
    fn rates_respect_all_capacities() {
        // Random-ish topology; verify feasibility.
        let users = vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![2]];
        let caps = vec![1.5, 2.0, 1.0];
        let rates = max_min_rates(&users, &caps);
        let mut load = vec![0.0; caps.len()];
        for (t, u) in users.iter().enumerate() {
            for &c in u {
                load[c] += rates[t];
            }
        }
        for (c, (&l, &cap)) in load.iter().zip(&caps).enumerate() {
            assert!(l <= cap + 1e-9, "constraint {c} overloaded: {l} > {cap}");
        }
        // Max-min: every transfer is blocked by at least one saturated
        // constraint.
        for (t, u) in users.iter().enumerate() {
            let blocked = u.iter().any(|&c| load[c] >= caps[c] - 1e-9);
            assert!(blocked, "transfer {t} could still grow: {rates:?}");
        }
    }

    #[test]
    fn n_transfers_through_one_link_get_equal_split() {
        for n in 1..20 {
            let users: Vec<Vec<usize>> = (0..n).map(|_| vec![0]).collect();
            let rates = max_min_rates(&users, &[10.0]);
            for r in rates {
                assert!(close(r, 10.0 / n as f64));
            }
        }
    }
}
