//! The discrete-event core: rendezvous matching, transfer lifecycle,
//! fluid time advancement.
//!
//! The engine realizes the paper's §2 machine model exactly:
//!
//! * a message of `n` bytes from a ready sender/receiver pair costs
//!   `α + nβ` in isolation;
//! * a node sends to at most one node and receives from at most one node
//!   at a time (guaranteed structurally: ranks block in `send`/`recv`/
//!   `sendrecv`, so at most one outgoing and one incoming half each);
//! * messages sharing a directed link share its bandwidth (max-min fluid
//!   rates over XY wormhole routes, with the §7.1 link-excess factor);
//! * arithmetic costs `γ` per byte and the library's short-vector
//!   recursion overhead costs `δ` per level — both charged to the local
//!   virtual clock.

use crate::fluid::FluidScratch;
use crate::net::NetSpec;
use crate::sim::ClusterLevels;
use intercom::faults::POISON_TAG;
use intercom::rng::splitmix64;
use intercom::{AbortCause, AbortInfo, CommError, Tag};
use intercom_cost::MachineParams;
use intercom_obs::TraceEvent;
use intercom_topology::HopLevel;
use std::collections::{HashMap, VecDeque};

/// What a rank asked the simulator to do.
#[derive(Debug)]
pub(crate) enum Request {
    Send {
        to: usize,
        tag: Tag,
        data: Vec<u8>,
    },
    Recv {
        from: usize,
        tag: Tag,
        len: usize,
    },
    SendRecv {
        to: usize,
        data: Vec<u8>,
        from: usize,
        /// Tag of the send half.
        tag: Tag,
        /// Tag of the receive half (differs from `tag` in fused
        /// cross-stage exchanges emitted by the schedule optimizer).
        rtag: Tag,
        rlen: usize,
    },
    Compute {
        bytes: usize,
    },
    CallOverhead,
    /// Fire-and-forget: the rank entered step `step` of compiled plan
    /// `plan` (`(0, 0)` = outside plan execution). The request channel
    /// preserves per-rank order, so this lands before the comm request
    /// it attributes.
    PlanStep {
        plan: u64,
        step: u64,
    },
    Finished,
}

/// The simulator's answer unblocking a rank.
#[derive(Debug)]
pub(crate) struct Reply {
    pub data: Option<Vec<u8>>,
    pub err: Option<CommError>,
}

#[derive(Debug)]
enum RankState {
    Running,
    Blocked {
        outstanding: u8,
        recv_data: Option<Vec<u8>>,
        err: Option<CommError>,
    },
    Finished,
}

struct SendHalf {
    posted: f64,
    data: Vec<u8>,
    /// `(plan_id, step)` attribution captured from the sender at post
    /// time (the transfer event lands on the sender's timeline).
    plan: (u64, u64),
}

struct RecvHalf {
    posted: f64,
    len: usize,
}

struct Transfer {
    src: usize,
    dst: usize,
    tag: Tag,
    data: Vec<u8>,
    /// Physical route length (for the trace).
    hops: usize,
    /// Static constraint indices: `src` injection port, `dst` ejection
    /// port, one per route link — precomputed once at rendezvous.
    constraints: Vec<u32>,
    /// Rendezvous time (both halves posted).
    started: f64,
    /// `started + α`: when bytes begin to flow.
    activation: f64,
    /// Bytes still to move.
    remaining: f64,
    /// Current fluid rate (bytes/s).
    rate: f64,
    /// Per-transfer wire-rate ceiling, `1/β` of the transfer's level
    /// (cluster mode; flat mode leaves it unused at ∞). Enforced as a
    /// real fluid constraint through the sender's wire slot, which this
    /// transfer owns exclusively while in flight.
    wire_cap: f64,
    /// `(plan_id, step)` attribution inherited from the send half.
    plan: (u64, u64),
}

/// The single-threaded simulation core. The thread harness in
/// [`crate::sim`] feeds it requests and drains replies.
pub(crate) struct Engine {
    net: NetSpec,
    machine: MachineParams,
    /// Per-level (α, β, link-excess) pricing, present in cluster mode:
    /// intra-node transfers charge the intra level, inter-node transfers
    /// the inter level, and every physical link carries its own level's
    /// capacity. `machine` then mirrors the inter (network) level.
    levels: Option<ClusterLevels>,
    /// Per-link-slot fluid capacity (`link_excess/β` of the link's
    /// level; uniform in flat mode).
    link_caps: Vec<f64>,
    /// Per-sender wire-slot capacity, rebuilt from the active set at
    /// each rate solve (cluster mode only; empty in flat mode).
    wire_caps: Vec<f64>,
    clocks: Vec<f64>,
    states: Vec<RankState>,
    pending_sends: HashMap<(usize, usize, Tag), VecDeque<SendHalf>>,
    pending_recvs: HashMap<(usize, usize, Tag), VecDeque<RecvHalf>>,
    /// Transfers awaiting activation (`now < activation`) or flowing.
    waiting: Vec<Transfer>,
    active: Vec<Transfer>,
    now: f64,
    ready_replies: Vec<(usize, Reply)>,
    finished: usize,
    blocked: usize,
    trace: Option<Vec<TraceEvent>>,
    /// Per-rank `(plan_id, step)` currently executing (set by
    /// [`Request::PlanStep`]; `(0, 0)` outside plan execution).
    plan_steps: Vec<(u64, u64)>,
    /// Static constraint universe: `node` = injection port of `node`,
    /// `p + node` = ejection port, `2p + slot` = directed link `slot`
    /// (dense per-topology slot numbering).
    fluid: FluidScratch,
    rates_buf: Vec<f64>,
    /// Set when the active-transfer set changes (activation or
    /// completion); the max-min solve is skipped while clear, since the
    /// rates of an unchanged set are already correct.
    rates_dirty: bool,
    /// "Timing irregularities resulting from the more complex operating
    /// systems of current generation machines" (§8): each transfer's
    /// startup and duration are inflated by up to `jitter` (fraction),
    /// drawn deterministically from `jitter_seed` and a message counter.
    jitter: f64,
    jitter_seed: u64,
    jitter_counter: u64,
    /// Set once a coordinated-abort poison record arrives on
    /// [`POISON_TAG`]: every blocked rank is released with the abort
    /// diagnosis and every later comm request fails fast with it.
    poisoned: Option<AbortInfo>,
}

impl Engine {
    /// Jitter-free construction (the unit-test entry point; `sim`
    /// always goes through [`Engine::with_jitter`]).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(net: NetSpec, machine: MachineParams, record_trace: bool) -> Self {
        Self::with_jitter(net, machine, record_trace, 0.0, 0)
    }

    pub(crate) fn with_jitter(
        net: NetSpec,
        machine: MachineParams,
        record_trace: bool,
        jitter: f64,
        jitter_seed: u64,
    ) -> Self {
        Self::with_levels(net, machine, None, record_trace, jitter, jitter_seed)
    }

    pub(crate) fn with_levels(
        net: NetSpec,
        machine: MachineParams,
        levels: Option<ClusterLevels>,
        record_trace: bool,
        jitter: f64,
        jitter_seed: u64,
    ) -> Self {
        assert!(machine.beta > 0.0, "simulator requires beta > 0");
        assert!(jitter >= 0.0, "jitter must be non-negative");
        let p = net.nodes();
        let n_links = net.link_slots();
        // Constraint universe: injection ports, ejection ports, directed
        // links, and (cluster mode) one wire slot per sender carrying
        // the per-transfer level rate ceiling.
        let universe = 2 * p + n_links + if levels.is_some() { p } else { 0 };
        let link_caps = match (&levels, &net) {
            (Some(lv), NetSpec::Cluster(cl)) => {
                assert!(
                    lv.intra.beta > 0.0 && lv.inter.beta > 0.0,
                    "simulator requires beta > 0 at every level"
                );
                let phys = cl.phys_mesh();
                let mut caps = vec![0.0; n_links];
                for l in phys.links() {
                    caps[phys.link_slot(l)] = match cl.link_level(l) {
                        HopLevel::Intra => lv.intra.link_excess / lv.intra.beta,
                        HopLevel::Inter => lv.inter.link_excess / lv.inter.beta,
                    };
                }
                caps
            }
            (Some(_), _) => panic!("per-level pricing requires NetSpec::Cluster"),
            (None, _) => vec![machine.link_excess / machine.beta; n_links],
        };
        Engine {
            net,
            machine,
            levels,
            link_caps,
            wire_caps: Vec::new(),
            clocks: vec![0.0; p],
            states: (0..p).map(|_| RankState::Running).collect(),
            pending_sends: HashMap::new(),
            pending_recvs: HashMap::new(),
            waiting: Vec::new(),
            active: Vec::new(),
            now: 0.0,
            ready_replies: Vec::new(),
            finished: 0,
            blocked: 0,
            trace: record_trace.then(Vec::new),
            plan_steps: vec![(0, 0); p],
            fluid: FluidScratch::new(universe),
            rates_buf: Vec::new(),
            rates_dirty: false,
            jitter,
            jitter_seed,
            jitter_counter: 0,
            poisoned: None,
        }
    }

    /// Per-transfer multiplicative slowdown in `[1, 1 + jitter]`,
    /// deterministic in (seed, message order).
    fn next_jitter_factor(&mut self) -> f64 {
        if self.jitter == 0.0 {
            return 1.0;
        }
        self.jitter_counter += 1;
        let h = splitmix64(self.jitter_seed ^ self.jitter_counter);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.jitter * u
    }

    pub(crate) fn ranks(&self) -> usize {
        self.clocks.len()
    }

    pub(crate) fn finished_count(&self) -> usize {
        self.finished
    }

    pub(crate) fn runnable_count(&self) -> usize {
        self.ranks() - self.finished - self.blocked
    }

    /// Final elapsed virtual time (valid once all ranks finished).
    pub(crate) fn elapsed(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// Per-rank final virtual clocks.
    pub(crate) fn clocks(&self) -> &[f64] {
        &self.clocks
    }

    pub(crate) fn take_trace(&mut self) -> Option<Vec<TraceEvent>> {
        self.trace.take()
    }

    pub(crate) fn drain_replies(&mut self) -> Vec<(usize, Reply)> {
        std::mem::take(&mut self.ready_replies)
    }

    pub(crate) fn handle(&mut self, rank: usize, req: Request) {
        debug_assert!(
            matches!(self.states[rank], RankState::Running),
            "rank {rank} issued a request while not running"
        );
        // A poison record never blocks its sender: acknowledge it
        // immediately, then (first record only) release every blocked
        // rank with the abort diagnosis and clear all pending traffic —
        // the coordinated-abort guarantee that no rank hangs.
        if let Request::Send {
            tag: POISON_TAG,
            ref data,
            ..
        } = req
        {
            let info = AbortInfo::decode(data).unwrap_or(AbortInfo {
                origin: rank,
                culprit: rank,
                plan: 0,
                step: 0,
                cause: AbortCause::External,
            });
            self.ready_replies.push((
                rank,
                Reply {
                    data: None,
                    err: None,
                },
            ));
            if self.poisoned.is_none() {
                self.poison(info);
            }
            return;
        }
        // Once poisoned, every further comm request fails fast with the
        // same diagnosis; accounting requests still apply harmlessly.
        if let Some(info) = self.poisoned {
            if matches!(
                req,
                Request::Send { .. } | Request::Recv { .. } | Request::SendRecv { .. }
            ) {
                self.ready_replies.push((
                    rank,
                    Reply {
                        data: None,
                        err: Some(CommError::Aborted(info)),
                    },
                ));
                return;
            }
        }
        match req {
            Request::Compute { bytes } => {
                // Arithmetic executes on the node: cluster mode charges
                // the intra (node) level's γ.
                let gamma = self.levels.map_or(self.machine.gamma, |lv| lv.intra.gamma);
                self.clocks[rank] += bytes as f64 * gamma;
            }
            Request::CallOverhead => {
                let delta = self.levels.map_or(self.machine.delta, |lv| lv.intra.delta);
                self.clocks[rank] += delta;
            }
            Request::PlanStep { plan, step } => {
                self.plan_steps[rank] = (plan, step);
            }
            Request::Finished => {
                self.states[rank] = RankState::Finished;
                self.finished += 1;
            }
            Request::Send { to, tag, data } => {
                self.block(rank, 1);
                self.post_send(rank, to, tag, data);
            }
            Request::Recv { from, tag, len } => {
                self.block(rank, 1);
                self.post_recv(from, rank, tag, len);
            }
            Request::SendRecv {
                to,
                data,
                from,
                tag,
                rtag,
                rlen,
            } => {
                self.block(rank, 2);
                self.post_send(rank, to, tag, data);
                self.post_recv(from, rank, rtag, rlen);
            }
        }
    }

    /// Latches the abort, releases every blocked rank with the
    /// diagnosis, and clears all pending/in-flight traffic: after a
    /// poison nothing else can ever complete, and the freed ranks must
    /// observe the abort rather than a dangling rendezvous.
    fn poison(&mut self, info: AbortInfo) {
        self.poisoned = Some(info);
        for rank in 0..self.states.len() {
            if matches!(self.states[rank], RankState::Blocked { .. }) {
                self.states[rank] = RankState::Running;
                self.blocked -= 1;
                self.ready_replies.push((
                    rank,
                    Reply {
                        data: None,
                        err: Some(CommError::Aborted(info)),
                    },
                ));
            }
        }
        self.pending_sends.clear();
        self.pending_recvs.clear();
        self.waiting.clear();
        self.active.clear();
        self.rates_dirty = false;
    }

    fn block(&mut self, rank: usize, outstanding: u8) {
        self.states[rank] = RankState::Blocked {
            outstanding,
            recv_data: None,
            err: None,
        };
        self.blocked += 1;
    }

    fn post_send(&mut self, src: usize, dst: usize, tag: Tag, data: Vec<u8>) {
        if dst >= self.ranks() {
            self.half_error(
                src,
                CommError::InvalidRank {
                    rank: dst,
                    size: self.ranks(),
                },
            );
            return;
        }
        let half = SendHalf {
            posted: self.clocks[src],
            data,
            plan: self.plan_steps[src],
        };
        self.pending_sends
            .entry((src, dst, tag))
            .or_default()
            .push_back(half);
        self.try_match(src, dst, tag);
    }

    fn post_recv(&mut self, src: usize, dst: usize, tag: Tag, len: usize) {
        if src >= self.ranks() {
            self.half_error(
                dst,
                CommError::InvalidRank {
                    rank: src,
                    size: self.ranks(),
                },
            );
            return;
        }
        let half = RecvHalf {
            posted: self.clocks[dst],
            len,
        };
        self.pending_recvs
            .entry((src, dst, tag))
            .or_default()
            .push_back(half);
        self.try_match(src, dst, tag);
    }

    fn try_match(&mut self, src: usize, dst: usize, tag: Tag) {
        let key = (src, dst, tag);
        loop {
            let (s_empty, r_empty) = (
                self.pending_sends.get(&key).is_none_or(|q| q.is_empty()),
                self.pending_recvs.get(&key).is_none_or(|q| q.is_empty()),
            );
            if s_empty || r_empty {
                return;
            }
            let s = self
                .pending_sends
                .get_mut(&key)
                .unwrap()
                .pop_front()
                .unwrap();
            let r = self
                .pending_recvs
                .get_mut(&key)
                .unwrap()
                .pop_front()
                .unwrap();
            if s.data.len() != r.len {
                let err = CommError::LengthMismatch {
                    expected: r.len,
                    actual: s.data.len(),
                };
                self.half_error(src, err.clone());
                self.half_error(dst, err);
                continue;
            }
            let started = s.posted.max(r.posted);
            let size = s.data.len();
            let p = self.ranks();
            let mut constraints = Vec::with_capacity(8);
            constraints.push(src as u32);
            constraints.push((p + dst) as u32);
            let hops = self.net.route_slots(src, dst, 2 * p, &mut constraints);
            // Per-level pricing (cluster mode): a same-node message is an
            // intra-level transfer, everything else crosses the network.
            // Its startup and wire rate come from that level; flat mode
            // keeps the single machine's α with no extra ceiling (the
            // ports already cap at 1/β).
            let (alpha, wire_cap) = match (&self.levels, &self.net) {
                (Some(lv), NetSpec::Cluster(cl)) => {
                    let m = if src == dst || cl.same_node(src, dst) {
                        &lv.intra
                    } else {
                        &lv.inter
                    };
                    constraints.push((2 * p + self.net.link_slots() + src) as u32);
                    (m.alpha, 1.0 / m.beta)
                }
                _ => (self.machine.alpha, f64::INFINITY),
            };
            // Timing irregularities (§8) model OS interference at message
            // handoff: the *startup* is inflated, not the wire bandwidth,
            // so algorithms with longer critical message chains (e.g.
            // pipelined broadcasts) accumulate proportionally more noise.
            let slowdown = self.next_jitter_factor();
            let t = Transfer {
                src,
                dst,
                tag,
                hops,
                constraints,
                remaining: size as f64,
                data: s.data,
                started,
                activation: started + alpha * slowdown,
                rate: 0.0,
                wire_cap,
                plan: s.plan,
            };
            self.waiting.push(t);
        }
    }

    /// Records an erroneous half-completion on `rank`.
    fn half_error(&mut self, rank: usize, e: CommError) {
        if let RankState::Blocked {
            outstanding, err, ..
        } = &mut self.states[rank]
        {
            *outstanding -= 1;
            err.get_or_insert(e);
            if *outstanding == 0 {
                self.unblock(rank);
            }
        }
    }

    /// Records a successful half-completion on `rank`.
    fn half_done(&mut self, rank: usize, data: Option<Vec<u8>>) {
        if let RankState::Blocked {
            outstanding,
            recv_data,
            ..
        } = &mut self.states[rank]
        {
            *outstanding -= 1;
            if data.is_some() {
                *recv_data = data;
            }
            if *outstanding == 0 {
                self.unblock(rank);
            }
        } else {
            unreachable!("half completion on non-blocked rank {rank}");
        }
    }

    fn unblock(&mut self, rank: usize) {
        let state = std::mem::replace(&mut self.states[rank], RankState::Running);
        if let RankState::Blocked { recv_data, err, .. } = state {
            self.blocked -= 1;
            self.ready_replies.push((
                rank,
                Reply {
                    data: recv_data,
                    err: err.clone(),
                },
            ));
        }
    }

    /// Advances virtual time to the next event batch. Requires every
    /// unfinished rank to be blocked. Panics with a diagnostic on
    /// deadlock (blocked ranks but no transfer can ever complete).
    pub(crate) fn advance(&mut self) {
        assert_eq!(self.runnable_count(), 0, "advance with runnable ranks");
        if self.blocked == 0 {
            return;
        }
        if self.waiting.is_empty() && self.active.is_empty() {
            self.panic_deadlock();
        }
        // Next event time: earliest activation or earliest completion.
        let mut t_next = f64::INFINITY;
        for w in &self.waiting {
            t_next = t_next.min(w.activation);
        }
        for a in &self.active {
            if a.rate > 0.0 {
                t_next = t_next.min(self.now + a.remaining / a.rate);
            } else if a.remaining <= 1e-9 {
                t_next = t_next.min(self.now);
            }
        }
        assert!(
            t_next.is_finite(),
            "no progressing transfer (all rates zero?)"
        );
        let t_next = t_next.max(self.now);
        // Progress all flowing transfers to t_next.
        let dt = t_next - self.now;
        for a in &mut self.active {
            a.remaining = (a.remaining - a.rate * dt).max(0.0);
        }
        self.now = t_next;
        // Activate everything due (batched to one rate recomputation).
        let eps = 1e-15 + 1e-9 * t_next.abs();
        let mut i = 0;
        while i < self.waiting.len() {
            if self.waiting[i].activation <= t_next + eps {
                let t = self.waiting.swap_remove(i);
                self.active.push(t);
                self.rates_dirty = true;
            } else {
                i += 1;
            }
        }
        // Complete everything that has no bytes left — including
        // transfers whose residual flow time rounds to zero at the
        // current clock (`now + remaining/rate == now` in f64): without
        // this, a sub-ulp residue would stall the event loop in
        // infinitesimal steps (Zeno livelock).
        let mut i = 0;
        while i < self.active.len() {
            let a = &self.active[i];
            let done = a.remaining <= 1e-9
                || (a.rate > 0.0 && self.now + a.remaining / a.rate <= self.now);
            if done {
                let t = self.active.swap_remove(i);
                self.finish_transfer(t);
                self.rates_dirty = true;
            } else {
                i += 1;
            }
        }
        if self.rates_dirty {
            self.recompute_rates();
            self.rates_dirty = false;
        }
    }

    fn finish_transfer(&mut self, t: Transfer) {
        self.clocks[t.src] = self.clocks[t.src].max(self.now);
        self.clocks[t.dst] = self.clocks[t.dst].max(self.now);
        if let Some(trace) = &mut self.trace {
            trace.push(
                TraceEvent::transfer(
                    t.src,
                    t.dst,
                    t.tag,
                    t.data.len(),
                    t.started,
                    self.now,
                    t.hops,
                )
                .with_plan(t.plan.0, t.plan.1),
            );
        }
        if t.src == t.dst {
            // Self-message: one rank, both halves.
            let data = t.data;
            if let RankState::Blocked { outstanding, .. } = &self.states[t.src] {
                debug_assert!(*outstanding >= 1);
            }
            self.half_done(t.src, None);
            // The rank may already be unblocked if it was a plain
            // send+later recv; self-traffic within one blocking call is
            // only possible via sendrecv (outstanding 2), handled above.
            if let RankState::Blocked { .. } = self.states[t.dst] {
                self.half_done(t.dst, Some(data));
            }
        } else {
            self.half_done(t.src, None);
            self.half_done(t.dst, Some(t.data));
        }
    }

    fn recompute_rates(&mut self) {
        if self.active.is_empty() {
            return;
        }
        // Ports inject/eject at node speed: the intra (memory) level in
        // cluster mode, the single machine otherwise. Slower wires are
        // enforced per link and per transfer below.
        let port_cap = 1.0 / self.levels.map_or(self.machine.beta, |lv| lv.intra.beta);
        let port_slots = (2 * self.ranks()) as u32;
        let wire_base = port_slots + self.link_caps.len() as u32;
        if self.levels.is_some() {
            self.wire_caps.clear();
            self.wire_caps.resize(self.ranks(), f64::INFINITY);
            for t in &self.active {
                self.wire_caps[t.src] = t.wire_cap;
            }
        }
        let users: Vec<&[u32]> = self
            .active
            .iter()
            .map(|t| t.constraints.as_slice())
            .collect();
        let mut rates = std::mem::take(&mut self.rates_buf);
        let link_caps = &self.link_caps;
        let wire_caps = &self.wire_caps;
        self.fluid.solve_max_min(
            &users,
            |c| {
                if c < port_slots {
                    port_cap
                } else if c < wire_base {
                    link_caps[(c - port_slots) as usize]
                } else {
                    wire_caps[(c - wire_base) as usize]
                }
            },
            &mut rates,
        );
        drop(users);
        for (t, &r) in self.active.iter_mut().zip(rates.iter()) {
            t.rate = r;
        }
        self.rates_buf = rates;
    }

    fn panic_deadlock(&self) -> ! {
        let mut detail = String::new();
        for (&(s, d, tag), q) in &self.pending_sends {
            if !q.is_empty() {
                detail.push_str(&format!(
                    "  unmatched send {s}→{d} tag {tag} ×{}\n",
                    q.len()
                ));
            }
        }
        for (&(s, d, tag), q) in &self.pending_recvs {
            if !q.is_empty() {
                detail.push_str(&format!(
                    "  unmatched recv {d}←{s} tag {tag} ×{}\n",
                    q.len()
                ));
            }
        }
        panic!(
            "simulation deadlock: {} rank(s) blocked with no transfer in flight\n{detail}",
            self.blocked
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom_topology::Mesh2D;

    fn mesh_net(r: usize, c: usize) -> NetSpec {
        NetSpec::Mesh(Mesh2D::new(r, c))
    }

    fn unit_machine() -> MachineParams {
        // α=1, β=1 (1 byte/s), γ=0, δ=0, no link excess.
        MachineParams {
            alpha: 1.0,
            beta: 1.0,
            gamma: 0.0,
            delta: 0.0,
            link_excess: 1.0,
        }
    }

    fn drive_to_completion(e: &mut Engine) {
        // No runnable ranks assumed; keep advancing until all blocked
        // ranks are released; callers re-post as needed.
        while e.blocked > 0 && e.runnable_count() == 0 {
            e.advance();
        }
    }

    #[test]
    fn ping_costs_alpha_plus_n_beta() {
        let mesh = mesh_net(1, 2);
        let mut e = Engine::new(mesh, unit_machine(), false);
        e.handle(
            0,
            Request::Send {
                to: 1,
                tag: 0,
                data: vec![0u8; 10],
            },
        );
        e.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 10,
            },
        );
        drive_to_completion(&mut e);
        let replies = e.drain_replies();
        assert_eq!(replies.len(), 2);
        // α + nβ = 1 + 10 = 11.
        assert!((e.clocks[0] - 11.0).abs() < 1e-9, "{}", e.clocks[0]);
        assert!((e.clocks[1] - 11.0).abs() < 1e-9);
        for (_, r) in replies {
            assert!(r.err.is_none());
        }
    }

    #[test]
    fn zero_byte_message_costs_alpha() {
        let mesh = mesh_net(1, 2);
        let mut e = Engine::new(mesh, unit_machine(), false);
        e.handle(
            0,
            Request::Send {
                to: 1,
                tag: 0,
                data: vec![],
            },
        );
        e.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 0,
            },
        );
        drive_to_completion(&mut e);
        assert!((e.clocks[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_waits_for_late_receiver() {
        let mesh = mesh_net(1, 2);
        let e = Engine::new(mesh, unit_machine(), false);
        // Rank 1 computes 5 bytes' worth (γ=0 here, use alpha via
        // overhead): give rank 1 a head-start clock via Compute with a
        // gamma machine instead.
        let machine = MachineParams {
            gamma: 1.0,
            ..unit_machine()
        };
        let mut e2 = Engine::new(mesh, machine, false);
        e2.handle(1, Request::Compute { bytes: 5 });
        e2.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 4,
            },
        );
        e2.handle(
            0,
            Request::Send {
                to: 1,
                tag: 0,
                data: vec![9u8; 4],
            },
        );
        drive_to_completion(&mut e2);
        // Start at max(0, 5) = 5; complete at 5 + 1 + 4 = 10.
        assert!((e2.clocks[1] - 10.0).abs() < 1e-9, "{}", e2.clocks[1]);
        assert!((e2.clocks[0] - 10.0).abs() < 1e-9);
        let _ = e;
    }

    #[test]
    fn contending_messages_share_link_bandwidth() {
        // 1x4 row: 0→3 and 1→2 share links 1→2 (and 2→3 only the first).
        // Transfers: A: 0→3 (links 0E,1E,2E), B: 1→2 (link 1E).
        // Fluid: both constrained by link 1E → 0.5 each until B done.
        let mesh = mesh_net(1, 4);
        let mut e = Engine::new(mesh, unit_machine(), false);
        e.handle(
            0,
            Request::Send {
                to: 3,
                tag: 0,
                data: vec![0; 100],
            },
        );
        e.handle(
            3,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 100,
            },
        );
        e.handle(
            1,
            Request::Send {
                to: 2,
                tag: 1,
                data: vec![0; 100],
            },
        );
        e.handle(
            2,
            Request::Recv {
                from: 1,
                tag: 1,
                len: 100,
            },
        );
        drive_to_completion(&mut e);
        // Both activate at t=1. Shared until B finishes at 1+200=201;
        // A then has 0 left? A also got 0.5 → A remaining 0 at 201 too.
        assert!((e.clocks[2] - 201.0).abs() < 1e-6, "{}", e.clocks[2]);
        assert!((e.clocks[3] - 201.0).abs() < 1e-6, "{}", e.clocks[3]);
    }

    #[test]
    fn link_excess_removes_sharing_penalty() {
        let mesh = mesh_net(1, 4);
        let machine = MachineParams {
            link_excess: 2.0,
            ..unit_machine()
        };
        let mut e = Engine::new(mesh, machine, false);
        e.handle(
            0,
            Request::Send {
                to: 3,
                tag: 0,
                data: vec![0; 100],
            },
        );
        e.handle(
            3,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 100,
            },
        );
        e.handle(
            1,
            Request::Send {
                to: 2,
                tag: 1,
                data: vec![0; 100],
            },
        );
        e.handle(
            2,
            Request::Recv {
                from: 1,
                tag: 1,
                len: 100,
            },
        );
        drive_to_completion(&mut e);
        // Link capacity 2 B/s but ports 1 B/s: both flow at port rate:
        // done at 1 + 100 = 101.
        assert!((e.clocks[3] - 101.0).abs() < 1e-6, "{}", e.clocks[3]);
    }

    #[test]
    fn disjoint_routes_do_not_interact() {
        let mesh = mesh_net(1, 4);
        let mut e = Engine::new(mesh, unit_machine(), false);
        e.handle(
            0,
            Request::Send {
                to: 1,
                tag: 0,
                data: vec![0; 50],
            },
        );
        e.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 50,
            },
        );
        e.handle(
            2,
            Request::Send {
                to: 3,
                tag: 0,
                data: vec![0; 50],
            },
        );
        e.handle(
            3,
            Request::Recv {
                from: 2,
                tag: 0,
                len: 50,
            },
        );
        drive_to_completion(&mut e);
        for r in 0..4 {
            assert!(
                (e.clocks[r] - 51.0).abs() < 1e-9,
                "rank {r}: {}",
                e.clocks[r]
            );
        }
    }

    #[test]
    fn sendrecv_ring_is_one_step() {
        // 3 ranks in a row exchange ring-style via sendrecv: all complete
        // in one α + nβ step except for the wrap path sharing... with a
        // 1x3 row, 0→1 (E), 1→2 (E), 2→0 (W,W): all link-disjoint.
        let mesh = mesh_net(1, 3);
        let mut e = Engine::new(mesh, unit_machine(), false);
        for me in 0..3usize {
            let right = (me + 1) % 3;
            let left = (me + 2) % 3;
            e.handle(
                me,
                Request::SendRecv {
                    to: right,
                    data: vec![0; 20],
                    from: left,
                    tag: 0,
                    rtag: 0,
                    rlen: 20,
                },
            );
        }
        drive_to_completion(&mut e);
        for r in 0..3 {
            assert!(
                (e.clocks[r] - 21.0).abs() < 1e-9,
                "rank {r}: {}",
                e.clocks[r]
            );
        }
        assert_eq!(e.drain_replies().len(), 3);
    }

    #[test]
    fn length_mismatch_errors_both_sides() {
        let mesh = mesh_net(1, 2);
        let mut e = Engine::new(mesh, unit_machine(), false);
        e.handle(
            0,
            Request::Send {
                to: 1,
                tag: 0,
                data: vec![0; 5],
            },
        );
        e.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 3,
            },
        );
        let replies = e.drain_replies();
        assert_eq!(replies.len(), 2);
        for (_, r) in replies {
            assert!(matches!(
                r.err,
                Some(CommError::LengthMismatch {
                    expected: 3,
                    actual: 5
                })
            ));
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unmatched_recv_deadlocks_with_diagnostic() {
        let mesh = mesh_net(1, 2);
        let mut e = Engine::new(mesh, unit_machine(), false);
        e.handle(
            0,
            Request::Recv {
                from: 1,
                tag: 0,
                len: 1,
            },
        );
        e.handle(1, Request::Finished);
        e.advance();
    }

    #[test]
    fn poison_releases_blocked_ranks_with_diagnosis() {
        let mesh = mesh_net(1, 3);
        let mut e = Engine::new(mesh, unit_machine(), false);
        // Ranks 1 and 2 block on receives that will never match.
        e.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 4,
                len: 8,
            },
        );
        e.handle(
            2,
            Request::Recv {
                from: 0,
                tag: 5,
                len: 8,
            },
        );
        assert!(e.drain_replies().is_empty());
        // Rank 0 poisons instead of sending data.
        let info = AbortInfo {
            origin: 0,
            culprit: 0,
            plan: 9,
            step: 2,
            cause: AbortCause::DropBudget,
        };
        e.handle(
            0,
            Request::Send {
                to: 1,
                tag: POISON_TAG,
                data: info.encode().to_vec(),
            },
        );
        let mut replies = e.drain_replies();
        replies.sort_by_key(|(r, _)| *r);
        assert_eq!(replies.len(), 3);
        // The poisoner is acknowledged without blocking...
        assert!(replies[0].1.err.is_none());
        // ...and both blocked ranks wake with the same diagnosis.
        for (rank, reply) in &replies[1..] {
            assert!(
                matches!(reply.err, Some(CommError::Aborted(i)) if i == info),
                "rank {rank}: {:?}",
                reply.err
            );
        }
        // Later comm requests fail fast; a duplicate poison still acks.
        e.handle(
            1,
            Request::Recv {
                from: 2,
                tag: 6,
                len: 1,
            },
        );
        e.handle(
            0,
            Request::Send {
                to: 2,
                tag: POISON_TAG,
                data: info.encode().to_vec(),
            },
        );
        let replies = e.drain_replies();
        assert_eq!(replies.len(), 2);
        assert!(matches!(replies[0].1.err, Some(CommError::Aborted(_))));
        assert!(replies[1].1.err.is_none());
        // All ranks can still finish cleanly.
        for r in 0..3 {
            e.handle(r, Request::Finished);
        }
        assert_eq!(e.finished_count(), 3);
    }

    #[test]
    fn gamma_and_delta_advance_clocks() {
        let mesh = mesh_net(1, 1);
        let machine = MachineParams {
            alpha: 1.0,
            beta: 1.0,
            gamma: 2.0,
            delta: 0.25,
            link_excess: 1.0,
        };
        let mut e = Engine::new(mesh, machine, false);
        e.handle(0, Request::Compute { bytes: 3 });
        e.handle(0, Request::CallOverhead);
        e.handle(0, Request::Finished);
        assert!((e.clocks[0] - 6.25).abs() < 1e-12);
        assert_eq!(e.finished_count(), 1);
    }

    #[test]
    fn trace_records_transfers() {
        let mesh = mesh_net(1, 2);
        let mut e = Engine::new(mesh, unit_machine(), true);
        e.handle(
            0,
            Request::Send {
                to: 1,
                tag: 7,
                data: vec![0; 4],
            },
        );
        e.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 7,
                len: 4,
            },
        );
        drive_to_completion(&mut e);
        let trace = e.take_trace().unwrap();
        assert_eq!(trace.len(), 1);
        let rec = &trace[0];
        assert_eq!(
            (rec.src, rec.dst, rec.tag, rec.bytes, rec.hops),
            (0, 1, 7, 4, 1)
        );
        assert!((rec.end - rec.start - 5.0).abs() < 1e-9);
        assert_eq!((rec.plan, rec.step), (0, 0), "untraced by default");
    }

    #[test]
    fn plan_step_attribution_reaches_the_trace() {
        let mesh = mesh_net(1, 2);
        let mut e = Engine::new(mesh, unit_machine(), true);
        e.handle(0, Request::PlanStep { plan: 42, step: 6 });
        e.handle(
            0,
            Request::Send {
                to: 1,
                tag: 0,
                data: vec![0; 4],
            },
        );
        e.handle(
            1,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 4,
            },
        );
        drive_to_completion(&mut e);
        let trace = e.take_trace().unwrap();
        assert_eq!((trace[0].plan, trace[0].step), (42, 6));
    }

    #[test]
    fn xy_routes_make_columns_independent_of_rows() {
        // Two column transfers in different columns of a 2x2 mesh run at
        // full rate concurrently.
        let mesh = mesh_net(2, 2);
        let mut e = Engine::new(mesh, unit_machine(), false);
        e.handle(
            0,
            Request::Send {
                to: 2,
                tag: 0,
                data: vec![0; 30],
            },
        );
        e.handle(
            2,
            Request::Recv {
                from: 0,
                tag: 0,
                len: 30,
            },
        );
        e.handle(
            1,
            Request::Send {
                to: 3,
                tag: 0,
                data: vec![0; 30],
            },
        );
        e.handle(
            3,
            Request::Recv {
                from: 1,
                tag: 0,
                len: 30,
            },
        );
        drive_to_completion(&mut e);
        for r in 0..4 {
            assert!((e.clocks[r] - 31.0).abs() < 1e-9, "rank {r}");
        }
    }
}
