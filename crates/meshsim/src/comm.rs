//! The per-rank simulated endpoint.

use crate::engine::{Reply, Request};
use intercom::{BufferPool, Comm, CommError, PoolStats, Result, Tag};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// A rank's endpoint inside a simulated world. Blocking operations
/// round-trip through the central engine, which advances virtual time;
/// `compute`/`call_overhead` are fire-and-forget clock advances (the
/// request channel preserves per-rank order, so accounting lands in
/// program order).
///
/// Payloads travel in pooled `Vec<u8>`s drawn from one pool shared by
/// the whole simulated world: `send` acquires and fills a buffer, the
/// engine moves it end to end without re-buffering, and the receiving
/// endpoint returns it to the pool after copying into the caller's
/// buffer — steady-state hops allocate nothing.
pub struct SimComm {
    rank: usize,
    size: usize,
    to_engine: Sender<(usize, Request)>,
    from_engine: Receiver<Reply>,
    pool: Arc<BufferPool>,
    finished: std::cell::Cell<bool>,
}

impl SimComm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        to_engine: Sender<(usize, Request)>,
        from_engine: Receiver<Reply>,
        pool: Arc<BufferPool>,
    ) -> Self {
        SimComm {
            rank,
            size,
            to_engine,
            from_engine,
            pool,
            finished: std::cell::Cell::new(false),
        }
    }

    fn roundtrip(&self, req: Request) -> Result<Reply> {
        self.to_engine
            .send((self.rank, req))
            .map_err(|_| CommError::Disconnected)?;
        let reply = self
            .from_engine
            .recv()
            .map_err(|_| CommError::Disconnected)?;
        match reply.err {
            Some(e) => Err(e),
            None => Ok(reply),
        }
    }

    /// Copies a pooled payload from `data` for shipment to the engine.
    fn pooled_copy(&self, data: &[u8]) -> Vec<u8> {
        let mut payload = self.pool.acquire(data.len());
        payload.extend_from_slice(data);
        payload
    }

    /// Unpacks a reply's payload into `buf` and recycles the buffer.
    fn unpack(&self, reply: Reply, buf: &mut [u8]) -> Result<()> {
        let data = reply.data.ok_or(CommError::Disconnected)?;
        buf.copy_from_slice(&data);
        self.pool.release(data);
        Ok(())
    }

    /// Counters of the world-shared payload pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    pub(crate) fn finish(&self) {
        if !self.finished.replace(true) {
            let _ = self.to_engine.send((self.rank, Request::Finished));
        }
    }
}

impl Drop for SimComm {
    fn drop(&mut self) {
        // A panicking rank still tells the engine it is gone, so the
        // simulation surfaces a deadlock diagnostic (or completes) rather
        // than waiting forever for requests that will never come.
        self.finish();
    }
}

impl Comm for SimComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.roundtrip(Request::Send {
            to,
            tag,
            data: self.pooled_copy(data),
        })?;
        Ok(())
    }

    fn recv(&self, from: usize, tag: Tag, buf: &mut [u8]) -> Result<()> {
        let reply = self.roundtrip(Request::Recv {
            from,
            tag,
            len: buf.len(),
        })?;
        self.unpack(reply, buf)
    }

    fn sendrecv(
        &self,
        to: usize,
        data: &[u8],
        from: usize,
        buf: &mut [u8],
        tag: Tag,
    ) -> Result<()> {
        self.sendrecv_tagged(to, data, tag, from, buf, tag)
    }

    fn sendrecv_tagged(
        &self,
        to: usize,
        data: &[u8],
        stag: Tag,
        from: usize,
        buf: &mut [u8],
        rtag: Tag,
    ) -> Result<()> {
        let reply = self.roundtrip(Request::SendRecv {
            to,
            data: self.pooled_copy(data),
            from,
            tag: stag,
            rtag,
            rlen: buf.len(),
        })?;
        self.unpack(reply, buf)
    }

    fn compute(&self, bytes: usize) {
        let _ = self.to_engine.send((self.rank, Request::Compute { bytes }));
    }

    fn call_overhead(&self) {
        let _ = self.to_engine.send((self.rank, Request::CallOverhead));
    }

    fn plan_step(&self, plan: u64, step: u64) {
        // Fire-and-forget like `compute`: the per-rank request channel
        // is FIFO, so the attribution precedes the comm op it covers.
        let _ = self
            .to_engine
            .send((self.rank, Request::PlanStep { plan, step }));
    }
}
