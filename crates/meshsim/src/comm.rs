//! The per-rank simulated endpoint.

use crate::engine::{Reply, Request};
use crossbeam_channel::{Receiver, Sender};
use intercom::{Comm, CommError, Result, Tag};

/// A rank's endpoint inside a simulated world. Blocking operations
/// round-trip through the central engine, which advances virtual time;
/// `compute`/`call_overhead` are fire-and-forget clock advances (the
/// request channel preserves per-rank order, so accounting lands in
/// program order).
pub struct SimComm {
    rank: usize,
    size: usize,
    to_engine: Sender<(usize, Request)>,
    from_engine: Receiver<Reply>,
    finished: std::cell::Cell<bool>,
}

impl SimComm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        to_engine: Sender<(usize, Request)>,
        from_engine: Receiver<Reply>,
    ) -> Self {
        SimComm { rank, size, to_engine, from_engine, finished: std::cell::Cell::new(false) }
    }

    fn roundtrip(&self, req: Request) -> Result<Reply> {
        self.to_engine.send((self.rank, req)).map_err(|_| CommError::Disconnected)?;
        let reply = self.from_engine.recv().map_err(|_| CommError::Disconnected)?;
        match reply.err {
            Some(e) => Err(e),
            None => Ok(reply),
        }
    }

    pub(crate) fn finish(&self) {
        if !self.finished.replace(true) {
            let _ = self.to_engine.send((self.rank, Request::Finished));
        }
    }
}

impl Drop for SimComm {
    fn drop(&mut self) {
        // A panicking rank still tells the engine it is gone, so the
        // simulation surfaces a deadlock diagnostic (or completes) rather
        // than waiting forever for requests that will never come.
        self.finish();
    }
}

impl Comm for SimComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.roundtrip(Request::Send { to, tag, data: data.to_vec() })?;
        Ok(())
    }

    fn recv(&self, from: usize, tag: Tag, buf: &mut [u8]) -> Result<()> {
        let reply = self.roundtrip(Request::Recv { from, tag, len: buf.len() })?;
        let data = reply.data.ok_or(CommError::Disconnected)?;
        buf.copy_from_slice(&data);
        Ok(())
    }

    fn sendrecv(
        &self,
        to: usize,
        data: &[u8],
        from: usize,
        buf: &mut [u8],
        tag: Tag,
    ) -> Result<()> {
        let reply = self.roundtrip(Request::SendRecv {
            to,
            data: data.to_vec(),
            from,
            tag,
            rlen: buf.len(),
        })?;
        let got = reply.data.ok_or(CommError::Disconnected)?;
        buf.copy_from_slice(&got);
        Ok(())
    }

    fn compute(&self, bytes: usize) {
        let _ = self.to_engine.send((self.rank, Request::Compute { bytes }));
    }

    fn call_overhead(&self) {
        let _ = self.to_engine.send((self.rank, Request::CallOverhead));
    }
}
