//! Simulation orchestration: rank threads + engine loop.

use crate::comm::SimComm;
use crate::engine::Engine;
use crate::net::NetSpec;
use intercom::BufferPool;
use intercom_cost::{HierMachine, MachineParams};
use intercom_obs::Trace;
use intercom_topology::{Cluster, Hypercube, Mesh2D, Torus2D};
use std::sync::mpsc::channel;
use std::sync::Arc;

/// Per-level pricing of a simulated two-level cluster: intra-node
/// transfers (and local arithmetic) charge `intra`, inter-node
/// transfers and inter links charge `inter`.
#[derive(Debug, Clone, Copy)]
pub struct ClusterLevels {
    /// The cheap intra-node (α, β, γ, δ, link-excess) parameters.
    pub intra: MachineParams,
    /// The expensive inter-node (network) parameters.
    pub inter: MachineParams,
}

/// Configuration of one simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Physical network; world rank = node id.
    pub net: NetSpec,
    /// The α/β/γ/δ/link-excess parameters.
    pub machine: MachineParams,
    /// Per-level parameters, present when `net` is a cluster: each
    /// transfer is priced at its level. `machine` then mirrors the
    /// inter (network) level for reporting.
    pub levels: Option<ClusterLevels>,
    /// Record per-transfer trace (costs memory on big runs).
    pub record_trace: bool,
    /// Per-transfer timing irregularity: each message's *startup* (α) is
    /// inflated by a deterministic factor in `[1, 1 + jitter]` (§8's
    /// "timing irregularities" — OS interference at message handoff).
    /// 0 = ideal.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl SimConfig {
    /// A mesh with the given machine, no tracing, no jitter.
    pub fn new(mesh: Mesh2D, machine: MachineParams) -> Self {
        SimConfig {
            net: NetSpec::Mesh(mesh),
            machine,
            levels: None,
            record_trace: false,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }

    /// A torus (wraparound mesh, paper ref [6]) with the given machine.
    pub fn torus(torus: Torus2D, machine: MachineParams) -> Self {
        SimConfig {
            net: NetSpec::Torus(torus),
            machine,
            levels: None,
            record_trace: false,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }

    /// A hypercube (the §11 iPSC/860 target) with the given machine.
    pub fn hypercube(cube: Hypercube, machine: MachineParams) -> Self {
        SimConfig {
            net: NetSpec::Hypercube(cube),
            machine,
            levels: None,
            record_trace: false,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }

    /// A two-level cluster with per-level parameters: the physical
    /// network is the cluster's mesh embedding, intra-node traffic is
    /// priced at `machine.intra()` and inter-node traffic at
    /// `machine.inter()`. No tracing, no jitter.
    pub fn cluster(cluster: Cluster, machine: &HierMachine) -> Self {
        SimConfig {
            net: NetSpec::Cluster(cluster),
            machine: *machine.inter(),
            levels: Some(ClusterLevels {
                intra: *machine.intra(),
                inter: *machine.inter(),
            }),
            record_trace: false,
            jitter: 0.0,
            jitter_seed: 0,
        }
    }

    /// Enables transfer tracing.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enables OS-noise-style timing jitter (deterministic per seed).
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        self.jitter = jitter;
        self.jitter_seed = seed;
        self
    }
}

/// Everything a simulation run produces.
#[derive(Debug)]
pub struct SimReport<T> {
    /// Per-rank return values.
    pub results: Vec<T>,
    /// Elapsed virtual time: the maximum final rank clock, in seconds.
    pub elapsed: f64,
    /// Per-rank final virtual clocks (skew shows load imbalance).
    pub clocks: Vec<f64>,
    /// The transfer log, when tracing was enabled.
    pub trace: Option<Trace>,
}

impl<T> SimReport<T> {
    /// Clock skew: latest minus earliest finisher.
    pub fn clock_skew(&self) -> f64 {
        let min = self.clocks.iter().cloned().fold(f64::INFINITY, f64::min);
        (self.elapsed - min).max(0.0)
    }
}

/// Runs `f` on every rank of the simulated machine and returns the
/// per-rank results plus the elapsed *virtual* time under the paper's
/// machine model. The closure receives a [`SimComm`] implementing
/// [`intercom::Comm`], so any library collective runs unmodified.
pub fn simulate<T, F>(cfg: &SimConfig, f: F) -> SimReport<T>
where
    T: Send,
    F: Fn(&SimComm) -> T + Send + Sync,
{
    let p = cfg.net.nodes();
    let mut engine = Engine::with_levels(
        cfg.net,
        cfg.machine,
        cfg.levels,
        cfg.record_trace,
        cfg.jitter,
        cfg.jitter_seed,
    );
    let (req_tx, req_rx) = channel();
    let pool = Arc::new(BufferPool::new());
    let mut reply_txs = Vec::with_capacity(p);
    let mut endpoints = Vec::with_capacity(p);
    for rank in 0..p {
        let (tx, rx) = channel();
        reply_txs.push(tx);
        endpoints.push(SimComm::new(rank, p, req_tx.clone(), rx, pool.clone()));
    }
    drop(req_tx);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, comm) in endpoints.into_iter().enumerate() {
            let builder = std::thread::Builder::new()
                .name(format!("sim-rank-{rank}"))
                .stack_size(1024 * 1024);
            handles.push(
                builder
                    .spawn_scoped(scope, move || {
                        let out = f(&comm);
                        comm.finish();
                        out
                    })
                    .expect("failed to spawn simulated rank"),
            );
        }
        // Engine loop: consume requests while any rank can still run;
        // advance virtual time when everyone is blocked.
        loop {
            for (rank, reply) in engine.drain_replies() {
                // A send failure means the rank thread died; its requests
                // simply stop arriving and the join below reports it.
                let _ = reply_txs[rank].send(reply);
            }
            if engine.finished_count() == p {
                break;
            }
            if engine.runnable_count() == 0 {
                engine.advance();
                continue;
            }
            match req_rx.recv() {
                Ok((rank, req)) => engine.handle(rank, req),
                Err(_) => break, // all rank threads gone
            }
        }
        let results: Vec<T> = handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(v) => v,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("simulated rank {rank} panicked: {msg}");
                }
            })
            .collect();
        let report = SimReport {
            results,
            elapsed: engine.elapsed(),
            clocks: engine.clocks().to_vec(),
            trace: engine.take_trace().map(Trace::new),
        };
        // Production telemetry: virtual elapsed time and (when tracing)
        // the transfer-derived counter totals. One branch when disabled.
        if intercom_obs::metrics::enabled() {
            let p_label = p.to_string();
            let l = &[("p", p_label.as_str())][..];
            intercom_obs::metrics::observe("intercom_sim_elapsed_seconds", l, report.elapsed);
            if let Some(trace) = &report.trace {
                intercom_obs::metrics::ingest_run(
                    "sim",
                    &intercom_obs::RunRecord::from_transfers(trace.records(), p),
                );
            }
        }
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use intercom::Comm;

    fn unit() -> MachineParams {
        MachineParams {
            alpha: 1.0,
            beta: 1.0,
            gamma: 0.0,
            delta: 0.0,
            link_excess: 1.0,
        }
    }

    #[test]
    fn trivial_world_elapsed_zero() {
        let cfg = SimConfig::new(Mesh2D::new(1, 1), unit());
        let rep = simulate(&cfg, |c| c.rank());
        assert_eq!(rep.results, vec![0]);
        assert_eq!(rep.elapsed, 0.0);
    }

    #[test]
    fn ping_pong_timing() {
        let cfg = SimConfig::new(Mesh2D::new(1, 2), unit());
        let rep = simulate(&cfg, |c| {
            let mut buf = [0u8; 8];
            if c.rank() == 0 {
                c.send(1, 0, &[1u8; 8]).unwrap();
                c.recv(1, 1, &mut buf).unwrap();
            } else {
                c.recv(0, 0, &mut buf).unwrap();
                c.send(0, 1, &buf).unwrap();
            }
            buf[0]
        });
        assert_eq!(rep.results, vec![1, 1]);
        // Two sequential α + 8β steps: 2 × 9 = 18.
        assert!((rep.elapsed - 18.0).abs() < 1e-9, "{}", rep.elapsed);
    }

    #[test]
    fn determinism_across_runs() {
        let cfg = SimConfig::new(Mesh2D::new(2, 3), unit());
        let run = || {
            simulate(&cfg, |c| {
                let p = c.size();
                let me = c.rank();
                let mut buf = [0u8; 16];
                // Shift ring twice.
                for t in 0..2u64 {
                    c.sendrecv((me + 1) % p, &[me as u8; 16], (me + p - 1) % p, &mut buf, t)
                        .unwrap();
                }
                buf[0]
            })
            .elapsed
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_is_captured() {
        let cfg = SimConfig::new(Mesh2D::new(1, 2), unit()).with_trace();
        let rep = simulate(&cfg, |c| {
            let mut b = [0u8; 1];
            if c.rank() == 0 {
                c.send(1, 0, &[9]).unwrap();
            } else {
                c.recv(0, 0, &mut b).unwrap();
            }
        });
        let trace = rep.trace.unwrap();
        assert_eq!(trace.message_count(), 1);
        assert_eq!(trace.records()[0].bytes, 1);
    }

    /// A cluster whose per-level costs are engineered for exact
    /// arithmetic: intra messages cost `1 + n`, inter messages
    /// `10 + 4n`. The inter link-excess is set high enough (8× β) that
    /// only the per-transfer wire ceiling — not the link or port caps —
    /// can produce the inter rate.
    fn toy_cluster_machine() -> HierMachine {
        let intra = MachineParams {
            alpha: 1.0,
            beta: 1.0,
            gamma: 0.0,
            delta: 0.0,
            link_excess: 1.0,
        };
        let inter = MachineParams {
            alpha: 10.0,
            beta: 4.0,
            gamma: 0.0,
            delta: 0.0,
            link_excess: 8.0,
        };
        HierMachine::two_level(intra, inter)
    }

    #[test]
    fn cluster_transfers_price_their_level() {
        let hm = toy_cluster_machine();
        let cl = Cluster::linear(2, 2); // node 0 = {0, 1}, node 1 = {2, 3}
        let cfg = SimConfig::cluster(cl, &hm);
        // Intra-node message: α_intra + n·β_intra = 1 + 10 = 11.
        let rep = simulate(&cfg, |c| {
            let mut buf = [0u8; 10];
            match c.rank() {
                0 => c.send(1, 0, &[7u8; 10]).unwrap(),
                1 => c.recv(0, 0, &mut buf).unwrap(),
                _ => {}
            }
        });
        assert!((rep.elapsed - 11.0).abs() < 1e-9, "{}", rep.elapsed);
        // Inter-node message: α_inter + n·β_inter = 10 + 40 = 50. The
        // ports run at the intra rate (1 B/s) and the inter link at
        // 8/β = 2 B/s, so only the per-transfer wire ceiling (1/4 B/s)
        // yields 50 — this pins the level attribution, not just a cap.
        let rep = simulate(&cfg, |c| {
            let mut buf = [0u8; 10];
            match c.rank() {
                0 => c.send(2, 0, &[7u8; 10]).unwrap(),
                2 => c.recv(0, 0, &mut buf).unwrap(),
                _ => {}
            }
        });
        assert!((rep.elapsed - 50.0).abs() < 1e-9, "{}", rep.elapsed);
    }

    #[test]
    fn cluster_inter_link_contention_shares_inter_capacity() {
        // linear(3, 2): leaders of nodes 0 and 1 both send into node 2's
        // column; under XY routing both routes cross the directed east
        // link between node columns 1 and 2, which carries the *inter*
        // capacity 8/β_inter = 2 B/s. Two transfers capped at 1/β_inter
        // = 0.25 B/s each fit under it, so both flow at their wire rate
        // — inter contention priced at inter, not intra, capacity.
        let hm = toy_cluster_machine();
        let cl = Cluster::linear(3, 2);
        let cfg = SimConfig::cluster(cl, &hm);
        let rep = simulate(&cfg, |c| {
            let mut buf = [0u8; 10];
            match c.rank() {
                0 => c.send(4, 0, &[1u8; 10]).unwrap(), // node 0 → node 2 slot 0
                2 => c.send(5, 1, &[2u8; 10]).unwrap(), // node 1 → node 2 slot 1
                4 => c.recv(0, 0, &mut buf).unwrap(),
                5 => c.recv(2, 1, &mut buf).unwrap(),
                _ => {}
            }
        });
        // Both activate at t = 10 and flow at 0.25 B/s: 10 + 40 = 50.
        assert!((rep.elapsed - 50.0).abs() < 1e-9, "{}", rep.elapsed);
        // Squeeze the inter link instead: excess 1.0 → capacity
        // 1/β_inter, shared max-min at 0.125 B/s each → 10 + 80 = 90.
        let mut squeezed = toy_cluster_machine();
        let inter = MachineParams {
            link_excess: 1.0,
            ..*squeezed.inter()
        };
        squeezed = HierMachine::two_level(*squeezed.intra(), inter);
        let cfg = SimConfig::cluster(cl, &squeezed);
        let rep = simulate(&cfg, |c| {
            let mut buf = [0u8; 10];
            match c.rank() {
                0 => c.send(4, 0, &[1u8; 10]).unwrap(),
                2 => c.send(5, 1, &[2u8; 10]).unwrap(),
                4 => c.recv(0, 0, &mut buf).unwrap(),
                5 => c.recv(2, 1, &mut buf).unwrap(),
                _ => {}
            }
        });
        assert!((rep.elapsed - 90.0).abs() < 1e-9, "{}", rep.elapsed);
    }

    #[test]
    fn cluster_intra_traffic_is_immune_to_inter_slowness() {
        // An intra message inside node 0 runs at full node speed while a
        // slow inter transfer crosses the network concurrently: the two
        // levels do not share constraints.
        let hm = toy_cluster_machine();
        let cl = Cluster::linear(2, 2);
        let cfg = SimConfig::cluster(cl, &hm);
        let rep = simulate(&cfg, |c| {
            let mut buf = [0u8; 10];
            match c.rank() {
                0 => c.send(1, 0, &[7u8; 10]).unwrap(), // intra: done at 11
                1 => c.recv(0, 0, &mut buf).unwrap(),
                2 => c.send(3, 1, &[8u8; 10]).unwrap(), // intra in node 1
                3 => c.recv(2, 1, &mut buf).unwrap(),
                _ => unreachable!(),
            }
            c.rank()
        });
        assert!((rep.elapsed - 11.0).abs() < 1e-9, "{}", rep.elapsed);
        // Now run a full collective over the cluster to exercise mixed
        // levels end-to-end (results must stay bit-identical to the
        // threaded backend — direct execution, only time is virtual).
        let rep = simulate(&cfg, |c| {
            use intercom::{Communicator, ReduceOp};
            let cc = Communicator::world(c, *hm.inter());
            let mut v = vec![(c.rank() + 1) as u64; 16];
            cc.allreduce(&mut v, ReduceOp::Sum).unwrap();
            v[0]
        });
        assert!(rep.results.iter().all(|&x| x == 10));
        assert!(rep.elapsed > 0.0);
    }

    #[test]
    #[should_panic(expected = "simulated rank 1 panicked")]
    fn rank_panic_propagates() {
        let cfg = SimConfig::new(Mesh2D::new(1, 2), unit());
        simulate(&cfg, |c| {
            if c.rank() == 1 {
                panic!("sim boom");
            }
            // Rank 0 must not block forever; just finish.
        });
    }
}
