//! Simulated-hypercube validation: the §11 iPSC/860 port runs the same
//! library unchanged, Gray-ring bucket stages are conflict-free, and
//! e-cube MST timing matches the closed forms.

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::{CollectiveOp, CostContext, MachineParams};
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Hypercube;

fn machine() -> MachineParams {
    MachineParams {
        alpha: 10.0,
        beta: 1.0,
        gamma: 0.5,
        delta: 0.0,
        link_excess: 1.0,
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1.0)
}

#[test]
fn collectives_are_correct_on_cubes() {
    for d in [0u32, 1, 2, 3, 4] {
        let cube = Hypercube::new(d);
        let p = cube.nodes();
        let cfg = SimConfig::hypercube(cube, machine());
        let rep = simulate(&cfg, move |c| {
            let cc = Communicator::world_on_hypercube(c, machine(), cube).unwrap();
            let mut b = vec![0i64; 9];
            if cc.rank() == 0 {
                b = (0..9).collect();
            }
            cc.bcast(0, &mut b).unwrap();
            let mut s = vec![1i64; 5];
            cc.allreduce(&mut s, ReduceOp::Sum).unwrap();
            let mine = vec![cc.rank() as i64; 2];
            let mut all = vec![0i64; 2 * p];
            cc.allgather(&mine, &mut all).unwrap();
            (b, s[0], all)
        });
        for (b, s, all) in rep.results {
            assert_eq!(b, (0..9).collect::<Vec<i64>>(), "d={d}");
            assert_eq!(s, p as i64);
            let expect: Vec<i64> = (0..p as i64).flat_map(|r| [r, r]).collect();
            assert_eq!(all, expect);
        }
    }
}

#[test]
fn gray_ring_bucket_collect_matches_formula() {
    // Conflict-free single-hop ring: (p−1)α + ((p−1)/p)nβ exactly.
    for d in [2u32, 3, 4] {
        let cube = Hypercube::new(d);
        let p = cube.nodes();
        let b = 64;
        let n = p * b;
        let cfg = SimConfig::hypercube(cube, machine());
        let rep = simulate(&cfg, move |c| {
            let cc = Communicator::world_on_hypercube(c, machine(), cube).unwrap();
            let mine = vec![c.rank() as u8; b];
            let mut all = vec![0u8; n];
            cc.allgather_with(&mine, &mut all, &Algo::Long).unwrap();
        });
        let predicted =
            intercom_cost::collective::long_cost(CollectiveOp::Collect, p, CostContext::LINEAR)
                .eval(n, &machine());
        assert!(
            close(rep.elapsed, predicted),
            "d={d}: sim {} vs model {predicted}",
            rep.elapsed
        );
    }
}

#[test]
fn mst_broadcast_on_cube_matches_formula() {
    // The recursive halving over the Gray order maps to single subcube
    // splits; each level is one conflict-free message: ⌈log p⌉(α+nβ).
    for d in [1u32, 3, 5] {
        let cube = Hypercube::new(d);
        let p = cube.nodes();
        let n = 512;
        let cfg = SimConfig::hypercube(cube, machine());
        let rep = simulate(&cfg, move |c| {
            let cc = Communicator::world_on_hypercube(c, machine(), cube).unwrap();
            let mut buf = vec![0u8; n];
            cc.bcast_with(0, &mut buf, &Algo::Short).unwrap();
        });
        let predicted =
            intercom_cost::collective::short_cost(CollectiveOp::Broadcast, p, CostContext::LINEAR)
                .eval(n, &machine());
        assert!(
            close(rep.elapsed, predicted),
            "d={d}: sim {} vs model {predicted}",
            rep.elapsed
        );
    }
}

#[test]
fn cube_and_mesh_backends_agree_on_data() {
    let cube = Hypercube::new(3);
    let cfg = SimConfig::hypercube(cube, machine());
    let sim = simulate(&cfg, move |c| {
        let cc = Communicator::world_on_hypercube(c, machine(), cube).unwrap();
        let mut v: Vec<i64> = (0..32).map(|i| (c.rank() * 7 + i) as i64).collect();
        cc.allreduce(&mut v, ReduceOp::Sum).unwrap();
        v
    });
    let threaded = intercom_runtime::run_world(8, |c| {
        let cube = Hypercube::new(3);
        let cc = Communicator::world_on_hypercube(c, machine(), cube).unwrap();
        let mut v: Vec<i64> = (0..32).map(|i| (c.rank() * 7 + i) as i64).collect();
        cc.allreduce(&mut v, ReduceOp::Sum).unwrap();
        v
    });
    // Physical rank r's result must match across backends (note results
    // are indexed by physical rank in both).
    assert_eq!(sim.results, threaded);
}

#[test]
fn world_size_mismatch_rejected() {
    let cfg = SimConfig::hypercube(Hypercube::new(2), machine());
    let rep = simulate(&cfg, |c| {
        Communicator::world_on_hypercube(c, machine(), Hypercube::new(3)).is_err()
    });
    assert!(rep.results.iter().all(|&e| e));
}
