//! Analytic-vs-simulated validation: for conflict-free primitives the
//! simulator must land *exactly* on the paper's closed-form costs, and
//! for conflicted hybrids it must land between the conflict-free and
//! fully-shared predictions.

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::{CollectiveOp, CostContext, MachineParams, Strategy, StrategyKind};
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Mesh2D;

fn machine() -> MachineParams {
    // Round numbers make mismatches easy to read.
    MachineParams {
        alpha: 10.0,
        beta: 1.0,
        gamma: 0.5,
        delta: 0.0,
        link_excess: 1.0,
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1.0)
}

#[test]
fn mst_broadcast_matches_formula_on_row() {
    for p in [2usize, 3, 5, 8, 13] {
        for n in [0usize, 64, 1000] {
            let cfg = SimConfig::new(Mesh2D::new(1, p), machine());
            let rep = simulate(&cfg, |c| {
                let cc = Communicator::world(c, machine());
                let mut buf = vec![c.rank() as u8; n];
                cc.bcast_with(0, &mut buf, &Algo::Short).unwrap();
            });
            let predicted = intercom_cost::collective::short_cost(
                CollectiveOp::Broadcast,
                p,
                CostContext::LINEAR,
            )
            .eval(n, &machine());
            assert!(
                close(rep.elapsed, predicted),
                "MST bcast p={p} n={n}: sim {} vs model {predicted}",
                rep.elapsed
            );
        }
    }
}

#[test]
fn bucket_collect_matches_formula_on_row() {
    // (p−1)α + ((p−1)/p)nβ for p | n.
    for p in [2usize, 4, 6, 10] {
        let n = 120 * p; // divisible: all blocks equal
        let b = n / p;
        let cfg = SimConfig::new(Mesh2D::new(1, p), machine());
        let rep = simulate(&cfg, |c| {
            let cc = Communicator::world(c, machine());
            let mine = vec![c.rank() as u8; b];
            let mut all = vec![0u8; n];
            cc.allgather_with(&mine, &mut all, &Algo::Long).unwrap();
        });
        let predicted =
            intercom_cost::collective::long_cost(CollectiveOp::Collect, p, CostContext::LINEAR)
                .eval(n, &machine());
        assert!(
            close(rep.elapsed, predicted),
            "bucket collect p={p}: sim {} vs model {predicted}",
            rep.elapsed
        );
    }
}

#[test]
fn bucket_reduce_scatter_matches_formula_on_row() {
    // (p−1)α + ((p−1)/p)nβ + ((p−1)/p)nγ.
    for p in [2usize, 5, 8] {
        let n = 80 * p;
        let b = n / p;
        let cfg = SimConfig::new(Mesh2D::new(1, p), machine());
        let rep = simulate(&cfg, |c| {
            let cc = Communicator::world(c, machine());
            let contrib = vec![c.rank() as u8; n];
            let mut mine = vec![0u8; b];
            cc.reduce_scatter_with(&contrib, &mut mine, ReduceOp::Sum, &Algo::Long)
                .unwrap();
        });
        let predicted = intercom_cost::collective::long_cost(
            CollectiveOp::DistributedCombine,
            p,
            CostContext::LINEAR,
        )
        .eval(n, &machine());
        assert!(
            close(rep.elapsed, predicted),
            "bucket RS p={p}: sim {} vs model {predicted}",
            rep.elapsed
        );
    }
}

#[test]
fn long_broadcast_matches_formula_on_row() {
    // scatter + collect: (⌈log p⌉ + p − 1)α + 2((p−1)/p)nβ.
    for p in [2usize, 4, 8] {
        let n = 64 * p;
        let cfg = SimConfig::new(Mesh2D::new(1, p), machine());
        let rep = simulate(&cfg, |c| {
            let cc = Communicator::world(c, machine());
            let mut buf = vec![1u8; n];
            cc.bcast_with(0, &mut buf, &Algo::Long).unwrap();
        });
        let predicted =
            intercom_cost::collective::long_cost(CollectiveOp::Broadcast, p, CostContext::LINEAR)
                .eval(n, &machine());
        assert!(
            close(rep.elapsed, predicted),
            "long bcast p={p}: sim {} vs model {predicted}",
            rep.elapsed
        );
    }
}

#[test]
fn long_allreduce_matches_formula_on_row() {
    // 2(p−1)α + 2((p−1)/p)nβ + ((p−1)/p)nγ.
    for p in [2usize, 6] {
        let n = 60 * p;
        let cfg = SimConfig::new(Mesh2D::new(1, p), machine());
        let rep = simulate(&cfg, |c| {
            let cc = Communicator::world(c, machine());
            let mut buf = vec![1u8; n];
            cc.allreduce_with(&mut buf, ReduceOp::Sum, &Algo::Long)
                .unwrap();
        });
        let predicted = intercom_cost::collective::long_cost(
            CollectiveOp::CombineToAll,
            p,
            CostContext::LINEAR,
        )
        .eval(n, &machine());
        assert!(
            close(rep.elapsed, predicted),
            "long allreduce p={p}: sim {} vs model {predicted}",
            rep.elapsed
        );
    }
}

#[test]
fn delta_overhead_shows_up_in_short_primitives() {
    let with_delta = MachineParams {
        delta: 2.0,
        ..machine()
    };
    let p = 8;
    let cfg = SimConfig::new(Mesh2D::new(1, p), with_delta);
    let rep = simulate(&cfg, |c| {
        let cc = Communicator::world(c, with_delta);
        let mut buf = vec![0u8; 8];
        cc.bcast_with(0, &mut buf, &Algo::Short).unwrap();
    });
    let base =
        intercom_cost::collective::short_cost(CollectiveOp::Broadcast, p, CostContext::LINEAR)
            .eval(8, &with_delta);
    // Each rank walks ⌈log p⌉ = 3 levels; total ≥ base (which includes
    // 3δ via the delta coefficient).
    assert!(
        close(rep.elapsed, base),
        "delta accounting: sim {} vs model {base}",
        rep.elapsed
    );
}

#[test]
fn hybrid_on_linear_array_lands_between_bounds() {
    // SMC on 2×15 over a 1×30 row: the conflict-free MESH context is a
    // lower bound, the fully-shared LINEAR context is the paper's §6
    // prediction; the fluid simulation must sit in [mesh, linear] — and
    // for the β-dominant regime, near the LINEAR value.
    let p = 30;
    let n = 30 * 512;
    let s = Strategy::new(vec![2, 15], StrategyKind::Mst);
    let cfg = SimConfig::new(Mesh2D::new(1, p), machine());
    let rep = simulate(&cfg, |c| {
        let cc = Communicator::world(c, machine());
        let mut buf = vec![1u8; n];
        cc.bcast_with(0, &mut buf, &Algo::Hybrid(s.clone()))
            .unwrap();
    });
    let lo = intercom_cost::collective::hybrid_cost(CollectiveOp::Broadcast, &s, CostContext::MESH)
        .eval(n, &machine());
    let hi =
        intercom_cost::collective::hybrid_cost(CollectiveOp::Broadcast, &s, CostContext::LINEAR)
            .eval(n, &machine());
    assert!(
        rep.elapsed >= lo - 1e-6 && rep.elapsed <= hi + 1e-6,
        "hybrid bcast: sim {} outside [{lo}, {hi}]",
        rep.elapsed
    );
}

#[test]
fn mesh_rows_and_columns_are_conflict_free() {
    // Bucket collect staged rows-then-columns on an r×c mesh: latency
    // (r + c − 2)α (§7.1). Use the auto-selected mesh strategy at a long
    // length and verify elapsed matches the MESH-context formula of the
    // chosen strategy exactly.
    let (r, c) = (4, 6);
    let p = r * c;
    let b = 256;
    let n = p * b;
    let m = machine();
    let mesh = Mesh2D::new(r, c);
    let strategy = intercom_cost::select::best_mesh_strategy(CollectiveOp::Collect, r, c, n, &m);
    let cfg = SimConfig::new(mesh, m);
    let s2 = strategy.clone();
    let rep = simulate(&cfg, |comm| {
        let cc = Communicator::world_on_mesh(comm, m, mesh).unwrap();
        let mine = vec![comm.rank() as u8; b];
        let mut all = vec![0u8; n];
        cc.allgather_with(&mine, &mut all, &Algo::Hybrid(s2.clone()))
            .unwrap();
    });
    let predicted =
        intercom_cost::collective::hybrid_cost(CollectiveOp::Collect, &strategy, CostContext::MESH)
            .eval(n, &m);
    assert!(
        close(rep.elapsed, predicted),
        "mesh collect {strategy}: sim {} vs model {predicted}",
        rep.elapsed
    );
}

#[test]
fn simulated_results_match_threaded_backend() {
    // Functional equivalence across backends: identical bytes out.
    let p = 12;
    let n = 100;
    let run_threaded = intercom_runtime::run_world(p, |c| {
        let cc = Communicator::world(c, machine());
        let mut buf: Vec<i64> = (0..n).map(|i| (c.rank() * 31 + i) as i64).collect();
        cc.allreduce(&mut buf, ReduceOp::Sum).unwrap();
        buf
    });
    let cfg = SimConfig::new(Mesh2D::new(3, 4), machine());
    let run_sim = simulate(&cfg, |c| {
        let cc = Communicator::world(c, machine());
        let mut buf: Vec<i64> = (0..n).map(|i| (c.rank() * 31 + i) as i64).collect();
        cc.allreduce(&mut buf, ReduceOp::Sum).unwrap();
        buf
    });
    assert_eq!(run_threaded, run_sim.results);
}

#[test]
fn zeno_livelock_regression() {
    // Regression: an unsegmented MST global combine at this exact size
    // once produced a transfer whose residual flow time rounded to zero
    // at the current clock, stalling the event loop in infinitesimal
    // steps. The fix completes any transfer whose finish time rounds to
    // `now`. (Original trigger: 4×16 mesh, 900 000-byte vector, Paragon
    // parameters — must terminate in well under a second of host time.)
    let m = MachineParams::PARAGON;
    let mesh = Mesh2D::new(4, 16);
    let cfg = intercom_meshsim::SimConfig::new(mesh, m);
    let rep = intercom_meshsim::simulate(&cfg, |c| {
        let mut buf = vec![1.0f64; 900_000 / 8];
        intercom_nx::nx_gdsum(c, &mut buf).unwrap();
        buf[0]
    });
    assert!(rep.results.iter().all(|&x| x == 64.0));
    assert!(rep.elapsed > 0.0);
}
