//! Torus (wraparound mesh) simulation: correctness and the wire-load
//! advantage over the plain mesh (paper ref [6]).

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, LinkLoad, SimConfig};
use intercom_topology::{Mesh2D, Torus2D};

fn machine() -> MachineParams {
    MachineParams {
        alpha: 10.0,
        beta: 1.0,
        gamma: 0.0,
        delta: 0.0,
        link_excess: 1.0,
    }
}

#[test]
fn collectives_correct_on_torus() {
    let torus = Torus2D::new(3, 4);
    let cfg = SimConfig::torus(torus, machine());
    let rep = simulate(&cfg, |c| {
        let cc = Communicator::world(c, machine());
        let mut v = vec![(c.rank() + 1) as i64; 10];
        cc.allreduce(&mut v, ReduceOp::Sum).unwrap();
        v[0]
    });
    let expect: i64 = (1..=12).sum();
    assert!(rep.results.iter().all(|&x| x == expect));
}

#[test]
fn torus_ring_matches_closed_form() {
    // On a torus row every ring step including the wrap is one hop;
    // timing equals the conflict-free formula exactly (as on the mesh).
    let p = 8;
    let b = 64;
    let m = machine();
    let torus = Torus2D::new(1, p);
    let cfg = SimConfig::torus(torus, m);
    let rep = simulate(&cfg, move |c| {
        let cc = Communicator::world(c, m);
        let mine = vec![c.rank() as u8; b];
        let mut all = vec![0u8; p * b];
        cc.allgather_with(&mine, &mut all, &Algo::Long).unwrap();
    });
    let predicted = intercom_cost::collective::long_cost(
        intercom_cost::CollectiveOp::Collect,
        p,
        intercom_cost::CostContext::LINEAR,
    )
    .eval(p * b, &m);
    assert!(
        (rep.elapsed - predicted).abs() < 1e-6 * predicted,
        "sim {} vs model {predicted}",
        rep.elapsed
    );
}

#[test]
fn torus_carries_fewer_byte_hops_than_mesh_for_rings() {
    // Same ring collect on a 1×8 mesh vs torus: the mesh wrap message
    // backhauls 7 links per step; the torus wrap is one hop.
    let p = 8;
    let b = 128;
    let m = machine();
    let run = |cfg: SimConfig| {
        let cfg = cfg.with_trace();
        let rep = simulate(&cfg, move |c| {
            let cc = Communicator::world(c, m);
            let mine = vec![c.rank() as u8; b];
            let mut all = vec![0u8; p * b];
            cc.allgather_with(&mine, &mut all, &Algo::Long).unwrap();
        });
        LinkLoad::from_trace(&rep.trace.unwrap(), &cfg.net).byte_hops
    };
    let mesh_hops = run(SimConfig::new(Mesh2D::new(1, p), m));
    let torus_hops = run(SimConfig::torus(Torus2D::new(1, p), m));
    assert!(
        torus_hops < mesh_hops,
        "torus {torus_hops} byte·hops should beat mesh {mesh_hops}"
    );
    // The torus ring is exactly 1 hop per step.
    assert_eq!(torus_hops, (p - 1) * p * b);
}

#[test]
fn mesh_and_torus_agree_on_data() {
    let m = machine();
    let a = simulate(&SimConfig::new(Mesh2D::new(2, 4), m), |c| {
        let cc = Communicator::world(c, m);
        let mut v: Vec<i64> = (0..20).map(|i| (c.rank() * 13 + i) as i64).collect();
        cc.allreduce(&mut v, ReduceOp::Max).unwrap();
        v
    });
    let b = simulate(&SimConfig::torus(Torus2D::new(2, 4), m), |c| {
        let cc = Communicator::world(c, m);
        let mut v: Vec<i64> = (0..20).map(|i| (c.rank() * 13 + i) as i64).collect();
        cc.allreduce(&mut v, ReduceOp::Max).unwrap();
        v
    });
    assert_eq!(a.results, b.results);
}
