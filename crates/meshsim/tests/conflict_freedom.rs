//! §4's defining property, verified from actual traces: the building
//! blocks "incur no network conflicts" — no two transfers that overlap
//! in time share a directed link.

use intercom::{Algo, Comm, Communicator, ReduceOp};
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, NetSpec, SimConfig, Trace};
use intercom_topology::{Hypercube, Mesh2D};

fn machine() -> MachineParams {
    MachineParams {
        alpha: 5.0,
        beta: 1.0,
        gamma: 0.0,
        delta: 0.0,
        link_excess: 1.0,
    }
}

/// Asserts that no pair of time-overlapping transfers shares a directed
/// link (start/end carry the transfer's full wire occupation in the
/// wormhole model).
fn assert_conflict_free(trace: &Trace, net: &NetSpec) {
    let recs = trace.records();
    let routes: Vec<Vec<u32>> = recs
        .iter()
        .map(|r| {
            let mut slots = Vec::new();
            net.route_slots(r.src, r.dst, 0, &mut slots);
            slots
        })
        .collect();
    for i in 0..recs.len() {
        for j in i + 1..recs.len() {
            let (a, b) = (&recs[i], &recs[j]);
            // Strict interior overlap; shared endpoints (one starts as
            // the other delivers) are sequential, not concurrent.
            let overlap = a.start < b.end - 1e-12 && b.start < a.end - 1e-12;
            if !overlap {
                continue;
            }
            for s in &routes[i] {
                assert!(
                    !routes[j].contains(s),
                    "transfers {}→{} and {}→{} overlap in time and share link slot {s}",
                    a.src,
                    a.dst,
                    b.src,
                    b.dst
                );
            }
        }
    }
}

fn traced<F>(cfg: SimConfig, f: F) -> (Trace, NetSpec)
where
    F: Fn(&intercom_meshsim::SimComm) + Send + Sync,
{
    let cfg = cfg.with_trace();
    let rep = simulate(&cfg, f);
    (rep.trace.unwrap(), cfg.net)
}

#[test]
fn ring_collect_on_row_is_conflict_free() {
    let mesh = Mesh2D::new(1, 9);
    let m = machine();
    let (trace, net) = traced(SimConfig::new(mesh, m), move |c| {
        let cc = Communicator::world(c, m);
        let mine = vec![c.rank() as u8; 18];
        let mut all = vec![0u8; 18 * 9];
        cc.allgather_with(&mine, &mut all, &Algo::Long).unwrap();
    });
    assert_conflict_free(&trace, &net);
}

#[test]
fn mst_broadcast_on_row_is_conflict_free() {
    let mesh = Mesh2D::new(1, 13);
    let m = machine();
    let (trace, net) = traced(SimConfig::new(mesh, m), move |c| {
        let cc = Communicator::world(c, m);
        let mut buf = vec![0u8; 64];
        cc.bcast_with(0, &mut buf, &Algo::Short).unwrap();
    });
    assert_conflict_free(&trace, &net);
}

#[test]
fn ring_reduce_scatter_on_gray_cube_is_conflict_free() {
    let cube = Hypercube::new(4);
    let m = machine();
    let (trace, net) = traced(SimConfig::hypercube(cube, m), move |c| {
        let cc = Communicator::world_on_hypercube(c, m, cube).unwrap();
        let contrib = vec![1i64; 64];
        let mut mine = vec![0i64; 4];
        cc.reduce_scatter_with(&contrib, &mut mine, ReduceOp::Sum, &Algo::Long)
            .unwrap();
    });
    assert_conflict_free(&trace, &net);
}

#[test]
fn mesh_staged_collect_rows_then_columns_is_conflict_free() {
    // The §7.1 whole-mesh staging: [cols, rows] strategy — every stage
    // within dedicated physical rows/columns.
    let mesh = Mesh2D::new(3, 4);
    let m = machine();
    let strategy = intercom_cost::Strategy::on_mesh(
        vec![4, 3],
        intercom_cost::StrategyKind::ScatterCollect,
        1,
    );
    let (trace, net) = traced(SimConfig::new(mesh, m), move |c| {
        let cc = Communicator::world_on_mesh(c, m, mesh).unwrap();
        let mine = vec![c.rank() as u8; 12];
        let mut all = vec![0u8; 12 * 12];
        cc.allgather_with(&mine, &mut all, &Algo::Hybrid(strategy.clone()))
            .unwrap();
    });
    assert_conflict_free(&trace, &net);
}

#[test]
fn interleaved_linear_hybrid_does_conflict() {
    // Control: the §6 linear-array hybrid with interleaved groups *must*
    // show link sharing (that's what the bold conflict factors price).
    // Verify our checker would catch it — i.e., this configuration has
    // at least one overlapping pair sharing a link.
    let mesh = Mesh2D::new(1, 12);
    let m = machine();
    let strategy =
        intercom_cost::Strategy::new(vec![2, 6], intercom_cost::StrategyKind::ScatterCollect);
    let cfg = SimConfig::new(mesh, m).with_trace();
    let rep = simulate(&cfg, move |c| {
        let cc = Communicator::world(c, m);
        let mut buf = vec![0u8; 1200];
        cc.bcast_with(0, &mut buf, &Algo::Hybrid(strategy.clone()))
            .unwrap();
    });
    let trace = rep.trace.unwrap();
    let recs = trace.records();
    let mut found_conflict = false;
    'outer: for i in 0..recs.len() {
        for j in i + 1..recs.len() {
            let (a, b) = (&recs[i], &recs[j]);
            if a.start < b.end - 1e-12 && b.start < a.end - 1e-12 {
                let mut sa = Vec::new();
                cfg.net.route_slots(a.src, a.dst, 0, &mut sa);
                let mut sb = Vec::new();
                cfg.net.route_slots(b.src, b.dst, 0, &mut sb);
                if sa.iter().any(|s| sb.contains(s)) {
                    found_conflict = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(
        found_conflict,
        "expected interleaved stage-2 collects to share links"
    );
}
