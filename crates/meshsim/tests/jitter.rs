//! The deterministic timing-jitter model (§8 "timing irregularities").

use intercom::Comm;
use intercom_cost::MachineParams;
use intercom_meshsim::{simulate, SimConfig};
use intercom_topology::Mesh2D;

fn unit() -> MachineParams {
    MachineParams {
        alpha: 1.0,
        beta: 1.0,
        gamma: 0.0,
        delta: 0.0,
        link_excess: 1.0,
    }
}

fn ping(cfg: &SimConfig) -> f64 {
    simulate(cfg, |c| {
        let mut buf = [0u8; 100];
        if c.rank() == 0 {
            c.send(1, 0, &[7u8; 100]).unwrap();
        } else {
            c.recv(0, 0, &mut buf).unwrap();
        }
    })
    .elapsed
}

#[test]
fn zero_jitter_is_exact() {
    let cfg = SimConfig::new(Mesh2D::new(1, 2), unit());
    assert_eq!(ping(&cfg), 101.0);
}

#[test]
fn jitter_bounds_respected() {
    // With startup jitter j, a single transfer costs α·f + nβ with
    // f ∈ [1, 1+j]: here between 101 and 101.5.
    for seed in 0..20 {
        let cfg = SimConfig::new(Mesh2D::new(1, 2), unit()).with_jitter(0.5, seed);
        let t = ping(&cfg);
        assert!((101.0..=101.5).contains(&t), "seed {seed}: {t}");
    }
}

#[test]
fn jitter_deterministic_per_seed() {
    let cfg = SimConfig::new(Mesh2D::new(1, 2), unit()).with_jitter(1.0, 42);
    assert_eq!(ping(&cfg), ping(&cfg));
}

#[test]
fn different_seeds_differ_somewhere() {
    let times: Vec<f64> = (0..8)
        .map(|s| ping(&SimConfig::new(Mesh2D::new(1, 2), unit()).with_jitter(1.0, s)))
        .collect();
    let first = times[0];
    assert!(times.iter().any(|&t| (t - first).abs() > 1e-9), "{times:?}");
}

#[test]
fn jitter_slows_chained_transfers_on_average() {
    // A 16-step relay chain accumulates startup jitter; with jitter 1.0
    // and α = 1, the expected surcharge is ~16·0.5 over the ideal.
    let ideal = {
        let cfg = SimConfig::new(Mesh2D::new(1, 17), unit());
        simulate(&cfg, |c| {
            let me = c.rank();
            let mut buf = [0u8; 10];
            if me == 0 {
                c.send(1, 0, &[1u8; 10]).unwrap();
            } else {
                c.recv(me - 1, 0, &mut buf).unwrap();
                if me < 16 {
                    c.send(me + 1, 0, &buf).unwrap();
                }
            }
        })
        .elapsed
    };
    let mut total = 0.0;
    let seeds = 6;
    for s in 0..seeds {
        let cfg = SimConfig::new(Mesh2D::new(1, 17), unit()).with_jitter(1.0, s);
        total += simulate(&cfg, |c| {
            let me = c.rank();
            let mut buf = [0u8; 10];
            if me == 0 {
                c.send(1, 0, &[1u8; 10]).unwrap();
            } else {
                c.recv(me - 1, 0, &mut buf).unwrap();
                if me < 16 {
                    c.send(me + 1, 0, &buf).unwrap();
                }
            }
        })
        .elapsed;
    }
    let avg = total / seeds as f64;
    // 16 chained messages, each startup inflated by U[0,1]·α (α = 1):
    // surcharge ∈ (0, 16), expectation ≈ 8.
    assert!(avg > ideal + 2.0, "avg jittered {avg} vs ideal {ideal}");
    assert!(avg < ideal + 16.0 + 1e-9);
}
