//! Machine parameters (paper §2 and §11).
//!
//! "To port the library between platforms or tune it for new operating
//! system releases, it suffices to enter a few parameters that describe
//! the latency, bandwidth and computation characteristics of the system."
//! This struct is that parameter set.

/// The α/β/γ machine model of §2, plus two refinements the paper uses:
/// `δ`, the software overhead per recursive call in the library's
/// short-vector primitives (§7.2 explains iCC's slight short-vector loss
/// to NX by exactly this), and `link_excess`, the §7.1 observation that
/// each mesh link has more bandwidth than a node can inject, so a link
/// accommodates several messages before contention costs anything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Message startup latency α, in seconds.
    pub alpha: f64,
    /// Per-byte transfer time β, in seconds/byte (inverse node bandwidth).
    pub beta: f64,
    /// Per-byte combine (arithmetic) time γ, in seconds/byte.
    pub gamma: f64,
    /// Per-recursion-level software overhead δ of the library's
    /// short-vector primitives, in seconds. Zero for vendor baselines.
    pub delta: f64,
    /// How many node-injection-rate messages one directed link carries
    /// before bandwidth sharing begins (≥ 1). `1.0` is the pure model of
    /// §2 (used for Table 2 / Fig. 2); the Paragon preset uses a larger
    /// value per §7.1.
    pub link_excess: f64,
}

impl MachineParams {
    /// Intel Paragon under OSF R1.1, calibrated so the simulated iCC times
    /// land near the paper's Table 3 (α ≈ 133 µs startup, ≈ 27 MB/s
    /// effective node bandwidth, memory-bound i860 combine rate, ≈ 11 µs
    /// recursion overhead).
    pub const PARAGON: MachineParams = MachineParams {
        alpha: 133e-6,
        beta: 37.5e-9,
        gamma: 80e-9,
        delta: 11e-6,
        link_excess: 2.0,
    };

    /// The pure §2 model with Paragon-like α/β and no refinements — the
    /// parameter set behind the *predicted* curves of Fig. 2 and the
    /// Table 2 expressions.
    pub const PARAGON_MODEL: MachineParams = MachineParams {
        alpha: 133e-6,
        beta: 37.5e-9,
        gamma: 80e-9,
        delta: 0.0,
        link_excess: 1.0,
    };

    /// Intel Touchstone Delta (the library's original target): higher
    /// latency, lower bandwidth than the Paragon.
    pub const DELTA: MachineParams = MachineParams {
        alpha: 150e-6,
        beta: 125e-9,
        gamma: 100e-9,
        delta: 11e-6,
        link_excess: 1.0,
    };

    /// Intel iPSC/860 (the §11 hypercube port): slower network than the
    /// Paragon, similar i860 compute node.
    pub const IPSC860: MachineParams = MachineParams {
        alpha: 90e-6,
        beta: 350e-9,
        gamma: 80e-9,
        delta: 11e-6,
        link_excess: 1.0,
    };

    /// A unit-parameter machine (α = β = γ = 1, δ = 0): handy in tests,
    /// where cost coefficients can be read off directly.
    pub const UNIT: MachineParams = MachineParams {
        alpha: 1.0,
        beta: 1.0,
        gamma: 1.0,
        delta: 0.0,
        link_excess: 1.0,
    };

    /// Returns a copy with a different `link_excess` (ablation helper).
    pub fn with_link_excess(mut self, k: f64) -> Self {
        assert!(k >= 1.0, "link_excess must be >= 1");
        self.link_excess = k;
        self
    }

    /// Returns a copy with δ forced to zero (vendor-baseline style calls).
    pub fn without_call_overhead(mut self) -> Self {
        self.delta = 0.0;
        self
    }

    /// Time to send one `n`-byte message point-to-point with no conflicts:
    /// `α + nβ` (§2).
    pub fn ptp(&self, n: usize) -> f64 {
        self.alpha + n as f64 * self.beta
    }

    /// Returns a copy with the wire terms replaced by measured
    /// estimates. γ, δ and `link_excess` are carried over unchanged:
    /// the obs residual fit only identifies α and β (the compute and
    /// call-overhead terms are subtracted before the least-squares
    /// solve), so a refit must not disturb what it cannot observe.
    /// Non-finite or non-positive estimates leave that term alone.
    pub fn refit(mut self, alpha_hat: f64, beta_hat: f64) -> Self {
        if alpha_hat.is_finite() && alpha_hat > 0.0 {
            self.alpha = alpha_hat;
        }
        if beta_hat.is_finite() && beta_hat > 0.0 {
            self.beta = beta_hat;
        }
        self
    }
}

/// A versioned [`MachineParams`] holder: every refit bumps the version,
/// which cache invalidation and the metrics gauge
/// (`intercom_machine_params_version`) key on. Version 1 is the
/// as-configured state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedParams {
    /// The parameters currently pricing selections.
    pub current: MachineParams,
    /// Monotonic version, starting at 1 and bumped by [`refit`](TunedParams::refit).
    pub version: u64,
}

impl TunedParams {
    /// Wraps freshly configured parameters at version 1.
    pub fn new(params: MachineParams) -> Self {
        TunedParams {
            current: params,
            version: 1,
        }
    }

    /// Installs measured α̂/β̂ via [`MachineParams::refit`] and bumps
    /// the version. Returns the new version.
    pub fn refit(&mut self, alpha_hat: f64, beta_hat: f64) -> u64 {
        self.current = self.current.refit(alpha_hat, beta_hat);
        self.version += 1;
        self.version
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams::PARAGON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptp_is_affine() {
        let m = MachineParams::UNIT;
        assert_eq!(m.ptp(0), 1.0);
        assert_eq!(m.ptp(10), 11.0);
    }

    #[test]
    fn paragon_bandwidth_order_of_magnitude() {
        // ~27 MB/s effective under OSF R1.1.
        let mbps = 1.0 / MachineParams::PARAGON.beta / 1e6;
        assert!((20.0..40.0).contains(&mbps), "got {mbps}");
    }

    #[test]
    #[should_panic(expected = "link_excess")]
    fn link_excess_below_one_rejected() {
        MachineParams::PARAGON.with_link_excess(0.5);
    }

    #[test]
    fn without_call_overhead_zeroes_delta() {
        assert_eq!(MachineParams::PARAGON.without_call_overhead().delta, 0.0);
    }
}
