//! The §5 composed-algorithm catalog: every target collective's short-
//! and long-vector closed forms as data, renderable as the paper's
//! inline cost table and usable programmatically.

use crate::collective::{long_cost, short_cost, CollectiveOp, CostContext};
use crate::expr::CostExpr;

/// One catalog entry: a collective with its §5.1 short-vector and §5.2
/// long-vector composed costs for a given `p`.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The collective operation.
    pub op: CollectiveOp,
    /// How §5.1 composes it from short-vector primitives.
    pub short_recipe: &'static str,
    /// Its short-vector cost.
    pub short: CostExpr,
    /// How §5.2 composes it from long-vector primitives.
    pub long_recipe: &'static str,
    /// Its long-vector cost.
    pub long: CostExpr,
}

/// Builds the complete §5 catalog for `p` nodes on a linear array.
pub fn catalog(p: usize) -> Vec<CatalogEntry> {
    let ctx = CostContext::LINEAR;
    let entry = |op, short_recipe, long_recipe| CatalogEntry {
        op,
        short_recipe,
        short: short_cost(op, p, ctx),
        long_recipe,
        long: long_cost(op, p, ctx),
    };
    vec![
        entry(
            CollectiveOp::Broadcast,
            "MST broadcast",
            "scatter + bucket collect",
        ),
        entry(
            CollectiveOp::Scatter,
            "MST scatter",
            "MST scatter (serves both regimes)",
        ),
        entry(
            CollectiveOp::Gather,
            "MST gather",
            "MST gather (serves both regimes)",
        ),
        entry(
            CollectiveOp::Collect,
            "gather + MST broadcast",
            "bucket collect",
        ),
        entry(
            CollectiveOp::CombineToOne,
            "MST combine-to-one",
            "bucket distributed combine + gather",
        ),
        entry(
            CollectiveOp::CombineToAll,
            "combine-to-one + broadcast",
            "distributed combine + collect",
        ),
        entry(
            CollectiveOp::DistributedCombine,
            "combine-to-one + scatter",
            "bucket distributed combine",
        ),
    ]
}

/// Renders the catalog as an aligned text table (the `section5` binary's
/// output), with coefficients shown over denominator `p`.
pub fn render_catalog(p: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} | {:<34} | {:<40}\n",
        "operation", "short-vector algorithm", "long-vector algorithm"
    ));
    out.push_str(&format!("{}\n", "-".repeat(100)));
    for e in catalog(p) {
        out.push_str(&format!(
            "{:<20} | {:<34} | {:<40}\n",
            e.op.name(),
            format!("{}: {}", e.short_recipe, e.short.display_over(p)),
            format!("{}: {}", e.long_recipe, e.long.display_over(p)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_seven_collectives() {
        let c = catalog(30);
        assert_eq!(c.len(), 7);
        for op in CollectiveOp::ALL {
            assert!(c.iter().any(|e| e.op == op), "{op:?} missing");
        }
    }

    #[test]
    fn long_never_has_higher_beta_than_short() {
        // The long algorithms exist to reduce the β term; the catalog
        // must reflect that for every collective at every p.
        for p in [2usize, 5, 16, 30, 100] {
            for e in catalog(p) {
                assert!(
                    e.long.beta_c <= e.short.beta_c + 1e-12,
                    "{} p={p}: long β {} > short β {}",
                    e.op.name(),
                    e.long.beta_c,
                    e.short.beta_c
                );
            }
        }
    }

    #[test]
    fn short_has_lower_alpha_once_p_outgrows_two_log_p() {
        // 2⌈log p⌉ < p−1 holds from p ≥ 12; below that the bucket
        // algorithms can even win on startups (tiny rings), which is
        // fine — the selector just picks them.
        for p in [16usize, 30, 100, 512] {
            for e in catalog(p) {
                assert!(
                    e.short.alpha_c <= e.long.alpha_c + 1e-12,
                    "{} p={p}: short α {} vs long α {}",
                    e.op.name(),
                    e.short.alpha_c,
                    e.long.alpha_c
                );
            }
        }
    }

    #[test]
    fn render_mentions_every_operation() {
        let s = render_catalog(30);
        for op in CollectiveOp::ALL {
            assert!(s.contains(op.name()), "{s}");
        }
        assert!(s.contains("nβ"));
    }
}
