//! Hybrid strategies (paper §6).
//!
//! A strategy is a logical mesh `d1 × … × dk` plus a choice of what to run
//! in the innermost (last) dimension: a minimum-spanning-tree algorithm
//! (`M` — the short-vector algorithm) or a scatter…collect pair (`SC` —
//! staying in the long-vector regime all the way down). The paper names
//! strategies by their stage letters: `(3×10, SMC)`, `(2×3×5, SSMCC)`,
//! `(5×6, SSCC)`, and so on.
//!
//! **Dimension order convention.** `dims[0]` varies *fastest*: its groups
//! are runs of adjacent logical ranks. This matches the paper's Fig. 1,
//! whose first scatter stage runs within subgroups of two *adjacent*
//! nodes, and its rationale: "while the vectors are long, the hybrid
//! should choose the localized groups in an effort to reduce network
//! conflicts."

use std::fmt;

/// What runs in the innermost dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// `…SMC…`: the short-vector (MST) algorithm in the last dimension.
    Mst,
    /// `…SSCC…`: stage-1 and stage-2 long-vector primitives back-to-back
    /// in the last dimension (pure long-vector execution).
    ScatterCollect,
}

/// How concurrent stage groups interact on the physical network — the
/// source of the bold-face conflict factors in the paper's §6 formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConflictModel {
    /// The group occupies a linear array (or is unstructured, §9): the
    /// stage in dimension `i` interleaves `sᵢ = d1·…·dᵢ₋₁` groups over
    /// shared links, so its β term is scaled by `sᵢ` (divided by the
    /// machine's `link_excess`, floored at 1).
    LinearArray,
    /// Stages map onto physical mesh rows/columns (§7.1): different rows
    /// (and different columns) have dedicated links, so interleaving only
    /// costs *within* a physical row or column. The strategy's
    /// [`Strategy::mesh_split`] records which logical dims live in the
    /// row direction; conflict strides reset at the row/column boundary.
    MeshRowsCols,
}

/// A hybrid strategy: logical dims (fastest-varying first) + innermost
/// algorithm choice.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Strategy {
    /// Logical mesh extents `d1, …, dk`, `dims[0]` fastest.
    pub dims: Vec<usize>,
    /// What runs in the last dimension.
    pub kind: StrategyKind,
    /// For mesh-mapped strategies: the first `mesh_split` dims factor the
    /// physical row (column count), the rest factor the physical column
    /// (row count). `None` for linear-array strategies.
    pub mesh_split: Option<usize>,
}

impl Strategy {
    /// Pure short-vector algorithm on all `p` nodes: `(1×p, M)`.
    pub fn pure_mst(p: usize) -> Self {
        Strategy {
            dims: vec![p],
            kind: StrategyKind::Mst,
            mesh_split: None,
        }
    }

    /// Pure long-vector algorithm on all `p` nodes: `(1×p, SC)`.
    pub fn pure_long(p: usize) -> Self {
        Strategy {
            dims: vec![p],
            kind: StrategyKind::ScatterCollect,
            mesh_split: None,
        }
    }

    /// Builds a linear-array strategy, validating the dims.
    pub fn new(dims: Vec<usize>, kind: StrategyKind) -> Self {
        assert!(!dims.is_empty(), "strategy needs at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "dims must be positive");
        Strategy {
            dims,
            kind,
            mesh_split: None,
        }
    }

    /// Builds a mesh-mapped strategy whose first `row_dims` dims factor
    /// the physical row direction (§7.1 staging).
    pub fn on_mesh(dims: Vec<usize>, kind: StrategyKind, row_dims: usize) -> Self {
        assert!(row_dims <= dims.len(), "row split beyond dims");
        let mut s = Strategy::new(dims, kind);
        s.mesh_split = Some(row_dims);
        s
    }

    /// Total number of nodes `p = ∏ dᵢ`.
    pub fn nodes(&self) -> usize {
        self.dims.iter().product()
    }

    /// Number of logical dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Stride of dimension `i` (0-based): `sᵢ = d1·…·dᵢ₋₁`, the number of
    /// interleaved groups that stage contends with on a linear array.
    pub fn stride(&self, i: usize) -> usize {
        self.dims[..i].iter().product()
    }

    /// The effective β-conflict multiplier for a stage in dimension `i`
    /// under `model`, given the machine's link-excess factor.
    pub fn conflict_factor(&self, i: usize, model: ConflictModel, link_excess: f64) -> f64 {
        let interleave = match model {
            ConflictModel::LinearArray => self.stride(i),
            ConflictModel::MeshRowsCols => match self.mesh_split {
                // Interleaving resets at the physical row/column
                // boundary: only dims in the *same* physical direction
                // contend for links.
                Some(k) if i < k => self.dims[..i].iter().product(),
                Some(k) => self.dims[k..i].iter().product(),
                // 1:1 dim-to-physical-direction mapping: conflict-free.
                None => 1,
            },
        };
        (interleave as f64 / link_excess).max(1.0)
    }

    /// The conflict factors of every dimension in order — the per-level
    /// bounds a mesh verifier or simulator can check observed link
    /// sharing against.
    pub fn conflict_profile(&self, model: ConflictModel, link_excess: f64) -> Vec<f64> {
        (0..self.ndims())
            .map(|i| self.conflict_factor(i, model, link_excess))
            .collect()
    }

    /// The paper's stage-letter name: scatters up the dims, `M` or `SC`
    /// innermost, collects back down — e.g. `"SSMCC"` for a 3-D MST
    /// strategy, `"SSCC"` for a 2-D scatter/collect strategy, `"M"` for
    /// pure MST.
    pub fn letters(&self) -> String {
        let k = self.dims.len();
        let outer = k - 1;
        let mut s = String::new();
        for _ in 0..outer {
            s.push('S');
        }
        match self.kind {
            StrategyKind::Mst => s.push('M'),
            StrategyKind::ScatterCollect => s.push_str("SC"),
        }
        for _ in 0..outer {
            s.push('C');
        }
        s
    }

    /// The paper's logical-mesh name, e.g. `"2x3x5"`.
    pub fn mesh_name(&self) -> String {
        self.dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x")
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.mesh_name(), self.letters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_match_paper_names() {
        assert_eq!(Strategy::new(vec![30], StrategyKind::Mst).letters(), "M");
        assert_eq!(
            Strategy::new(vec![2, 15], StrategyKind::Mst).letters(),
            "SMC"
        );
        assert_eq!(
            Strategy::new(vec![2, 3, 5], StrategyKind::Mst).letters(),
            "SSMCC"
        );
        assert_eq!(
            Strategy::new(vec![5, 6], StrategyKind::ScatterCollect).letters(),
            "SSCC"
        );
        assert_eq!(
            Strategy::new(vec![30], StrategyKind::ScatterCollect).letters(),
            "SC"
        );
    }

    #[test]
    fn strides() {
        let s = Strategy::new(vec![2, 3, 5], StrategyKind::Mst);
        assert_eq!(s.stride(0), 1);
        assert_eq!(s.stride(1), 2);
        assert_eq!(s.stride(2), 6);
        assert_eq!(s.nodes(), 30);
    }

    #[test]
    fn conflict_factors() {
        let s = Strategy::new(vec![2, 3, 5], StrategyKind::Mst);
        assert_eq!(s.conflict_factor(2, ConflictModel::LinearArray, 1.0), 6.0);
        assert_eq!(s.conflict_factor(2, ConflictModel::LinearArray, 2.0), 3.0);
        assert_eq!(s.conflict_factor(2, ConflictModel::LinearArray, 8.0), 1.0);
        assert_eq!(s.conflict_factor(2, ConflictModel::MeshRowsCols, 1.0), 1.0);
    }

    #[test]
    fn conflict_profile_matches_per_dim_factors() {
        let s = Strategy::new(vec![2, 3, 5], StrategyKind::Mst);
        assert_eq!(
            s.conflict_profile(ConflictModel::LinearArray, 1.0),
            vec![1.0, 2.0, 6.0]
        );
        let m = Strategy::on_mesh(vec![4, 3], StrategyKind::ScatterCollect, 1);
        assert_eq!(
            m.conflict_profile(ConflictModel::MeshRowsCols, 1.0),
            vec![1.0, 1.0]
        );
    }

    #[test]
    fn display() {
        let s = Strategy::new(vec![3, 10], StrategyKind::Mst);
        assert_eq!(s.to_string(), "(3x10, SMC)");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_rejected() {
        Strategy::new(vec![], StrategyKind::Mst);
    }
}
