//! # intercom-cost
//!
//! The paper's performance model (§2, §4–§6): machine parameters
//! `α` (message latency), `β` (per-byte transfer time), `γ` (per-byte
//! combine time) and `δ` (per-recursion-level software overhead of the
//! library's short-vector primitives, §7.2), symbolic cost expressions,
//! closed-form costs for every primitive and composed algorithm, the
//! hybrid-strategy cost formulas of §6 (including the bold-face network
//! conflict factors), strategy enumeration, and best-strategy selection.
//!
//! ## The hybrid cost model, validated against Table 2
//!
//! A hybrid views `p` nodes as a logical `d1 × … × dk` mesh with the
//! *first* dimension varying fastest (adjacent nodes — the paper's Fig. 1
//! runs its first scatter within subgroups of two adjacent nodes). A
//! broadcast hybrid runs ring scatters up the dimensions, an MST broadcast
//! (or a final scatter+collect) in the last dimension, then ring collects
//! back down. On a linear array, the stage in dimension `i` interleaves
//! `sᵢ = d1·…·dᵢ₋₁` groups over the same physical links, so its β term is
//! multiplied by `sᵢ` — which exactly cancels the `1/sᵢ` message-length
//! reduction. The resulting closed forms reproduce the paper's Table 2:
//!
//! | logical mesh | hybrid | paper | this crate |
//! |---|---|---|---|
//! | 1×30  | M     | 5α + (150/30)nβ  | ✓ |
//! | 2×15  | SMC   | 6α + (150/30)nβ  | ✓ |
//! | 2×3×5 | SSMCC | 9α + (160/30)nβ  | ✓ |
//! | 5×6   | SSCC  | 15α + (98/30)nβ  | ✓ |
//! | 3×10  | SSCC  | 17α + (94/30)nβ  | ✓ |
//! | 2×15  | SSCC  | 20α + (86/30)nβ  | ✓ |

#![forbid(unsafe_code)]

pub mod collective;
pub mod composed;
pub mod contention;
pub mod crossover;
pub mod enumerate;
pub mod expr;
pub mod hier;
pub mod machine;
pub mod select;
pub mod seltab;
pub mod strategy;
pub mod table2;

pub use collective::{
    hybrid_cost, stage_predictions, CollectiveOp, CostContext, StageKind, StagePrediction,
};
pub use contention::{CompositeContention, TenantLoad};
pub use crossover::crossover_length;
pub use enumerate::{enumerate_mesh_strategies, enumerate_strategies};
pub use expr::CostExpr;
pub use hier::{
    choose_hier, enumerate_hier_strategies, flat_on_cluster_cost, hier_cost, hier_template,
    select_hier, ClusterShape, HierChoice, HierMachine, HierStage, HierStrategy, StageRole,
    StageSpec, TunedHier,
};
pub use machine::{MachineParams, TunedParams};
pub use select::{best_mesh_strategy, best_strategy, rank_strategies};
pub use seltab::{
    load_or_build, load_or_build_cluster, Geometry, OpTable, Row, Sel, SelectionTable,
};
pub use strategy::{ConflictModel, Strategy, StrategyKind};
